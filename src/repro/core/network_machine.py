"""A machine adapter running the §2 algorithms on §3 networks.

The paper derives each hypercube algorithm from "the corresponding
CREW-PRAM algorithm" (§3) while replacing its three PRAM conveniences:
Brent rescheduling, processor allocation, and free data movement.
:class:`NetworkMachine` realizes that translation operationally — it
exposes the same machine interface the PRAM algorithms are written
against, but every collective primitive *executes* on a
:class:`~repro.networks.topology.CubeLike` register file:

- grouped minima → genuine segmented argmin scans
  (:func:`~repro.networks.primitives.net_segmented_argmin_scan`), sliced
  into network-sized passes, with result concentration executed as an
  isotone route;
- prefix sums (processor allocation) → genuine network scans;
- the bracketing queries of Theorem 2.3 → an ``O(u²)``-slot segmented
  max scan (``u ≤ √m``, so the slots fit the machine);
- entry-evaluation rounds → charged as the Lemma 3.1 distribution
  schedule (two isotone routing passes plus a segmented copy —
  ``3·dim + 2`` rounds per network-sized slice of candidates); the
  routes' legality is exactly the isotone pattern proved in Lemma 3.1,
  and the router used everywhere else validates that pattern.

Running :func:`repro.core.rowmin_pram.monge_row_minima_pram` (or the
staircase / tube algorithms) against a ``NetworkMachine`` therefore
measures Theorem 3.2 / 3.3 / 3.4-style round counts on the hypercube,
cube-connected cycles, or shuffle-exchange network.  See
:mod:`repro.core.rowmin_network` for the public wrappers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.networks.primitives import (
    net_monotone_route,
    net_prefix_scan,
    net_segmented_argmin_scan,
    net_segmented_scan,
)
from repro.networks.topology import CubeLike
from repro.pram.ledger import notify_kernel
from repro.pram.machine import Pram
from repro.pram.models import CREW

__all__ = ["NetworkMachine"]


class NetworkMachine(Pram):
    """Pram-interface adapter over a hypercube-like network."""

    def __init__(self, network: CubeLike) -> None:
        # the network's fault plan (if any) covers the machine's PRAM-side
        # bookkeeping rounds too, so one plan drives the whole stack
        super().__init__(
            model=CREW,
            processors=max(1, network.size),
            ledger=network.ledger,
            faults=network.faults,
            retry_limit=network.retry_limit,
        )
        self.network = network

    # ------------------------------------------------------------------ #
    def sub(self, processors: int) -> "NetworkMachine":
        # subproblems share the physical network; budgets are advisory
        return self

    def charge_eval(self, size: int) -> None:
        """Charge the Lemma 3.1 candidate-distribution schedule."""
        net = self.network
        notify_kernel(net.ledger, "net-eval", size)
        slices = max(1, -(-size // max(1, net.size)))
        net.charge(rounds=slices * (3 * max(1, net.dim) + 2))

    # ------------------------------------------------------------------ #
    def network_prefix_scan(self, values: np.ndarray, op: str) -> np.ndarray:
        """Sliced genuine network scan with inter-slice carry."""
        net = self.network
        x = np.asarray(values, dtype=np.float64)
        n = x.size
        out = np.empty(n)
        carry = None
        ident = {"add": 0.0, "min": np.inf, "max": -np.inf}[op]
        fold = {"add": np.add, "min": np.minimum, "max": np.maximum}[op]
        for start in range(0, max(n, 1), net.size):
            chunk = x[start : start + net.size]
            reg = np.full(net.size, ident)
            reg[: chunk.size] = chunk
            scanned = net_prefix_scan(net, reg, op)
            if carry is not None:
                scanned = fold(scanned, carry)
                net.charge(rounds=1)
            out[start : start + chunk.size] = scanned[: chunk.size]
            carry = scanned[chunk.size - 1] if chunk.size else carry
            if n == 0:
                break
        return out

    def network_grouped_min(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Genuine segmented argmin scans + isotone result concentration."""
        net = self.network
        values = np.asarray(values, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        widths = np.diff(offsets)
        n_groups = widths.size
        out_v = np.full(n_groups, np.inf)
        out_i = np.full(n_groups, -1, dtype=np.int64)
        n = values.size
        if n == 0 or n_groups == 0:
            return out_v, out_i
        notify_kernel(net.ledger, "net-grouped-min", n)
        heads = np.zeros(n, dtype=bool)
        nonempty = widths > 0
        heads[offsets[:-1][nonempty]] = True
        heads[0] = True
        tails = np.zeros(n, dtype=bool)
        tails[offsets[1:][nonempty] - 1] = True
        tail_group = np.full(n, -1, dtype=np.int64)
        tail_group[offsets[1:][nonempty] - 1] = np.nonzero(nonempty)[0]

        carry_v, carry_i, carry_open = np.inf, -1.0, False
        for start in range(0, n, net.size):
            stop = min(start + net.size, n)
            m = stop - start
            reg_v = np.full(net.size, np.inf)
            reg_i = np.full(net.size, -1.0)
            reg_f = np.zeros(net.size)
            reg_v[:m] = values[start:stop]
            reg_i[:m] = np.arange(start, stop)
            reg_f[:m] = heads[start:stop]
            reg_f[m:] = 1.0  # padding forms its own dead segment
            sv, si = net_segmented_argmin_scan(net, reg_v, reg_i, reg_f)
            if carry_open:
                # apply the spanning group's carry to the slice's open prefix
                first_head = np.argmax(reg_f[:m] > 0) if reg_f[:m].any() else m
                upto = first_head if reg_f[:m].any() and reg_f[0] == 0 else (
                    0 if reg_f[0] > 0 else m
                )
                prefix = np.arange(net.size) < upto
                better = prefix & ((carry_v < sv) | ((carry_v == sv) & (carry_i < si)))
                sv = np.where(better, carry_v, sv)
                si = np.where(better, carry_i, si)
                net.charge(rounds=1)
            # concentrate this slice's tail results: an isotone route
            sl_tails = np.zeros(net.size, dtype=bool)
            sl_tails[:m] = tails[start:stop]
            t_idx = np.nonzero(sl_tails)[0]
            if t_idx.size:
                ranks = np.arange(t_idx.size)
                act = sl_tails.astype(np.float64)
                dst = np.zeros(net.size)
                dst[t_idx] = ranks
                routed_v = net_monotone_route(net, sv, dst, act, fill=np.inf)
                routed_i = net_monotone_route(net, si, dst, act, fill=-1.0)
                groups = tail_group[start:stop][sl_tails[:m]]
                out_v[groups] = routed_v[: t_idx.size]
                got = routed_i[: t_idx.size]
                out_i[groups] = np.where(out_v[groups] < np.inf, got, -1).astype(np.int64)
            # update carry: does the last group continue past this slice?
            carry_open = stop < n and not heads[stop] if stop < n else False
            if carry_open:
                carry_v, carry_i = sv[m - 1], si[m - 1]
        return out_v, out_i

    def network_nearest_smaller_left_threshold(
        self, x: np.ndarray, thresholds: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Bracketing queries as an ``O(|q|·|x|)``-slot segmented max scan.

        For query ``t``, element ``j`` contributes ``j`` when
        ``x[j] < thresholds[t]`` and ``j < positions[t]``; a segmented
        max over each query's row yields the answer.  The §2 usage has
        ``|x| = u ≤ √m``, so the quadratic slot count stays within the
        machine (and one genuine scan per slice is charged).
        """
        x = np.asarray(x, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        u = x.size
        nq = positions.size
        if u == 0 or nq == 0:
            return np.full(nq, -1, dtype=np.int64)
        jj = np.tile(np.arange(u), nq)
        tt = np.repeat(np.arange(nq), u)
        eligible = (x[jj] < thresholds[tt]) & (jj < positions[tt])
        scores = np.where(eligible, jj.astype(np.float64), -1.0)
        heads = np.zeros(nq * u, dtype=bool)
        heads[::u] = True
        best = self._sliced_segmented_scan(scores, heads, "max")
        ans = best[u - 1 :: u]
        return np.where(ans >= 0, ans, -1).astype(np.int64)

    def _sliced_segmented_scan(self, values, heads, op) -> np.ndarray:
        net = self.network
        values = np.asarray(values, dtype=np.float64)
        heads = np.asarray(heads, dtype=bool)
        n = values.size
        ident = {"add": 0.0, "min": np.inf, "max": -np.inf}[op]
        fold = {"add": np.add, "min": np.minimum, "max": np.maximum}[op]
        out = np.empty(n)
        carry, carry_open = ident, False
        for start in range(0, n, net.size):
            stop = min(start + net.size, n)
            m = stop - start
            reg = np.full(net.size, ident)
            flg = np.ones(net.size)
            reg[:m] = values[start:stop]
            flg[:m] = heads[start:stop]
            scanned = net_segmented_scan(net, reg, flg > 0, op)
            if carry_open:
                first_head = int(np.argmax(flg[:m] > 0)) if flg[:m].any() else m
                upto = first_head if flg[0] == 0 else 0
                prefix = np.arange(net.size) < upto
                scanned = np.where(prefix, fold(scanned, carry), scanned)
                net.charge(rounds=1)
            out[start:stop] = scanned[:m]
            carry_open = stop < n and not heads[stop]
            carry = scanned[m - 1]
        return out
