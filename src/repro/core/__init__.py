"""The paper's parallel array-searching algorithms.

PRAM algorithms (§2):

- :mod:`repro.core.rowmin_pram` — row minima/maxima of (inverse-)Monge
  arrays: the ``T(n) = 2·T(√n) + O(·)`` sampling recursion behind
  Table 1.1 and Lemma 2.1 / Corollary 2.4;
- :mod:`repro.core.staircase_pram` — Theorem 2.3: row minima of
  staircase-Monge arrays (Table 1.2), via the sampled-rows array
  ``A^t``, its Monge-block decomposition (Fig. 2.1), and the
  feasible-region partition with ANSV bracketing (Fig. 2.2);
- :mod:`repro.core.tube_pram` — tube (product) maxima/minima of
  Monge-composite arrays (Table 1.3): the CREW ``Θ(lg n)`` halving
  scheme of [AP89a, AALM88] and the CRCW ``Θ(lg lg n)`` doubly-
  logarithmic scheme of [Ata89].

Hypercube / network algorithms (§3) live in
:mod:`repro.core.rowmin_network`, :mod:`repro.core.staircase_network`,
and :mod:`repro.core.tube_network`.
"""

from repro.core.rowmin_pram import (
    monge_row_maxima_pram,
    monge_row_minima_pram,
    inverse_monge_row_maxima_pram,
    stack_arrays,
)
from repro.core.staircase_pram import (
    staircase_row_maxima_pram,
    staircase_row_minima_pram,
)
from repro.core.tube_pram import tube_maxima_pram, tube_minima_pram
from repro.core.banded import (
    banded_row_maxima,
    banded_row_maxima_pram,
    banded_row_minima,
    banded_row_minima_pram,
)
from repro.core.windowed import windowed_monge_row_minima
from repro.core.submatrix import (
    monge_submatrix_maximum,
    submatrix_max_pram,
    submatrix_max_sequential,
)
from repro.core.network_machine import NetworkMachine
from repro.core.rowmin_network import (
    inverse_monge_row_maxima_network,
    monge_row_maxima_network,
    monge_row_minima_network,
)
from repro.core.staircase_network import staircase_row_minima_network
from repro.core.tube_network import tube_maxima_network, tube_minima_network

__all__ = [
    "monge_row_minima_pram",
    "monge_row_maxima_pram",
    "inverse_monge_row_maxima_pram",
    "stack_arrays",
    "staircase_row_minima_pram",
    "staircase_row_maxima_pram",
    "tube_minima_pram",
    "tube_maxima_pram",
    "banded_row_minima",
    "banded_row_maxima",
    "banded_row_minima_pram",
    "banded_row_maxima_pram",
    "windowed_monge_row_minima",
    "monge_submatrix_maximum",
    "submatrix_max_pram",
    "submatrix_max_sequential",
    "NetworkMachine",
    "monge_row_minima_network",
    "monge_row_maxima_network",
    "inverse_monge_row_maxima_network",
    "staircase_row_minima_network",
    "tube_minima_network",
    "tube_maxima_network",
]
