"""Row minima of Monge arrays over arbitrary per-row windows.

A dispatcher over the paper's searching repertoire.  Input: an array in
the canonical *minima-of-Monge* orientation plus windows
``[lo[i], hi[i])``.  Rows are split into maximal runs by window motion:

- both bounds nondecreasing → the banded halving search
  (:func:`repro.core.banded.banded_row_minima_pram`);
- ``hi`` nonincreasing → group rows by equal ``lo`` and solve the
  groups as one batch of staircase-Monge instances (Theorem 2.3 —
  a nonincreasing prefix boundary *is* the staircase shape);
- anything else (rare residue at run seams) → a direct grouped minimum
  per row, which is still a legal constant-depth parallel step, just
  without the Monge pruning.

The geometric applications (visibility arcs, empty-rectangle cases)
produce windows that fall entirely into the first two classes; the
dispatcher keeps them correct even at degenerate seams.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.banded import banded_row_minima_pram
from repro.core.staircase_pram import staircase_row_minima_batch
from repro.monge.arrays import SearchArray, as_search_array
from repro.pram.machine import Pram
from repro.pram.primitives import grouped_min

__all__ = ["windowed_monge_row_minima"]


def windowed_monge_row_minima(
    pram: Pram, array, lo, hi
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost minimum of row ``i`` over ``[lo[i], hi[i])``.

    ``array`` must be Monge (restricted leftmost minima nondecreasing on
    co-monotone windows).  Empty windows give ``(inf, -1)``.
    """
    a = as_search_array(array)
    m, n = a.shape
    lo = np.clip(np.asarray(lo, dtype=np.int64), 0, n)
    hi = np.clip(np.asarray(hi, dtype=np.int64), 0, n)
    if lo.shape != (m,) or hi.shape != (m,):
        raise ValueError(f"lo and hi must have shape ({m},)")
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    if m == 0 or n == 0:
        return vals, cols

    runs = _split_runs(lo, hi)
    for r0, r1, kind in runs:
        rows = np.arange(r0, r1)
        sub = _RowSlice(a, r0, r1 - r0)
        if kind == "banded":
            v, c = banded_row_minima_pram(pram, sub, lo[rows], hi[rows])
        elif kind == "staircase":
            v, c = _staircase_runs(pram, sub, lo[rows], hi[rows])
        else:
            v, c = _direct(pram, sub, lo[rows], hi[rows])
        vals[rows] = v
        cols[rows] = c
    return vals, cols


class _RowSlice(SearchArray):
    """A contiguous row-slice view of another array."""

    def __init__(self, base: SearchArray, r0: int, count: int) -> None:
        super().__init__((count, base.shape[1]))
        self.base = base
        self.r0 = r0

    def _eval(self, rows, cols):
        return self.base.eval(self.r0 + rows, cols)


def _split_runs(lo: np.ndarray, hi: np.ndarray):
    """Maximal row runs classified banded / staircase / direct."""
    m = lo.size
    runs = []
    i = 0
    while i < m:
        jb = i + 1  # banded run: lo and hi both nondecreasing
        while jb < m and lo[jb] >= lo[jb - 1] and hi[jb] >= hi[jb - 1]:
            jb += 1
        js = i + 1  # staircase run: hi nonincreasing (any lo)
        while js < m and hi[js] <= hi[js - 1]:
            js += 1
        if jb >= js:
            runs.append((i, jb, "banded"))
            i = jb
        elif js > i + 1:
            runs.append((i, js, "staircase"))
            i = js
        else:  # pragma: no cover - a singleton always forms a banded run
            runs.append((i, i + 1, "direct"))
            i += 1
    return runs


def _staircase_runs(pram, sub: SearchArray, lo, hi):
    """Rows with nonincreasing ``hi``: batch staircase instances grouped
    by equal ``lo`` (each group's boundary is its prefix staircase)."""
    m, n = sub.shape
    change = np.nonzero(np.diff(lo))[0] + 1
    starts = np.concatenate([[0], change, [m]]).astype(np.int64)
    rs = starts[:-1]
    rcount = np.diff(starts)
    cs = lo[rs]
    ccount = np.maximum(0, n - cs)
    keep = (rcount > 0) & (ccount > 0)
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    if not keep.any():
        return vals, cols
    f = np.maximum(hi, 0)
    v, c = staircase_row_minima_batch(
        pram, sub, f, rs[keep], rcount[keep], cs[keep], ccount[keep]
    )
    owner = np.concatenate([np.arange(r, r + k) for r, k in zip(rs[keep], rcount[keep])])
    vals[owner] = v
    cols[owner] = c
    return vals, cols


def _direct(pram, sub: SearchArray, lo, hi):
    """Unpruned grouped minimum per row (seam fallback)."""
    m, n = sub.shape
    widths = np.maximum(0, hi - lo)
    offsets = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(widths, out=offsets[1:])
    owner = np.repeat(np.arange(m), widths)
    local = np.arange(int(offsets[-1])) - offsets[:-1][owner]
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    if owner.size == 0:
        return vals, cols
    cc = lo[owner] + local
    pram.charge(rounds=2, processors=max(1, m))
    flat = sub.eval(owner, cc, checked=False)
    pram.charge_eval(flat.size)
    gv, gi = grouped_min(pram, flat, offsets)
    vals[:] = gv
    take = gi >= 0
    cols[take] = cc[gi[take]]
    return vals, cols
