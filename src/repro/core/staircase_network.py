"""Theorem 3.3: staircase-Monge row minima on hypercube-like networks.

The Theorem 2.3 algorithm run against a
:class:`~repro.core.network_machine.NetworkMachine`: Fig. 2.1 block
solves, the ANSV bracketing (executed as a segmented max scan over
``u²`` network slots), and all grouped minima move genuinely through
the chosen topology.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.rowmin_network import Topology, network_machine_for
from repro.monge.staircase_seq import effective_boundary
from repro.pram.ledger import CostLedger

__all__ = ["staircase_row_minima_network"]


def staircase_row_minima_network(
    array, topology: Topology = "hypercube", strict: bool = True, faults=None
) -> Tuple[np.ndarray, np.ndarray, CostLedger]:
    """Leftmost row minima of a staircase-Monge array on a network.

    Returns ``(values, columns, ledger)``; all-``∞`` rows give
    ``(inf, -1)``.  ``strict=False`` degrades on non-staircase-Monge
    input (the machine is sized from the dense shape either way);
    ``faults`` binds a :class:`~repro.resilience.faults.FaultPlan`.
    """
    from repro.engine import ExecutionConfig, dispatch_on
    from repro.monge.arrays import as_search_array

    m, n = as_search_array(array).shape
    if strict:
        effective_boundary(array)  # fail fast, before building the machine
    machine = network_machine_for(topology, max(m, n, 2), faults=faults)
    vals, cols = dispatch_on(machine, "staircase_min", array, ExecutionConfig(strict=strict))
    return vals, cols, machine.ledger
