"""Theorem 3.3: staircase-Monge row minima on hypercube-like networks.

The Theorem 2.3 algorithm run against a
:class:`~repro.core.network_machine.NetworkMachine`: Fig. 2.1 block
solves, the ANSV bracketing (executed as a segmented max scan over
``u²`` network slots), and all grouped minima move genuinely through
the chosen topology.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.rowmin_network import Topology, network_machine_for
from repro.core.staircase_pram import staircase_row_minima_pram
from repro.monge.staircase_seq import effective_boundary
from repro.pram.ledger import CostLedger

__all__ = ["staircase_row_minima_network"]


def staircase_row_minima_network(
    array, topology: Topology = "hypercube"
) -> Tuple[np.ndarray, np.ndarray, CostLedger]:
    """Leftmost row minima of a staircase-Monge array on a network.

    Returns ``(values, columns, ledger)``; all-``∞`` rows give
    ``(inf, -1)``.
    """
    arr, _ = effective_boundary(array)
    m, n = arr.shape
    machine = network_machine_for(topology, max(m, n, 2))
    vals, cols = staircase_row_minima_pram(machine, array)
    return vals, cols, machine.ledger
