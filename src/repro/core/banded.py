"""Row extrema of Monge-type arrays restricted to monotone bands.

The applications of §1.3 repeatedly produce *banded* instances: each
row ``i`` may only use columns ``[lo[i], hi[i])`` where both ``lo`` and
``hi`` are nondecreasing.  A staircase-Monge array is the special case
``lo ≡ 0`` (and an ``∞``-region in place of a hard window); the
largest-rectangle reduction (§1.3 app 2), the empty-rectangle crossing
cases (app 1), and the visibility arcs of app 3 all produce genuine
two-sided bands.

Monotonicity survives banding: if the unrestricted leftmost row extrema
of a totally monotone array are nondecreasing, so are the leftmost
extrema restricted to monotone windows — for rows ``i < k`` with
restricted argmaxima ``q_i > q_k``, both columns lie inside both
windows (``q_k ≥ lo[k] ≥ lo[i]`` and ``q_i < hi[i] ≤ hi[k]``), so the
usual 2×2 exchange argument applies verbatim.  Hence the same
halving/sampling searches work with windows intersected in.

Provided here:

- :func:`banded_row_minima` / :func:`banded_row_maxima` — sequential
  divide-and-conquer, ``O((m + n + Σ window overlap) lg m)`` evals;
- :func:`banded_row_minima_pram` / :func:`banded_row_maxima_pram` —
  the halving scheme on a PRAM (or NetworkMachine) with windows.

Minima variants require the *Monge* orientation (leftmost minima
nondecreasing); maxima variants require *inverse-Monge*.  Empty windows
yield ``(inf, -1)`` / ``(-inf, -1)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.monge.arrays import as_search_array
from repro.pram.machine import Pram
from repro.pram.primitives import grouped_min

__all__ = [
    "banded_row_minima",
    "banded_row_maxima",
    "banded_row_minima_pram",
    "banded_row_maxima_pram",
]


def _check_band(m: int, n: int, lo, hi) -> Tuple[np.ndarray, np.ndarray]:
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    if lo.shape != (m,) or hi.shape != (m,):
        raise ValueError(f"lo and hi must have shape ({m},)")
    if m and ((np.diff(lo) < 0).any() or (np.diff(hi) < 0).any()):
        raise ValueError("band boundaries must be nondecreasing")
    if m and (lo.min() < 0 or hi.max() > n):
        raise ValueError(f"band boundaries must lie within [0, {n}]")
    return lo, hi


def banded_row_minima(array, lo, hi) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost minima of row ``i`` over columns ``[lo[i], hi[i])``.

    Requires the Monge orientation (restricted leftmost minima
    nondecreasing).  Sequential divide and conquer.
    """
    a = as_search_array(array)
    m, n = a.shape
    lo, hi = _check_band(m, n, lo, hi)
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)

    def solve(r0: int, r1: int, c_lo: int, c_hi: int) -> None:
        """Rows [r0, r1); nonempty rows' extrema lie in [c_lo, c_hi]."""
        if r0 >= r1:
            return
        mid = (r0 + r1) // 2
        a_lo = max(lo[mid], c_lo)
        a_hi = min(hi[mid] - 1, c_hi)
        if a_lo <= a_hi:
            span = np.arange(a_lo, a_hi + 1)
            row_vals = a.eval(np.full(span.size, mid), span)
            k = int(np.argmin(row_vals))
            vals[mid] = row_vals[k]
            cols[mid] = a_lo + k
            solve(r0, mid, c_lo, cols[mid])
            solve(mid + 1, r1, cols[mid], c_hi)
        else:
            # mid's window is empty (a nonempty window always intersects
            # [c_lo, c_hi] by band monotonicity); bounds pass through.
            solve(r0, mid, c_lo, c_hi)
            solve(mid + 1, r1, c_lo, c_hi)

    solve(0, m, 0, max(0, n - 1))
    return vals, cols


def banded_row_maxima(array, lo, hi) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost maxima over monotone windows (inverse-Monge orientation)."""
    a = as_search_array(array)
    vals, cols = banded_row_minima(a.negate(), lo, hi)
    return np.where(cols >= 0, -vals, -np.inf), cols


def banded_row_minima_pram(
    pram: Pram, array, lo, hi
) -> Tuple[np.ndarray, np.ndarray]:
    """Parallel banded leftmost row minima (halving scheme).

    Same contract as :func:`banded_row_minima`; runs on any machine the
    Table 1.1 algorithms run on (PRAM models or a NetworkMachine).
    """
    a = as_search_array(array)
    m, n = a.shape
    lo, hi = _check_band(m, n, lo, hi)
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    if m == 0 or n == 0:
        return vals, cols

    solved = np.array([], dtype=np.int64)
    stride = 1
    while stride * 2 < m:
        stride *= 2
    while stride >= 1:
        level_rows = np.arange(stride - 1, m, stride, dtype=np.int64)
        new_rows = level_rows[~np.isin(level_rows, solved)]
        if new_rows.size:
            pos = np.searchsorted(solved, new_rows)
            if solved.size:
                above = np.where(pos > 0, solved[np.maximum(pos - 1, 0)], -1)
                below = np.where(
                    pos < solved.size, solved[np.minimum(pos, solved.size - 1)], -1
                )
                # neighbors with empty windows give no bound
                c_lo = np.where(
                    (above >= 0) & (cols[np.maximum(above, 0)] >= 0),
                    cols[np.maximum(above, 0)],
                    0,
                )
                c_hi = np.where(
                    (below >= 0) & (cols[np.maximum(below, 0)] >= 0),
                    cols[np.maximum(below, 0)],
                    n - 1,
                )
            else:
                c_lo = np.zeros(new_rows.size, dtype=np.int64)
                c_hi = np.full(new_rows.size, n - 1, dtype=np.int64)
            w_lo = np.maximum(c_lo, lo[new_rows])
            w_hi = np.minimum(c_hi, hi[new_rows] - 1)
            widths = np.maximum(0, w_hi - w_lo + 1)
            offsets = np.zeros(widths.size + 1, dtype=np.int64)
            np.cumsum(widths, out=offsets[1:])
            owner = np.repeat(np.arange(widths.size), widths)
            local = np.arange(int(offsets[-1])) - offsets[:-1][owner]
            rows_flat = new_rows[owner]
            cols_flat = w_lo[owner] + local
            pram.charge(rounds=2, processors=max(1, widths.size))
            if cols_flat.size:
                values_flat = a.eval(rows_flat, cols_flat, checked=False)
                pram.charge_eval(values_flat.size)
                gv, gi = grouped_min(pram, values_flat, offsets)
                vals[new_rows] = gv
                take = gi >= 0
                cols[new_rows[take]] = cols_flat[gi[take]]
            pram.charge(rounds=1, processors=max(1, new_rows.size))
            solved = np.sort(np.concatenate([solved, new_rows]))
        stride //= 2
    return vals, cols


def banded_row_maxima_pram(pram: Pram, array, lo, hi) -> Tuple[np.ndarray, np.ndarray]:
    """Parallel banded leftmost row maxima (inverse-Monge orientation)."""
    a = as_search_array(array)
    vals, cols = banded_row_minima_pram(pram, a.negate(), lo, hi)
    return np.where(cols >= 0, -vals, -np.inf), cols
