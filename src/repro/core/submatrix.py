"""One-shot submatrix (rectangle) maxima over a Monge array.

The ``submatrix_max`` problem takes an ``(array, (r0, r1), (c0, c1))``
triple — a search array plus one half-open query rectangle — and
returns the rectangle's maximum value together with its column-major
first maximizer ``[row, col]`` (max value, then leftmost column, then
topmost row; the same tie-break the brute-force oracle ``argmax`` over
the transposed block produces).

A submatrix of a Monge array is Monge, so the rectangle reduces to
leftmost row maxima of the sub-array (the Table 1.1 machinery —
:func:`repro.core.rowmin_pram._row_maxima_impl` on the PRAMs, the
SMAWK row-flip reduction sequentially) followed by one lexicographic
reduce across the rows, charged as a single parallel round.

This is the pay-per-rectangle path.  For many rectangles over one
array, :meth:`repro.engine.session.Session.prepare` builds the
precompute-once :class:`~repro.monge.index.MongeIndex` instead and
amortizes the build across queries (DESIGN.md §14).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.monge.arrays import CachedArray, ImplicitArray, as_search_array
from repro.monge.index import check_rectangle

__all__ = [
    "submatrix_max_pram",
    "submatrix_max_sequential",
    "monge_submatrix_maximum",
]


def _rectangle_args(data):
    """Unpack the ``(array, rows, cols)`` triple the family takes."""
    if not isinstance(data, (tuple, list)) or len(data) != 3:
        raise TypeError(
            "'submatrix_max' data must be an (array, (r0, r1), (c0, c1)) "
            "triple: the search array plus a half-open query rectangle"
        )
    return data[0], data[1], data[2]


def _reduce_row_maxima(vals: np.ndarray, cols: np.ndarray, r0: int, c0: int
                       ) -> Tuple[np.floating, np.ndarray]:
    """Fold per-row leftmost maxima into the rectangle's column-major
    first maximizer (max value → leftmost column → topmost row)."""
    best = vals.max()
    rows_at = np.flatnonzero(vals == best)
    j = int(np.argmin(cols[rows_at]))  # leftmost col; first hit = topmost row
    row = int(rows_at[j])
    col = int(cols[rows_at[j]])
    return np.float64(best), np.array([r0 + row, c0 + col], dtype=np.int64)


def submatrix_max_pram(machine, data, *, cache: bool = False
                       ) -> Tuple[np.floating, np.ndarray]:
    """Rectangle maximum on a simulated PRAM.

    Row maxima of the (Monge) sub-array via the Table 1.1 sampling
    recursion, then one reduce round across the ``h`` rows.
    """
    from repro.core.rowmin_pram import _row_maxima_impl

    array, rows, cols = _rectangle_args(data)
    a = as_search_array(array)
    r0, r1, c0, c1 = check_rectangle(a.shape, rows, cols)
    sub = a.submatrix(np.arange(r0, r1), np.arange(c0, c1))
    vals, argcols = _row_maxima_impl(
        machine, sub, strategy="sqrt", cache=cache, strict=True
    )
    machine.charge(rounds=1, processors=max(1, r1 - r0))
    return _reduce_row_maxima(vals, argcols, r0, c0)


def submatrix_max_sequential(data, *, cache: bool = False
                             ) -> Tuple[np.floating, np.ndarray]:
    """Sequential rectangle maximum: SMAWK on the row-flipped sub-array
    (``O(h + w)`` evaluations) plus the lexicographic reduce."""
    from repro.monge.smawk import row_minima

    array, rows, cols = _rectangle_args(data)
    a = as_search_array(array)
    if cache and not isinstance(a, CachedArray):
        a = CachedArray(a)
    r0, r1, c0, c1 = check_rectangle(a.shape, rows, cols)
    sub = a.submatrix(np.arange(r0, r1), np.arange(c0, c1))
    h, w = r1 - r0, c1 - c0
    # Monge row-flipped is inverse-Monge; its negation is Monge again and
    # leftmost minima in reversed row order are the leftmost maxima.
    flip = ImplicitArray(
        lambda r, c: -sub.eval(h - 1 - r, c, checked=False), (h, w)
    )
    mins, argcols = row_minima(flip)
    return _reduce_row_maxima(-mins[::-1], argcols[::-1], r0, c0)


def monge_submatrix_maximum(array, rows, cols) -> Tuple[float, np.ndarray]:
    """Convenience front door: sequential rectangle maximum of a Monge
    array over half-open ``rows=(r0, r1)``, ``cols=(c0, c1)``."""
    return submatrix_max_sequential((array, rows, cols))
