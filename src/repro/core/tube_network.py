"""Theorem 3.4: tube maxima/minima on an ``n²``-processor network.

The halving scheme of :mod:`repro.core.tube_pram` run against a
:class:`~repro.core.network_machine.NetworkMachine` whose topology has
``p·r`` logical nodes (the output grid, one cell per node — the
paper's ``n²``-processor hypercube).  Candidate windows chain
monotonically along the output columns, which is precisely the isotone
pattern Lemma 3.1's routing distributes; grouped minima execute as
segmented scans on the network.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.rowmin_network import Topology, network_machine_for
from repro.monge.arrays import MongeComposite
from repro.pram.ledger import CostLedger

__all__ = ["tube_minima_network", "tube_maxima_network"]


def _machine_for(composite) -> "NetworkMachine":
    if isinstance(composite, tuple):
        composite = MongeComposite(*composite)
    p, q, r = composite.shape
    return composite, max(p * r, q, 2)


def tube_minima_network(
    composite, topology: Topology = "hypercube", strict: bool = True, faults=None
) -> Tuple[np.ndarray, np.ndarray, CostLedger]:
    """Tube minima on a ``p·r``-node network: ``(values, j_args, ledger)``."""
    from repro.engine import ExecutionConfig, dispatch_on

    composite, nodes = _machine_for(composite)
    machine = network_machine_for(topology, nodes, faults=faults)
    cfg = ExecutionConfig(strategy="crew", strict=strict)
    vals, args = dispatch_on(machine, "tube_min", composite, cfg)
    return vals, args, machine.ledger


def tube_maxima_network(
    composite, topology: Topology = "hypercube", strict: bool = True, faults=None
) -> Tuple[np.ndarray, np.ndarray, CostLedger]:
    """Theorem 3.4's tube maxima on a network: ``(values, j_args, ledger)``."""
    from repro.engine import ExecutionConfig, dispatch_on

    composite, nodes = _machine_for(composite)
    machine = network_machine_for(topology, nodes, faults=faults)
    cfg = ExecutionConfig(strategy="crew", strict=strict)
    vals, args = dispatch_on(machine, "tube_max", composite, cfg)
    return vals, args, machine.ledger
