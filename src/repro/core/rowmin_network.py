"""Theorem 3.2: Monge row maxima/minima on hypercube-like networks.

Public wrappers that build a :class:`~repro.core.network_machine.NetworkMachine`
over the requested topology and run the §2 algorithms against it.  The
ledger then reports genuine network rounds: scans, grouped minima, and
result concentration execute via exchange rounds on the topology
(constant-factor slower on CCC and shuffle-exchange, per their normal-
algorithm emulations), and candidate distribution is charged per the
Lemma 3.1 isotone-routing schedule.

The extended abstract omits the proofs of Theorems 3.2–3.4; our
measured bounds are ``O(lg² n)``-shaped (each of the ``O(lg n)``
recursion levels pays ``O(lg n)`` network rounds for its scans/routes)
— the stated ``O(lg n lg lg n)`` would need the sub-hypercube pipelining
the abstract defers to the full version.  EXPERIMENTS.md reports both
normalizations.
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np

from repro._util.bits import ceil_log2
from repro.core.network_machine import NetworkMachine
from repro.monge.arrays import as_search_array
from repro.networks import CubeConnectedCycles, Hypercube, ShuffleExchange
from repro.pram.ledger import CostLedger

__all__ = [
    "make_network",
    "network_machine_for",
    "monge_row_minima_network",
    "monge_row_maxima_network",
    "inverse_monge_row_maxima_network",
]

Topology = Literal["hypercube", "ccc", "shuffle-exchange"]

_TOPOLOGIES = {
    "hypercube": Hypercube,
    "ccc": CubeConnectedCycles,
    "shuffle-exchange": ShuffleExchange,
}


def make_network(
    topology: Topology, nodes: int, ledger: CostLedger | None = None, faults=None
):
    """A topology instance with at least ``nodes`` logical nodes."""
    cls = _TOPOLOGIES.get(topology)
    if cls is None:
        raise ValueError(
            f"unknown topology {topology!r}; expected one of {sorted(_TOPOLOGIES)}"
        )
    dim = ceil_log2(max(2, nodes))
    return cls(dim, ledger=ledger, faults=faults)


def network_machine_for(topology: Topology, nodes: int, faults=None) -> NetworkMachine:
    """A fresh :class:`NetworkMachine` sized for ``nodes`` processors."""
    from repro.engine import build_machine

    if topology not in _TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; expected one of {sorted(_TOPOLOGIES)}"
        )
    return build_machine(topology, nodes, faults=faults)


def monge_row_minima_network(
    array, topology: Topology = "hypercube", strict: bool = True, faults=None
) -> Tuple[np.ndarray, np.ndarray, CostLedger]:
    """Leftmost row minima of a Monge array on a network (§3).

    The network has ``max(m, n)`` logical nodes (the paper's input model
    stores ``v[i]``/``w[j]`` one per node).  Returns
    ``(values, columns, ledger)``.  ``strict``/``faults`` behave as in
    :func:`~repro.core.rowmin_pram.monge_row_minima_pram` and
    :class:`~repro.resilience.faults.FaultPlan`.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    a = as_search_array(array)
    m, n = a.shape
    machine = network_machine_for(topology, max(m, n, 2), faults=faults)
    cfg = ExecutionConfig(strategy="sqrt", strict=strict)
    vals, cols = dispatch_on(machine, "rowmin", a, cfg)
    return vals, cols, machine.ledger


def monge_row_maxima_network(
    array, topology: Topology = "hypercube", strict: bool = True, faults=None
):
    """Theorem 3.2's row maxima of a Monge array on a network."""
    from repro.engine import ExecutionConfig, dispatch_on

    a = as_search_array(array)
    m, n = a.shape
    machine = network_machine_for(topology, max(m, n, 2), faults=faults)
    cfg = ExecutionConfig(strategy="sqrt", strict=strict)
    vals, cols = dispatch_on(machine, "rowmax", a, cfg)
    return vals, cols, machine.ledger


def inverse_monge_row_maxima_network(
    array, topology: Topology = "hypercube", strict: bool = True, faults=None
):
    """Row maxima of an inverse-Monge array (Fig. 1.1 form) on a network."""
    from repro.engine import ExecutionConfig, dispatch_on

    a = as_search_array(array)
    m, n = a.shape
    machine = network_machine_for(topology, max(m, n, 2), faults=faults)
    cfg = ExecutionConfig(strategy="sqrt", strict=strict)
    vals, cols = dispatch_on(machine, "rowmax_inverse", a, cfg)
    return vals, cols, machine.ledger
