"""Parallel row minima of Monge arrays on the PRAM (Table 1.1).

Two strategies are provided; both are exact (validated against SMAWK /
brute force) and differ only in measured round structure:

``sqrt`` (default) — the paper-style sampling recursion
    Sample every ``√m``-th row.  Phase (b): the sampled ``u×n`` array is
    cut into ``u`` column chunks, each solved *recursively*; a grouped
    minimum over the chunk winners gives the sampled rows' minima.
    Phase (c): by monotonicity of leftmost-minima positions, the
    remaining rows of the block below sampled row ``r_i`` have their
    minima inside columns ``[c(r_i), c(r_{i+1})]`` — these blocks are
    solved by a second recursive call.  The sequential phase structure
    gives the round recurrence ``T(n) = 2·T(√n) + O(g)`` where ``g`` is
    the grouped-minimum cost: with the CRCW doubly-log primitive
    ``g = O(lg lg n)`` and ``T(n) = O(lg n)`` — Table 1.1's CRCW row —
    while with the CREW binary primitive ``g = O(lg n_k)`` per level and
    ``T(n) = O(lg n lg lg n)`` — Table 1.1's CREW row (run on a
    :class:`~repro.pram.scheduling.BrentPram` with ``n/lg lg n``
    physical processors to realize the stated processor bound).

``halving`` — the simpler ablation baseline
    Solve rows of stride ``2s`` first, then rows of stride ``s``
    localized between their neighbors' minima: ``lg m`` levels, each
    paying one grouped minimum over ``O(n + m/s)`` candidates.

Processor allocation is charged ``O(1)`` rounds per level: every
subproblem's processor-block offset telescopes from already-computed
minima positions (for phase (c), ``offset_k = k·s + c(r_{k-1}) - c(r_{-1})
+ k``) or is uniform (phase (b) chunks), so a parent hands each child
its block without a prefix scan.  This allocation argument is what the
paper's Lemma 2.2 needs ANSV for in the *staircase* case; in the plain
Monge case the telescoping identity suffices.

Subproblems are represented as (row arithmetic progression × contiguous
column range) — both phases produce only this shape — which lets a
whole frontier of sibling subproblems execute their rounds together as
vectorized batches (siblings share rounds; only the two sequential
recursive calls per level add depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro._util.bits import ceil_sqrt_array
from repro._util.ragged import ragged as _ragged
from repro.monge.arrays import (
    CachedArray,
    ImplicitArray,
    SearchArray,
    as_search_array,
)
from repro.kernels.api import eval_grouped_min
from repro.kernels.chargefan import ChargeFan
from repro.pram.machine import Pram
from repro.pram.primitives import grouped_min
from repro.resilience import degrade

__all__ = [
    "monge_row_minima_pram",
    "monge_row_maxima_pram",
    "inverse_monge_row_maxima_pram",
    "stack_arrays",
]

_SMALL_ROWS = 4  # direct-solve threshold on the row dimension


@dataclass
class _Batch:
    """A frontier of subproblems (struct-of-arrays).

    Subproblem ``i`` covers rows ``rs[i] + t·rstride[i]`` for
    ``t < rcount[i]`` and columns ``[cs[i], cs[i] + ccount[i])`` of the
    original array.  ``owner`` (optional, nondecreasing) tags each
    subproblem with the query it belongs to in a fused multi-query
    sweep; every batch construction preserves relative order, so owners
    stay contiguous throughout the recursion.
    """

    rs: np.ndarray
    rstride: np.ndarray
    rcount: np.ndarray
    cs: np.ndarray
    ccount: np.ndarray
    owner: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.rs.size

    @property
    def total_rows(self) -> int:
        return int(self.rcount.sum())

    def row_offsets(self) -> np.ndarray:
        out = np.zeros(len(self) + 1, dtype=np.int64)
        np.cumsum(self.rcount, out=out[1:])
        return out

    def select(self, mask: np.ndarray) -> "_Batch":
        return _Batch(self.rs[mask], self.rstride[mask], self.rcount[mask],
                      self.cs[mask], self.ccount[mask],
                      None if self.owner is None else self.owner[mask])


def monge_row_minima_pram(
    pram: Pram, array, strategy: str = "sqrt", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row minima of a Monge array, parallel.

    Returns ``(values, columns)``.  ``strategy`` is ``"sqrt"`` (the
    paper's recursion) or ``"halving"`` (ablation baseline).  Grouped
    minima pick the CRCW doubly-log primitive automatically when the
    machine is CRCW, else the CREW binary scan.

    ``cache=True`` wraps the array in a
    :class:`~repro.monge.arrays.CachedArray` so entries revisited
    across recursion levels are computed once; results and ledger
    charges are identical either way (wall-clock only).

    ``strict=False`` verifies the Monge precondition first (an
    ``O(mn)`` dense scan) and degrades to a charged dense fallback —
    with a :class:`~repro.resilience.degrade.DegradedResultWarning` —
    when the input is not Monge, instead of returning garbage.

    Thin wrapper over the engine registry (``("rowmin", <backend of
    pram>)``); the algorithm body is :func:`_row_minima_impl`.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(strategy=strategy, cache=cache, strict=strict)
    return dispatch_on(pram, "rowmin", array, cfg)


def monge_row_maxima_pram(
    pram: Pram, array, strategy: str = "sqrt", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row maxima of a **Monge** array (Table 1.1 semantics).

    Row-flipping a Monge array yields an inverse-Monge array; negating
    that restores Monge.  Leftmost minima of the transform, read in
    reverse row order, are the leftmost maxima of the original.
    ``strict=False`` degrades to a dense scan on non-Monge input (see
    :func:`monge_row_minima_pram`).
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(strategy=strategy, cache=cache, strict=strict)
    return dispatch_on(pram, "rowmax", array, cfg)


def inverse_monge_row_maxima_pram(
    pram: Pram, array, strategy: str = "sqrt", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row maxima of an **inverse-Monge** array (Fig. 1.1 use).

    The negation is Monge and leftmost minima coincide positionally.
    ``strict=False`` degrades to a dense scan on non-inverse-Monge input.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(strategy=strategy, cache=cache, strict=strict)
    return dispatch_on(pram, "rowmax_inverse", array, cfg)


def _row_minima_impl(
    pram: Pram, array, strategy: str = "sqrt", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`monge_row_minima_pram`."""
    a = as_search_array(array)
    if not strict:
        reason = degrade.monge_reason(a)
        if reason is not None:
            degrade.warn_degraded("monge_row_minima_pram", reason, "dense row scan")
            return degrade.brute_rows(pram, a.materialize(), mode="min")
    if cache:
        a = CachedArray(a)
    m, n = a.shape
    if n == 0:
        raise ValueError("cannot take row minima of a zero-column array")
    if m == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    if strategy == "sqrt":
        batch = _Batch(
            rs=np.array([0], dtype=np.int64),
            rstride=np.array([1], dtype=np.int64),
            rcount=np.array([m], dtype=np.int64),
            cs=np.array([0], dtype=np.int64),
            ccount=np.array([n], dtype=np.int64),
        )
        vals, cols = _solve_batch(pram, a, batch)
        return vals, cols
    if strategy == "halving":
        return _solve_halving(pram, a)
    raise ValueError(f"unknown strategy {strategy!r}")


def _row_maxima_impl(
    pram: Pram, array, strategy: str = "sqrt", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`monge_row_maxima_pram`."""
    a = as_search_array(array)
    if not strict:
        reason = degrade.monge_reason(a)
        if reason is not None:
            degrade.warn_degraded("monge_row_maxima_pram", reason, "dense row scan")
            return degrade.brute_rows(pram, a.materialize(), mode="max")
    m, _ = a.shape

    class _Flip(SearchArray):
        def __init__(self, base):
            super().__init__(base.shape)
            self.base = base

        def _eval(self, rows, cols):
            return -self.base.eval(m - 1 - rows, cols, checked=False)

    vals, cols = _row_minima_impl(pram, _Flip(a), strategy=strategy, cache=cache)
    return -vals[::-1], cols[::-1].copy()


def _inverse_row_maxima_impl(
    pram: Pram, array, strategy: str = "sqrt", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`inverse_monge_row_maxima_pram`."""
    a = as_search_array(array)
    if not strict:
        reason = degrade.inverse_monge_reason(a)
        if reason is not None:
            degrade.warn_degraded(
                "inverse_monge_row_maxima_pram", reason, "dense row scan"
            )
            return degrade.brute_rows(pram, a.materialize(), mode="max")
    vals, cols = _row_minima_impl(pram, a.negate(), strategy=strategy, cache=cache)
    return -vals, cols


# --------------------------------------------------------------------- #
# sqrt strategy
# --------------------------------------------------------------------- #
def _solve_batch(pram: Pram, arr: SearchArray, batch: _Batch, fan: Optional[ChargeFan] = None):
    """Solve every subproblem in ``batch``; results flat in batch-row order.

    When ``fan`` is given the batch is a fused multi-query sweep:
    alongside every global ``pram.charge`` the same site's per-owner
    unit counts are charged to each owner's sub-account, reproducing
    each query's serial charge sequence exactly (see
    :class:`~repro.kernels.chargefan.ChargeFan`).
    """
    B = len(batch)
    total_rows = batch.total_rows
    vals = np.full(total_rows, np.inf)
    cols = np.full(total_rows, -1, dtype=np.int64)
    if B == 0:
        return vals, cols
    row_off = batch.row_offsets()

    small = batch.rcount <= _SMALL_ROWS
    big = ~small

    # ---- direct solve for small-row subproblems (batched) ------------- #
    if small.any():
        sb = batch.select(small)
        sb_rowoff = sb.row_offsets()
        # one candidate group per (subproblem, row); width = ccount
        widths = np.repeat(sb.ccount, sb.rcount)
        local_col, owner_rowgrp, offsets = _ragged(widths)
        # owner_rowgrp indexes (subproblem, row) pairs flattened
        lr, owner_prob, _ = _ragged(sb.rcount)  # local row per group
        g_rows = sb.rs[owner_prob] + lr * sb.rstride[owner_prob]
        rows_flat = np.repeat(g_rows, widths)
        cols_flat = sb.cs[owner_prob][owner_rowgrp] + local_col
        # allocation is uniform-per-subproblem: O(1) rounds
        pram.charge(rounds=1, processors=max(1, widths.size))
        if fan is not None:
            group_counts = fan.counts(sb.owner, sb.rcount)
            fan.charge(group_counts)
        if fan is not None:
            # fan charges land on disjoint per-owner ledgers, so issuing
            # them before the (possibly tiled) evaluation preserves every
            # sub-account's serial charge sequence exactly
            fan.charge(fan.counts(sb.owner, sb.rcount * sb.ccount))
        gv, gi = eval_grouped_min(
            pram,
            lambda lo, hi: arr.eval(rows_flat[lo:hi], cols_flat[lo:hi], checked=False),
            rows_flat.size,
            offsets,
        )
        if fan is not None:
            fan.grouped_min(widths, np.repeat(sb.owner, sb.rcount))
        got_cols = np.where(gi >= 0, cols_flat[np.maximum(gi, 0)], -1)
        # scatter back into the global output layout
        dest = _dest_positions(row_off, small, sb.rcount)
        vals[dest] = gv
        cols[dest] = got_cols
        pram.charge(rounds=1, processors=max(1, gv.size))
        if fan is not None:
            fan.charge(group_counts)

    if not big.any():
        return vals, cols

    bb = batch.select(big)
    nb = len(bb)
    # ---- phase (b): sampled rows ------------------------------------- #
    s = ceil_sqrt_array(bb.rcount)
    u = bb.rcount // s                      # number of sampled rows, >= 1
    v = -(-bb.ccount // u)                  # chunk width = ceil(ccount/u)
    nchunk = -(-bb.ccount // v)             # <= u chunks

    # children: for each subproblem, nchunk chunks of sampled rows
    ch_local, ch_owner, _ = _ragged(nchunk)
    child_b = _Batch(
        rs=bb.rs[ch_owner] + (s[ch_owner] - 1) * bb.rstride[ch_owner],
        rstride=bb.rstride[ch_owner] * s[ch_owner],
        rcount=u[ch_owner],
        cs=bb.cs[ch_owner] + ch_local * v[ch_owner],
        ccount=np.minimum(v[ch_owner], bb.ccount[ch_owner] - ch_local * v[ch_owner]),
        owner=None if bb.owner is None else bb.owner[ch_owner],
    )
    pram.charge(rounds=2, processors=max(1, len(child_b)))  # O(1) spawn/allocation
    if fan is not None:
        fan.charge(fan.counts(bb.owner, nchunk), rounds=2)
    with pram.obs_phase("sampled-rows"):
        vb, cb = _solve_batch(pram, arr, child_b, fan)
    child_rowoff = child_b.row_offsets()

    # combine: per (subproblem, sampled row), min over its chunk winners
    # candidates ordered (prob, row, chunk) — chunk order = column order,
    # so grouped_min's first-position tie-break is the leftmost column.
    cand_counts = np.repeat(nchunk, u)  # one group per sampled row
    cand_local_chunk, cand_group, cand_offsets = _ragged(cand_counts)
    # group index -> (prob, local sampled row)
    g_localrow, g_prob, _ = _ragged(u)
    # child index of (prob, chunk): child_start[prob] + chunk
    child_start = np.zeros(nb + 1, dtype=np.int64)
    np.cumsum(nchunk, out=child_start[1:])
    cand_child = child_start[:-1][g_prob[cand_group]] + cand_local_chunk
    cand_flat = child_rowoff[cand_child] + g_localrow[cand_group]
    pram.charge(rounds=2, processors=max(1, cand_flat.size))  # gather winners
    if fan is not None:
        fan.charge(fan.counts(bb.owner, u * nchunk), rounds=2)
    sv, si = grouped_min(pram, vb[cand_flat], cand_offsets)
    if fan is not None:
        fan.grouped_min(cand_counts, np.repeat(bb.owner, u))
    sampled_cols = np.where(si >= 0, cb[cand_flat[np.maximum(si, 0)]], -1)
    sampled_vals = sv

    # write sampled-row results into output
    big_rowoff_dest = row_off[:-1][big]
    dest_sampled = (
        np.repeat(big_rowoff_dest, u)
        + (g_localrow + 1) * s[g_prob] - 1
    )
    vals[dest_sampled] = sampled_vals
    cols[dest_sampled] = sampled_cols
    pram.charge(rounds=1, processors=max(1, dest_sampled.size))
    if fan is not None:
        fan.charge(fan.counts(bb.owner, u))

    # ---- phase (c): interior blocks ----------------------------------- #
    # Block k of a subproblem: local rows (k·s - s + 1 + s-1-boundary)…
    # Using sampled local rows S_k = (k+1)s - 1 (k = 0..u-1):
    #   block 0: rows [0, S_0-1], cols [cs, c_0]
    #   block k: rows [S_{k-1}+1, S_k - 1], cols [c_{k-1}, c_k]
    #   block u: rows [S_{u-1}+1, rcount-1], cols [c_{u-1}, cs+ccount-1]
    blk_counts = u + 1
    blk_local, blk_owner, _ = _ragged(blk_counts)
    s_o = s[blk_owner]
    u_o = u[blk_owner]
    r0 = np.where(blk_local == 0, 0, blk_local * s_o)          # S_{k-1}+1 = k·s
    r1 = np.where(blk_local == u_o, bb.rcount[blk_owner] - 1, (blk_local + 1) * s_o - 2)
    rows_in_block = np.maximum(0, r1 - r0 + 1)

    # column bounds from sampled minima (global col indices)
    grp_start = np.zeros(nb + 1, dtype=np.int64)
    np.cumsum(u, out=grp_start[1:])
    # previous sampled minima (or cs), next sampled minima (or cs+ccount-1)
    prev_idx = grp_start[:-1][blk_owner] + blk_local - 1
    next_idx = grp_start[:-1][blk_owner] + blk_local
    c_lo = np.where(
        blk_local == 0, bb.cs[blk_owner], _safe_take(sampled_cols, prev_idx)
    )
    c_hi = np.where(
        blk_local == u_o,
        bb.cs[blk_owner] + bb.ccount[blk_owner] - 1,
        _safe_take(sampled_cols, next_idx),
    )
    keep = rows_in_block > 0
    kept_qowner = None if bb.owner is None else bb.owner[blk_owner][keep]
    child_c = _Batch(
        rs=(bb.rs[blk_owner] + r0 * bb.rstride[blk_owner])[keep],
        rstride=bb.rstride[blk_owner][keep],
        rcount=rows_in_block[keep],
        cs=c_lo[keep],
        ccount=(c_hi - c_lo + 1)[keep],
        owner=kept_qowner,
    )
    pram.charge(rounds=2, processors=max(1, len(child_c)))  # telescoped allocation
    if fan is not None:
        fan.charge(fan.counts(kept_qowner), rounds=2)
    with pram.obs_phase("interior-blocks"):
        vc, cc = _solve_batch(pram, arr, child_c, fan)

    # scatter interior results back: destination rows are contiguous runs
    kept_owner = blk_owner[keep]
    kept_r0 = r0[keep]
    local_i, blk_of, _ = _ragged(rows_in_block[keep])
    dest_interior = row_off[:-1][big][kept_owner[blk_of]] + kept_r0[blk_of] + local_i
    vals[dest_interior] = vc
    cols[dest_interior] = cc
    pram.charge(rounds=1, processors=max(1, dest_interior.size))
    if fan is not None:
        fan.charge(fan.counts(kept_qowner, rows_in_block[keep]))
    return vals, cols


def _safe_take(a: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``a[idx]`` tolerating out-of-range entries that are masked later."""
    clipped = np.clip(idx, 0, max(0, a.size - 1))
    if a.size == 0:
        return np.zeros(idx.shape, dtype=a.dtype if hasattr(a, "dtype") else np.int64)
    return a[clipped]


def _dest_positions(row_off, mask, rcounts) -> np.ndarray:
    """Flat output positions of the rows of masked subproblems."""
    starts = row_off[:-1][mask]
    local, owner, _ = _ragged(rcounts)
    return starts[owner] + local


# --------------------------------------------------------------------- #
# fused multi-query sweep (engine solve_many fast path)
# --------------------------------------------------------------------- #
class _StackedArray(SearchArray):
    """``B`` same-shape arrays stacked along rows: global row
    ``q·m + r`` evaluates part ``q`` at local row ``r``.

    ``B = 1`` is legal (the stacked view degenerates to a pass-through
    over the single part — every owner run covers the whole batch), but
    callers that can detect it should prefer :func:`stack_arrays`,
    which skips the wrapper entirely.  Ragged widths are rejected here
    with the shapes spelled out, not discovered later as an
    out-of-bounds column evaluation inside the sweep.
    """

    def __init__(self, parts: List[SearchArray]) -> None:
        if not parts:
            raise ValueError("cannot stack zero arrays")
        shape = parts[0].shape
        ragged = [p.shape for p in parts if p.shape != shape]
        if ragged:
            raise ValueError(
                "stacked queries must share one shape; got "
                f"{shape} and {ragged[0]} (ragged widths cannot share a "
                "fused sweep — group same-shape queries instead)"
            )
        self.parts = list(parts)
        self.m = shape[0]
        super().__init__((self.m * len(parts), shape[1]))

    def _eval(self, rows, cols):
        owner = rows // self.m
        out = np.empty(rows.shape, dtype=np.float64)
        # split into runs of equal owner: evaluation sites visit parts
        # in batch order, so runs are whole per-part segments and the
        # slices below cost O(parts) python work, not O(parts)·masks
        bounds = np.concatenate(
            [[0], np.nonzero(np.diff(owner))[0] + 1, [rows.size]]
        )
        for k in range(bounds.size - 1):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if lo == hi:
                continue
            q = int(owner[lo])
            out[lo:hi] = self.parts[q].eval(
                rows[lo:hi] - q * self.m, cols[lo:hi], checked=False
            )
        return out


def _extremum_view(a: SearchArray, problem: str) -> SearchArray:
    """The Monge-minima view whose leftmost row minima solve ``problem``.

    Mirrors the per-query transforms of the serial implementations
    (row-flip negation for ``rowmax``, plain negation for
    ``rowmax_inverse``), applied lazily — no per-part copies.  Float
    negation is exact, so values stay bit-identical to the serial views.
    """
    if problem == "rowmin":
        return a
    m = a.shape[0]
    if problem == "rowmax":
        return ImplicitArray(
            lambda rows, cols, a=a, m=m: -a.eval(m - 1 - rows, cols, checked=False),
            a.shape,
        )
    if problem == "rowmax_inverse":
        return a.negate()
    raise ValueError(f"unknown batched problem {problem!r}")


def stack_arrays(parts) -> SearchArray:
    """Stack same-shape search arrays along rows, zero-copy.

    The result is a lazy row-stacked view (global row ``q·m + r`` is
    part ``q``'s local row ``r``): materializing ``B`` explicit parts
    into one contiguous matrix would cost a full batch-sized copy +
    re-validation, which dominates the fused sweep's wall-clock at
    large ``n``.  ``stack_arrays([x])`` is a documented **no-copy
    passthrough**: the single part is returned as-is (coerced through
    :func:`~repro.monge.arrays.as_search_array`), so single-query
    callers pay nothing for the uniform spelling.  Ragged shapes raise
    ``ValueError`` naming both shapes.
    """
    views = [as_search_array(p) for p in parts]
    if not views:
        raise ValueError("cannot stack zero arrays")
    if len(views) == 1:
        return views[0]
    return _StackedArray(views)


def _stack_same_shape(parts: List[SearchArray]) -> SearchArray:
    return stack_arrays(parts)


def batched_row_extrema(
    pram: Pram,
    arrays,
    problem: str = "rowmin",
    cache: bool = False,
    fan: Optional[ChargeFan] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """One fused ``sqrt``-recursion sweep over ``B`` same-shape queries.

    The queries become the ``B`` top-level subproblems of a single
    :func:`_solve_batch` call over the row-stacked array, each tagged
    with its owner index.  Values and witnesses are bit-identical to the
    ``B`` serial runs (subproblems never interact: grouped minima only
    combine candidates of one (subproblem, row) group), and the optional
    ``fan`` reproduces each query's serial ledger charges.  Returns one
    ``(values, witnesses)`` pair per query, in input order.
    """
    views = [_extremum_view(as_search_array(a), problem) for a in arrays]
    m, n = views[0].shape
    if any(v.shape != (m, n) for v in views):
        raise ValueError("batched queries must share one shape")
    if n == 0:
        raise ValueError("cannot take row minima of a zero-column array")
    B = len(views)
    if m == 0:
        return [(np.empty(0), np.empty(0, dtype=np.int64)) for _ in range(B)]
    stacked = _stack_same_shape(views)
    if cache:
        stacked = CachedArray(stacked)
    batch = _Batch(
        rs=np.arange(B, dtype=np.int64) * m,
        rstride=np.ones(B, dtype=np.int64),
        rcount=np.full(B, m, dtype=np.int64),
        cs=np.zeros(B, dtype=np.int64),
        ccount=np.full(B, n, dtype=np.int64),
        owner=np.arange(B, dtype=np.int64),
    )
    vals, cols = _solve_batch(pram, stacked, batch, fan=fan)
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for q in range(B):
        v = vals[q * m:(q + 1) * m]
        c = cols[q * m:(q + 1) * m]
        if problem == "rowmax":
            out.append((-v[::-1], c[::-1].copy()))
        elif problem == "rowmax_inverse":
            out.append((-v, c.copy()))
        else:
            out.append((v.copy(), c.copy()))
    return out


# --------------------------------------------------------------------- #
# halving strategy (ablation)
# --------------------------------------------------------------------- #
def _solve_halving(pram: Pram, arr: SearchArray):
    """Binary row-sampling: ``lg m`` levels, one grouped min per level.

    Level with stride ``2s`` solved → rows at stride ``s`` localize
    between their solved neighbors' minima; candidate totals telescope
    to ``O(n + m/s)`` per level.
    """
    m, n = arr.shape
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)

    solved = np.array([], dtype=np.int64)  # solved row indices, ascending
    stride = 1
    while stride * 2 < m:
        stride *= 2
    # rows at each level: stride s covers rows s-1, 2s-1, ... minus solved
    while stride >= 1:
        level_rows = np.arange(stride - 1, m, stride, dtype=np.int64)
        new_rows = level_rows[~np.isin(level_rows, solved)]
        if new_rows.size:
            # bounds from neighbors among solved rows
            pos = np.searchsorted(solved, new_rows)
            lo = np.where(pos > 0, cols[_safe_take(solved, pos - 1)], 0)
            hi = np.where(pos < solved.size, cols[_safe_take(solved, pos)], n - 1)
            widths = hi - lo + 1
            local, owner, offsets = _ragged(widths)
            rows_flat = new_rows[owner]
            cols_flat = lo[owner] + local
            pram.charge(rounds=2, processors=max(1, widths.size))  # allocation
            gv, gi = eval_grouped_min(
                pram,
                lambda lo, hi: arr.eval(
                    rows_flat[lo:hi], cols_flat[lo:hi], checked=False
                ),
                rows_flat.size,
                offsets,
            )
            vals[new_rows] = gv
            cols[new_rows] = np.where(gi >= 0, cols_flat[np.maximum(gi, 0)], -1)
            pram.charge(rounds=1, processors=max(1, new_rows.size))
            solved = np.sort(np.concatenate([solved, new_rows]))
        stride //= 2
    return vals, cols
