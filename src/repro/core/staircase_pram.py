"""Theorem 2.3: parallel row minima of staircase-Monge arrays.

Structure (following §2, adapted for batched level-synchronous
execution; ``s = ⌈√m⌉``):

1. **Sampled rows** (Fig. 2.1).  The ``u×n`` array of every ``s``-th
   row decomposes by its (nonincreasing) boundary values ``g_k`` into
   *full* Monge blocks ``M_j`` = sampled rows ``0..j`` × columns
   ``[g_{j+1}, g_j)``.  All blocks are solved by the Monge recursion of
   :mod:`repro.core.rowmin_pram` in one batched call; a grouped minimum
   over each sampled row's blocks (ordered right-to-left so the
   first-wins tie-break is the leftmost column) yields the exact minima
   ``c_k`` of the sampled rows over their full finite prefixes.

2. **Bracketing** (Fig. 2.2 / Lemma 2.2).  For the interior rows
   between sampled rows ``k-1`` and ``k``, their minima restricted to
   the all-finite column range ``[0, g_k)`` lie (by Monge monotonicity)
   in ``[L_k, c_k]`` where ``L_k = c_{j*}`` for ``j*`` the *nearest
   earlier sampled row whose minimum lies strictly left of* ``g_k`` —
   the paper's "closest north-west neighbor" bracketing, computed with
   the generalized ANSV descent
   (:func:`repro.pram.ansv.nearest_smaller_left_threshold`).

3. **Feasible Monge regions.**  The interior rows × ``[L_k, c_k]``
   rectangles are full Monge arrays — one more batched call into the
   Monge recursion.

4. **Feasible staircase regions.**  Each interior block's *overhang*
   (columns ``[g_k, g_{k-1})``, where the boundary varies inside the
   block) is a staircase-Monge array with ``≤ s`` rows; the algorithm
   recurses on all of them (plus the tail block below the last sampled
   row) in one batched call — the paper's "subdividing into ``s×s``
   pieces".

5. **Combine.**  An interior row's answer is the smaller of its Monge-
   region and overhang minima; on ties the Monge region wins (its
   columns lie strictly left).

Round recurrence: ``T(m) = O(T_monge) + O(lg u) + T(√m)``, i.e.
``O(lg n)`` CRCW rounds with the doubly-log grouped minima and
``O(lg n·lg lg n)`` CREW — Table 1.2's rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._util.bits import ceil_sqrt_array
from repro._util.ragged import ragged as _ragged
from repro.monge.arrays import CachedArray, SearchArray
from repro.monge.staircase_seq import effective_boundary
from repro.pram.ansv import nearest_smaller_left_threshold
from repro.pram.machine import Pram
from repro.kernels.api import eval_grouped_min
from repro.pram.primitives import grouped_min
from repro.core.rowmin_pram import _Batch, _solve_batch
from repro.resilience import degrade

__all__ = [
    "staircase_row_minima_pram",
    "staircase_row_minima_batch",
    "staircase_row_maxima_pram",
]


def staircase_row_maxima_pram(
    pram: Pram, array, cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Row maxima of a staircase-Monge array over its finite prefixes —
    §1.2's *easy* direction, parallel.

    Monge row-maxima positions are nonincreasing; flipping the row order
    makes them nondecreasing while the prefix windows ``[0, f_i)``
    become nondecreasing too — a co-monotone band, solved by the
    Table 1.1-class banded search (no Theorem 2.3 machinery needed,
    which is exactly the paper's point).  All-``∞`` rows give
    ``(-inf, -1)``.  ``strict=False`` degrades to a dense scan on
    non-staircase-Monge input.

    Thin wrapper over the engine registry (``("staircase_max", <backend
    of pram>)``); the algorithm body is :func:`_staircase_maxima_impl`.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(cache=cache, strict=strict)
    return dispatch_on(pram, "staircase_max", array, cfg)


def _staircase_maxima_impl(
    pram: Pram, array, cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`staircase_row_maxima_pram`."""
    from repro.core.banded import banded_row_maxima_pram
    from repro.monge.arrays import SearchArray as _SA, as_search_array as _asa

    if not strict:
        reason = degrade.staircase_reason(array)
        if reason is not None:
            degrade.warn_degraded("staircase_row_maxima_pram", reason, "dense row scan")
            return degrade.brute_rows(pram, _asa(array).materialize(), mode="max")
    arr, f = effective_boundary(array)
    m, n = arr.shape
    if m == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    if cache:
        arr = CachedArray(arr)

    class _RowFlip(_SA):
        def __init__(self):
            super().__init__((m, n))

        def _eval(self, rows, cols):
            return arr.eval(m - 1 - rows, cols, checked=False)

    lo = np.zeros(m, dtype=np.int64)
    hi = f[::-1].copy()  # nondecreasing after the flip
    vals, cols = banded_row_maxima_pram(pram, _RowFlip(), lo, hi)
    return vals[::-1].copy(), cols[::-1].copy()

_SMALL_ROWS = 4


@dataclass
class _StairBatch:
    """Staircase subproblems: contiguous rows × contiguous columns.

    Subproblem ``i`` covers global rows ``[rs[i], rs[i]+rcount[i])`` and
    global columns ``[cs[i], cs[i]+ccount[i])``; each row's finite part
    within the range is ``[cs, min(f[row], cs+ccount))``.
    """

    rs: np.ndarray
    rcount: np.ndarray
    cs: np.ndarray
    ccount: np.ndarray

    def __len__(self) -> int:
        return self.rs.size

    def row_offsets(self) -> np.ndarray:
        out = np.zeros(len(self) + 1, dtype=np.int64)
        np.cumsum(self.rcount, out=out[1:])
        return out

    def select(self, mask):
        return _StairBatch(self.rs[mask], self.rcount[mask], self.cs[mask], self.ccount[mask])


def staircase_row_minima_pram(
    pram: Pram, array, cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row minima of a staircase-Monge array, parallel.

    Rows whose finite prefix is empty report ``(inf, -1)``.
    Returns ``(values, columns)``.  ``cache=True`` memoizes entry
    evaluations across recursion levels (wall-clock only; results and
    ledger charges are unchanged).

    ``strict=False`` verifies the staircase-Monge precondition first
    and degrades to a charged dense fallback — with a
    :class:`~repro.resilience.degrade.DegradedResultWarning` — when the
    ``∞`` pattern is not staircase-shaped or the finite part is not
    Monge, instead of raising/misbehaving.

    Thin wrapper over the engine registry (``("staircase_min", <backend
    of pram>)``); the algorithm body is :func:`_staircase_minima_impl`.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(cache=cache, strict=strict)
    return dispatch_on(pram, "staircase_min", array, cfg)


def _staircase_minima_impl(
    pram: Pram, array, cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`staircase_row_minima_pram`."""
    if not strict:
        reason = degrade.staircase_reason(array)
        if reason is not None:
            from repro.monge.arrays import as_search_array as _asa

            degrade.warn_degraded("staircase_row_minima_pram", reason, "dense row scan")
            return degrade.brute_rows(pram, _asa(array).materialize(), mode="min")
    arr, f = effective_boundary(array)
    m, n = arr.shape
    if m == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    if cache:
        arr = CachedArray(arr)
    batch = _StairBatch(
        rs=np.array([0], dtype=np.int64),
        rcount=np.array([m], dtype=np.int64),
        cs=np.array([0], dtype=np.int64),
        ccount=np.array([n], dtype=np.int64),
    )
    return _stair_solve(pram, arr, f.astype(np.int64), batch)


def staircase_row_minima_batch(
    pram: Pram,
    arr: SearchArray,
    f: np.ndarray,
    rs: np.ndarray,
    rcount: np.ndarray,
    cs: np.ndarray,
    ccount: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve several staircase subproblems of one implicit array at once.

    Subproblem ``i`` covers global rows ``[rs[i], rs[i]+rcount[i])`` and
    columns ``[cs[i], cs[i]+ccount[i])``; ``f`` is the global boundary
    (first infinite column per global row).  All subproblems execute
    level-synchronously — sibling instances share rounds, which is how
    the applications run their per-case staircase searches concurrently.
    Results are flat in batch-row order.
    """
    batch = _StairBatch(
        rs=np.asarray(rs, dtype=np.int64),
        rcount=np.asarray(rcount, dtype=np.int64),
        cs=np.asarray(cs, dtype=np.int64),
        ccount=np.asarray(ccount, dtype=np.int64),
    )
    return _stair_solve(pram, arr, np.asarray(f, dtype=np.int64), batch)


def _effective_widths(f, batch: _StairBatch, rows_global, owner):
    """Finite width of each row inside its subproblem's column range."""
    hi = np.minimum(f[rows_global], batch.cs[owner] + batch.ccount[owner])
    return np.maximum(0, hi - batch.cs[owner])


def _stair_solve(pram: Pram, arr: SearchArray, f: np.ndarray, batch: _StairBatch):
    B = len(batch)
    total_rows = int(batch.rcount.sum())
    vals = np.full(total_rows, np.inf)
    cols = np.full(total_rows, -1, dtype=np.int64)
    if B == 0 or total_rows == 0:
        return vals, cols
    row_off = batch.row_offsets()

    small = batch.rcount <= _SMALL_ROWS
    big = ~small

    # ---- base case: brute grouped minimum over finite prefixes -------- #
    if small.any():
        sb = batch.select(small)
        lr, owner, _ = _ragged(sb.rcount)
        rows_g = sb.rs[owner] + lr
        widths = _effective_widths(f, sb, rows_g, owner)
        local_col, rowgrp, offsets = _ragged(widths)
        rows_flat = np.repeat(rows_g, widths)
        cols_flat = sb.cs[owner][rowgrp] + local_col
        pram.charge(rounds=2, processors=max(1, widths.size))
        if cols_flat.size:
            gv, gi = eval_grouped_min(
                pram,
                lambda lo, hi: arr.eval(
                    rows_flat[lo:hi], cols_flat[lo:hi], checked=False
                ),
                cols_flat.size,
                offsets,
            )
        else:
            gv = np.full(widths.size, np.inf)
            gi = np.full(widths.size, -1, dtype=np.int64)
        dest = np.repeat(row_off[:-1][small], sb.rcount) + lr
        vals[dest] = gv
        if cols_flat.size:
            cols[dest] = np.where(gi >= 0, cols_flat[np.maximum(gi, 0)], -1)
        else:
            cols[dest] = -1
        pram.charge(rounds=1, processors=max(1, dest.size))

    if not big.any():
        return vals, cols

    bb = batch.select(big)
    nb = len(bb)
    s = ceil_sqrt_array(bb.rcount)
    u = bb.rcount // s  # sampled rows per subproblem (>= 1)

    # sampled global rows: S_k = rs + (k+1)s - 1
    samp_local_k, samp_owner, samp_off = _ragged(u)
    samp_rows_g = bb.rs[samp_owner] + (samp_local_k + 1) * s[samp_owner] - 1
    # sampled effective boundaries g_k (column counts within range)
    g = _effective_widths(f, bb, samp_rows_g, samp_owner)  # nonincreasing per owner

    # ---- phase 1: Fig. 2.1 Monge blocks over the sampled array -------- #
    # block j of a subproblem: sampled rows 0..j × columns [g_{j+1}, g_j)
    g_next = np.where(
        samp_local_k + 1 < u[samp_owner],
        _shift_within(g, samp_off, -1),
        0,
    )
    blk_width = g - g_next
    blk_keep = blk_width > 0
    mb = _Batch(
        rs=(bb.rs[samp_owner] + s[samp_owner] - 1)[blk_keep],
        rstride=s[samp_owner][blk_keep],
        rcount=(samp_local_k + 1)[blk_keep],
        cs=(bb.cs[samp_owner] + g_next)[blk_keep],
        ccount=blk_width[blk_keep],
    )
    pram.charge(rounds=2, processors=max(1, len(mb)))
    with pram.obs_phase("sampled-blocks"):
        bvals, bcols = _solve_batch(pram, arr, mb)
    mb_rowoff = mb.row_offsets()

    # combine: sampled row k gathers winners of its blocks j >= k,
    # ordered j descending (leftmost column ranges first).
    kept_idx = np.nonzero(blk_keep)[0]                  # flat sampled index of each block
    kept_j = samp_local_k[blk_keep]                     # block's j within its subproblem
    kept_owner = samp_owner[blk_keep]
    # per sampled row k: number of kept blocks with j >= k in same owner
    # build candidate list: iterate blocks; each block j contributes to rows 0..j
    contrib_counts = kept_j + 1                         # block j covers rows 0..j
    c_local, c_blk, _ = _ragged(contrib_counts)         # c_local = row index k within block
    cand_owner = kept_owner[c_blk]
    cand_k = c_local                                    # sampled row index k (0..j)
    cand_val = bvals[mb_rowoff[c_blk] + cand_k]
    cand_col = bcols[mb_rowoff[c_blk] + cand_k]
    # group by (owner, k), candidates ordered by j DESC within the group
    grp_id = samp_off[:-1][cand_owner] + cand_k
    order = np.lexsort((-kept_j[c_blk], grp_id))
    cand_val = cand_val[order]
    cand_col = cand_col[order]
    grp_sorted = grp_id[order]
    counts = np.bincount(grp_id, minlength=int(u.sum()))
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    pram.charge(rounds=3, processors=max(1, cand_val.size))  # gather + route
    sv, si = grouped_min(pram, cand_val, offsets)
    c_pos = _pick(cand_col, si)  # global col of c_k
    # write sampled rows' results
    dest_samp = np.repeat(row_off[:-1][big], u) + (samp_local_k + 1) * s[samp_owner] - 1
    vals[dest_samp] = sv
    cols[dest_samp] = c_pos
    pram.charge(rounds=1, processors=max(1, dest_samp.size))

    # ---- phase 2: bracketing via generalized ANSV --------------------- #
    # For interior block k (rows between sampled k-1 and k): find the
    # nearest earlier sampled row j < k with c_j < cs + g_k.
    # Work per subproblem on the sequence of c positions; -1 (all-inf
    # sampled row) is encoded +inf so it never brackets.
    c_seq = np.where(c_pos >= 0, c_pos.astype(np.float64), np.inf)
    thresholds = (bb.cs[samp_owner] + g).astype(np.float64)
    # queries are per sampled row k (block above it); positions within the
    # global flat sampled sequence, but brackets must not cross subproblem
    # boundaries: offset thresholds trick — run ANSV per flat sequence and
    # clamp: use sentinel by making positions start at samp_off[owner].
    brk = nearest_smaller_left_threshold(
        pram, c_seq, thresholds, np.arange(c_seq.size, dtype=np.int64)
    )
    # discard brackets that fall into a previous subproblem
    brk = np.where(brk >= samp_off[:-1][samp_owner], brk, -1)
    L = np.where(brk >= 0, c_seq[np.maximum(brk, 0)], bb.cs[samp_owner]).astype(np.int64)
    pram.charge(rounds=1, processors=max(1, brk.size))

    # ---- phase 3: feasible Monge regions (interior rows × [L, c_k]) --- #
    blk_r0 = samp_local_k * s[samp_owner]                    # first interior row (local)
    blk_rows = s[samp_owner] - 1                             # interior rows per block
    has_monge = (blk_rows > 0) & (c_pos >= 0)
    mgb = _Batch(
        rs=(bb.rs[samp_owner] + blk_r0)[has_monge],
        rstride=np.ones(int(has_monge.sum()), dtype=np.int64),
        rcount=blk_rows[has_monge],
        cs=L[has_monge],
        ccount=(c_pos - L + 1)[has_monge],
    )
    pram.charge(rounds=2, processors=max(1, len(mgb)))
    with pram.obs_phase("interior-monge"):
        mg_vals, mg_cols = _solve_batch(pram, arr, mgb)
    mg_rowoff = mgb.row_offsets()

    # ---- phase 4: overhang + tail staircase recursions ----------------- #
    # overhang of block k: interior rows × columns [cs+g_k, cs+g_{k-1})
    g_prev = np.where(samp_local_k > 0, _shift_within(g, samp_off, +1), bb.ccount[samp_owner])
    over_w = np.maximum(0, g_prev - g)
    has_over = (blk_rows > 0) & (over_w > 0)
    # tail block: rows below the last sampled row, full remaining range,
    # lower-bounded by the bracket of threshold g_tail (weakest row bound)
    tail_r0 = u * s  # local index of first tail row
    tail_rows = bb.rcount - tail_r0
    has_tail = tail_rows > 0
    # tail bracket: nearest sampled j with c_j < cs + (effective f of last row)
    last_rows_g = bb.rs + bb.rcount - 1
    tail_thr = (bb.cs + _effective_widths(f, bb, last_rows_g, np.arange(nb))).astype(np.float64)
    tail_pos = samp_off[1:].astype(np.int64)  # query after each owner's last sampled row
    tail_brk = nearest_smaller_left_threshold(pram, c_seq, tail_thr, tail_pos)
    tail_brk = np.where(tail_brk >= samp_off[:-1], tail_brk, -1)
    tail_L = np.where(tail_brk >= 0, c_seq[np.maximum(tail_brk, 0)], bb.cs).astype(np.int64)

    st_rs = np.concatenate([
        (bb.rs[samp_owner] + blk_r0)[has_over],
        (bb.rs + tail_r0)[has_tail],
    ])
    st_rcount = np.concatenate([blk_rows[has_over], tail_rows[has_tail]])
    st_cs = np.concatenate([
        (bb.cs[samp_owner] + g)[has_over],
        tail_L[has_tail],
    ])
    st_ccount = np.concatenate([
        over_w[has_over],
        (bb.cs + bb.ccount - tail_L)[has_tail],
    ])
    stb = _StairBatch(st_rs, st_rcount, st_cs, st_ccount)
    pram.charge(rounds=2, processors=max(1, len(stb)))
    with pram.obs_phase("stair-recursion"):
        st_vals, st_cols = _stair_solve(pram, arr, f, stb)
    st_rowoff = stb.row_offsets()

    # ---- phase 5: combine interior rows -------------------------------- #
    # Monge-region results
    if len(mgb):
        kept = np.nonzero(has_monge)[0]
        li, bo, _ = _ragged(mgb.rcount)
        dest = (
            np.repeat(row_off[:-1][big][samp_owner[kept]], mgb.rcount)
            + np.repeat(blk_r0[kept], mgb.rcount)
            + li
        )
        _combine_min(vals, cols, dest, mg_vals, mg_cols)
        pram.charge(rounds=1, processors=max(1, dest.size))
    # staircase (overhang + tail) results
    if len(stb):
        over_idx = np.nonzero(has_over)[0]
        tail_idx = np.nonzero(has_tail)[0]
        owner_rows_start = np.concatenate([
            np.repeat(row_off[:-1][big][samp_owner[over_idx]], blk_rows[over_idx])
            + np.repeat(blk_r0[over_idx], blk_rows[over_idx]),
            np.repeat(row_off[:-1][big][tail_idx], tail_rows[tail_idx])
            + np.repeat(tail_r0[tail_idx], tail_rows[tail_idx]),
        ])
        li2, _, _ = _ragged(st_rcount)
        dest2 = owner_rows_start + li2
        _combine_min(vals, cols, dest2, st_vals, st_cols)
        pram.charge(rounds=1, processors=max(1, dest2.size))
    return vals, cols


def _pick(src: np.ndarray, gi: np.ndarray) -> np.ndarray:
    """``src[gi]`` with ``-1`` passthrough and empty-source tolerance."""
    if src.size == 0:
        return np.full(gi.shape, -1, dtype=np.int64)
    return np.where(gi >= 0, src[np.maximum(gi, 0)], -1)


def _shift_within(x: np.ndarray, offsets: np.ndarray, direction: int) -> np.ndarray:
    """Shift ``x`` by one within each segment delimited by ``offsets``.

    ``direction=-1`` brings the *next* element (segment-final gets 0),
    ``+1`` brings the *previous* (segment-initial gets 0).  Values
    outside segments are masked by callers.
    """
    out = np.zeros_like(x)
    if direction < 0:
        out[:-1] = x[1:]
    else:
        out[1:] = x[:-1]
    return out


def _combine_min(vals, cols, dest, new_vals, new_cols):
    """Keep the smaller value; ties prefer the smaller column (leftmost)."""
    cur_v = vals[dest]
    cur_c = cols[dest]
    nc = np.where(new_cols >= 0, new_cols, np.iinfo(np.int64).max)
    cc = np.where(cur_c >= 0, cur_c, np.iinfo(np.int64).max)
    take = (new_vals < cur_v) | ((new_vals == cur_v) & (nc < cc))
    vals[dest] = np.where(take, new_vals, cur_v)
    cols[dest] = np.where(take, new_cols, cur_c)
