"""Parallel-composition accounting helpers (moved to :mod:`repro.engine`).

Algorithms that spawn *independent* subcomputations (D&C branches,
sibling products) should pay the round cost of the slowest branch, not
the sum — Brent-style composition.  :func:`fresh_clone` builds a
machine of the same configuration with a private ledger;
:func:`charge_parallel` folds a set of sibling ledgers back into the
parent as ``rounds = max``, ``work = sum``, ``processors = sum of
peaks`` (they run concurrently).

The implementations now live in :mod:`repro.engine.machines`, next to
the engine's machine builders; this module is a deprecated shim that
re-exports them (with a :class:`DeprecationWarning`) so existing import
sites keep working for one more release.
"""

from __future__ import annotations

import warnings

from repro.engine.machines import charge_parallel, fresh_clone

warnings.warn(
    "repro.core.accounting is deprecated: import fresh_clone and "
    "charge_parallel from repro.engine.machines (or repro.engine), and "
    "CostLedger from repro.pram.ledger",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["fresh_clone", "charge_parallel"]
