"""Parallel-composition accounting helpers (moved to :mod:`repro.engine`).

Algorithms that spawn *independent* subcomputations (D&C branches,
sibling products) should pay the round cost of the slowest branch, not
the sum — Brent-style composition.  :func:`fresh_clone` builds a
machine of the same configuration with a private ledger;
:func:`charge_parallel` folds a set of sibling ledgers back into the
parent as ``rounds = max``, ``work = sum``, ``processors = sum of
peaks`` (they run concurrently).

The implementations now live in :mod:`repro.engine.machines`, next to
the engine's machine builders; this module is a deprecated shim that
re-exports them (with a :class:`DeprecationWarning`) so existing import
sites keep working for one more release.
"""

from __future__ import annotations

import warnings

from repro.engine import machines as _machines
from repro.engine.machines import charge_parallel, fresh_clone

# Warn once per process, not once per import: the flag lives on the
# (stable) target module, so a reload of this shim — e.g. a test popping
# it from sys.modules — does not re-fire the warning.
if not getattr(_machines, "_accounting_shim_warned", False):
    _machines._accounting_shim_warned = True
    warnings.warn(
        "repro.core.accounting is deprecated: import fresh_clone and "
        "charge_parallel from repro.engine.machines (or repro.engine), and "
        "CostLedger from repro.pram.ledger",
        DeprecationWarning,
        stacklevel=2,
    )

__all__ = ["fresh_clone", "charge_parallel"]
