"""Parallel-composition accounting helpers (moved to :mod:`repro.engine`).

Algorithms that spawn *independent* subcomputations (D&C branches,
sibling products) should pay the round cost of the slowest branch, not
the sum — Brent-style composition.  :func:`fresh_clone` builds a
machine of the same configuration with a private ledger;
:func:`charge_parallel` folds a set of sibling ledgers back into the
parent as ``rounds = max``, ``work = sum``, ``processors = sum of
peaks`` (they run concurrently).

The implementations now live in :mod:`repro.engine.machines`, next to
the engine's machine builders; this module is a deprecated shim.  Each
re-exported symbol is resolved lazily (PEP 562) and warns — once per
symbol per process — with a :class:`DeprecationWarning` naming its
concrete replacement (``repro.engine.machines.fresh_clone`` /
``repro.engine.machines.charge_parallel``), so a caller that only uses
one of them is pointed at exactly the import to write.
"""

from __future__ import annotations

import warnings

from repro.engine import machines as _machines

__all__ = ["fresh_clone", "charge_parallel"]

#: Shim symbol → the fully qualified replacement the warning names.
_REPLACEMENTS = {
    "fresh_clone": "repro.engine.machines.fresh_clone",
    "charge_parallel": "repro.engine.machines.charge_parallel",
}


def _warned_symbols() -> set:
    """The per-process warn-once record, stored on the (stable) target
    module so a reload of this shim — e.g. a test popping it from
    ``sys.modules``, or the engine lifecycle modules re-importing — does
    not re-fire warnings."""
    warned = getattr(_machines, "_accounting_shim_warned", None)
    if not isinstance(warned, set):
        # bool values are the pre-per-symbol latch: True means "already
        # warned for everything", False/absent means a clean slate.
        warned = set(_REPLACEMENTS) if warned is True else set()
        _machines._accounting_shim_warned = warned
    return warned


def __getattr__(name: str):
    replacement = _REPLACEMENTS.get(name)
    if replacement is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}; this shim "
            f"re-exports only {list(_REPLACEMENTS)}"
        )
    warned = _warned_symbols()
    if name not in warned:
        warned.add(name)
        warnings.warn(
            f"repro.core.accounting.{name} is deprecated: use "
            f"{replacement} (also re-exported by repro.engine)",
            DeprecationWarning,
            stacklevel=2,
        )
    return getattr(_machines, name)


def __dir__():
    return sorted(set(globals()) | set(_REPLACEMENTS))
