"""Parallel-composition accounting helpers.

Algorithms that spawn *independent* subcomputations (D&C branches,
sibling products) should pay the round cost of the slowest branch, not
the sum — Brent-style composition.  :func:`fresh_clone` builds a
machine of the same configuration with a private ledger;
:func:`charge_parallel` folds a set of sibling ledgers back into the
parent as ``rounds = max``, ``work = sum``, ``processors = sum of
peaks`` (they run concurrently).
"""

from __future__ import annotations

from typing import Iterable

from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram

__all__ = ["fresh_clone", "charge_parallel"]


def fresh_clone(machine: Pram) -> Pram:
    """A same-configuration machine with an independent ledger."""
    from repro.core.network_machine import NetworkMachine
    from repro.pram.scheduling import BrentPram

    if isinstance(machine, NetworkMachine):
        net = type(machine.network)(machine.network.dim, ledger=CostLedger())
        return NetworkMachine(net)
    if isinstance(machine, BrentPram):
        return BrentPram(
            machine.model,
            machine.processors,
            machine.physical_processors,
            ledger=CostLedger(),
        )
    return Pram(machine.model, machine.processors, ledger=CostLedger())


def charge_parallel(machine: Pram, ledgers: Iterable[CostLedger]) -> None:
    """Fold sibling ledgers into ``machine`` as one concurrent phase."""
    rounds = 0
    work = 0
    peak = 0
    for led in ledgers:
        rounds = max(rounds, led.rounds)
        work += led.work
        peak += led.peak_processors
    if rounds:
        machine.ledger.charge(rounds=rounds, processors=max(1, peak), work=work)
