"""Parallel tube searching in Monge-composite arrays (Table 1.3).

For ``c[i,j,k] = d[i,j] + e[j,k]`` with Monge factors, compute
``f[i,k] = min_j c[i,j,k]`` (and the max variant) with witnesses.

Monotonicity (both tested):  the leftmost witness ``j*(i,k)`` is
nondecreasing in ``i`` for fixed ``k`` and nondecreasing in ``k`` for
fixed ``i`` — the ``(i,j)`` slab and the ``(k,j)`` slab are both Monge.

Two schemes:

``crew`` — the halving scheme of [AP89a, AALM88]
    Solve output rows of stride ``2s``, then rows of stride ``s``: cell
    ``(i,k)`` searches ``j ∈ [j*(i-s,k), j*(i+s,k)]``.  Per level the
    candidate total telescopes to ``O(r(q + p/s))``; ``lg p`` levels.
    With the CREW binary grouped minimum each level costs the log of the
    level's widest group — ``Θ(lg n)``-shaped rounds on an ``n²``-class
    processor budget (Table 1.3 row 2; the paper reaches ``n²/lg n``
    processors via Brent, which :class:`~repro.pram.scheduling.BrentPram`
    reproduces).

``crcw`` — the doubly-logarithmic scheme of [Ata89]
    Sample every ``√p``-th output row and ``√r``-th output column;
    recursively solve the sampled ``√p×√r`` grid; then interpolate in
    two 1-D passes (all rows at sampled columns, then all columns), each
    a constant number of doubly-log grouped minima.  Rounds follow
    ``T(n) = T(√n) + O(lg lg n)`` — ``Θ(lg lg n)``-shaped on CRCW
    (Table 1.3 row 1).

Ties break to the smallest ``j`` (the paper's minimum-third-coordinate
rule); the max variant is the flip/negate reduction documented in
:func:`tube_maxima_pram`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util.bits import ceil_sqrt
from repro._util.ragged import ragged as _ragged
from repro._util.validation import as_float_tensor
from repro.monge.arrays import CachedArray, MongeComposite, SearchArray
from repro.pram.machine import Pram
from repro.kernels.api import eval_grouped_min
from repro.resilience import degrade

__all__ = ["tube_minima_pram", "tube_maxima_pram"]


def _as_composite(c) -> MongeComposite:
    if isinstance(c, MongeComposite):
        return c
    if isinstance(c, tuple) and len(c) == 2:
        return MongeComposite(*c)
    raise TypeError("expected a MongeComposite or a (D, E) pair")


def _degraded_tube(pram: Pram, c: MongeComposite, problem: str, mode: str):
    """Dense-cube fallback for composites with untrusted factors."""
    cube = as_float_tensor(
        c.D.materialize()[:, :, None] + c.E.materialize()[None, :, :],
        "composite cube",
    )
    return degrade.brute_tube(pram, cube, mode=mode)


def tube_minima_pram(
    pram: Pram, composite, scheme: str = "auto", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Tube (product) minima with witnesses: ``(values, j_args)``,
    both of shape ``(p, r)``.

    ``scheme``: ``"crew"`` (halving), ``"crcw"`` (doubly-log sampling),
    or ``"auto"`` (pick by machine model).  ``cache=True`` memoizes
    the ``D`` and ``E`` factor evaluations (wall-clock only).

    ``strict=False`` verifies that both factors are Monge (dense scans)
    and degrades to a charged dense-cube fallback — with a
    :class:`~repro.resilience.degrade.DegradedResultWarning` — when
    they are not.

    Thin wrapper over the engine registry (``("tube_min", <backend of
    pram>)``); the algorithm body is :func:`_tube_minima_impl`.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(strategy=scheme, cache=cache, strict=strict)
    return dispatch_on(pram, "tube_min", composite, cfg)


def tube_maxima_pram(
    pram: Pram, composite, scheme: str = "auto", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Tube maxima with smallest-``j`` witnesses.

    Reduction: flipping ``D``'s rows and ``E``'s columns and negating
    both factors yields Monge factors again; minima of the transformed
    composite at ``(p-1-i, r-1-k)`` are the negated maxima at ``(i,k)``,
    with identical ``j`` order (so leftmost ties are preserved).
    ``strict=False`` degrades to a dense cube scan when a factor is
    not Monge.
    """
    from repro.engine import ExecutionConfig, dispatch_on

    cfg = ExecutionConfig(strategy=scheme, cache=cache, strict=strict)
    return dispatch_on(pram, "tube_max", composite, cfg)


def _tube_minima_impl(
    pram: Pram, composite, scheme: str = "auto", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`tube_minima_pram`."""
    c = _as_composite(composite)
    if not strict:
        reason = degrade.composite_reason(c)
        if reason is not None:
            degrade.warn_degraded("tube_minima_pram", reason, "dense cube scan")
            return _degraded_tube(pram, c, "tube_minima_pram", "min")
    if cache:
        c = MongeComposite(CachedArray(c.D), CachedArray(c.E))
    if scheme == "auto":
        scheme = "crcw" if pram.model.is_crcw else "crew"
    if scheme == "crew":
        return _tube_min_halving(pram, c)
    if scheme == "crcw":
        pram.require_crcw("tube_minima_pram(scheme='crcw')")
        return _tube_min_sampling(pram, c)
    raise ValueError(f"unknown scheme {scheme!r}")


def _tube_maxima_impl(
    pram: Pram, composite, scheme: str = "auto", cache: bool = False, strict: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm body behind :func:`tube_maxima_pram`."""
    c = _as_composite(composite)
    if not strict:
        reason = degrade.composite_reason(c)
        if reason is not None:
            degrade.warn_degraded("tube_maxima_pram", reason, "dense cube scan")
            return _degraded_tube(pram, c, "tube_maxima_pram", "max")
    p, q, r = c.shape
    D, E = c.D, c.E

    class _FlipD(SearchArray):
        def __init__(self):
            super().__init__((p, q))

        def _eval(self, rows, cols):
            return -D.eval(p - 1 - rows, cols, checked=False)

    class _FlipE(SearchArray):
        def __init__(self):
            super().__init__((q, r))

        def _eval(self, rows, cols):
            return -E.eval(rows, r - 1 - cols, checked=False)

    vals, args = _tube_minima_impl(
        pram, MongeComposite(_FlipD(), _FlipE()), scheme=scheme, cache=cache
    )
    return -vals[::-1, ::-1], args[::-1, ::-1].copy()


# --------------------------------------------------------------------- #
def _fill_rows(pram, c, rows, lo, hi, J, V):
    """Grouped minima for output cells (rows × their [lo, hi] j-ranges).

    ``rows``: (cell_i, cell_k) index arrays; ``lo``/``hi``: per-cell
    witness bounds (inclusive).  Writes into ``J``/``V``.
    """
    cell_i, cell_k = rows
    hi = np.maximum(hi, lo)  # defensive: eps-tied witnesses can cross
    widths = hi - lo + 1
    if widths.size == 0:
        return
    local, owner, offsets = _ragged(widths)
    jj = lo[owner] + local
    ii = cell_i[owner]
    kk = cell_k[owner]
    pram.charge(rounds=2, processors=max(1, widths.size))  # telescoped allocation
    gv, gi = eval_grouped_min(
        pram,
        lambda lo_, hi_: c.D.eval(ii[lo_:hi_], jj[lo_:hi_], checked=False)
        + c.E.eval(jj[lo_:hi_], kk[lo_:hi_], checked=False),
        jj.size,
        offsets,
    )
    J[cell_i, cell_k] = np.where(gi >= 0, jj[np.maximum(gi, 0)], -1)
    V[cell_i, cell_k] = gv
    pram.charge(rounds=1, processors=max(1, cell_i.size))


def _tube_min_halving(pram: Pram, c: MongeComposite):
    """[AP89a, AALM88]: halving over output rows, all columns at once."""
    p, q, r = c.shape
    J = np.full((p, r), -1, dtype=np.int64)
    V = np.full((p, r), np.inf)
    if p == 0 or r == 0:
        return V, J
    kk = np.arange(r, dtype=np.int64)

    solved = np.array([], dtype=np.int64)
    stride = 1
    while stride * 2 < p:
        stride *= 2
    while stride >= 1:
        level_rows = np.arange(stride - 1, p, stride, dtype=np.int64)
        new_rows = level_rows[~np.isin(level_rows, solved)]
        if new_rows.size:
            pos = np.searchsorted(solved, new_rows)
            if solved.size:
                above = np.where(pos > 0, solved[np.maximum(pos - 1, 0)], -1)
                below = np.where(
                    pos < solved.size, solved[np.minimum(pos, solved.size - 1)], -1
                )
            else:
                above = np.full(new_rows.size, -1, dtype=np.int64)
                below = np.full(new_rows.size, -1, dtype=np.int64)
            # per-(row, k) bounds from neighbors
            cell_i = np.repeat(new_rows, r)
            cell_k = np.tile(kk, new_rows.size)
            lo = np.where(
                np.repeat(above, r) >= 0, J[np.repeat(np.maximum(above, 0), r), cell_k], 0
            )
            hi = np.where(
                np.repeat(below, r) >= 0,
                J[np.repeat(np.maximum(below, 0), r), cell_k],
                q - 1,
            )
            _fill_rows(pram, c, (cell_i, cell_k), lo, hi, J, V)
            solved = np.sort(np.concatenate([solved, new_rows]))
        stride //= 2
    return V, J


def _tube_min_sampling(pram: Pram, c: MongeComposite):
    """[Ata89]: 2-D sampled recursion + two 1-D interpolation passes."""
    p, q, r = c.shape
    J = np.full((p, r), -1, dtype=np.int64)
    V = np.full((p, r), np.inf)
    if p == 0 or r == 0:
        return V, J
    _sampling_solve(pram, c, np.arange(p, dtype=np.int64), np.arange(r, dtype=np.int64), J, V)
    return V, J


def _sampling_solve(pram, c, rows, ks, J, V):
    """Solve output cells ``rows × ks`` (index subsets), writing J/V."""
    p, q, r = c.shape
    nr, nk = rows.size, ks.size
    if nr * nk <= 16:
        cell_i = np.repeat(rows, nk)
        cell_k = np.tile(ks, nr)
        lo = np.zeros(cell_i.size, dtype=np.int64)
        hi = np.full(cell_i.size, q - 1, dtype=np.int64)
        _fill_rows(pram, c, (cell_i, cell_k), lo, hi, J, V)
        return
    sr = ceil_sqrt(nr)
    sk = ceil_sqrt(nk)
    samp_rows = rows[sr - 1 :: sr]
    samp_ks = ks[sk - 1 :: sk]
    if samp_rows.size == 0:
        samp_rows = rows[-1:]
    if samp_ks.size == 0:
        samp_ks = ks[-1:]
    with pram.obs_phase("sampled-grid"):
        _sampling_solve(pram, c, samp_rows, samp_ks, J, V)

    # ---- pass A: every row at the sampled columns (monotone in i) ----- #
    interp_rows = rows[~np.isin(rows, samp_rows)]
    if interp_rows.size and samp_ks.size:
        pos = np.searchsorted(samp_rows, interp_rows)
        above = np.where(pos > 0, samp_rows[np.maximum(pos - 1, 0)], -1)
        below = np.where(pos < samp_rows.size, samp_rows[np.minimum(pos, samp_rows.size - 1)], -1)
        cell_i = np.repeat(interp_rows, samp_ks.size)
        cell_k = np.tile(samp_ks, interp_rows.size)
        a = np.repeat(above, samp_ks.size)
        b = np.repeat(below, samp_ks.size)
        lo = np.where(a >= 0, J[np.maximum(a, 0), cell_k], 0)
        hi = np.where(b >= 0, J[np.maximum(b, 0), cell_k], q - 1)
        with pram.obs_phase("interp-rows"):
            _fill_rows(pram, c, (cell_i, cell_k), lo, hi, J, V)

    # ---- pass B: every row, remaining columns (monotone in k) --------- #
    interp_ks = ks[~np.isin(ks, samp_ks)]
    if interp_ks.size:
        pos = np.searchsorted(samp_ks, interp_ks)
        left = np.where(pos > 0, samp_ks[np.maximum(pos - 1, 0)], -1)
        right = np.where(pos < samp_ks.size, samp_ks[np.minimum(pos, samp_ks.size - 1)], -1)
        cell_i = np.repeat(rows, interp_ks.size)
        cell_k = np.tile(interp_ks, rows.size)
        lf = np.tile(left, rows.size)
        rt = np.tile(right, rows.size)
        lo = np.where(lf >= 0, J[cell_i, np.maximum(lf, 0)], 0)
        hi = np.where(rt >= 0, J[cell_i, np.maximum(rt, 0)], q - 1)
        with pram.obs_phase("interp-cols"):
            _fill_rows(pram, c, (cell_i, cell_k), lo, hi, J, V)
