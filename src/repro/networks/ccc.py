"""Cube-connected cycles (Preparata–Vuillemin).

A CCC of dimension ``d`` replaces each hypercube node with a ``d``-node
cycle; node ``(x, p)`` connects to its cycle neighbors ``(x, p±1)`` and
across the cube to ``(x ^ (1 << p), p)``.  Total degree 3.

Normal-algorithm emulation: logical hypercube node ``x``'s register is
held by cycle node ``(x, cursor)`` where ``cursor`` is shared emulation
state.  A dimension-``d`` exchange executes as

1. ``rotation`` rounds along cycle edges to bring every register to
   cycle position ``d`` (cyclic distance from the current cursor —
   one round each, both directions available), then
2. one cross-edge round.

Consecutive dimensions (the normal-algorithm access pattern) cost
``1 + 1 = 2`` rounds, the classic constant slowdown; arbitrary jumps
pay their genuine cyclic distance.  Every round is charged with
``dim · 2^dim`` processors — the CCC's true node count.
"""

from __future__ import annotations

import numpy as np

from repro.networks.topology import CubeLike

__all__ = ["CubeConnectedCycles"]


class CubeConnectedCycles(CubeLike):
    """CCC executing normal hypercube algorithms with tracked rotations."""

    def __init__(self, dim: int, ledger=None, faults=None, retry_limit: int = 8) -> None:
        super().__init__(dim, ledger, faults=faults, retry_limit=retry_limit)
        self.cursor = 0  # cycle position currently holding the registers
        self.nodes_per_logical = max(1, dim)

    def rotation_distance(self, d: int) -> int:
        """Cyclic distance from the cursor to position ``d``."""
        if self.dim <= 1:
            return 0
        fwd = (d - self.cursor) % self.dim
        back = (self.cursor - d) % self.dim
        return min(fwd, back)

    def _exchange_rounds(self, d: int) -> int:
        return self.rotation_distance(d) + 1

    def _exchange(self, values: np.ndarray, d: int) -> np.ndarray:
        rot = self.rotation_distance(d)
        if rot:
            # registers travel along cycle edges, one position per round
            self.charge(rounds=rot)
        self.cursor = d
        self.charge()  # the cross-edge round
        return values[self.ids ^ (1 << d)]
