"""The hypercube network: node ``x`` ↔ ``x ^ (1 << d)``.

One exchange = one communication round.  See
:mod:`repro.networks.topology` for the shared normal-algorithm driver.
"""

from __future__ import annotations

import numpy as np

from repro.networks.topology import CubeLike

__all__ = ["Hypercube"]


class Hypercube(CubeLike):
    """A ``2**dim``-node hypercube with genuine per-edge movement."""

    def _exchange(self, values: np.ndarray, d: int) -> np.ndarray:
        self.charge()
        return values[self.ids ^ (1 << d)]
