"""Shared machinery for hypercube-like networks.

All three §3 topologies expose the *normal-algorithm* interface: a
register array with one slot per (logical) hypercube node, and an
:meth:`~CubeLike.exchange` that swaps values across one hypercube
dimension.  The plain hypercube executes an exchange in one round; CCC
and shuffle-exchange execute it in a constant number of their own edge
rounds (cycle rotations / shuffles), tracked by per-instance emulation
state.  Primitives written against this interface therefore run — and
are costed — genuinely on all three networks, which is exactly the
sense of the paper's "hypercube, cube-connected cycles, and
shuffle-exchange" rows.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.pram.ledger import CostLedger

__all__ = ["CubeLike"]


class CubeLike:
    """Base: ``2**dim`` logical nodes addressed by hypercube ids.

    Subclasses implement :meth:`exchange` (and charge their genuine
    round counts through :meth:`charge`).
    """

    def __init__(
        self,
        dim: int,
        ledger: Optional[CostLedger] = None,
        faults=None,
        retry_limit: int = 8,
    ) -> None:
        if dim < 0 or dim > 30:
            raise ValueError(f"dim must be in [0, 30], got {dim}")
        if retry_limit < 1:
            raise ValueError(f"retry_limit must be >= 1, got {retry_limit}")
        self.dim = dim
        self.size = 1 << dim
        self.ids = np.arange(self.size, dtype=np.int64)
        self.ledger = ledger if ledger is not None else CostLedger()
        self.faults = faults
        self.retry_limit = int(retry_limit)

    # -- required -------------------------------------------------------
    def exchange(self, values: np.ndarray, d: int) -> np.ndarray:
        """Every node receives its dimension-``d`` neighbor's value.

        With a fault plan bound, a ``link_drop`` fault loses the whole
        exchange: the lost attempt's genuine round cost is charged to
        the ledger's retry account and the exchange is replayed from
        the pre-round register checkpoint (emulation state — CCC cursor
        / shuffle rotation — advances only on the successful attempt).
        A ``message_corrupt`` fault lets the exchange deliver but
        perturbs one arriving register.
        """
        values = self._check_register(values, d)
        plan = self.faults
        if plan is not None:
            self._replay_dropped_exchanges(d)
        out = self._exchange(values, d)
        if plan is not None:
            out = plan.corrupt(
                out,
                site=f"{type(self).__name__}.exchange(d={d})",
                round_index=self.ledger.rounds,
            )
        return out

    def _exchange(self, values: np.ndarray, d: int) -> np.ndarray:
        """Topology-specific exchange (register already validated)."""
        raise NotImplementedError

    def _exchange_rounds(self, d: int) -> int:
        """Edge rounds one exchange attempt costs (for retry replay)."""
        return 1

    def _replay_dropped_exchanges(self, d: int) -> None:
        plan = self.faults
        site = f"{type(self).__name__}.exchange(d={d})"
        attempts = 0
        while plan.fires("link_drop", site=site, round_index=self.ledger.rounds):
            plan_rounds = self._exchange_rounds(d)
            self.ledger.charge_retry(
                rounds=plan_rounds,
                processors=self.size * self.nodes_per_logical,
                kind="link_drop",
            )
            attempts += 1
            if attempts >= self.retry_limit:
                plan.exhausted("link_drop", site, attempts)

    #: physical processors backing one logical node (CCC uses ``dim``).
    nodes_per_logical = 1

    # -- shared ---------------------------------------------------------
    def charge(self, rounds: int = 1, active: int | None = None) -> None:
        self.ledger.charge(
            rounds=rounds,
            processors=(self.size * self.nodes_per_logical) if active is None else active,
        )

    def _check_register(self, values: np.ndarray, d: int) -> np.ndarray:
        if self.dim == 0:
            raise ValueError("a 1-node network has no dimensions to exchange")
        if not 0 <= d < self.dim:
            raise ValueError(f"dimension {d} out of range for dim={self.dim}")
        values = np.asarray(values)
        if values.shape[0] != self.size:
            raise ValueError(
                f"register must have one slot per node ({self.size}), got {values.shape}"
            )
        return values

    def ascend(
        self,
        values: np.ndarray,
        combine: Callable[[int, np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Normal algorithm, dimensions ``0 .. dim-1``:
        ``combine(d, local, received, ids) -> new local``."""
        values = np.asarray(values)
        for d in range(self.dim):
            received = self.exchange(values, d)
            values = combine(d, values, received, self.ids)
        return values

    def descend(self, values, combine) -> np.ndarray:
        """Normal algorithm, dimensions ``dim-1 .. 0``."""
        values = np.asarray(values)
        for d in range(self.dim - 1, -1, -1):
            received = self.exchange(values, d)
            values = combine(d, values, received, self.ids)
        return values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(dim={self.dim}, size={self.size})"
