"""Distributed-memory interconnection-network simulators (§3).

Unlike the PRAM package, nothing here has a global memory: every value
lives in some node's register, and a value moves only along a topology
edge, one hop per charged round.  The paper's §3 model is enforced
structurally — a processor can combine ``a[i,j]``'s ingredients only
after routing has delivered them to its local memory.

- :mod:`repro.networks.hypercube` — the ``2^d``-node hypercube with
  dimension-exchange rounds and normal-algorithm drivers;
- :mod:`repro.networks.ccc` — cube-connected cycles, executing normal
  hypercube algorithms with the classic constant-factor slowdown
  (cycle rotations between consecutive dimensions);
- :mod:`repro.networks.shuffle_exchange` — the shuffle-exchange graph,
  where a normal algorithm's dimension-``d`` exchange becomes shuffle
  rounds plus an exchange-edge round;
- :mod:`repro.networks.primitives` — prefix scans, segmented scans,
  reductions, broadcast, bitonic sorting, and the monotone (isotone)
  packet routing of [LLS89], all built from exchange rounds and
  therefore portable across the three topologies.
"""

from repro.networks.hypercube import Hypercube
from repro.networks.ccc import CubeConnectedCycles
from repro.networks.shuffle_exchange import ShuffleExchange
from repro.networks.primitives import (
    net_bitonic_sort,
    net_broadcast,
    net_monotone_route,
    net_prefix_scan,
    net_reduce,
    net_segmented_scan,
)

__all__ = [
    "Hypercube",
    "CubeConnectedCycles",
    "ShuffleExchange",
    "net_prefix_scan",
    "net_segmented_scan",
    "net_reduce",
    "net_broadcast",
    "net_bitonic_sort",
    "net_monotone_route",
]
