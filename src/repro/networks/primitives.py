"""Normal-algorithm primitives for hypercube-like networks.

Everything here is built exclusively from :meth:`CubeLike.exchange`
rounds, so it runs — with genuine per-topology costs — on the
hypercube, the cube-connected cycles, and the shuffle-exchange network.

Primitives:

- :func:`net_prefix_scan` / :func:`net_segmented_scan` — the classic
  (prefix, total) ascend; segmented variants carry head flags (one
  extra exchanged register per round);
- :func:`net_segmented_argmin_scan` — segmented minimum carrying a
  witness index (leftmost on ties);
- :func:`net_reduce` — all-reduce in ``dim`` exchanges;
- :func:`net_broadcast` — node 0's value to everyone;
- :func:`net_bitonic_sort` — Batcher's network, one exchange (plus a
  payload exchange) per compare stage;
- :func:`net_monotone_route` — the isotone packet routing of [LLS89]:
  greedy bit-fixing, highest dimension first.  For monotone
  (order-preserving) routes this is provably collision-free; the router
  *checks* that invariant each round and raises if violated, so the
  theory is exercised, not assumed.
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np

from repro.networks.topology import CubeLike

__all__ = [
    "net_prefix_scan",
    "net_segmented_scan",
    "net_segmented_argmin_scan",
    "net_reduce",
    "net_broadcast",
    "net_bitonic_sort",
    "net_monotone_route",
    "RoutingCollision",
]

Op = Literal["add", "min", "max"]
_OPS = {"add": np.add, "min": np.minimum, "max": np.maximum}
_IDENTITY = {"add": 0.0, "min": np.inf, "max": -np.inf}


class RoutingCollision(RuntimeError):
    """Two packets tried to occupy one node — the route was not monotone."""


def net_prefix_scan(net: CubeLike, values: np.ndarray, op: Op = "add") -> np.ndarray:
    """Inclusive prefix scan over node ids; ``dim`` exchange rounds."""
    f = _OPS[op]
    prefix = np.array(values, dtype=np.float64, copy=True)
    total = prefix.copy()
    if prefix.shape != (net.size,):
        raise ValueError(f"register must have shape ({net.size},)")
    for d in range(net.dim):
        r_total = net.exchange(total, d)
        upper = (net.ids >> d) & 1 == 1
        prefix = np.where(upper, f(r_total, prefix), prefix)
        total = f(total, r_total)
    return prefix


def net_segmented_scan(
    net: CubeLike, values: np.ndarray, heads: np.ndarray, op: Op = "add"
) -> np.ndarray:
    """Inclusive scan restarting at ``heads`` (2 registers exchanged/dim)."""
    f = _OPS[op]
    prefix = np.array(values, dtype=np.float64, copy=True)
    pflag = np.array(heads, dtype=np.float64, copy=True)
    total, tflag = prefix.copy(), pflag.copy()
    for d in range(net.dim):
        r_total = net.exchange(total, d)
        r_tflag = net.exchange(tflag, d)
        upper = (net.ids >> d) & 1 == 1
        # segmented combine: block-before (r) ⊕ my-prefix
        new_prefix = np.where(pflag > 0, prefix, f(r_total, prefix))
        prefix = np.where(upper, new_prefix, prefix)
        pflag = np.where(upper, np.maximum(pflag, r_tflag), pflag)
        # exact combine of the two halves in id order:
        lo_t = np.where(upper, r_total, total)
        lo_f = np.where(upper, r_tflag, tflag)
        hi_t = np.where(upper, total, r_total)
        hi_f = np.where(upper, tflag, r_tflag)
        total = np.where(hi_f > 0, hi_t, f(lo_t, hi_t))
        tflag = np.maximum(lo_f, hi_f)
    return prefix


def net_segmented_argmin_scan(
    net: CubeLike, values: np.ndarray, indices: np.ndarray, heads: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Segmented min scan carrying witness indices (leftmost ties).

    Three registers move per dimension (value, index, flag).
    Returns ``(scan_values, scan_indices)``.
    """
    pv = np.array(values, dtype=np.float64, copy=True)
    pi = np.array(indices, dtype=np.float64, copy=True)
    pf = np.array(heads, dtype=np.float64, copy=True)
    tv, ti, tf = pv.copy(), pi.copy(), pf.copy()

    def lexmin(v1, i1, v2, i2):
        take1 = (v1 < v2) | ((v1 == v2) & (i1 <= i2))
        return np.where(take1, v1, v2), np.where(take1, i1, i2)

    for d in range(net.dim):
        rv = net.exchange(tv, d)
        ri = net.exchange(ti, d)
        rf = net.exchange(tf, d)
        upper = (net.ids >> d) & 1 == 1
        mv, mi = lexmin(rv, ri, pv, pi)
        pv = np.where(upper & (pf == 0), mv, pv)
        pi = np.where(upper & (pf == 0), mi, pi)
        pf = np.where(upper, np.maximum(pf, rf), pf)
        lo_v = np.where(upper, rv, tv)
        lo_i = np.where(upper, ri, ti)
        lo_f = np.where(upper, rf, tf)
        hi_v = np.where(upper, tv, rv)
        hi_i = np.where(upper, ti, ri)
        hi_f = np.where(upper, tf, rf)
        cv, ci = lexmin(lo_v, lo_i, hi_v, hi_i)
        tv = np.where(hi_f > 0, hi_v, cv)
        ti = np.where(hi_f > 0, hi_i, ci)
        tf = np.maximum(lo_f, hi_f)
    return pv, pi.astype(np.int64)


def net_reduce(net: CubeLike, values: np.ndarray, op: Op = "add") -> float:
    """All-reduce: every node ends with the total; ``dim`` exchanges."""
    f = _OPS[op]
    acc = np.array(values, dtype=np.float64, copy=True)
    for d in range(net.dim):
        acc = f(acc, net.exchange(acc, d))
    return float(acc[0])


def net_broadcast(net: CubeLike, value: float) -> np.ndarray:
    """Node 0's value delivered to all nodes in ``dim`` exchanges."""
    reg = np.full(net.size, np.nan)
    reg[0] = value
    for d in range(net.dim):
        received = net.exchange(reg, d)
        reg = np.where(np.isnan(reg), received, reg)
    return reg


def net_bitonic_sort(
    net: CubeLike, keys: np.ndarray, payload: np.ndarray | None = None
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Batcher bitonic sort by node id; optional payload rides along.

    ``dim(dim+1)/2`` compare stages; each moves the key register (and
    the payload register) across one dimension.
    """
    k = np.array(keys, dtype=np.float64, copy=True)
    if k.shape != (net.size,):
        raise ValueError(f"keys must have shape ({net.size},)")
    p = None if payload is None else np.array(payload, dtype=np.float64, copy=True)
    ids = net.ids
    for stage in range(1, net.dim + 1):
        kbit = 1 << stage
        for d in range(stage - 1, -1, -1):
            rk = net.exchange(k, d)
            rp = net.exchange(p, d) if p is not None else None
            upper = (ids >> d) & 1 == 1
            ascending = (ids & kbit) == 0
            keep_small = ~upper & ascending | upper & ~ascending
            if p is not None:
                # payload (index) breaks ties: the sort is deterministic
                r_less = (rk < k) | ((rk == k) & (rp < p))
                take = np.where(keep_small, r_less, ~r_less)
            else:
                take = np.where(keep_small, rk < k, rk > k)
            k = np.where(take, rk, k)
            if p is not None:
                p = np.where(take, rp, p)
    return k, p


def net_monotone_route(
    net: CubeLike,
    payload: np.ndarray,
    dests: np.ndarray,
    active: np.ndarray,
    fill: float = np.nan,
) -> np.ndarray:
    """Isotone routing [LLS89] / Nassimi–Sahni: deliver ``payload[x]``
    to node ``dests[x]`` for each active ``x``.

    Requires the route to be *monotone*: active sources in increasing
    id order have strictly increasing destinations.  Executed as the
    classic two phases, each provably collision-free for monotone
    routes:

    1. **concentrate** — a genuine network prefix sum ranks the active
       packets, then greedy bit-fixing from the lowest dimension up
       moves every packet to its rank;
    2. **distribute** — bit-fixing from the highest dimension down
       moves packet ``rank`` to its destination.

    The router checks the no-collision invariant every round and raises
    :class:`RoutingCollision` if it is violated (i.e. the input was not
    actually monotone), so the theory is exercised rather than assumed.
    ``≈ 7·dim`` exchange rounds (ranking scan + two 3-register phases).
    """
    pay = np.array(payload, dtype=np.float64, copy=True)
    dst = np.array(dests, dtype=np.float64, copy=True)
    act = np.array(active, dtype=np.float64, copy=True)
    if pay.shape != (net.size,) or dst.shape != (net.size,) or act.shape != (net.size,):
        raise ValueError(f"registers must have shape ({net.size},)")
    live = act > 0
    if live.any():
        d_int = dst[live].astype(np.int64)
        if d_int.min() < 0 or d_int.max() >= net.size:
            raise ValueError("destinations out of range")
        if (np.diff(d_int) <= 0).any():
            raise ValueError("destinations must be strictly increasing (monotone route)")
    # phase 0: rank active packets with a genuine scan
    ranks = net_prefix_scan(net, (act > 0).astype(np.float64), "add") - 1.0
    pay, dst, act = _bit_fix(net, pay, dst, act, target=ranks, ascending=True)
    # phase 2: from ranks to destinations, highest dimension first
    pay, dst, act = _bit_fix(net, pay, dst, act, target=dst, ascending=False)
    out = np.full(net.size, fill)
    landed = act > 0
    out[landed] = pay[landed]
    return out


def _bit_fix(net, pay, dst, act, target, ascending):
    """One bit-fixing phase toward ``target`` (a register of node ids)."""
    tgt = np.array(target, dtype=np.float64, copy=True)
    dims = range(net.dim) if ascending else range(net.dim - 1, -1, -1)
    for d in dims:
        bit = 1 << d
        want = (act > 0) & (((net.ids ^ tgt.astype(np.int64)) & bit) != 0)
        r_pay = net.exchange(np.where(want, pay, np.nan), d)
        r_dst = net.exchange(np.where(want, dst, -1.0), d)
        r_tgt = net.exchange(np.where(want, tgt, -1.0), d)
        r_want = net.exchange(want.astype(np.float64), d)
        stay = (act > 0) & ~want
        incoming = r_want > 0
        if (stay & incoming).any():
            raise RoutingCollision(
                f"collision at dimension {d}: a staying packet met an incoming one"
            )
        pay = np.where(incoming, r_pay, np.where(stay, pay, np.nan))
        dst = np.where(incoming, r_dst, np.where(stay, dst, -1.0))
        tgt = np.where(incoming, r_tgt, np.where(stay, tgt, -1.0))
        act = (incoming | stay).astype(np.float64)
    return pay, dst, act
