"""The shuffle-exchange network.

``2**dim`` nodes; node ``x`` has the *exchange* edge to ``x ^ 1`` and
the *shuffle* edge to ``σ(x)`` (cyclic left rotation of ``x``'s bits),
plus the reverse unshuffle.  Degree 3.

Normal-algorithm emulation: the shared state ``rot`` counts how many
shuffles the register file has undergone; bit ``d`` of a logical id
currently sits at bit position ``(d + rot) mod dim``.  A dimension-``d``
exchange shuffles (or unshuffles — whichever is the shorter cyclic
direction) until that bit reaches position 0, then uses the exchange
edge.  Descending-dimension normal algorithms pay 2 rounds per
dimension — the textbook constant slowdown; an access pattern that
jumps around pays its genuine rotation cost.
"""

from __future__ import annotations

import numpy as np

from repro.networks.topology import CubeLike

__all__ = ["ShuffleExchange"]


class ShuffleExchange(CubeLike):
    """Shuffle-exchange graph executing normal hypercube algorithms."""

    def __init__(self, dim: int, ledger=None, faults=None, retry_limit: int = 8) -> None:
        super().__init__(dim, ledger, faults=faults, retry_limit=retry_limit)
        self.rot = 0  # net left-rotations applied to the register file

    def rotation_cost(self, d: int) -> tuple[int, int]:
        """(rounds, signed rotation) to bring bit ``d`` to position 0."""
        if self.dim <= 1:
            return 0, 0
        left = (-d - self.rot) % self.dim   # additional shuffles
        right = (d + self.rot) % self.dim   # unshuffles instead
        if left <= right:
            return left, left
        return right, -right

    def _exchange_rounds(self, d: int) -> int:
        return self.rotation_cost(d)[0] + 1

    def _exchange(self, values: np.ndarray, d: int) -> np.ndarray:
        rounds, signed = self.rotation_cost(d)
        if rounds:
            self.charge(rounds=rounds)  # shuffle/unshuffle edge rounds
        self.rot = (self.rot + signed) % max(self.dim, 1)
        self.charge()  # the exchange-edge round
        return values[self.ids ^ (1 << d)]
