"""Parallel Searching in Generalized Monge Arrays with Applications.

A production-grade reproduction of Aggarwal, Kravets, Park, and Sen
(SPAA 1990).  The package provides:

- :mod:`repro.engine` — the unified solver engine: a ``(problem,
  backend)`` registry, :class:`ExecutionConfig`, reusable
  :class:`Session` objects, and structured :class:`SearchResult`
  outputs (see DESIGN.md §8);
- :mod:`repro.pram` — cost-accounted CRCW/CREW PRAM simulators;
- :mod:`repro.networks` — hypercube, cube-connected cycles, and
  shuffle-exchange simulators with genuine per-edge data movement;
- :mod:`repro.monge` — Monge / staircase-Monge / Monge-composite array
  abstractions, generators, verifiers, and the sequential SMAWK
  baselines;
- :mod:`repro.core` — the paper's parallel searching algorithms
  (Tables 1.1–1.3, Theorems 2.3 and 3.2–3.4) plus the banded/windowed
  generalizations the applications need;
- :mod:`repro.apps` — the four §1.3 applications and the Figure 1.1
  example, each with a brute-force reference;
- :mod:`repro.analysis` — growth-law fitting and live regeneration of
  the paper's tables;
- :mod:`repro.shard` — sharded multi-process execution of fused
  ``solve_many`` buckets over shared memory (``shards=k`` /
  ``REPRO_SHARDS``), bit-identical to serial (DESIGN.md §11);
- :mod:`repro.kernels` — the kernel-tier registry: named execution
  tiers (``reference`` / ``fused`` / ``blocked`` / optional ``numba``)
  selected via ``kernel_tier=`` / ``REPRO_KERNEL_TIER``, all charging
  identical ledgers (DESIGN.md §13);
- :mod:`repro.serve` — the async query service: concurrent clients'
  requests are held for an adaptive fusion window and executed as
  fused ``solve_many`` buckets, with admission control, per-request
  deadlines, and ``serve.*`` observability (DESIGN.md §15).

Quickstart::

    import numpy as np
    import repro

    rng = np.random.default_rng(0)
    a = repro.generators.random_monge(512, 512, rng)   # provably Monge

    result = repro.solve("rowmin", a)                  # CRCW PRAM engine
    values, cols = result                              # tuple-compatible
    print(result.rounds, "simulated CRCW rounds")

    s = repro.Session("hypercube")                     # reusable machines
    r = s.solve("rowmin", a, certify=True)
    assert r.certified

    h = repro.prepare(a)                               # build once ...
    r = h.query((10, 200), (32, 400))                  # ... query many
"""

from repro import (
    analysis,
    apps,
    core,
    engine,
    kernels,
    monge,
    networks,
    obs,
    pram,
    serve,
    shard,
)
from repro.engine import (
    BatchResult,
    CapabilityError,
    ExecutionConfig,
    PreparedHandle,
    SearchResult,
    Session,
    prepare,
    solve,
    solve_many,
)
from repro.monge import generators

__all__ = [
    "pram",
    "networks",
    "monge",
    "core",
    "apps",
    "analysis",
    "engine",
    "obs",
    "shard",
    "kernels",
    "serve",
    "generators",
    "solve",
    "solve_many",
    "prepare",
    "PreparedHandle",
    "Session",
    "ExecutionConfig",
    "SearchResult",
    "BatchResult",
    "CapabilityError",
]

__version__ = "1.8.0"
