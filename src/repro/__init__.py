"""Parallel Searching in Generalized Monge Arrays with Applications.

A production-grade reproduction of Aggarwal, Kravets, Park, and Sen
(SPAA 1990).  The package provides:

- :mod:`repro.pram` — cost-accounted CRCW/CREW PRAM simulators;
- :mod:`repro.networks` — hypercube, cube-connected cycles, and
  shuffle-exchange simulators with genuine per-edge data movement;
- :mod:`repro.monge` — Monge / staircase-Monge / Monge-composite array
  abstractions, generators, verifiers, and the sequential SMAWK
  baselines;
- :mod:`repro.core` — the paper's parallel searching algorithms
  (Tables 1.1–1.3, Theorems 2.3 and 3.2–3.4) plus the banded/windowed
  generalizations the applications need;
- :mod:`repro.apps` — the four §1.3 applications and the Figure 1.1
  example, each with a brute-force reference;
- :mod:`repro.analysis` — growth-law fitting and live regeneration of
  the paper's tables.

Quickstart::

    import numpy as np
    from repro import monge, core, pram

    rng = np.random.default_rng(0)
    a = monge.generators.random_monge(512, 512, rng)   # provably Monge
    v, cols = monge.row_minima(a)                      # SMAWK, O(m+n)

    machine = pram.Pram(pram.CRCW_COMMON, 1 << 20, ledger=pram.CostLedger())
    pv, pcols = core.monge_row_minima_pram(machine, a)
    assert (pcols == cols).all()
    print(machine.ledger.rounds, "simulated CRCW rounds")
"""

from repro import analysis, apps, core, monge, networks, pram
from repro.monge import generators

__all__ = ["pram", "networks", "monge", "core", "apps", "analysis", "generators"]

__version__ = "1.0.0"
