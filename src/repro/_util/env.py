"""Typed environment-variable parsing shared by every ``REPRO_*`` switch.

Before this module existed, ``repro.shard.config`` and
``repro.kernels.registry`` each hand-rolled the same motif — read the
variable, strip it, parse it, and raise a ``ValueError`` naming the
variable and its accepted range on malformed input.  Four copies of the
motif had already drifted in small ways (different example strings,
different treatment of range failures).  These helpers own the motif:

- unset or empty/whitespace-only values mean "no setting" and return
  ``None`` — defaults are the *caller's* business;
- malformed values raise ``ValueError`` messages of the fixed shape
  ``"<NAME> must be <requirement>; got <value!r>"``, so a deployment
  typo (``REPRO_SHARDS=four``) fails loudly at resolve time instead of
  silently running with a default.

Nothing here caches: callers that want resolve-once semantics (the
lazily-resolved module defaults in the config modules) keep their own
``_UNSET`` latches.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

__all__ = ["env_raw", "env_int", "env_float", "env_choice"]


def env_raw(name: str) -> Optional[str]:
    """The stripped value of ``name``, or ``None`` when unset/blank."""
    raw = os.environ.get(name, "").strip()
    return raw or None


def _reject(name: str, requirement: str, got) -> ValueError:
    return ValueError(f"{name} must be {requirement}; got {got!r}")


def env_int(
    name: str,
    *,
    requirement: str,
    minimum: Optional[int] = None,
    exclusive_minimum: Optional[int] = None,
) -> Optional[int]:
    """Parse ``name`` as an integer, or ``None`` when unset.

    ``requirement`` is the human-readable clause of the error message
    (e.g. ``"an integer >= 0 (0 disables sharding)"``).  ``minimum`` /
    ``exclusive_minimum`` bound the accepted range; out-of-range values
    raise the same ``ValueError`` shape as unparseable ones.
    """
    raw = env_raw(name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise _reject(name, requirement, raw) from None
    if minimum is not None and value < minimum:
        raise _reject(name, requirement, value)
    if exclusive_minimum is not None and value <= exclusive_minimum:
        raise _reject(name, requirement, value)
    return value


def env_float(
    name: str,
    *,
    requirement: str,
    positive: bool = False,
    finite: bool = False,
) -> Optional[float]:
    """Parse ``name`` as a float, or ``None`` when unset.

    ``positive`` requires a value strictly greater than zero; ``finite``
    rejects NaN and the infinities.  Both failures raise the same
    ``ValueError`` shape as unparseable input, with ``requirement`` as
    the message clause.
    """
    raw = env_raw(name)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise _reject(name, requirement, raw) from None
    if finite and (value != value or value in (float("inf"), float("-inf"))):
        raise _reject(name, requirement, raw)
    if positive and not value > 0:
        raise _reject(name, requirement, raw)
    return value


def env_choice(
    name: str,
    choices: Sequence[str],
    *,
    lower: bool = True,
    strict: bool = True,
) -> Optional[str]:
    """Parse ``name`` against a closed set of accepted values.

    Returns ``None`` when unset.  Unknown values raise ``ValueError``
    when ``strict`` (the default), or return ``None`` when the caller
    treats unrecognized settings as "no setting" (the historical
    ``REPRO_SHARD_START`` behavior).
    """
    raw = env_raw(name)
    if raw is None:
        return None
    if lower:
        raw = raw.lower()
    if raw in choices:
        return raw
    if strict:
        raise _reject(name, f"one of {tuple(choices)}", raw)
    return None
