"""Integer/bit arithmetic helpers used by the simulators.

These are exact integer routines (no floating point) because processor
counts and hypercube dimensions must be computed without rounding error.
"""

from __future__ import annotations

import math

__all__ = [
    "ceil_div",
    "ceil_log2",
    "ceil_sqrt",
    "ceil_sqrt_array",
    "is_power_of_two",
    "next_power_of_two",
    "floor_log2",
    "iterated_log2",
]


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for nonnegative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    return -(-a // b)


def ceil_log2(n: int) -> int:
    """Smallest ``k`` with ``2**k >= n`` (``n >= 1``).

    ``ceil_log2(1) == 0``.  This is the number of doubling rounds a
    PRAM scan over ``n`` elements needs.
    """
    if n < 1:
        raise ValueError(f"ceil_log2 requires n >= 1, got {n}")
    return (n - 1).bit_length()


def floor_log2(n: int) -> int:
    """Largest ``k`` with ``2**k <= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"floor_log2 requires n >= 1, got {n}")
    return n.bit_length() - 1


def ceil_sqrt(n: int) -> int:
    """Smallest integer ``s`` with ``s*s >= n`` (``n >= 0``)."""
    if n < 0:
        raise ValueError(f"ceil_sqrt requires n >= 0, got {n}")
    s = math.isqrt(n)
    return s if s * s == n else s + 1


def ceil_sqrt_array(x):
    """Elementwise :func:`ceil_sqrt` of a nonnegative int64 array.

    Exactness is restored from the float estimate by a ±1 correction,
    so results agree with the integer routine for every value the
    simulators produce (subproblem row counts, well below 2**52).
    """
    import numpy as np

    x = np.asarray(x, dtype=np.int64)
    if x.size and int(x.min()) < 0:
        raise ValueError("ceil_sqrt_array requires nonnegative entries")
    r = np.sqrt(x.astype(np.float64)).astype(np.int64)
    r = np.where(r * r > x, r - 1, r)  # now r == floor(sqrt(x))
    return r + (r * r < x).astype(np.int64)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"next_power_of_two requires n >= 1, got {n}")
    return 1 << ceil_log2(n)


def iterated_log2(n: int) -> int:
    """Number of times ``lg`` must be applied to ``n`` before reaching <= 1.

    Matches the recursion depth of doubly-logarithmic algorithms.
    """
    if n < 1:
        raise ValueError(f"iterated_log2 requires n >= 1, got {n}")
    count = 0
    while n > 1:
        n = ceil_log2(n) if n > 2 else 1
        count += 1
    return count
