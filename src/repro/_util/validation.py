"""Input validation helpers.

All public entry points of the library validate their inputs eagerly and
raise ``ValueError``/``TypeError`` with actionable messages; the helpers
here keep those checks terse at call sites.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = ["require", "as_float_matrix", "as_float_tensor", "check_axis_lengths"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def as_float_matrix(a: Any, name: str = "array") -> np.ndarray:
    """Coerce ``a`` to a 2-D C-contiguous float64 matrix.

    ``inf`` entries are allowed (staircase arrays use them); NaNs are
    rejected because every comparison-based search would silently
    misbehave on them.
    """
    arr = np.ascontiguousarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size and np.isnan(arr).any():
        raise ValueError(f"{name} contains NaN entries")
    return arr


def as_float_tensor(a: Any, name: str = "tensor") -> np.ndarray:
    """Coerce ``a`` to a 3-D C-contiguous float64 tensor.

    The 3-D analogue of :func:`as_float_matrix` for dense
    Monge-composite cubes: ``inf`` entries are allowed, NaNs are
    rejected (comparison-based searches silently misbehave on them).
    """
    arr = np.ascontiguousarray(a, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError(f"{name} must be 3-dimensional, got shape {arr.shape}")
    if arr.size and np.isnan(arr).any():
        raise ValueError(f"{name} contains NaN entries")
    return arr


def check_axis_lengths(*pairs: Sequence) -> None:
    """Check ``(actual, expected, label)`` triples, raising on mismatch."""
    for actual, expected, label in pairs:
        if actual != expected:
            raise ValueError(f"{label}: expected {expected}, got {actual}")
