"""Ragged-range indexing shared by the batched searching recursions.

Every level-synchronous algorithm in :mod:`repro.core` lays sibling
subproblems out as concatenated variable-width ranges ("ragged" rows of
one flat candidate buffer).  :func:`ragged` is the single decomposition
helper they all share; it used to be copy-pasted per module.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ragged"]


def ragged(counts) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(local_index, owner, offsets) for concatenated ranges of ``counts``.

    For ``counts = [2, 0, 3]`` the flat layout has 5 slots; the return
    triple is ``local = [0, 1, 0, 1, 2]``, ``owner = [0, 0, 2, 2, 2]``
    and ``offsets = [0, 2, 2, 5]`` (one past-the-end per group plus the
    leading zero).
    """
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    owner = np.repeat(np.arange(counts.size), counts)
    local = np.arange(total) - offsets[:-1][owner]
    return local, owner, offsets
