"""Small internal utilities shared across the library."""

from repro._util.bits import (
    ceil_div,
    ceil_log2,
    ceil_sqrt,
    is_power_of_two,
    next_power_of_two,
)
from repro._util.ragged import ragged
from repro._util.validation import (
    as_float_matrix,
    as_float_tensor,
    check_axis_lengths,
    require,
)

__all__ = [
    "ragged",
    "ceil_div",
    "ceil_log2",
    "ceil_sqrt",
    "is_power_of_two",
    "next_power_of_two",
    "as_float_matrix",
    "as_float_tensor",
    "check_axis_lengths",
    "require",
]
