"""The solver registry: ``(problem, backend)`` → implementation + capabilities.

The paper's Tables 1.1–1.3 define one logical problem family instantiated
on three machine classes.  The registry makes that structure executable:
each :class:`SolverSpec` binds a problem key

    ``rowmin | rowmax | staircase_min | staircase_max | tube_min | tube_max``

and a backend key

    ``pram-crcw | pram-crew | hypercube | ccc | shuffle-exchange | sequential``

to an implementation, together with its *declared capabilities*: which
strategies it accepts, what machine it needs, whether a self-certifier
exists for its output, and a Table-1.x-shaped round-bound predicate that
tests (and sessions) can check measured ledgers against.

Pairs that are not registered raise :class:`CapabilityError` — a
``LookupError`` so callers can distinguish "the engine cannot do this"
from an input error.  Solver callables are late-bound (they import the
core implementation lazily), so this module stays import-cycle-free: the
core modules import the engine, never the other way around at import
time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "PROBLEMS",
    "BACKENDS",
    "PRAM_BACKENDS",
    "NETWORK_BACKENDS",
    "CapabilityError",
    "SolverSpec",
    "SolverRegistry",
    "registry",
    "register",
]

#: Canonical problem keys (the Tables 1.1–1.3 rows).
PROBLEMS = (
    "rowmin",
    "rowmax",
    "staircase_min",
    "staircase_max",
    "tube_min",
    "tube_max",
)

PRAM_BACKENDS = ("pram-crcw", "pram-crew")
NETWORK_BACKENDS = ("hypercube", "ccc", "shuffle-exchange")

#: Canonical backend keys (the Tables' machine columns + the SMAWK-class
#: sequential baselines).
BACKENDS = PRAM_BACKENDS + NETWORK_BACKENDS + ("sequential",)


class CapabilityError(LookupError):
    """The engine has no solver (or no requested capability) for this query."""


#: Backend closeness used to suggest the nearest supported alternative in
#: unregistered-pair errors: same machine family first, then the other
#: simulated machines, sequential last (and vice versa for sequential).
_BACKEND_PROXIMITY = {
    "pram-crcw": ("pram-crew", "hypercube", "ccc", "shuffle-exchange", "sequential"),
    "pram-crew": ("pram-crcw", "hypercube", "ccc", "shuffle-exchange", "sequential"),
    "hypercube": ("ccc", "shuffle-exchange", "pram-crew", "pram-crcw", "sequential"),
    "ccc": ("hypercube", "shuffle-exchange", "pram-crew", "pram-crcw", "sequential"),
    "shuffle-exchange": ("hypercube", "ccc", "pram-crew", "pram-crcw", "sequential"),
    "sequential": ("pram-crew", "pram-crcw", "hypercube", "ccc", "shuffle-exchange"),
}


def _lg(x: float) -> float:
    return math.log2(max(2.0, float(x)))


def _lglg(x: float) -> float:
    return _lg(_lg(x))


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver and its declared capabilities.

    ``fn(machine, data, config, strategy)`` returns ``(values,
    witnesses)``; ``machine`` is ``None`` for the sequential backend.
    ``strategies`` lists the concrete strategy names the solver accepts
    (``()`` for strategy-free solvers).  ``bound_rounds(shape)`` is the
    Table-1.x-shaped round budget (generous constants) that
    :meth:`within_bound` checks measured snapshots against; sequential
    solvers have none.
    """

    problem: str
    backend: str
    fn: Callable
    strategies: Tuple[str, ...] = ()
    machine: str = "pram"  # "pram" | "network" | "none"
    certifier: Optional[Callable] = None
    bound_hint: str = ""
    bound_rounds: Optional[Callable[[Tuple[int, ...]], float]] = None
    nodes_for: Optional[Callable[[Tuple[int, ...]], int]] = None
    #: May several same-shape queries share one fused stacked sweep?
    #: Only the row-extremum family on simulated PRAMs qualifies: its
    #: ``sqrt`` recursion has data-independent row structure, which is
    #: what makes per-query charge replay exact (planner.py).
    batchable: bool = False
    #: May a fused bucket of this solver be scattered across worker
    #: processes (``ExecutionConfig.shards``)?  Requires ``batchable``
    #: *and* a pure kernel the shard worker can rerun from a
    #: shared-memory mapping alone (repro.shard).  Non-shardable
    #: solvers silently run in-process under ``shards > 1`` — unless
    #: ``cache=True`` is also set, which is a CapabilityError (the
    #: per-worker memoization contract cannot be honored).
    shardable: bool = False
    #: Kernel tiers this solver's hot path can honor (DESIGN.md §13).
    #: Simulated-PRAM solvers run under every tier; network solvers
    #: execute the grouped minimum genuinely on the interconnect and
    #: sequential baselines have no simulated machine, so both declare
    #: only ``reference`` — an explicit fused-class tier there would be
    #: silently meaningless, which we surface as a CapabilityError.
    kernel_tiers: Tuple[str, ...] = ("reference",)
    #: Build-once entry of the precompute-once path (DESIGN.md §14):
    #: ``prepare(machine, data, config)`` returns an index object whose
    #: ``query`` method answers many requests without re-searching.
    #: ``None`` (the default) means :meth:`Session.prepare` refuses this
    #: pair with a CapabilityError.
    prepare: Optional[Callable] = None

    @property
    def key(self) -> Tuple[str, str]:
        return (self.problem, self.backend)

    @property
    def certifiable(self) -> bool:
        return self.certifier is not None

    @property
    def preparable(self) -> bool:
        return self.prepare is not None

    def check_strategy(self, strategy: str) -> None:
        """Raise :class:`CapabilityError` on an undeclared strategy."""
        if strategy == "auto" or not self.strategies:
            return
        if strategy not in self.strategies:
            raise CapabilityError(
                f"solver ({self.problem}, {self.backend}) does not support "
                f"strategy {strategy!r}; declared: {self.strategies or ('<none>',)}"
            )

    def check_kernel_tier(self, tier: Optional[str]) -> None:
        """Raise :class:`CapabilityError` on an undeclared/unavailable tier.

        ``None`` (defer to the process default) always passes — the
        default tier degrades to the dense kernels wherever a solver
        cannot honor it, whereas an *explicit* request must be honored
        exactly or refused with the nearest supported alternative.
        """
        if tier is None:
            return
        from repro.kernels.registry import get_tier

        t = get_tier(tier)  # ValueError on unknown names (config also checks)
        declared_available = tuple(
            n for n in self.kernel_tiers if get_tier(n).available
        )
        if t.name in self.kernel_tiers and t.available:
            return
        nearest = next(
            (n for n in t.proximity if n in declared_available),
            declared_available[0] if declared_available else "reference",
        )
        if t.name not in self.kernel_tiers:
            raise CapabilityError(
                f"solver ({self.problem}, {self.backend}) does not support "
                f"kernel tier {t.name!r}; declared: {self.kernel_tiers} — "
                f"nearest supported alternative: {nearest!r}"
            )
        raise CapabilityError(
            f"kernel tier {t.name!r} is unavailable (requires the "
            f"{t.requires!r} package); nearest supported alternative for "
            f"({self.problem}, {self.backend}): {nearest!r}"
        )

    def within_bound(self, snapshot: Optional[dict], shape: Tuple[int, ...]) -> bool:
        """Does a measured ledger snapshot respect the declared bound?

        Vacuously true for solvers with no declared bound (sequential
        baselines charge no simulated rounds).
        """
        if self.bound_rounds is None or snapshot is None:
            return True
        return snapshot["rounds"] <= self.bound_rounds(shape)


class SolverRegistry:
    """A mapping of ``(problem, backend)`` keys to :class:`SolverSpec`."""

    def __init__(self) -> None:
        self._specs: Dict[Tuple[str, str], SolverSpec] = {}

    def add(self, spec: SolverSpec) -> None:
        self._specs[spec.key] = spec

    def lookup(self, problem: str, backend: str) -> SolverSpec:
        spec = self._specs.get((problem, backend))
        if spec is None:
            known_problems = sorted({p for p, _ in self._specs})
            known_backends = sorted({b for _, b in self._specs})
            if problem not in known_problems:
                raise CapabilityError(
                    f"unknown problem {problem!r}; known: {known_problems}"
                )
            if backend not in known_backends:
                raise CapabilityError(
                    f"unknown backend {backend!r}; known: {known_backends}"
                )
            supported = tuple(b for b in BACKENDS if (problem, b) in self._specs)
            nearest = next(
                (b for b in _BACKEND_PROXIMITY.get(backend, supported) if b in supported),
                supported[0] if supported else None,
            )
            raise CapabilityError(
                f"no solver registered for problem {problem!r} on backend "
                f"{backend!r}; nearest supported alternative: "
                f"({problem!r}, {nearest!r}) — {problem!r} is available on "
                f"backends {list(supported)}"
            )
        return spec

    def supports(self, problem: str, backend: str) -> bool:
        return (problem, backend) in self._specs

    def keys(self):
        return self._specs.keys()

    def specs(self):
        return self._specs.values()

    def problems(self) -> Tuple[str, ...]:
        return tuple(sorted({p for p, _ in self._specs}))

    def backends(self) -> Tuple[str, ...]:
        return tuple(sorted({b for _, b in self._specs}))


#: The process-wide registry used by :func:`repro.engine.solve`.
registry = SolverRegistry()


def register(spec: SolverSpec) -> SolverSpec:
    """Add a spec to the global registry (and return it)."""
    registry.add(spec)
    return spec


# --------------------------------------------------------------------- #
# Late-bound adapters over the core implementations.  Imports happen at
# call time: the core modules import the engine for dispatch, so the
# engine must not import them at module scope.
# --------------------------------------------------------------------- #
def _rowmin(machine, data, cfg, strategy):
    from repro.core.rowmin_pram import _row_minima_impl

    s = "sqrt" if strategy == "auto" else strategy
    return _row_minima_impl(machine, data, strategy=s, cache=cfg.cache, strict=cfg.strict)


def _rowmax(machine, data, cfg, strategy):
    from repro.core.rowmin_pram import _row_maxima_impl

    s = "sqrt" if strategy == "auto" else strategy
    return _row_maxima_impl(machine, data, strategy=s, cache=cfg.cache, strict=cfg.strict)


def _rowmax_inverse(machine, data, cfg, strategy):
    from repro.core.rowmin_pram import _inverse_row_maxima_impl

    s = "sqrt" if strategy == "auto" else strategy
    return _inverse_row_maxima_impl(
        machine, data, strategy=s, cache=cfg.cache, strict=cfg.strict
    )


def _staircase_min(machine, data, cfg, strategy):
    from repro.core.staircase_pram import _staircase_minima_impl

    return _staircase_minima_impl(machine, data, cache=cfg.cache, strict=cfg.strict)


def _staircase_max(machine, data, cfg, strategy):
    from repro.core.staircase_pram import _staircase_maxima_impl

    return _staircase_maxima_impl(machine, data, cache=cfg.cache, strict=cfg.strict)


def _tube_min(machine, data, cfg, strategy):
    from repro.core.tube_pram import _tube_minima_impl

    return _tube_minima_impl(machine, data, scheme=strategy, cache=cfg.cache, strict=cfg.strict)


def _tube_max(machine, data, cfg, strategy):
    from repro.core.tube_pram import _tube_maxima_impl

    return _tube_maxima_impl(machine, data, scheme=strategy, cache=cfg.cache, strict=cfg.strict)


# -- sequential baselines (SMAWK and friends; no simulated machine) ----- #
def _require_sequential_capable(cfg, problem):
    if not cfg.strict:
        raise CapabilityError(
            f"({problem}, sequential) has no charged degradation path; "
            "strict=False needs a simulated machine backend"
        )
    if cfg.faults is not None:
        raise CapabilityError(
            f"({problem}, sequential) cannot inject faults: there is no "
            "simulated machine to drive the plan"
        )


def _seq_rowmin(machine, data, cfg, strategy):
    from repro.monge.smawk import row_minima

    _require_sequential_capable(cfg, "rowmin")
    return row_minima(data)


def _seq_rowmax(machine, data, cfg, strategy):
    import numpy as np

    from repro.monge.arrays import ImplicitArray, as_search_array
    from repro.monge.smawk import row_minima

    _require_sequential_capable(cfg, "rowmax")
    a = as_search_array(data)
    m, n = a.shape
    if m == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    # Monge row-flipped is inverse-Monge; its negation is Monge again and
    # leftmost minima in reversed row order are the leftmost maxima.
    flip = ImplicitArray(lambda r, c: -a.eval(m - 1 - r, c, checked=False), (m, n))
    vals, cols = row_minima(flip)
    return -vals[::-1], cols[::-1].copy()


def _seq_rowmax_inverse(machine, data, cfg, strategy):
    from repro.monge.arrays import as_search_array
    from repro.monge.smawk import row_minima

    _require_sequential_capable(cfg, "rowmax_inverse")
    vals, cols = row_minima(as_search_array(data).negate())
    return -vals, cols


def _seq_staircase_min(machine, data, cfg, strategy):
    from repro.monge.staircase_seq import row_minima_staircase_blocks

    _require_sequential_capable(cfg, "staircase_min")
    return row_minima_staircase_blocks(data)


def _seq_staircase_max(machine, data, cfg, strategy):
    from repro.monge.staircase_seq import row_maxima_staircase

    _require_sequential_capable(cfg, "staircase_max")
    return row_maxima_staircase(data)


def _seq_tube_min(machine, data, cfg, strategy):
    from repro.monge.composite import tube_minima_sequential

    _require_sequential_capable(cfg, "tube_min")
    return tube_minima_sequential(data)


def _seq_tube_max(machine, data, cfg, strategy):
    from repro.monge.composite import tube_maxima_sequential

    _require_sequential_capable(cfg, "tube_max")
    return tube_maxima_sequential(data)


# -- banded / windowed variants (§2 restricted column ranges) ----------- #
def _window_args(data, problem):
    """Unpack the ``(array, lo, hi)`` triple the window family takes."""
    if not isinstance(data, (tuple, list)) or len(data) != 3:
        raise TypeError(
            f"{problem!r} data must be an (array, lo, hi) triple: the search "
            "array plus per-row column windows"
        )
    return data[0], data[1], data[2]


def _require_window_strict(cfg, problem, backend):
    if not cfg.strict:
        raise CapabilityError(
            f"({problem}, {backend}) declares no degradation path; the "
            "windows already confine the search — run with strict=True"
        )


def _windowed_array(array, cfg):
    from repro.monge.arrays import CachedArray, as_search_array

    a = as_search_array(array)
    return CachedArray(a) if cfg.cache else a


def _banded_min(machine, data, cfg, strategy):
    from repro.core.banded import banded_row_minima_pram

    array, lo, hi = _window_args(data, "banded_min")
    _require_window_strict(cfg, "banded_min", "pram")
    return banded_row_minima_pram(machine, _windowed_array(array, cfg), lo, hi)


def _banded_max(machine, data, cfg, strategy):
    from repro.core.banded import banded_row_maxima_pram

    array, lo, hi = _window_args(data, "banded_max")
    _require_window_strict(cfg, "banded_max", "pram")
    return banded_row_maxima_pram(machine, _windowed_array(array, cfg), lo, hi)


def _windowed_min(machine, data, cfg, strategy):
    from repro.core.windowed import windowed_monge_row_minima

    array, lo, hi = _window_args(data, "windowed_min")
    _require_window_strict(cfg, "windowed_min", "pram")
    return windowed_monge_row_minima(machine, _windowed_array(array, cfg), lo, hi)


def _seq_banded_min(machine, data, cfg, strategy):
    from repro.core.banded import banded_row_minima

    array, lo, hi = _window_args(data, "banded_min")
    _require_sequential_capable(cfg, "banded_min")
    return banded_row_minima(_windowed_array(array, cfg), lo, hi)


def _seq_banded_max(machine, data, cfg, strategy):
    from repro.core.banded import banded_row_maxima

    array, lo, hi = _window_args(data, "banded_max")
    _require_sequential_capable(cfg, "banded_max")
    return banded_row_maxima(_windowed_array(array, cfg), lo, hi)


# -- submatrix maxima (precompute-once family; DESIGN.md §14) ----------- #
def _submatrix_max(machine, data, cfg, strategy):
    from repro.core.submatrix import submatrix_max_pram

    if not cfg.strict:
        raise CapabilityError(
            "(submatrix_max, pram) declares no degradation path; the query "
            "rectangle already confines the search — run with strict=True"
        )
    return submatrix_max_pram(machine, data, cache=cfg.cache)


def _seq_submatrix_max(machine, data, cfg, strategy):
    from repro.core.submatrix import submatrix_max_sequential

    _require_sequential_capable(cfg, "submatrix_max")
    return submatrix_max_sequential(data, cache=cfg.cache)


def _prepare_submatrix(machine, data, cfg):
    from repro.monge.index import MongeIndex

    return MongeIndex.build(machine, data, cache=cfg.cache)


# -- certifiers (minima problems only; see resilience.certify) ---------- #
def _certify_rowmin(data, values, witnesses):
    from repro.resilience.certify import certify_row_minima

    return certify_row_minima(data, values, witnesses)


def _certify_staircase_min(data, values, witnesses):
    from repro.resilience.certify import certify_staircase_row_minima

    return certify_staircase_row_minima(data, values, witnesses)


def _certify_tube_min(data, values, witnesses):
    from repro.resilience.certify import certify_tube_minima

    return certify_tube_minima(data, values, witnesses)


# -- machine sizing + Table-1.x bound shapes ---------------------------- #
def _row_shape_nodes(shape) -> int:
    m, n = shape
    return max(m, n, 2)


def _tube_shape_nodes(shape) -> int:
    p, q, r = shape
    return max(p * r, q, 2)


def _row_bound_crcw(shape):  # Table 1.1/1.2 row: O(lg n) CRCW rounds
    m, n = shape
    return 48.0 * _lg(m * n) + 48.0


def _row_bound_crew(shape):  # O(lg n lg lg n) CREW rounds
    m, n = shape
    return 32.0 * _lg(m * n) * _lglg(m * n) + 48.0


def _tube_bound_crcw(shape):  # O((lg lg n)^2)-shaped doubly-log recursion
    p, q, r = shape
    return 32.0 * (_lglg(p * q * r) + 2.0) ** 2 + 32.0


def _tube_bound_crew(shape):  # O(lg p · lg q)-shaped halving scheme
    p, q, r = shape
    return 24.0 * _lg(p) * _lg(q) + 48.0


def _net_bound(shape):  # measured O(lg² n)-shaped network rounds (§3 note)
    nodes = _row_shape_nodes(shape) if len(shape) == 2 else _tube_shape_nodes(shape)
    return 512.0 * _lg(nodes) ** 2 + 512.0


def _banded_bound_crcw(shape):  # halving levels x doubly-log grouped min
    m, n = shape
    return 64.0 * _lg(m) * (_lglg(m * n) + 4.0) + 64.0


def _banded_bound_crew(shape):  # halving levels x binary grouped min
    m, n = shape
    return 48.0 * _lg(m) * _lg(m * n) + 64.0


# --------------------------------------------------------------------- #
# Populate the registry.
# --------------------------------------------------------------------- #
#: Every registered kernel tier (availability is checked at request
#: time, so the optional numba stub stays declarable without the
#: package installed).
_ALL_TIERS = ("reference", "fused", "blocked", "numba")

_PRAM_FAMILY = (
    ("rowmin", _rowmin, ("sqrt", "halving"), _certify_rowmin,
     "T1.1: O(lg n) CRCW / O(lg n lg lg n) CREW"),
    ("rowmax", _rowmax, ("sqrt", "halving"), None,
     "T1.1: O(lg n) CRCW / O(lg n lg lg n) CREW"),
    ("rowmax_inverse", _rowmax_inverse, ("sqrt", "halving"), None,
     "T1.1 via negation (Fig. 1.1 inverse-Monge form)"),
    ("staircase_min", _staircase_min, (), _certify_staircase_min,
     "T1.2 / Thm 2.3: O(lg n) CRCW / O(lg n lg lg n) CREW"),
    ("staircase_max", _staircase_max, (), None,
     "T1.2 easy direction: banded search round class"),
    ("tube_min", _tube_min, ("crew", "crcw"), _certify_tube_min,
     "T1.3: O(lg lg n) CRCW / O(lg n) CREW shaped"),
    ("tube_max", _tube_max, ("crew", "crcw"), None,
     "T1.3: O(lg lg n) CRCW / O(lg n) CREW shaped"),
)

#: The problems whose pram solvers may fuse same-shape queries into one
#: stacked sweep (see the ``batchable`` field and planner.py).
_BATCHABLE_PROBLEMS = ("rowmin", "rowmax", "rowmax_inverse")

for _problem, _fn, _strats, _cert, _hint in _PRAM_FAMILY:
    _tube = _problem.startswith("tube")
    _nodes = _tube_shape_nodes if _tube else _row_shape_nodes
    _batch = _problem in _BATCHABLE_PROBLEMS
    register(SolverSpec(
        problem=_problem, backend="pram-crcw", fn=_fn, strategies=_strats,
        machine="pram", certifier=_cert, bound_hint=_hint,
        bound_rounds=_tube_bound_crcw if _tube else _row_bound_crcw,
        nodes_for=_nodes, batchable=_batch, shardable=_batch,
        kernel_tiers=_ALL_TIERS,
    ))
    register(SolverSpec(
        problem=_problem, backend="pram-crew", fn=_fn,
        # "crcw" stays declared: the solver itself raises the model
        # ConcurrencyViolation, preserving the legacy error contract
        strategies=_strats,
        machine="pram", certifier=_cert, bound_hint=_hint,
        bound_rounds=_tube_bound_crew if _tube else _row_bound_crew,
        nodes_for=_nodes, batchable=_batch, shardable=_batch,
        kernel_tiers=_ALL_TIERS,
    ))
    for _net in NETWORK_BACKENDS:
        register(SolverSpec(
            problem=_problem, backend=_net, fn=_fn,
            # networks run the CREW-derived algorithms (§3)
            strategies=tuple(s for s in _strats if s != "crcw"),
            machine="network", certifier=_cert,
            bound_hint="Thm 3.2–3.4 (measured O(lg² n)-shaped; see DESIGN.md)",
            bound_rounds=_net_bound,
            nodes_for=_nodes,
        ))

_SEQUENTIAL = (
    ("rowmin", _seq_rowmin, _certify_rowmin, "SMAWK: O(m+n) evaluations"),
    ("rowmax", _seq_rowmax, None, "SMAWK on the flipped array: O(m+n) evaluations"),
    ("rowmax_inverse", _seq_rowmax_inverse, None,
     "SMAWK on the negated array: O(m+n) evaluations"),
    ("staircase_min", _seq_staircase_min, _certify_staircase_min,
     "boundary-block SMAWK decomposition"),
    ("staircase_max", _seq_staircase_max, None,
     "prefix-maxima divide and conquer: O((m+n) lg m) evaluations"),
    ("tube_min", _seq_tube_min, _certify_tube_min, "per-row SMAWK: O(p(q+r)) evaluations"),
    ("tube_max", _seq_tube_max, None, "per-row SMAWK: O(p(q+r)) evaluations"),
)

for _problem, _fn, _cert, _hint in _SEQUENTIAL:
    register(SolverSpec(
        problem=_problem, backend="sequential", fn=_fn, strategies=(),
        machine="none", certifier=_cert, bound_hint=_hint,
        bound_rounds=None, nodes_for=None,
    ))

# Banded / windowed variants: the §2 restricted-column-range searches.
# The banded search runs on every simulated machine (its grouped-minimum
# core dispatches to the network primitive on NetworkMachines) plus the
# sequential D&C; the windowed composite decomposes into staircase
# machinery that only the PRAMs carry, so network/sequential lookups
# raise CapabilityError naming the nearest supported pair.
_WINDOW_FAMILY = (
    ("banded_min", _banded_min, _seq_banded_min,
     "banded halving: O(lg m) grouped-minimum levels"),
    ("banded_max", _banded_max, _seq_banded_max,
     "banded halving on the negated band"),
    ("windowed_min", _windowed_min, None,
     "window runs split into banded / staircase / direct cases"),
)

for _problem, _fn, _seqfn, _hint in _WINDOW_FAMILY:
    register(SolverSpec(
        problem=_problem, backend="pram-crcw", fn=_fn, strategies=(),
        machine="pram", bound_hint=_hint,
        bound_rounds=_banded_bound_crcw, nodes_for=_row_shape_nodes,
        kernel_tiers=_ALL_TIERS,
    ))
    register(SolverSpec(
        problem=_problem, backend="pram-crew", fn=_fn, strategies=(),
        machine="pram", bound_hint=_hint,
        bound_rounds=_banded_bound_crew, nodes_for=_row_shape_nodes,
        kernel_tiers=_ALL_TIERS,
    ))
    if _seqfn is not None:
        for _net in NETWORK_BACKENDS:
            register(SolverSpec(
                problem=_problem, backend=_net, fn=_fn, strategies=(),
                machine="network", bound_hint=_hint,
                bound_rounds=_net_bound, nodes_for=_row_shape_nodes,
            ))
        register(SolverSpec(
            problem=_problem, backend="sequential", fn=_seqfn, strategies=(),
            machine="none", bound_hint=_hint,
            bound_rounds=None, nodes_for=None,
        ))

# Submatrix maxima: the precompute-once family.  The one-shot solver
# answers a single (row_range, col_range) rectangle by row maxima over
# the sub-array; the `prepare` capability instead builds a MongeIndex
# (envelope segment tree over row blocks) that amortizes the build cost
# across many rectangles.  Not batchable/shardable: rectangle queries
# have data-dependent sub-shapes, so ChargeFan replay has nothing
# uniform to fan out over.
for _backend, _bound in (
    ("pram-crcw", _row_bound_crcw),
    ("pram-crew", _row_bound_crew),
):
    register(SolverSpec(
        problem="submatrix_max", backend=_backend, fn=_submatrix_max,
        strategies=(), machine="pram",
        bound_hint="row maxima over the rectangle + one reduce round",
        bound_rounds=_bound, nodes_for=_row_shape_nodes,
        prepare=_prepare_submatrix, kernel_tiers=_ALL_TIERS,
    ))
register(SolverSpec(
    problem="submatrix_max", backend="sequential", fn=_seq_submatrix_max,
    strategies=(), machine="none",
    bound_hint="SMAWK row maxima over the rectangle: O(h+w) evaluations",
    bound_rounds=None, nodes_for=None, prepare=_prepare_submatrix,
))

del (_PRAM_FAMILY, _SEQUENTIAL, _WINDOW_FAMILY, _ALL_TIERS, _problem,
     _fn, _seqfn, _strats, _cert, _hint, _net, _tube, _nodes, _batch,
     _backend, _bound)
