"""The staged query lifecycle: executors behind one interface.

A query moves through five stages (DESIGN.md §14): **plan** (lower the
request to a :class:`~repro.engine.planner.QueryPlan`), **admit** (each
:class:`Executor` inspects a bucket and claims it or passes), **group**
(:func:`~repro.engine.planner.group_plans` buckets compatible plans),
**execute** (the claiming executor runs the bucket), and **settle**
(merge sub-accounts, re-emit warnings, record the query).  The
:class:`~repro.engine.session.Session` owns machine construction and
bookkeeping; *how* a bucket runs — serially, as one fused stacked
sweep, or scattered across worker processes — is decided here, by
walking :data:`EXECUTORS` in priority order and taking the first
executor whose :meth:`~Executor.admit` accepts the bucket.

The three executors are ports of the former ``Session._execute_*``
branches and preserve their observable behavior bit-for-bit (values,
witnesses, per-query ledger snapshots, trace totals —
``tests/data/pre_refactor_snapshots.json`` pins this):

* :class:`SerialExecutor` — the unchanged per-query path: a private
  :class:`~repro.pram.ledger.CostLedger` sub-account per query, with
  resilience (retry / certify) and tracing applied as stage wrappers
  (:func:`ledger_swap`, :func:`run_attempts`, :class:`_SerialTrace`).
* :class:`FusedExecutor` — one stacked multi-query sweep per bucket,
  per-query charges replayed by a
  :class:`~repro.kernels.chargefan.ChargeFan`.
* :class:`ShardedExecutor` — the fused sweep scattered across worker
  processes over shared memory (``repro.shard``); an unrecoverable
  :class:`~repro.shard.executor.ShardError` falls back to the
  in-process fused executor (wall-clock degrades, answers never do).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.engine.planner import QueryPlan, group_plans
from repro.engine.result import SearchResult
from repro.obs.metrics import metrics
from repro.obs.tracer import Tracer
from repro.pram.ledger import CostLedger

__all__ = [
    "Executor",
    "SerialExecutor",
    "FusedExecutor",
    "ShardedExecutor",
    "EXECUTORS",
    "SERIAL",
    "execute_bucket",
    "run_plans",
    "fused_ready",
    "shard_width",
    "ledger_swap",
    "run_attempts",
]


# --------------------------------------------------------------------- #
# stage wrappers (resilience / tracing / ledger sub-accounts)
# --------------------------------------------------------------------- #
@contextmanager
def ledger_swap(machine, qledger, fault_plan):
    """Swap a machine's ledger (and faults) for a query sub-account.

    Covers the network ledger too (cube machines charge through it);
    restores the saved pair(s) on exit, success or not.  A ``None``
    machine (sequential backend) is a no-op.
    """
    if machine is None:
        yield
        return
    saved = (machine.ledger, machine.faults)
    machine.ledger = qledger
    machine.faults = fault_plan
    has_net = hasattr(machine, "network")
    if has_net:
        saved_net = (machine.network.ledger, machine.network.faults)
        machine.network.ledger = qledger
        machine.network.faults = fault_plan
    try:
        yield
    finally:
        machine.ledger, machine.faults = saved
        if has_net:
            machine.network.ledger, machine.network.faults = saved_net


def run_attempts(spec, plan: QueryPlan, fault_plan, attempt):
    """Resilience stage: run ``attempt`` plain or under ``run_resilient``.

    Returns ``(values, witnesses, certificate, retries)``.  The retry
    path certifies inside the resilience executor (a failing certificate
    triggers a replay); the plain path certifies after the fact and
    raises on a bad witness.
    """
    cfg = plan.config
    if cfg.retries > 0 and spec.machine != "none":
        from repro.resilience.executor import run_resilient

        certifier = (
            (lambda out: spec.certifier(plan.data, out[0], out[1]))
            if cfg.certify
            else None
        )
        report = run_resilient(
            attempt,
            certify=certifier,
            plan=fault_plan,
            max_attempts=cfg.retries + 1,
        )
        values, witnesses = report.result
        return values, witnesses, report.attempts[-1].certificate, report.n_attempts - 1
    values, witnesses = attempt()
    certificate = None
    if cfg.certify:
        certificate = spec.certifier(plan.data, values, witnesses)
        certificate.require()
    return values, witnesses, certificate, 0


class _SerialTrace:
    """Tracing stage for the serial path: the solve span, per-attempt
    spans on the resilient path, and the final :class:`Trace` assembly.
    Every method is a no-op when tracing is off."""

    def __init__(self, plan: QueryPlan, backend: str, kernel_tier: str,
                 qledger, fault_plan, track_attempts: bool) -> None:
        cfg = plan.config
        self.tracer = Tracer() if cfg.trace else None
        self.qledger = qledger
        self.fault_plan = fault_plan
        self.track_attempts = track_attempts
        self.solve_span = None
        self._span = None
        self._n = 0
        self._fired0 = 0
        if self.tracer is not None:
            self.solve_span = self.tracer.begin(
                "solve",
                "solve",
                problem=plan.problem,
                backend=backend,
                strategy=plan.strategy,
                shape=plan.shape,
                kernel_tier=kernel_tier,
            )
            if qledger is not None:
                self.tracer.bind(qledger, self.solve_span)

    def _fired(self) -> int:
        return self.fault_plan.total_fired if self.fault_plan is not None else 0

    def before_reset(self) -> None:
        """An attempt is about to wipe the sub-account: discard the
        previous attempt span (its charges are being replayed)."""
        if self.tracer is None or self.qledger is None:
            return
        prev = self._span
        if prev is not None:
            prev.discarded = True
            prev.attrs["faults_fired"] = self._fired() - self._fired0
            self.tracer.end(prev)

    def after_reset(self) -> None:
        """The sub-account was reset: rebind it and (on the resilient
        path) open the next attempt span."""
        if self.tracer is None or self.qledger is None:
            return
        self.tracer.rebind(self.qledger)
        if self.track_attempts:
            self._n += 1
            self._fired0 = self._fired()
            self._span = self.tracer.push(
                self.qledger, f"attempt-{self._n}", "attempt", index=self._n
            )

    def close_attempts(self) -> None:
        if self.tracer is not None and self.qledger is not None:
            if self._span is not None:
                self._span.attrs["faults_fired"] = self._fired() - self._fired0
                self.tracer.pop(self.qledger, self._span)
            self.tracer.unbind(self.qledger)

    def finalize(self, retries: int, degradation: list, certificate):
        if self.tracer is None:
            return None
        self.solve_span.attrs["retries"] = retries
        self.solve_span.attrs["degraded"] = bool(degradation)
        if certificate is not None:
            self.solve_span.attrs["certified"] = bool(certificate.ok)
            self.solve_span.attrs["certify_evals"] = int(certificate.evals)
        self.tracer.end(self.solve_span)
        return self.tracer.trace(self.solve_span)


# --------------------------------------------------------------------- #
# admission predicates (machine-level; plan-level ones live in planner)
# --------------------------------------------------------------------- #
def fused_ready(session, plan: QueryPlan) -> bool:
    """Machine-level fusion conditions.  A bucket that fails these runs
    serially — same results, same per-query snapshots, just no shared
    sweep."""
    from repro.kernels.registry import get_tier, resolve_kernel_tier
    from repro.pram.machine import Pram

    if plan.fused_key is None:
        return False
    if not get_tier(resolve_kernel_tier(plan.config.kernel_tier)).fused:
        # the reference tier has no stacked-sweep kernel: every query
        # runs its own round-by-round simulation
        return False
    nodes = plan.spec.nodes_for(plan.shape) if plan.spec.nodes_for is not None else 2
    machine = session.machine(nodes)
    if machine is None or type(machine) is not Pram:
        # Brent machines time-slice charges and NetworkMachines execute
        # genuinely on the network — both stay per-query.
        return False
    if machine.faults is not None and not getattr(
        machine.faults, "shard_only", False
    ):
        # shard-only plans never perturb the machines (the supervisor
        # draws them parent-side), so fusion stays legal under them.
        return False
    if machine.ledger.processor_limit is not None or machine.processors < (1 << 40):
        # fused sweeps charge global (summed) sizes against the
        # throwaway ledger; a bounded budget could reject a batch whose
        # individual queries all fit.
        return False
    return True


def shard_width(session, bucket: List[QueryPlan]) -> int:
    """The effective worker count for one fused bucket (1 = stay
    in-process).  Sharding is owner-granular — whole queries are
    distributed, never rows of one query — because that is the
    granularity at which ChargeFan replay keeps ledgers bit-identical
    (DESIGN.md §11); single-query buckets therefore never shard, and
    neither do buckets whose inputs would need materializing to reach
    shared memory."""
    from repro.shard.config import resolve_shards
    from repro.shard.executor import shardable_payload

    plan = bucket[0]
    width = resolve_shards(plan.config.shards)
    if width <= 1 or not plan.spec.shardable or len(bucket) < 2:
        return 1
    if any(shardable_payload(p.data) is None for p in bucket):
        return 1
    return min(width, len(bucket))


# --------------------------------------------------------------------- #
# the executor interface and its three implementations
# --------------------------------------------------------------------- #
class Executor:
    """One way to run a bucket of compatible plans.

    ``admit`` inspects a bucket and returns an admission dict (possibly
    empty) to claim it, or ``None`` to pass; ``execute`` runs a claimed
    bucket.  :func:`execute_bucket` walks :data:`EXECUTORS` in priority
    order and dispatches to the first claimant; an executor whose
    ``execute`` raises one of its :meth:`recoverable` errors is skipped
    (after :meth:`on_fallback`) and the walk continues.
    """

    name = "executor"
    #: group-dict flags (merged with the admission)
    fused = False

    def admit(self, session, bucket: List[QueryPlan]) -> Optional[dict]:
        raise NotImplementedError

    def execute(self, session, bucket: List[QueryPlan], admission: dict
                ) -> List[SearchResult]:
        raise NotImplementedError

    def recoverable(self) -> tuple:
        """Exception classes ``execute`` may raise that mean "let the
        next executor take the bucket" rather than "fail the batch"."""
        return ()

    def on_success(self, bucket: List[QueryPlan]) -> None:
        """Per-executor metrics, bumped after a successful execution."""

    def on_fallback(self, bucket: List[QueryPlan]) -> None:
        """Metrics for a recoverable failure handed down the chain."""

    def shards_used(self, admission: dict) -> int:
        return 1


class SerialExecutor(Executor):
    """The unchanged per-query path; admits every bucket (it is the
    chain's terminal executor) and runs each plan on its own ledger
    sub-account with resilience and tracing stage wrappers."""

    name = "serial"
    fused = False

    def admit(self, session, bucket: List[QueryPlan]) -> Optional[dict]:
        return {}

    def execute(self, session, bucket, admission) -> List[SearchResult]:
        return [self.execute_plan(session, plan) for plan in bucket]

    def execute_plan(self, session, plan: QueryPlan) -> SearchResult:
        """Run one plan serially and settle it into a SearchResult."""
        from repro.kernels.registry import resolve_kernel_tier, tier_context

        spec, cfg, data = plan.spec, plan.config, plan.data
        kernel_tier = resolve_kernel_tier(cfg.kernel_tier)
        nodes = spec.nodes_for(plan.shape) if spec.nodes_for is not None else 2
        machine = session.machine(nodes)

        fault_plan = cfg.faults if cfg.faults is not None else session.faults
        limit = machine.ledger.processor_limit if machine is not None else None
        qledger = CostLedger(processor_limit=limit) if machine is not None else None
        caught: List[warnings.WarningMessage] = []

        # attempt spans only exist on the resilient path; the plain path
        # records charges straight onto the solve span
        track_attempts = cfg.retries > 0 and spec.machine != "none"
        tracing = _SerialTrace(
            plan, session.backend, kernel_tier, qledger, fault_plan, track_attempts
        )

        def attempt():
            caught.clear()
            if qledger is not None:
                tracing.before_reset()
                # reset the sub-account so a replayed attempt starts clean
                qledger.__init__(processor_limit=limit)
                tracing.after_reset()
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                out = spec.fn(machine, data, cfg, plan.strategy)
            caught.extend(rec)
            return out

        with ledger_swap(machine, qledger, fault_plan):
            try:
                with tier_context(cfg.kernel_tier, cfg.tile_bytes):
                    values, witnesses, certificate, retries = run_attempts(
                        spec, plan, fault_plan, attempt
                    )
            finally:
                tracing.close_attempts()

        snapshot = qledger.snapshot() if qledger is not None else None
        if qledger is not None:
            session.ledger.merge(qledger)
        # record degradation events; re-emit everything captured so
        # ambient filters (pytest.warns, -W error) still see the warnings
        from repro.resilience.degrade import DegradedResultWarning

        degradation = [
            w.message for w in caught if issubclass(w.category, DegradedResultWarning)
        ]
        for w in caught:
            warnings.warn_explicit(w.message, w.category, w.filename, w.lineno)

        trace = tracing.finalize(retries, degradation, certificate)

        return SearchResult(
            values=values,
            witnesses=witnesses,
            problem=plan.problem,
            backend=session.backend,
            strategy=plan.strategy,
            snapshot=snapshot,
            ledger=qledger,
            certificate=certificate,
            degradation=degradation,
            retries=retries,
            trace=trace,
        )


class FusedExecutor(Executor):
    """One stacked multi-query sweep per bucket.  Per-query ledgers are
    populated by a :class:`~repro.kernels.chargefan.ChargeFan` replaying
    each owner's serial charge sequence — snapshots come out
    bit-identical to the serial path's (tests/test_engine_batch.py pins
    this)."""

    name = "fused"
    fused = True

    def admit(self, session, bucket: List[QueryPlan]) -> Optional[dict]:
        if len(bucket) >= 2 and fused_ready(session, bucket[0]):
            return {}
        return None

    def on_success(self, bucket: List[QueryPlan]) -> None:
        metrics().counter("engine.batch.fused_queries").inc(len(bucket))

    def execute(self, session, bucket, admission) -> List[SearchResult]:
        from repro.core.rowmin_pram import batched_row_extrema
        from repro.kernels.chargefan import ChargeFan
        from repro.kernels.registry import resolve_kernel_tier, tier_context

        spec = bucket[0].spec
        cfg = bucket[0].config
        kernel_tier = resolve_kernel_tier(cfg.kernel_tier)
        nodes = spec.nodes_for(bucket[0].shape) if spec.nodes_for is not None else 2
        machine = session.machine(nodes)
        limit = machine.ledger.processor_limit
        qledgers = [CostLedger(processor_limit=limit) for _ in bucket]
        fan = ChargeFan(
            qledgers, crcw=machine.model.is_crcw, budget=machine.processors
        )
        scratch = CostLedger(processor_limit=limit)

        # trace is part of the fusion fingerprint, so the whole bucket
        # agrees; the sweep's global charges land on a "stacked-sweep"
        # span while each owner's replayed charges land on its own solve
        # span — per-query totals stay bit-identical to the serial path.
        tracer = Tracer() if cfg.trace else None
        qspans: List = []
        if tracer is not None:
            bucket_span = tracer.begin(
                "bucket",
                "bucket",
                problem=spec.problem,
                backend=session.backend,
                strategy=bucket[0].strategy,
                shape=bucket[0].shape,
                count=len(bucket),
                fused=True,
                kernel_tier=kernel_tier,
            )
            sweep_span = tracer.begin("stacked-sweep", "sweep", parent=bucket_span)
            tracer.bind(scratch, sweep_span)
            for plan, qledger in zip(bucket, qledgers):
                qspan = tracer.begin(
                    "solve",
                    "solve",
                    parent=bucket_span,
                    problem=plan.problem,
                    backend=session.backend,
                    strategy=plan.strategy,
                    shape=plan.shape,
                    fused=True,
                )
                tracer.bind(qledger, qspan)
                qspans.append(qspan)

        with ledger_swap(machine, scratch, None):
            try:
                with tier_context(cfg.kernel_tier, cfg.tile_bytes):
                    outs = batched_row_extrema(
                        machine,
                        [p.data for p in bucket],
                        problem=spec.problem,
                        cache=cfg.cache,
                        fan=fan,
                    )
            finally:
                if tracer is not None:
                    tracer.unbind(scratch)
                    tracer.end(sweep_span)
                    for qledger, qspan in zip(qledgers, qspans):
                        tracer.unbind(qledger)
                        tracer.end(qspan)
                    tracer.end(bucket_span)

        certificates = _certify_bucket(spec, bucket, outs)

        results: List[SearchResult] = []
        for i, (plan, (values, witnesses), qledger, certificate) in enumerate(zip(
            bucket, outs, qledgers, certificates
        )):
            session.ledger.merge(qledger)
            trace = None
            if tracer is not None:
                if certificate is not None:
                    qspans[i].attrs["certified"] = bool(certificate.ok)
                    qspans[i].attrs["certify_evals"] = int(certificate.evals)
                trace = tracer.trace(qspans[i])
            results.append(_settle(session, plan, values, witnesses, qledger,
                                   certificate, trace))
        return results


class ShardedExecutor(FusedExecutor):
    """The fused sweep scattered across worker processes.

    The bucket's owner range is cut into contiguous blocks; each worker
    runs the ordinary stacked sweep on its block against the
    shared-memory tensors and returns values, witnesses, and a
    charge-replay log per owner.  The parent replays each owner's log
    onto its real ledger sub-account — observers (tracer spans) fire
    exactly as the serial run's would — so snapshots, traces, and
    certificates are bit-identical to the in-process fused path
    (tests/test_shard_equivalence.py pins this).  Dispatch runs under
    supervision (deadlines / retry / hedging / quarantine, DESIGN.md
    §12), driven by ``shard_timeout`` and any shard-only fault plan in
    play.  ``execute`` raises
    :class:`~repro.shard.executor.ShardError` only when a shard is
    unrecoverable even in-process; the driver then hands the bucket to
    the in-process :class:`FusedExecutor`.
    """

    name = "sharded"
    fused = True

    def admit(self, session, bucket: List[QueryPlan]) -> Optional[dict]:
        if FusedExecutor.admit(self, session, bucket) is None:
            return None
        width = shard_width(session, bucket)
        if width <= 1:
            return None
        return {"shards": width}

    def recoverable(self) -> tuple:
        from repro.shard.executor import ShardError

        return (ShardError,)

    def on_success(self, bucket: List[QueryPlan]) -> None:
        m = metrics()
        m.counter("engine.batch.sharded_queries").inc(len(bucket))
        m.counter("engine.batch.fused_queries").inc(len(bucket))

    def on_fallback(self, bucket: List[QueryPlan]) -> None:
        # a broken pool degrades wall-clock, never answers
        metrics().counter("shard.fallbacks").inc()

    def shards_used(self, admission: dict) -> int:
        return admission["shards"]

    def execute(self, session, bucket, admission) -> List[SearchResult]:
        from repro.kernels.registry import resolve_kernel_tier, resolve_tile_bytes
        from repro.shard.config import resolve_shard_timeout
        from repro.shard.executor import get_executor, shardable_payload
        from repro.shard.recording import replay_events
        from repro.shard.supervise import default_policy

        shards = admission["shards"]
        spec = bucket[0].spec
        cfg = bucket[0].config
        # resolve tier and tile budget parent-side: workers (fork or
        # spawn) receive explicit values and never consult env state
        kernel_tier = resolve_kernel_tier(cfg.kernel_tier)
        tile_bytes = resolve_tile_bytes(cfg.tile_bytes)
        nodes = spec.nodes_for(bucket[0].shape) if spec.nodes_for is not None else 2
        machine = session.machine(nodes)
        limit = machine.ledger.processor_limit
        qledgers = [CostLedger(processor_limit=limit) for _ in bucket]
        payloads = [shardable_payload(p.data) for p in bucket]
        executor = get_executor(workers=shards)

        tracer = Tracer() if cfg.trace else None
        bucket_span = None
        if tracer is not None:
            bucket_span = tracer.begin(
                "bucket",
                "bucket",
                problem=spec.problem,
                backend=session.backend,
                strategy=bucket[0].strategy,
                shape=bucket[0].shape,
                count=len(bucket),
                fused=True,
                shards=shards,
                start_method=executor.start_method,
                kernel_tier=kernel_tier,
            )
        # shard-only fault plans reach the supervisor (machine plans never
        # get here: they disqualify fusion, hence sharding, at plan time)
        faults = cfg.faults if cfg.faults is not None else machine.faults
        shard_plan, shard_results, report = executor.run_bucket(
            payloads,
            problem=spec.problem,
            cache=cfg.cache,
            model=machine.model.name,
            budget=machine.processors,
            shards=shards,
            policy=default_policy(resolve_shard_timeout(cfg.shard_timeout)),
            faults=faults,
            kernel_tier=kernel_tier,
            tile_bytes=tile_bytes,
        )

        walls = [res["wall_s"] for res in shard_results]
        imbalance = (max(walls) / (sum(walls) / len(walls))) if sum(walls) > 0 else 1.0
        m = metrics()
        m.histogram("shard.imbalance").observe(imbalance)
        m.counter("shard.buckets").inc()
        m.counter("shard.tasks").inc(len(shard_results))
        if tracer is not None:
            bucket_span.attrs["imbalance"] = imbalance
            if report.recovered:
                bucket_span.attrs["recovered"] = True
            for k, ((lo, hi), res) in enumerate(zip(shard_plan.ranges, shard_results)):
                tr = report.tasks[k]
                span = tracer.begin(
                    f"shard-{k}",
                    "shard",
                    parent=bucket_span,
                    owners=hi - lo,
                    rows=int(sum(shard_plan.weights[lo:hi])),
                    wall_s=res["wall_s"],
                    sweep_rounds=res["sweep"]["rounds"],
                    attempt=tr.attempts,
                    hedged=tr.hedged,
                )
                if tr.timeouts:
                    span.attrs["timeouts"] = tr.timeouts
                if tr.partial_fallback:
                    span.attrs["fallback"] = "in-process"
                tracer.end(span)

        outs = [pair for res in shard_results for pair in res["outs"]]
        events = [log for res in shard_results for log in res["events"]]
        evals = [count for res in shard_results for count in res["evals"]]

        qspans: List = []
        for i, (plan, qledger) in enumerate(zip(bucket, qledgers)):
            qspan = None
            if tracer is not None:
                qspan = tracer.begin(
                    "solve",
                    "solve",
                    parent=bucket_span,
                    problem=plan.problem,
                    backend=session.backend,
                    strategy=plan.strategy,
                    shape=plan.shape,
                    fused=True,
                )
                tracer.bind(qledger, qspan)
                qspans.append(qspan)
            replay_events(qledger, events[i])
            if tracer is not None:
                tracer.unbind(qledger)
                tracer.end(qspan)
            # workers evaluated entries on their own mappings; fold the
            # counts back so the source arrays' eval_count stays the
            # observable quantity it is on every other path
            counted = getattr(plan.data, "eval_count", None)
            if counted is not None:
                plan.data.eval_count = counted + evals[i]
        if tracer is not None:
            tracer.end(bucket_span)

        certificates = _certify_bucket(spec, bucket, outs)

        results: List[SearchResult] = []
        for i, (plan, (values, witnesses), qledger, certificate) in enumerate(zip(
            bucket, outs, qledgers, certificates
        )):
            session.ledger.merge(qledger)
            trace = None
            if tracer is not None:
                if certificate is not None:
                    qspans[i].attrs["certified"] = bool(certificate.ok)
                    qspans[i].attrs["certify_evals"] = int(certificate.evals)
                trace = tracer.trace(qspans[i])
            results.append(_settle(session, plan, values, witnesses, qledger,
                                   certificate, trace))
        return results


def _certify_bucket(spec, bucket: List[QueryPlan], outs) -> List:
    """Compute every requested certificate first, then require() them —
    a failing query reports after all certificates exist (matches the
    pre-refactor two-loop behavior)."""
    certificates: List = []
    for plan, (values, witnesses) in zip(bucket, outs):
        if plan.config.certify:
            certificates.append(spec.certifier(plan.data, values, witnesses))
        else:
            certificates.append(None)
    for certificate in certificates:
        if certificate is not None:
            certificate.require()
    return certificates


def _settle(session, plan: QueryPlan, values, witnesses, qledger,
            certificate, trace) -> SearchResult:
    """The settle stage for fused-class results (the qledger is already
    merged by the caller, which interleaves merging with span reads)."""
    return SearchResult(
        values=values,
        witnesses=witnesses,
        problem=plan.problem,
        backend=session.backend,
        strategy=plan.strategy,
        snapshot=qledger.snapshot(),
        ledger=qledger,
        certificate=certificate,
        degradation=[],
        retries=0,
        trace=trace,
    )


#: Priority-ordered executor chain; the terminal SerialExecutor admits
#: everything, so the walk in :func:`execute_bucket` always terminates.
SERIAL = SerialExecutor()
EXECUTORS: Tuple[Executor, ...] = (ShardedExecutor(), FusedExecutor(), SERIAL)


def execute_bucket(session, bucket: List[QueryPlan]
                   ) -> Tuple[List[SearchResult], dict]:
    """Run one bucket through the executor chain.

    Walks :data:`EXECUTORS` in priority order, dispatches to the first
    executor that admits the bucket, and falls through to the next on a
    recoverable error.  Returns the results plus the group dict
    recording what actually ran (``fused`` flag, effective ``shards``).
    """
    for executor in EXECUTORS:
        admission = executor.admit(session, bucket)
        if admission is None:
            continue
        try:
            results = executor.execute(session, bucket, admission)
        except executor.recoverable():
            executor.on_fallback(bucket)
            continue
        executor.on_success(bucket)
        return results, {
            "problem": bucket[0].problem,
            "backend": session.backend,
            "strategy": bucket[0].strategy,
            "shape": bucket[0].shape,
            "count": len(bucket),
            "fused": executor.fused,
            "shards": executor.shards_used(admission),
        }
    raise AssertionError("executor chain exhausted (SerialExecutor admits all)")


def run_plans(session, plans: List[QueryPlan]
              ) -> Tuple[List[SearchResult], List[dict]]:
    """Stages 2–4 for a batch: group the plans, walk the buckets through
    the executor chain, and return results (input order) plus the group
    dicts (bucket order).

    ``plans`` may carry *any* distinct indices — results are reassembled
    by each plan's **position in the argument list**, not by
    ``plan.index``.  The pre-serve implementation assumed buckets are
    built once per ``solve_many`` call with contiguous ``0..n-1``
    indices; the query service violates that (it plans each request at
    admission with a service-lifetime sequence number and flushes
    arbitrary subsets per window), so the assumption is gone and
    tests/test_engine_planner.py pins the interleaved-arrival case.
    """
    position = {id(plan): i for i, plan in enumerate(plans)}
    buckets = group_plans(plans)
    m = metrics()
    m.counter("engine.batch.calls").inc()
    m.counter("engine.batch.queries").inc(len(plans))
    results: List[Optional[SearchResult]] = [None] * len(plans)
    groups: List[dict] = []
    for bucket in buckets:
        outs, group = execute_bucket(session, bucket)
        for plan, result in zip(bucket, outs):
            results[position[id(plan)]] = result
        groups.append(group)
    return results, groups
