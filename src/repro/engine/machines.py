"""Machine construction, cloning, and parallel-composition accounting.

The engine is the one place that knows how to turn a backend key into a
simulated machine: PRAM backends get a :class:`~repro.pram.machine.Pram`
(or :class:`~repro.pram.scheduling.BrentPram` when a physical budget is
given), network backends get a :class:`~repro.core.network_machine.NetworkMachine`
over the named topology, and the sequential backend gets no machine at
all.  The clone/compose helpers that used to live (twice) in
:mod:`repro.core.accounting` and :mod:`repro.apps.string_edit` now live
here; the old import paths re-export them.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram

__all__ = [
    "TOPOLOGIES",
    "backend_of",
    "build_machine",
    "fresh_clone",
    "charge_parallel",
]

#: Engine backend key → network topology class (late-bound by name; the
#: classes themselves live in :mod:`repro.networks`).
TOPOLOGIES = ("hypercube", "ccc", "shuffle-exchange")


def _topology_classes():
    from repro.networks import CubeConnectedCycles, Hypercube, ShuffleExchange

    return {
        "hypercube": Hypercube,
        "ccc": CubeConnectedCycles,
        "shuffle-exchange": ShuffleExchange,
    }


def backend_of(machine: Optional[Pram]) -> str:
    """The registry backend key a machine (or ``None``) resolves to."""
    if machine is None:
        return "sequential"
    from repro.core.network_machine import NetworkMachine

    if isinstance(machine, NetworkMachine):
        for name, cls in _topology_classes().items():
            if isinstance(machine.network, cls):
                return name
        raise ValueError(
            f"unrecognized network topology {type(machine.network).__name__!r}"
        )
    return "pram-crcw" if machine.model.is_crcw else "pram-crew"


def build_machine(
    backend: str,
    nodes: int,
    *,
    processors: Optional[int] = None,
    physical_processors: Optional[int] = None,
    validate: bool = False,
    faults=None,
    retry_limit: int = 8,
    ledger: Optional[CostLedger] = None,
) -> Optional[Pram]:
    """A fresh machine for ``backend``, sized for ``nodes`` logical nodes.

    ``processors`` overrides the PRAM budget (default: effectively
    unbounded, matching the legacy entry points).  ``nodes`` drives
    network dimensioning only.  Returns ``None`` for ``"sequential"``.
    """
    if ledger is None:
        ledger = CostLedger()
    if backend == "sequential":
        return None
    if backend in TOPOLOGIES:
        from repro._util.bits import ceil_log2
        from repro.core.network_machine import NetworkMachine

        cls = _topology_classes()[backend]
        dim = ceil_log2(max(2, nodes))
        return NetworkMachine(
            cls(dim, ledger=ledger, faults=faults, retry_limit=retry_limit)
        )
    if backend in ("pram-crcw", "pram-crew"):
        from repro.pram.models import CREW
        from repro.pram.models import CRCW_COMMON

        model = CRCW_COMMON if backend == "pram-crcw" else CREW
        budget = (1 << 40) if processors is None else int(processors)
        if physical_processors is not None:
            from repro.pram.scheduling import BrentPram

            return BrentPram(
                model,
                budget,
                physical_processors,
                ledger=ledger,
                validate=validate,
                faults=faults,
                retry_limit=retry_limit,
            )
        return Pram(
            model,
            budget,
            ledger=ledger,
            validate=validate,
            faults=faults,
            retry_limit=retry_limit,
        )
    raise ValueError(f"unknown backend {backend!r}")


def fresh_clone(machine: Pram) -> Pram:
    """A same-configuration machine with an independent ledger."""
    from repro.core.network_machine import NetworkMachine
    from repro.pram.scheduling import BrentPram

    if isinstance(machine, NetworkMachine):
        net = type(machine.network)(machine.network.dim, ledger=CostLedger())
        return NetworkMachine(net)
    if isinstance(machine, BrentPram):
        return BrentPram(
            machine.model,
            machine.processors,
            machine.physical_processors,
            ledger=CostLedger(),
        )
    return Pram(machine.model, machine.processors, ledger=CostLedger())


def charge_parallel(machine: Pram, ledgers: Iterable[CostLedger]) -> None:
    """Fold sibling ledgers into ``machine`` as one concurrent phase."""
    rounds = 0
    work = 0
    peak = 0
    for led in ledgers:
        rounds = max(rounds, led.rounds)
        work += led.work
        peak += led.peak_processors
    if rounds:
        machine.ledger.charge(rounds=rounds, processors=max(1, peak), work=work)
