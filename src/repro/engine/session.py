"""Sessions and the ``solve`` / ``solve_many`` front doors.

A :class:`Session` owns machine construction and reuse for one backend
and answers repeated :meth:`~Session.solve` calls.  Each query runs on a
private :class:`~repro.pram.ledger.CostLedger` sub-account (the session
swaps the machine's ledger in for the duration of the query and merges
the sub-account back afterwards), so callers get both the per-query
snapshot on the :class:`~repro.engine.result.SearchResult` and a running
session total on :attr:`Session.ledger`.

Queries execute through the staged lifecycle (DESIGN.md §14):
:func:`~repro.engine.planner.plan_query` lowers each request to a
declarative :class:`~repro.engine.planner.QueryPlan`,
:func:`~repro.engine.planner.group_plans` buckets compatible plans, and
:func:`repro.engine.lifecycle.run_plans` walks each bucket down the
executor chain (:data:`~repro.engine.lifecycle.EXECUTORS`: sharded →
fused → serial) — the session itself never branches on *how* a bucket
runs.  :meth:`Session.solve` is simply a one-plan serial execution, and
:meth:`Session.prepare` is the build-once entry of the precompute-once
path (:mod:`repro.engine.prepared`).

:func:`solve` / :func:`solve_many` are the one-shot module-level
entries: they resolve a backend (``"auto"`` picks the CRCW PRAM, the
Tables' best bounds), spin up a throwaway session, and return the
result(s).

:func:`dispatch_on` is the zero-overhead path the legacy
:mod:`repro.core` wrappers use: it resolves the registry solver for an
*existing* machine and calls straight through — no ledger swap, no
warning capture, no added charges — so pre-engine call sites keep
bit-identical ledgers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.config import ExecutionConfig
from repro.engine.lifecycle import SERIAL, run_plans
from repro.engine.machines import backend_of, build_machine
from repro.engine.planner import QueryPlan, plan_query, shape_of
from repro.engine.registry import (
    BACKENDS,
    CapabilityError,
    SolverSpec,
    registry,
)
from repro.engine.result import BatchResult, SearchResult
from repro.obs.metrics import metrics
from repro.pram.ledger import CostLedger

__all__ = ["Session", "QueryRecord", "solve", "solve_many", "dispatch_on"]

# Back-compat alias: the shape key now lives in the planner.
_shape_of = shape_of


def dispatch_on(machine, problem: str, data, config: ExecutionConfig):
    """Run ``problem`` on an existing machine through the registry.

    This is pure indirection: the solver is called with the machine as
    given — same ledger, same faults, same strict/degrade semantics —
    so it charges exactly what the pre-engine entry point charged.
    Returns the raw ``(values, witnesses)`` pair.
    """
    backend = backend_of(machine)
    spec = registry.lookup(problem, backend)
    crcw = machine is not None and machine.model.is_crcw
    strategy = config.resolve_strategy(problem, crcw)
    spec.check_strategy(strategy)
    return spec.fn(machine, data, config, strategy)


@dataclass
class QueryRecord:
    """One row of a session's query log."""

    index: int
    problem: str
    backend: str
    strategy: str
    shape: Tuple[int, ...]
    snapshot: Optional[dict]
    certified: Optional[bool]
    degraded: bool
    retries: int
    within_bound: bool


class Session:
    """A reusable solving context bound to one backend.

    Parameters
    ----------
    backend:
        An engine backend key (``"auto"`` resolves to ``"pram-crcw"``),
        or pass ``machine=`` to adopt an existing machine and infer the
        backend from it.
    processors, physical_processors, validate, retry_limit:
        Machine-construction knobs forwarded to
        :func:`repro.engine.machines.build_machine`.  A
        ``physical_processors`` budget yields a Brent-scheduled PRAM.
    faults:
        Session-wide default fault plan; a query config's ``faults``
        overrides it for that query.
    config:
        Session-default :class:`ExecutionConfig` (per-query configs /
        keyword overrides derive from it).
    """

    def __init__(
        self,
        backend: str = "auto",
        *,
        machine=None,
        processors: Optional[int] = None,
        physical_processors: Optional[int] = None,
        validate: bool = False,
        faults=None,
        retry_limit: int = 8,
        config: Optional[ExecutionConfig] = None,
        index_cache: int = 8,
    ) -> None:
        if machine is not None:
            backend = backend_of(machine)
        elif backend == "auto":
            backend = "pram-crcw"
        if backend not in BACKENDS:
            raise CapabilityError(
                f"unknown backend {backend!r}; expected one of {BACKENDS} or 'auto'"
            )
        self.backend = backend
        self.config = config if config is not None else ExecutionConfig()
        self.processors = processors
        self.physical_processors = physical_processors
        self.validate = validate
        self.faults = faults
        self.retry_limit = retry_limit
        #: Session-lifetime aggregate of every query's sub-account.
        self.ledger = CostLedger()
        #: One :class:`QueryRecord` per completed query.
        self.queries: List[QueryRecord] = []
        #: LRU capacity for prepared handles (repro.engine.prepared).
        self.index_cache = index_cache
        self._prepared: "OrderedDict" = OrderedDict()
        self._machine = machine
        self._adopted = machine is not None

    # ------------------------------------------------------------------ #
    def machine(self, nodes: int = 2):
        """The session's machine, (re)built to cover ``nodes`` logical nodes.

        PRAM machines are unbounded by default and built once; network
        machines are rebuilt only when a query needs a larger cube
        dimension (growing preserves the session ledger — sub-accounts
        are swapped in per query regardless).  Sequential sessions have
        no machine (returns ``None``).
        """
        if self.backend == "sequential":
            return None
        if self._adopted:
            return self._machine
        if self._machine is not None and self.backend in ("pram-crcw", "pram-crew"):
            return self._machine
        if self._machine is not None and self._machine.network.size >= max(2, nodes):
            return self._machine
        self._machine = build_machine(
            self.backend,
            nodes,
            processors=self.processors,
            physical_processors=self.physical_processors,
            validate=self.validate,
            faults=self.faults,
            retry_limit=self.retry_limit,
            ledger=self.ledger,
        )
        return self._machine

    # ------------------------------------------------------------------ #
    def _capability_check(self, spec: SolverSpec, cfg: ExecutionConfig) -> None:
        if cfg.certify and spec.certifier is None:
            raise CapabilityError(
                f"({spec.problem}, {spec.backend}) declares no certifier; "
                "only the minima problems self-certify (certify.py derives "
                "its witnesses from leftmost-minimum structure)"
            )
        if spec.machine == "none" and cfg.retries > 0:
            raise CapabilityError(
                f"({spec.problem}, sequential) has no fault surface to retry over"
            )
        spec.check_kernel_tier(cfg.kernel_tier)
        if cfg.cache and not spec.shardable:
            from repro.shard.config import resolve_shards

            if resolve_shards(cfg.shards) > 1:
                raise CapabilityError(
                    f"({spec.problem}, {spec.backend}) cannot combine cache= "
                    "with shards>1: CachedArray memoization is per-worker "
                    "under sharding, and this solver cannot shard — it would "
                    "run serially while appearing to honor the sharded cache "
                    "contract.  Drop cache=, set shards=1, or use a shardable "
                    "problem (rowmin/rowmax/rowmax_inverse on a PRAM backend)."
                )

    def _derive_config(self, config, overrides) -> ExecutionConfig:
        cfg = config if config is not None else self.config
        if overrides:
            cfg = cfg.with_overrides(**overrides)
        return cfg

    # -- stage 1: plan -------------------------------------------------- #
    def _plan(self, problem: str, data, cfg: ExecutionConfig, index: int = 0) -> QueryPlan:
        plan = plan_query(
            problem, data, cfg, self.backend, index=index, session_faults=self.faults
        )
        self._capability_check(plan.spec, cfg)
        return plan

    # -- bookkeeping ----------------------------------------------------- #
    def _record(self, plan: QueryPlan, result: SearchResult) -> None:
        within_bound = plan.spec.within_bound(result.snapshot, plan.shape)
        self.queries.append(QueryRecord(
            index=len(self.queries),
            problem=plan.problem,
            backend=self.backend,
            strategy=plan.strategy,
            shape=plan.shape,
            snapshot=result.snapshot,
            certified=None if result.certificate is None else bool(result.certificate.ok),
            degraded=result.degraded,
            retries=result.retries,
            within_bound=within_bound,
        ))
        from repro.kernels.registry import resolve_kernel_tier

        m = metrics()
        m.counter("engine.queries").inc()
        m.counter(f"kernel.tier.{resolve_kernel_tier(plan.config.kernel_tier)}").inc()
        snap = result.snapshot
        if snap is not None:
            m.counter("engine.rounds").inc(snap["rounds"])
            m.counter("engine.work").inc(snap["work"])
            m.histogram("engine.rounds_per_query").observe(snap["rounds"])
        if result.retries:
            m.counter("engine.retries").inc(result.retries)
        if result.degraded:
            m.counter("engine.degraded").inc()
        if result.certificate is not None:
            m.counter("engine.certified").inc(int(bool(result.certificate.ok)))
            m.counter("engine.certify_evals").inc(int(result.certificate.evals))
        if not within_bound:
            m.counter("engine.bound_violations").inc()

    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: str,
        data,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> SearchResult:
        """Solve one query and return a :class:`SearchResult`.

        ``config`` (default: the session config) may be refined with
        keyword overrides, e.g. ``session.solve("rowmin", a,
        strategy="halving", certify=True)``.
        """
        cfg = self._derive_config(config, overrides)
        plan = self._plan(problem, data, cfg)
        result = SERIAL.execute_plan(self, plan)
        self._record(plan, result)
        return result

    def prepare(
        self,
        problem,
        data=None,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ):
        """Build a precompute-once index and return a query handle.

        Two calling forms::

            session.prepare("submatrix_max", array)
            session.prepare(array)            # problem defaults

        The handle's ``query((r0, r1), (c0, c1))`` answers half-open
        rectangle maxima against the built
        :class:`~repro.monge.index.MongeIndex`, charging the session
        ledger like any solve (see :mod:`repro.engine.prepared`).
        Handles are LRU-cached per session (``index_cache`` capacity);
        requires the registry pair to declare a ``prepare`` capability
        (:class:`CapabilityError` otherwise).
        """
        from repro.engine.prepared import prepare_handle

        if not isinstance(problem, str):
            if data is not None:
                raise TypeError(
                    "prepare(data) and prepare(problem, data) are the only "
                    "calling forms: the first argument must be a problem key "
                    "when data is passed separately"
                )
            problem, data = "submatrix_max", problem
        elif data is None:
            raise TypeError(
                "prepare(problem, data) requires the data argument when the "
                "first argument is a problem key"
            )
        cfg = self._derive_config(config, overrides)
        return prepare_handle(self, problem, data, cfg)

    def solve_many(
        self,
        problem: Union[str, Sequence],
        datas: Optional[Sequence] = None,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> BatchResult:
        """Solve many queries through the plan → group → execute pipeline.

        Two calling forms::

            session.solve_many("rowmin", [a1, a2, ...])
            session.solve_many([("rowmin", a1), ("tube_min", comp), ...])

        Results come back in **input order** regardless of how the
        planner grouped the queries.  Same-shape row-extremum queries
        (no faults, no retries, strict, ``sqrt`` strategy) share one
        machine allocation and one fused stacked sweep; each result
        still carries its own ledger sub-account snapshot, bit-identical
        to what a serial :meth:`solve` would have charged.  Everything
        else — mixed shapes, staircase/tube problems, fault plans,
        retries — runs through the serial path unchanged.

        With ``shards=k`` (or a ``REPRO_SHARDS`` default), fused buckets
        of explicit-matrix queries additionally scatter across ``k``
        worker processes over shared memory (``repro.shard``,
        DESIGN.md §11); results, snapshots, and traces stay
        bit-identical, and each group dict records the ``shards`` width
        that actually ran.
        """
        cfg = self._derive_config(config, overrides)
        if isinstance(problem, str):
            if datas is None:
                raise TypeError(
                    "solve_many(problem, datas) requires a sequence of data "
                    "arrays when the first argument is a problem key"
                )
            queries = [(problem, data, cfg) for data in datas]
        else:
            if datas is not None:
                raise TypeError(
                    "solve_many([...]) takes no separate datas argument: pass "
                    "(problem, data) pairs in the first argument"
                )
            queries = []
            for item in problem:
                if len(item) == 2:
                    qproblem, qdata = item
                    qcfg = cfg
                elif len(item) == 3:
                    qproblem, qdata, qcfg = item
                    if qcfg is None:
                        qcfg = cfg
                else:
                    raise TypeError(
                        "solve_many query items must be (problem, data) or "
                        "(problem, data, config) tuples"
                    )
                queries.append((qproblem, qdata, qcfg))

        plans = [
            self._plan(qproblem, qdata, qcfg, index=i)
            for i, (qproblem, qdata, qcfg) in enumerate(queries)
        ]
        results, groups = run_plans(self, plans)
        # the query log mirrors input order, not bucket order
        for plan in sorted(plans, key=lambda p: p.index):
            self._record(plan, results[plan.index])
        return BatchResult(results=list(results), groups=groups)


def solve(
    problem: str,
    data,
    backend: str = "auto",
    config: Optional[ExecutionConfig] = None,
    *,
    machine=None,
    **overrides,
) -> SearchResult:
    """One-shot front door: solve ``problem`` over ``data`` on ``backend``.

    Equivalent to ``Session(backend).solve(problem, data, config,
    **overrides)``; pass ``machine=`` to run on an existing machine (its
    model/topology decides the backend).
    """
    session = Session(backend, machine=machine)
    return session.solve(problem, data, config, **overrides)


def solve_many(
    problem: Union[str, Sequence],
    datas: Optional[Sequence] = None,
    backend: str = "auto",
    config: Optional[ExecutionConfig] = None,
    *,
    machine=None,
    **overrides,
) -> BatchResult:
    """One-shot batched front door (see :meth:`Session.solve_many`).

    ``repro.solve_many("rowmin", [a1, a2, ...])`` plans, groups, and
    executes the whole batch on a throwaway session and returns a
    :class:`~repro.engine.result.BatchResult` in input order.
    """
    session = Session(backend, machine=machine)
    return session.solve_many(problem, datas, config, **overrides)
