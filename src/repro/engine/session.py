"""Sessions and the ``solve`` / ``solve_many`` front doors.

A :class:`Session` owns machine construction and reuse for one backend
and answers repeated :meth:`~Session.solve` calls.  Each query runs on a
private :class:`~repro.pram.ledger.CostLedger` sub-account (the session
swaps the machine's ledger in for the duration of the query and merges
the sub-account back afterwards), so callers get both the per-query
snapshot on the :class:`~repro.engine.result.SearchResult` and a running
session total on :attr:`Session.ledger`.

Queries execute through a three-stage pipeline (DESIGN.md §9):
:func:`~repro.engine.planner.plan_query` lowers each request to a
declarative :class:`~repro.engine.planner.QueryPlan`,
:func:`~repro.engine.planner.group_plans` buckets compatible plans, and
the session executes each bucket — fused buckets as one stacked
multi-query sweep (:func:`repro.core.rowmin_pram.batched_row_extrema`
with a :class:`~repro.kernels.chargefan.ChargeFan` replaying each query's
serial charges), everything else through the unchanged serial path.
:meth:`Session.solve` is simply a one-plan pipeline.

:func:`solve` / :func:`solve_many` are the one-shot module-level
entries: they resolve a backend (``"auto"`` picks the CRCW PRAM, the
Tables' best bounds), spin up a throwaway session, and return the
result(s).

:func:`dispatch_on` is the zero-overhead path the legacy
:mod:`repro.core` wrappers use: it resolves the registry solver for an
*existing* machine and calls straight through — no ledger swap, no
warning capture, no added charges — so pre-engine call sites keep
bit-identical ledgers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.config import ExecutionConfig
from repro.engine.machines import backend_of, build_machine
from repro.engine.planner import QueryPlan, group_plans, plan_query, shape_of
from repro.engine.registry import (
    BACKENDS,
    CapabilityError,
    SolverSpec,
    registry,
)
from repro.engine.result import BatchResult, SearchResult
from repro.obs.metrics import metrics
from repro.obs.tracer import Tracer
from repro.pram.ledger import CostLedger

__all__ = ["Session", "QueryRecord", "solve", "solve_many", "dispatch_on"]

# Back-compat alias: the shape key now lives in the planner.
_shape_of = shape_of


def dispatch_on(machine, problem: str, data, config: ExecutionConfig):
    """Run ``problem`` on an existing machine through the registry.

    This is pure indirection: the solver is called with the machine as
    given — same ledger, same faults, same strict/degrade semantics —
    so it charges exactly what the pre-engine entry point charged.
    Returns the raw ``(values, witnesses)`` pair.
    """
    backend = backend_of(machine)
    spec = registry.lookup(problem, backend)
    crcw = machine is not None and machine.model.is_crcw
    strategy = config.resolve_strategy(problem, crcw)
    spec.check_strategy(strategy)
    return spec.fn(machine, data, config, strategy)


@dataclass
class QueryRecord:
    """One row of a session's query log."""

    index: int
    problem: str
    backend: str
    strategy: str
    shape: Tuple[int, ...]
    snapshot: Optional[dict]
    certified: Optional[bool]
    degraded: bool
    retries: int
    within_bound: bool


class Session:
    """A reusable solving context bound to one backend.

    Parameters
    ----------
    backend:
        An engine backend key (``"auto"`` resolves to ``"pram-crcw"``),
        or pass ``machine=`` to adopt an existing machine and infer the
        backend from it.
    processors, physical_processors, validate, retry_limit:
        Machine-construction knobs forwarded to
        :func:`repro.engine.machines.build_machine`.  A
        ``physical_processors`` budget yields a Brent-scheduled PRAM.
    faults:
        Session-wide default fault plan; a query config's ``faults``
        overrides it for that query.
    config:
        Session-default :class:`ExecutionConfig` (per-query configs /
        keyword overrides derive from it).
    """

    def __init__(
        self,
        backend: str = "auto",
        *,
        machine=None,
        processors: Optional[int] = None,
        physical_processors: Optional[int] = None,
        validate: bool = False,
        faults=None,
        retry_limit: int = 8,
        config: Optional[ExecutionConfig] = None,
    ) -> None:
        if machine is not None:
            backend = backend_of(machine)
        elif backend == "auto":
            backend = "pram-crcw"
        if backend not in BACKENDS:
            raise CapabilityError(
                f"unknown backend {backend!r}; expected one of {BACKENDS} or 'auto'"
            )
        self.backend = backend
        self.config = config if config is not None else ExecutionConfig()
        self.processors = processors
        self.physical_processors = physical_processors
        self.validate = validate
        self.faults = faults
        self.retry_limit = retry_limit
        #: Session-lifetime aggregate of every query's sub-account.
        self.ledger = CostLedger()
        #: One :class:`QueryRecord` per completed query.
        self.queries: List[QueryRecord] = []
        self._machine = machine
        self._adopted = machine is not None

    # ------------------------------------------------------------------ #
    def machine(self, nodes: int = 2):
        """The session's machine, (re)built to cover ``nodes`` logical nodes.

        PRAM machines are unbounded by default and built once; network
        machines are rebuilt only when a query needs a larger cube
        dimension (growing preserves the session ledger — sub-accounts
        are swapped in per query regardless).  Sequential sessions have
        no machine (returns ``None``).
        """
        if self.backend == "sequential":
            return None
        if self._adopted:
            return self._machine
        if self._machine is not None and self.backend in ("pram-crcw", "pram-crew"):
            return self._machine
        if self._machine is not None and self._machine.network.size >= max(2, nodes):
            return self._machine
        self._machine = build_machine(
            self.backend,
            nodes,
            processors=self.processors,
            physical_processors=self.physical_processors,
            validate=self.validate,
            faults=self.faults,
            retry_limit=self.retry_limit,
            ledger=self.ledger,
        )
        return self._machine

    # ------------------------------------------------------------------ #
    def _capability_check(self, spec: SolverSpec, cfg: ExecutionConfig) -> None:
        if cfg.certify and spec.certifier is None:
            raise CapabilityError(
                f"({spec.problem}, {spec.backend}) declares no certifier; "
                "only the minima problems self-certify (certify.py derives "
                "its witnesses from leftmost-minimum structure)"
            )
        if spec.machine == "none" and cfg.retries > 0:
            raise CapabilityError(
                f"({spec.problem}, sequential) has no fault surface to retry over"
            )
        spec.check_kernel_tier(cfg.kernel_tier)
        if cfg.cache and not spec.shardable:
            from repro.shard.config import resolve_shards

            if resolve_shards(cfg.shards) > 1:
                raise CapabilityError(
                    f"({spec.problem}, {spec.backend}) cannot combine cache= "
                    "with shards>1: CachedArray memoization is per-worker "
                    "under sharding, and this solver cannot shard — it would "
                    "run serially while appearing to honor the sharded cache "
                    "contract.  Drop cache=, set shards=1, or use a shardable "
                    "problem (rowmin/rowmax/rowmax_inverse on a PRAM backend)."
                )

    def _derive_config(self, config, overrides) -> ExecutionConfig:
        cfg = config if config is not None else self.config
        if overrides:
            cfg = cfg.with_overrides(**overrides)
        return cfg

    # -- stage 1: plan -------------------------------------------------- #
    def _plan(self, problem: str, data, cfg: ExecutionConfig, index: int = 0) -> QueryPlan:
        plan = plan_query(
            problem, data, cfg, self.backend, index=index, session_faults=self.faults
        )
        self._capability_check(plan.spec, cfg)
        return plan

    # -- stage 3a: serial execution (the unchanged per-query path) ------ #
    def _execute_serial(self, plan: QueryPlan) -> SearchResult:
        from repro.kernels.registry import resolve_kernel_tier, tier_context

        spec, cfg, data = plan.spec, plan.config, plan.data
        kernel_tier = resolve_kernel_tier(cfg.kernel_tier)
        nodes = spec.nodes_for(plan.shape) if spec.nodes_for is not None else 2
        machine = self.machine(nodes)

        fault_plan = cfg.faults if cfg.faults is not None else self.faults
        limit = machine.ledger.processor_limit if machine is not None else None
        qledger = CostLedger(processor_limit=limit) if machine is not None else None
        caught: List[warnings.WarningMessage] = []

        tracer = Tracer() if cfg.trace else None
        solve_span = None
        if tracer is not None:
            solve_span = tracer.begin(
                "solve",
                "solve",
                problem=plan.problem,
                backend=self.backend,
                strategy=plan.strategy,
                shape=plan.shape,
                kernel_tier=kernel_tier,
            )
            if qledger is not None:
                tracer.bind(qledger, solve_span)
        # attempt spans only exist on the resilient path; the plain path
        # records charges straight onto the solve span
        track_attempts = cfg.retries > 0 and spec.machine != "none"
        attempt_state: dict = {"span": None, "n": 0, "fired0": 0}

        def _fired() -> int:
            return fault_plan.total_fired if fault_plan is not None else 0

        def attempt():
            caught.clear()
            if qledger is not None:
                if tracer is not None:
                    prev = attempt_state["span"]
                    if prev is not None:
                        # the reset below wipes its charges — mirror that
                        prev.discarded = True
                        prev.attrs["faults_fired"] = _fired() - attempt_state["fired0"]
                        tracer.end(prev)
                # reset the sub-account so a replayed attempt starts clean
                qledger.__init__(processor_limit=limit)
                if tracer is not None:
                    tracer.rebind(qledger)
                    if track_attempts:
                        attempt_state["n"] += 1
                        attempt_state["fired0"] = _fired()
                        attempt_state["span"] = tracer.push(
                            qledger,
                            f"attempt-{attempt_state['n']}",
                            "attempt",
                            index=attempt_state["n"],
                        )
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                out = spec.fn(machine, data, cfg, plan.strategy)
            caught.extend(rec)
            return out

        swapped = machine is not None
        if swapped:
            saved = (machine.ledger, machine.faults)
            machine.ledger = qledger
            machine.faults = fault_plan
            if hasattr(machine, "network"):
                saved_net = (machine.network.ledger, machine.network.faults)
                machine.network.ledger = qledger
                machine.network.faults = fault_plan
        try:
            certificate = None
            retries = 0
            with tier_context(cfg.kernel_tier, cfg.tile_bytes):
                if cfg.retries > 0 and spec.machine != "none":
                    from repro.resilience.executor import run_resilient

                    certifier = (
                        (lambda out: spec.certifier(data, out[0], out[1]))
                        if cfg.certify
                        else None
                    )
                    report = run_resilient(
                        attempt,
                        certify=certifier,
                        plan=fault_plan,
                        max_attempts=cfg.retries + 1,
                    )
                    values, witnesses = report.result
                    certificate = report.attempts[-1].certificate
                    retries = report.n_attempts - 1
                else:
                    values, witnesses = attempt()
                    if cfg.certify:
                        certificate = spec.certifier(data, values, witnesses)
                        certificate.require()
        finally:
            if tracer is not None and qledger is not None:
                span = attempt_state["span"]
                if span is not None:
                    span.attrs["faults_fired"] = _fired() - attempt_state["fired0"]
                    tracer.pop(qledger, span)
                tracer.unbind(qledger)
            if swapped:
                machine.ledger, machine.faults = saved
                if hasattr(machine, "network"):
                    machine.network.ledger, machine.network.faults = saved_net

        snapshot = qledger.snapshot() if qledger is not None else None
        if qledger is not None:
            self.ledger.merge(qledger)
        # record degradation events; re-emit everything captured so
        # ambient filters (pytest.warns, -W error) still see the warnings
        from repro.resilience.degrade import DegradedResultWarning

        degradation = [
            w.message for w in caught if issubclass(w.category, DegradedResultWarning)
        ]
        for w in caught:
            warnings.warn_explicit(w.message, w.category, w.filename, w.lineno)

        trace = None
        if tracer is not None:
            solve_span.attrs["retries"] = retries
            solve_span.attrs["degraded"] = bool(degradation)
            if certificate is not None:
                solve_span.attrs["certified"] = bool(certificate.ok)
                solve_span.attrs["certify_evals"] = int(certificate.evals)
            tracer.end(solve_span)
            trace = tracer.trace(solve_span)

        return SearchResult(
            values=values,
            witnesses=witnesses,
            problem=plan.problem,
            backend=self.backend,
            strategy=plan.strategy,
            snapshot=snapshot,
            ledger=qledger,
            certificate=certificate,
            degradation=degradation,
            retries=retries,
            trace=trace,
        )

    # -- stage 3b: fused execution (one stacked sweep per bucket) ------- #
    def _fused_ready(self, plan: QueryPlan) -> bool:
        """Machine-level fusion conditions (plan-level ones live in the
        planner).  A bucket that fails these runs serially — same
        results, same per-query snapshots, just no shared sweep."""
        from repro.kernels.registry import get_tier, resolve_kernel_tier
        from repro.pram.machine import Pram

        if plan.fused_key is None:
            return False
        if not get_tier(resolve_kernel_tier(plan.config.kernel_tier)).fused:
            # the reference tier has no stacked-sweep kernel: every
            # query runs its own round-by-round simulation
            return False
        nodes = plan.spec.nodes_for(plan.shape) if plan.spec.nodes_for is not None else 2
        machine = self.machine(nodes)
        if machine is None or type(machine) is not Pram:
            # Brent machines time-slice charges and NetworkMachines
            # execute genuinely on the network — both stay per-query.
            return False
        if machine.faults is not None and not getattr(
            machine.faults, "shard_only", False
        ):
            # shard-only plans never perturb the machines (the supervisor
            # draws them parent-side), so fusion stays legal under them.
            return False
        if machine.ledger.processor_limit is not None or machine.processors < (1 << 40):
            # fused sweeps charge global (summed) sizes against the
            # throwaway ledger; a bounded budget could reject a batch
            # whose individual queries all fit.
            return False
        return True

    def _execute_fused(self, bucket: List[QueryPlan]) -> List[SearchResult]:
        """Execute one bucket of fused-compatible plans as a single
        stacked sweep.  Per-query ledgers are populated by a
        :class:`~repro.kernels.chargefan.ChargeFan` replaying each owner's
        serial charge sequence — snapshots come out bit-identical to
        the serial path's (tests/test_engine_batch.py pins this)."""
        from repro.core.rowmin_pram import batched_row_extrema
        from repro.kernels.chargefan import ChargeFan
        from repro.kernels.registry import resolve_kernel_tier, tier_context

        spec = bucket[0].spec
        cfg = bucket[0].config
        kernel_tier = resolve_kernel_tier(cfg.kernel_tier)
        nodes = spec.nodes_for(bucket[0].shape) if spec.nodes_for is not None else 2
        machine = self.machine(nodes)
        limit = machine.ledger.processor_limit
        qledgers = [CostLedger(processor_limit=limit) for _ in bucket]
        fan = ChargeFan(
            qledgers, crcw=machine.model.is_crcw, budget=machine.processors
        )
        scratch = CostLedger(processor_limit=limit)

        # trace is part of the fusion fingerprint, so the whole bucket
        # agrees; the sweep's global charges land on a "stacked-sweep"
        # span while each owner's replayed charges land on its own solve
        # span — per-query totals stay bit-identical to the serial path.
        tracer = Tracer() if cfg.trace else None
        qspans: List = []
        if tracer is not None:
            bucket_span = tracer.begin(
                "bucket",
                "bucket",
                problem=spec.problem,
                backend=self.backend,
                strategy=bucket[0].strategy,
                shape=bucket[0].shape,
                count=len(bucket),
                fused=True,
                kernel_tier=kernel_tier,
            )
            sweep_span = tracer.begin("stacked-sweep", "sweep", parent=bucket_span)
            tracer.bind(scratch, sweep_span)
            for plan, qledger in zip(bucket, qledgers):
                qspan = tracer.begin(
                    "solve",
                    "solve",
                    parent=bucket_span,
                    problem=plan.problem,
                    backend=self.backend,
                    strategy=plan.strategy,
                    shape=plan.shape,
                    fused=True,
                )
                tracer.bind(qledger, qspan)
                qspans.append(qspan)

        saved = (machine.ledger, machine.faults)
        machine.ledger = scratch
        machine.faults = None
        try:
            with tier_context(cfg.kernel_tier, cfg.tile_bytes):
                outs = batched_row_extrema(
                    machine,
                    [p.data for p in bucket],
                    problem=spec.problem,
                    cache=cfg.cache,
                    fan=fan,
                )
        finally:
            machine.ledger, machine.faults = saved
            if tracer is not None:
                tracer.unbind(scratch)
                tracer.end(sweep_span)
                for qledger, qspan in zip(qledgers, qspans):
                    tracer.unbind(qledger)
                    tracer.end(qspan)
                tracer.end(bucket_span)

        certificates: List = []
        for plan, (values, witnesses) in zip(bucket, outs):
            if plan.config.certify:
                certificates.append(spec.certifier(plan.data, values, witnesses))
            else:
                certificates.append(None)
        for certificate in certificates:
            if certificate is not None:
                certificate.require()

        results: List[SearchResult] = []
        for i, (plan, (values, witnesses), qledger, certificate) in enumerate(zip(
            bucket, outs, qledgers, certificates
        )):
            self.ledger.merge(qledger)
            trace = None
            if tracer is not None:
                if certificate is not None:
                    qspans[i].attrs["certified"] = bool(certificate.ok)
                    qspans[i].attrs["certify_evals"] = int(certificate.evals)
                trace = tracer.trace(qspans[i])
            results.append(SearchResult(
                values=values,
                witnesses=witnesses,
                problem=plan.problem,
                backend=self.backend,
                strategy=plan.strategy,
                snapshot=qledger.snapshot(),
                ledger=qledger,
                certificate=certificate,
                degradation=[],
                retries=0,
                trace=trace,
            ))
        return results

    # -- stage 3c: sharded execution (multi-process fused bucket) -------- #
    def _shard_width(self, bucket: List[QueryPlan]) -> int:
        """The effective worker count for one fused bucket (1 = stay
        in-process).  Sharding is owner-granular — whole queries are
        distributed, never rows of one query — because that is the
        granularity at which ChargeFan replay keeps ledgers
        bit-identical (DESIGN.md §11); single-query buckets therefore
        never shard, and neither do buckets whose inputs would need
        materializing to reach shared memory."""
        from repro.shard.config import resolve_shards
        from repro.shard.executor import shardable_payload

        plan = bucket[0]
        width = resolve_shards(plan.config.shards)
        if width <= 1 or not plan.spec.shardable or len(bucket) < 2:
            return 1
        if any(shardable_payload(p.data) is None for p in bucket):
            return 1
        return min(width, len(bucket))

    def _execute_sharded(self, bucket: List[QueryPlan], shards: int) -> List[SearchResult]:
        """Execute one fused bucket across ``shards`` worker processes.

        The bucket's owner range is cut into contiguous blocks; each
        worker runs the ordinary stacked sweep on its block against the
        shared-memory tensors and returns values, witnesses, and a
        charge-replay log per owner.  The parent replays each owner's
        log onto its real ledger sub-account — observers (tracer spans)
        fire exactly as the serial run's would — so snapshots, traces,
        and certificates are bit-identical to the in-process fused path
        (tests/test_shard_equivalence.py pins this).  Dispatch runs
        under supervision (deadlines / retry / hedging / quarantine,
        DESIGN.md §12), driven by ``shard_timeout`` and any shard-only
        fault plan in play.  Raises
        :class:`~repro.shard.executor.ShardError` only when a shard is
        unrecoverable even in-process; the caller then falls back to
        in-process execution of the whole bucket.
        """
        from repro.kernels.registry import resolve_kernel_tier, resolve_tile_bytes
        from repro.shard.config import resolve_shard_timeout
        from repro.shard.executor import get_executor, shardable_payload
        from repro.shard.recording import replay_events
        from repro.shard.supervise import default_policy

        spec = bucket[0].spec
        cfg = bucket[0].config
        # resolve tier and tile budget parent-side: workers (fork or
        # spawn) receive explicit values and never consult env state
        kernel_tier = resolve_kernel_tier(cfg.kernel_tier)
        tile_bytes = resolve_tile_bytes(cfg.tile_bytes)
        nodes = spec.nodes_for(bucket[0].shape) if spec.nodes_for is not None else 2
        machine = self.machine(nodes)
        limit = machine.ledger.processor_limit
        qledgers = [CostLedger(processor_limit=limit) for _ in bucket]
        payloads = [shardable_payload(p.data) for p in bucket]
        executor = get_executor(workers=shards)

        tracer = Tracer() if cfg.trace else None
        bucket_span = None
        if tracer is not None:
            bucket_span = tracer.begin(
                "bucket",
                "bucket",
                problem=spec.problem,
                backend=self.backend,
                strategy=bucket[0].strategy,
                shape=bucket[0].shape,
                count=len(bucket),
                fused=True,
                shards=shards,
                start_method=executor.start_method,
                kernel_tier=kernel_tier,
            )
        # shard-only fault plans reach the supervisor (machine plans never
        # get here: they disqualify fusion, hence sharding, at plan time)
        faults = cfg.faults if cfg.faults is not None else machine.faults
        shard_plan, shard_results, report = executor.run_bucket(
            payloads,
            problem=spec.problem,
            cache=cfg.cache,
            model=machine.model.name,
            budget=machine.processors,
            shards=shards,
            policy=default_policy(resolve_shard_timeout(cfg.shard_timeout)),
            faults=faults,
            kernel_tier=kernel_tier,
            tile_bytes=tile_bytes,
        )

        walls = [res["wall_s"] for res in shard_results]
        imbalance = (max(walls) / (sum(walls) / len(walls))) if sum(walls) > 0 else 1.0
        m = metrics()
        m.histogram("shard.imbalance").observe(imbalance)
        m.counter("shard.buckets").inc()
        m.counter("shard.tasks").inc(len(shard_results))
        if tracer is not None:
            bucket_span.attrs["imbalance"] = imbalance
            if report.recovered:
                bucket_span.attrs["recovered"] = True
            for k, ((lo, hi), res) in enumerate(zip(shard_plan.ranges, shard_results)):
                tr = report.tasks[k]
                span = tracer.begin(
                    f"shard-{k}",
                    "shard",
                    parent=bucket_span,
                    owners=hi - lo,
                    rows=int(sum(shard_plan.weights[lo:hi])),
                    wall_s=res["wall_s"],
                    sweep_rounds=res["sweep"]["rounds"],
                    attempt=tr.attempts,
                    hedged=tr.hedged,
                )
                if tr.timeouts:
                    span.attrs["timeouts"] = tr.timeouts
                if tr.partial_fallback:
                    span.attrs["fallback"] = "in-process"
                tracer.end(span)

        outs = [pair for res in shard_results for pair in res["outs"]]
        events = [log for res in shard_results for log in res["events"]]
        evals = [count for res in shard_results for count in res["evals"]]

        qspans: List = []
        for i, (plan, qledger) in enumerate(zip(bucket, qledgers)):
            qspan = None
            if tracer is not None:
                qspan = tracer.begin(
                    "solve",
                    "solve",
                    parent=bucket_span,
                    problem=plan.problem,
                    backend=self.backend,
                    strategy=plan.strategy,
                    shape=plan.shape,
                    fused=True,
                )
                tracer.bind(qledger, qspan)
                qspans.append(qspan)
            replay_events(qledger, events[i])
            if tracer is not None:
                tracer.unbind(qledger)
                tracer.end(qspan)
            # workers evaluated entries on their own mappings; fold the
            # counts back so the source arrays' eval_count stays the
            # observable quantity it is on every other path
            counted = getattr(plan.data, "eval_count", None)
            if counted is not None:
                plan.data.eval_count = counted + evals[i]
        if tracer is not None:
            tracer.end(bucket_span)

        certificates: List = []
        for plan, (values, witnesses) in zip(bucket, outs):
            if plan.config.certify:
                certificates.append(spec.certifier(plan.data, values, witnesses))
            else:
                certificates.append(None)
        for certificate in certificates:
            if certificate is not None:
                certificate.require()

        results: List[SearchResult] = []
        for i, (plan, (values, witnesses), qledger, certificate) in enumerate(zip(
            bucket, outs, qledgers, certificates
        )):
            self.ledger.merge(qledger)
            trace = None
            if tracer is not None:
                if certificate is not None:
                    qspans[i].attrs["certified"] = bool(certificate.ok)
                    qspans[i].attrs["certify_evals"] = int(certificate.evals)
                trace = tracer.trace(qspans[i])
            results.append(SearchResult(
                values=values,
                witnesses=witnesses,
                problem=plan.problem,
                backend=self.backend,
                strategy=plan.strategy,
                snapshot=qledger.snapshot(),
                ledger=qledger,
                certificate=certificate,
                degradation=[],
                retries=0,
                trace=trace,
            ))
        return results

    # -- bookkeeping ----------------------------------------------------- #
    def _record(self, plan: QueryPlan, result: SearchResult) -> None:
        within_bound = plan.spec.within_bound(result.snapshot, plan.shape)
        self.queries.append(QueryRecord(
            index=len(self.queries),
            problem=plan.problem,
            backend=self.backend,
            strategy=plan.strategy,
            shape=plan.shape,
            snapshot=result.snapshot,
            certified=None if result.certificate is None else bool(result.certificate.ok),
            degraded=result.degraded,
            retries=result.retries,
            within_bound=within_bound,
        ))
        from repro.kernels.registry import resolve_kernel_tier

        m = metrics()
        m.counter("engine.queries").inc()
        m.counter(f"kernel.tier.{resolve_kernel_tier(plan.config.kernel_tier)}").inc()
        snap = result.snapshot
        if snap is not None:
            m.counter("engine.rounds").inc(snap["rounds"])
            m.counter("engine.work").inc(snap["work"])
            m.histogram("engine.rounds_per_query").observe(snap["rounds"])
        if result.retries:
            m.counter("engine.retries").inc(result.retries)
        if result.degraded:
            m.counter("engine.degraded").inc()
        if result.certificate is not None:
            m.counter("engine.certified").inc(int(bool(result.certificate.ok)))
            m.counter("engine.certify_evals").inc(int(result.certificate.evals))
        if not within_bound:
            m.counter("engine.bound_violations").inc()

    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: str,
        data,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> SearchResult:
        """Solve one query and return a :class:`SearchResult`.

        ``config`` (default: the session config) may be refined with
        keyword overrides, e.g. ``session.solve("rowmin", a,
        strategy="halving", certify=True)``.
        """
        cfg = self._derive_config(config, overrides)
        plan = self._plan(problem, data, cfg)
        result = self._execute_serial(plan)
        self._record(plan, result)
        return result

    def solve_many(
        self,
        problem: Union[str, Sequence],
        datas: Optional[Sequence] = None,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> BatchResult:
        """Solve many queries through the plan → group → execute pipeline.

        Two calling forms::

            session.solve_many("rowmin", [a1, a2, ...])
            session.solve_many([("rowmin", a1), ("tube_min", comp), ...])

        Results come back in **input order** regardless of how the
        planner grouped the queries.  Same-shape row-extremum queries
        (no faults, no retries, strict, ``sqrt`` strategy) share one
        machine allocation and one fused stacked sweep; each result
        still carries its own ledger sub-account snapshot, bit-identical
        to what a serial :meth:`solve` would have charged.  Everything
        else — mixed shapes, staircase/tube problems, fault plans,
        retries — runs through the serial path unchanged.

        With ``shards=k`` (or a ``REPRO_SHARDS`` default), fused buckets
        of explicit-matrix queries additionally scatter across ``k``
        worker processes over shared memory (``repro.shard``,
        DESIGN.md §11); results, snapshots, and traces stay
        bit-identical, and each group dict records the ``shards`` width
        that actually ran.
        """
        cfg = self._derive_config(config, overrides)
        if isinstance(problem, str):
            if datas is None:
                raise TypeError(
                    "solve_many(problem, datas) requires a sequence of data "
                    "arrays when the first argument is a problem key"
                )
            queries = [(problem, data, cfg) for data in datas]
        else:
            if datas is not None:
                raise TypeError(
                    "solve_many([...]) takes no separate datas argument: pass "
                    "(problem, data) pairs in the first argument"
                )
            queries = []
            for item in problem:
                if len(item) == 2:
                    qproblem, qdata = item
                    qcfg = cfg
                elif len(item) == 3:
                    qproblem, qdata, qcfg = item
                    if qcfg is None:
                        qcfg = cfg
                else:
                    raise TypeError(
                        "solve_many query items must be (problem, data) or "
                        "(problem, data, config) tuples"
                    )
                queries.append((qproblem, qdata, qcfg))

        plans = [
            self._plan(qproblem, qdata, qcfg, index=i)
            for i, (qproblem, qdata, qcfg) in enumerate(queries)
        ]
        buckets = group_plans(plans)

        m = metrics()
        m.counter("engine.batch.calls").inc()
        m.counter("engine.batch.queries").inc(len(plans))
        results: List[Optional[SearchResult]] = [None] * len(plans)
        groups: List[dict] = []
        for bucket in buckets:
            fused = len(bucket) >= 2 and self._fused_ready(bucket[0])
            shards_used = 1
            if fused:
                shards_used = self._shard_width(bucket)
                if shards_used > 1:
                    from repro.shard.executor import ShardError

                    try:
                        outs = self._execute_sharded(bucket, shards_used)
                        m.counter("engine.batch.sharded_queries").inc(len(bucket))
                    except ShardError:
                        # a broken pool degrades wall-clock, never answers
                        shards_used = 1
                        m.counter("shard.fallbacks").inc()
                        outs = self._execute_fused(bucket)
                else:
                    outs = self._execute_fused(bucket)
                m.counter("engine.batch.fused_queries").inc(len(bucket))
            else:
                outs = [self._execute_serial(plan) for plan in bucket]
            for plan, result in zip(bucket, outs):
                results[plan.index] = result
            groups.append({
                "problem": bucket[0].problem,
                "backend": self.backend,
                "strategy": bucket[0].strategy,
                "shape": bucket[0].shape,
                "count": len(bucket),
                "fused": fused,
                "shards": shards_used,
            })
        # the query log mirrors input order, not bucket order
        for plan in sorted(plans, key=lambda p: p.index):
            self._record(plan, results[plan.index])
        return BatchResult(results=list(results), groups=groups)


def solve(
    problem: str,
    data,
    backend: str = "auto",
    config: Optional[ExecutionConfig] = None,
    *,
    machine=None,
    **overrides,
) -> SearchResult:
    """One-shot front door: solve ``problem`` over ``data`` on ``backend``.

    Equivalent to ``Session(backend).solve(problem, data, config,
    **overrides)``; pass ``machine=`` to run on an existing machine (its
    model/topology decides the backend).
    """
    session = Session(backend, machine=machine)
    return session.solve(problem, data, config, **overrides)


def solve_many(
    problem: Union[str, Sequence],
    datas: Optional[Sequence] = None,
    backend: str = "auto",
    config: Optional[ExecutionConfig] = None,
    *,
    machine=None,
    **overrides,
) -> BatchResult:
    """One-shot batched front door (see :meth:`Session.solve_many`).

    ``repro.solve_many("rowmin", [a1, a2, ...])`` plans, groups, and
    executes the whole batch on a throwaway session and returns a
    :class:`~repro.engine.result.BatchResult` in input order.
    """
    session = Session(backend, machine=machine)
    return session.solve_many(problem, datas, config, **overrides)
