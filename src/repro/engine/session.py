"""Sessions and the ``solve`` front door.

A :class:`Session` owns machine construction and reuse for one backend
and answers repeated :meth:`~Session.solve` calls.  Each query runs on a
private :class:`~repro.pram.ledger.CostLedger` sub-account (the session
swaps the machine's ledger in for the duration of the query and merges
the sub-account back afterwards), so callers get both the per-query
snapshot on the :class:`~repro.engine.result.SearchResult` and a running
session total on :attr:`Session.ledger`.

:func:`solve` is the one-shot module-level entry: it resolves a backend
(``"auto"`` picks the CRCW PRAM, the Tables' best bounds), spins up a
throwaway session, and returns the single result.

:func:`dispatch_on` is the zero-overhead path the legacy
:mod:`repro.core` wrappers use: it resolves the registry solver for an
*existing* machine and calls straight through — no ledger swap, no
warning capture, no added charges — so pre-engine call sites keep
bit-identical ledgers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.config import ExecutionConfig
from repro.engine.machines import backend_of, build_machine
from repro.engine.registry import (
    BACKENDS,
    CapabilityError,
    SolverSpec,
    registry,
)
from repro.engine.result import SearchResult
from repro.pram.ledger import CostLedger

__all__ = ["Session", "QueryRecord", "solve", "dispatch_on"]


def _shape_of(problem: str, data) -> Tuple[int, ...]:
    """The problem-family shape key used for machine sizing and bounds."""
    if problem.startswith("tube"):
        from repro.core.tube_pram import _as_composite

        return tuple(_as_composite(data).shape)
    from repro.monge.arrays import as_search_array

    return tuple(as_search_array(data).shape)


def dispatch_on(machine, problem: str, data, config: ExecutionConfig):
    """Run ``problem`` on an existing machine through the registry.

    This is pure indirection: the solver is called with the machine as
    given — same ledger, same faults, same strict/degrade semantics —
    so it charges exactly what the pre-engine entry point charged.
    Returns the raw ``(values, witnesses)`` pair.
    """
    backend = backend_of(machine)
    spec = registry.lookup(problem, backend)
    crcw = machine is not None and machine.model.is_crcw
    strategy = config.resolve_strategy(problem, crcw)
    spec.check_strategy(strategy)
    return spec.fn(machine, data, config, strategy)


@dataclass
class QueryRecord:
    """One row of a session's query log."""

    index: int
    problem: str
    backend: str
    strategy: str
    shape: Tuple[int, ...]
    snapshot: Optional[dict]
    certified: Optional[bool]
    degraded: bool
    retries: int
    within_bound: bool


class Session:
    """A reusable solving context bound to one backend.

    Parameters
    ----------
    backend:
        An engine backend key (``"auto"`` resolves to ``"pram-crcw"``),
        or pass ``machine=`` to adopt an existing machine and infer the
        backend from it.
    processors, physical_processors, validate, retry_limit:
        Machine-construction knobs forwarded to
        :func:`repro.engine.machines.build_machine`.  A
        ``physical_processors`` budget yields a Brent-scheduled PRAM.
    faults:
        Session-wide default fault plan; a query config's ``faults``
        overrides it for that query.
    config:
        Session-default :class:`ExecutionConfig` (per-query configs /
        keyword overrides derive from it).
    """

    def __init__(
        self,
        backend: str = "auto",
        *,
        machine=None,
        processors: Optional[int] = None,
        physical_processors: Optional[int] = None,
        validate: bool = False,
        faults=None,
        retry_limit: int = 8,
        config: Optional[ExecutionConfig] = None,
    ) -> None:
        if machine is not None:
            backend = backend_of(machine)
        elif backend == "auto":
            backend = "pram-crcw"
        if backend not in BACKENDS:
            raise CapabilityError(
                f"unknown backend {backend!r}; expected one of {BACKENDS} or 'auto'"
            )
        self.backend = backend
        self.config = config if config is not None else ExecutionConfig()
        self.processors = processors
        self.physical_processors = physical_processors
        self.validate = validate
        self.faults = faults
        self.retry_limit = retry_limit
        #: Session-lifetime aggregate of every query's sub-account.
        self.ledger = CostLedger()
        #: One :class:`QueryRecord` per completed query.
        self.queries: List[QueryRecord] = []
        self._machine = machine
        self._adopted = machine is not None

    # ------------------------------------------------------------------ #
    def machine(self, nodes: int = 2):
        """The session's machine, (re)built to cover ``nodes`` logical nodes.

        PRAM machines are unbounded by default and built once; network
        machines are rebuilt only when a query needs a larger cube
        dimension (growing preserves the session ledger — sub-accounts
        are swapped in per query regardless).  Sequential sessions have
        no machine (returns ``None``).
        """
        if self.backend == "sequential":
            return None
        if self._adopted:
            return self._machine
        if self._machine is not None and self.backend in ("pram-crcw", "pram-crew"):
            return self._machine
        if self._machine is not None and self._machine.network.size >= max(2, nodes):
            return self._machine
        self._machine = build_machine(
            self.backend,
            nodes,
            processors=self.processors,
            physical_processors=self.physical_processors,
            validate=self.validate,
            faults=self.faults,
            retry_limit=self.retry_limit,
            ledger=self.ledger,
        )
        return self._machine

    # ------------------------------------------------------------------ #
    def _capability_check(self, spec: SolverSpec, cfg: ExecutionConfig) -> None:
        if cfg.certify and spec.certifier is None:
            raise CapabilityError(
                f"({spec.problem}, {spec.backend}) declares no certifier; "
                "only the minima problems self-certify (certify.py derives "
                "its witnesses from leftmost-minimum structure)"
            )
        if spec.machine == "none" and cfg.retries > 0:
            raise CapabilityError(
                f"({spec.problem}, sequential) has no fault surface to retry over"
            )

    def solve(
        self,
        problem: str,
        data,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> SearchResult:
        """Solve one query and return a :class:`SearchResult`.

        ``config`` (default: the session config) may be refined with
        keyword overrides, e.g. ``session.solve("rowmin", a,
        strategy="halving", certify=True)``.
        """
        cfg = config if config is not None else self.config
        if overrides:
            cfg = cfg.with_overrides(**overrides)
        spec = registry.lookup(problem, self.backend)
        self._capability_check(spec, cfg)
        shape = _shape_of(problem, data)
        nodes = spec.nodes_for(shape) if spec.nodes_for is not None else 2
        machine = self.machine(nodes)
        crcw = machine is not None and machine.model.is_crcw
        strategy = cfg.resolve_strategy(problem, crcw)
        spec.check_strategy(strategy)

        plan = cfg.faults if cfg.faults is not None else self.faults
        limit = machine.ledger.processor_limit if machine is not None else None
        qledger = CostLedger(processor_limit=limit) if machine is not None else None
        caught: List[warnings.WarningMessage] = []

        def attempt():
            caught.clear()
            if qledger is not None:
                # reset the sub-account so a replayed attempt starts clean
                qledger.__init__(processor_limit=limit)
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                out = spec.fn(machine, data, cfg, strategy)
            caught.extend(rec)
            return out

        swapped = machine is not None
        if swapped:
            saved = (machine.ledger, machine.faults)
            machine.ledger = qledger
            machine.faults = plan
            if hasattr(machine, "network"):
                saved_net = (machine.network.ledger, machine.network.faults)
                machine.network.ledger = qledger
                machine.network.faults = plan
        try:
            certificate = None
            retries = 0
            if cfg.retries > 0 and spec.machine != "none":
                from repro.resilience.executor import run_resilient

                certifier = (
                    (lambda out: spec.certifier(data, out[0], out[1]))
                    if cfg.certify
                    else None
                )
                report = run_resilient(
                    attempt,
                    certify=certifier,
                    plan=plan,
                    max_attempts=cfg.retries + 1,
                )
                values, witnesses = report.result
                certificate = report.attempts[-1].certificate
                retries = report.n_attempts - 1
            else:
                values, witnesses = attempt()
                if cfg.certify:
                    certificate = spec.certifier(data, values, witnesses)
                    certificate.require()
        finally:
            if swapped:
                machine.ledger, machine.faults = saved
                if hasattr(machine, "network"):
                    machine.network.ledger, machine.network.faults = saved_net

        snapshot = qledger.snapshot() if qledger is not None else None
        if qledger is not None:
            self.ledger.merge(qledger)
        # record degradation events; re-emit everything captured so
        # ambient filters (pytest.warns, -W error) still see the warnings
        from repro.resilience.degrade import DegradedResultWarning

        degradation = [
            w.message for w in caught if issubclass(w.category, DegradedResultWarning)
        ]
        for w in caught:
            warnings.warn_explicit(w.message, w.category, w.filename, w.lineno)

        result = SearchResult(
            values=values,
            witnesses=witnesses,
            problem=problem,
            backend=self.backend,
            strategy=strategy,
            snapshot=snapshot,
            ledger=qledger,
            certificate=certificate,
            degradation=degradation,
            retries=retries,
        )
        self.queries.append(QueryRecord(
            index=len(self.queries),
            problem=problem,
            backend=self.backend,
            strategy=strategy,
            shape=shape,
            snapshot=snapshot,
            certified=None if certificate is None else bool(certificate.ok),
            degraded=result.degraded,
            retries=retries,
            within_bound=spec.within_bound(snapshot, shape),
        ))
        return result


def solve(
    problem: str,
    data,
    backend: str = "auto",
    config: Optional[ExecutionConfig] = None,
    *,
    machine=None,
    **overrides,
) -> SearchResult:
    """One-shot front door: solve ``problem`` over ``data`` on ``backend``.

    Equivalent to ``Session(backend).solve(problem, data, config,
    **overrides)``; pass ``machine=`` to run on an existing machine (its
    model/topology decides the backend).
    """
    session = Session(backend, machine=machine)
    return session.solve(problem, data, config, **overrides)
