"""Structured solver output that still unpacks like the legacy tuple.

Every engine query returns a :class:`SearchResult` carrying the answer
(values + witnesses) together with everything the legacy entry points
used to scatter across return conventions and side channels: the ledger
snapshot of exactly this query, the self-certification verdict, any
degradation events, the retry count, and the backend the query actually
ran on.  ``values, witnesses = result`` keeps pre-engine call sites
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Trace
    from repro.pram.ledger import CostLedger
    from repro.resilience.certify import Certificate
    from repro.resilience.degrade import DegradedResultWarning

__all__ = ["SearchResult", "BatchResult"]


@dataclass
class SearchResult:
    """Outcome of one engine query.

    Attributes
    ----------
    values, witnesses:
        The extrema and their witness indices — shapes follow the
        problem family (``(m,)`` row vectors for the row problems,
        ``(p, r)`` grids for the tube problems).
    problem, backend, strategy:
        The registry key the query resolved to and the concrete
        strategy that ran (``backend`` is the *resolved* one — an
        ``"auto"`` request records what it picked).
    snapshot:
        This query's own ledger snapshot (``None`` for the sequential
        backend, which charges no simulated rounds).
    ledger:
        The per-query :class:`~repro.pram.ledger.CostLedger`
        sub-account the snapshot was taken from, when one exists.
    certificate:
        The :class:`~repro.resilience.certify.Certificate` when
        ``certify=True`` was requested, else ``None``.
    degradation:
        Structured :class:`DegradedResultWarning` events captured while
        solving (non-empty only under ``strict=False`` on untrusted
        input).
    retries:
        Failed attempts that preceded the returned answer (0 when the
        first attempt succeeded).
    trace:
        The structured span tree of this query when ``trace=True`` was
        requested (a :class:`repro.obs.Trace`), else ``None``.  Its
        summed charge deltas are bit-identical to ``snapshot``.
    """

    values: np.ndarray
    witnesses: np.ndarray
    problem: str = ""
    backend: str = ""
    strategy: str = ""
    snapshot: Optional[dict] = None
    ledger: Optional["CostLedger"] = None
    certificate: Optional["Certificate"] = None
    degradation: List["DegradedResultWarning"] = field(default_factory=list)
    retries: int = 0
    trace: Optional["Trace"] = None

    # -- tuple back-compat ---------------------------------------------- #
    def __iter__(self) -> Iterator[np.ndarray]:
        """Unpack as the legacy ``(values, witnesses)`` pair."""
        yield self.values
        yield self.witnesses

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index):
        return (self.values, self.witnesses)[index]

    # -- conveniences ----------------------------------------------------#
    @property
    def certified(self) -> bool:
        """True iff a certificate was produced and passed."""
        return self.certificate is not None and bool(self.certificate.ok)

    @property
    def degraded(self) -> bool:
        """True iff the structured algorithm fell back to a dense scan."""
        return bool(self.degradation)

    @property
    def rounds(self) -> Optional[int]:
        """Simulated rounds this query charged (``None`` if sequential)."""
        return None if self.snapshot is None else self.snapshot["rounds"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shape = getattr(self.values, "shape", None)
        return (
            f"SearchResult(problem={self.problem!r}, backend={self.backend!r}, "
            f"strategy={self.strategy!r}, shape={shape}, rounds={self.rounds}, "
            f"certified={self.certified}, degraded={self.degraded}, "
            f"retries={self.retries})"
        )


@dataclass
class BatchResult:
    """Results of one ``solve_many`` call, **always in input order**.

    ``results[i]`` answers query ``i`` exactly as a serial
    :meth:`~repro.engine.session.Session.solve` call would — values and
    witnesses bit-identical, and each result still carries its *own*
    ledger sub-account snapshot, certificate, and degradation events,
    whether the query ran inside a fused bucket or serially.

    ``groups`` records the execution buckets the planner formed: one
    ``dict`` per bucket with ``problem``, ``backend``, ``strategy``,
    ``shape``, ``count`` (queries in the bucket), and ``fused`` (did it
    run as one stacked sweep).
    """

    results: List[SearchResult]
    groups: List[dict] = field(default_factory=list)

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index) -> SearchResult:
        return self.results[index]

    # -- conveniences ----------------------------------------------------#
    @property
    def values(self) -> List[np.ndarray]:
        """Per-query value arrays, in input order."""
        return [r.values for r in self.results]

    @property
    def witnesses(self) -> List[np.ndarray]:
        """Per-query witness arrays, in input order."""
        return [r.witnesses for r in self.results]

    @property
    def snapshots(self) -> List[Optional[dict]]:
        """Per-query ledger snapshots, in input order."""
        return [r.snapshot for r in self.results]

    @property
    def fused_queries(self) -> int:
        """How many of the queries executed inside fused buckets."""
        return sum(g["count"] for g in self.groups if g.get("fused"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BatchResult(n={len(self.results)}, buckets={len(self.groups)}, "
            f"fused_queries={self.fused_queries})"
        )
