"""The :class:`ExecutionConfig` — every cross-cutting solver knob in one place.

Before the engine existed, each of the 12+ core entry points re-threaded
``strategy=``/``scheme=``, ``cache=``, ``strict=``, and fault plumbing by
hand, and the retry/certify loop of :mod:`repro.resilience.executor` had
to be wired up manually around every call.  ``ExecutionConfig``
consolidates all of it:

``strategy``
    The algorithmic variant.  ``"auto"`` (default) resolves per problem
    and backend: the row-extremum family picks the paper's ``"sqrt"``
    sampling recursion, the tube family picks ``"crcw"`` (doubly-log)
    on CRCW machines and ``"crew"`` (halving) otherwise.  The legacy
    per-function ``strategy=``/``scheme=`` arguments map onto this one
    field.
``cache``
    Wrap inputs in a :class:`~repro.monge.arrays.CachedArray` entry
    memoizer (wall-clock only; results and ledger charges unchanged).
``strict``
    ``True`` (default) trusts the declared (staircase-)Monge structure;
    ``False`` verifies it first and degrades to a charged dense fallback
    with a :class:`~repro.resilience.degrade.DegradedResultWarning`.
``checked``
    Run the machine in validating mode (checked gather/scatter
    concurrency legality) where the backend supports it.
``faults``
    An optional seeded :class:`~repro.resilience.faults.FaultPlan` bound
    to every machine the engine constructs for this query.
``retries``
    Additional attempts beyond the first.  ``retries > 0`` routes the
    query through :func:`repro.resilience.executor.run_resilient`
    (``max_attempts = retries + 1``, final attempt fault-free).
``certify``
    Self-certify the answer with the matching
    :mod:`repro.resilience.certify` certificate.  Only the minima
    problems carry certifiers; requesting certification elsewhere is a
    declared-capability error.
``trace``
    Attach the session's :class:`repro.obs.Tracer` to the query's
    machines and return the structured span tree as ``result.trace``
    (DESIGN.md §10).  Off by default; the disabled path costs one
    attribute test per charge.
``shards``
    Multi-process execution width for fused buckets (DESIGN.md §11).
    ``None`` (default) defers to the ``REPRO_SHARDS`` environment
    default; ``1`` pins the exact serial path; ``k ≥ 2`` lets
    ``solve_many`` scatter each fused bucket's stacked tensor across
    ``k`` shared-memory workers (owner-granular row blocks), with
    per-query ledgers replayed bit-identically.  Buckets that cannot
    shard (single queries, non-shardable problems, implicit inputs)
    run the normal in-process path — except that ``cache=True`` with
    ``shards > 1`` on a non-shardable solver is a declared-capability
    error (memoization is per-worker; see
    :class:`~repro.monge.arrays.CachedArray`).
``kernel_tier``
    Which execution tier the hot-path kernels run in (DESIGN.md §13):
    ``"reference"`` (round-by-round), ``"fused"`` (vectorized NumPy
    with ledger charge replay), ``"blocked"`` (fused kernels streaming
    over byte-budgeted row tiles), or ``"numba"`` (optional JIT stub,
    available only when the package is importable).  ``None`` (default)
    defers to the process-wide tier — itself ``REPRO_KERNEL_TIER``,
    then the deprecated ``REPRO_FAST_PATH`` shim, then ``"fused"``.
    Results, witnesses, ledger snapshots, traces, and certificates are
    bit-identical across tiers (the fused-kernel invariant).
``tile_bytes``
    Byte budget for one resident candidate tile in the ``blocked``
    tier.  ``None`` (default) defers to ``REPRO_TILE_BYTES`` (itself
    unset → 64 MiB); ignored by the dense tiers.
``shard_timeout``
    Per-shard-task deadline in seconds for supervised dispatch
    (DESIGN.md §12).  ``None`` (default) defers to the
    ``REPRO_SHARD_TIMEOUT`` environment default (itself unset → no
    deadline); a positive float arms per-attempt deadlines and the
    bucket-level budget in :mod:`repro.shard.supervise`.  Timed-out
    shards are retried and, past the attempt limit, quarantined to an
    in-process fallback — results stay bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultPlan

__all__ = ["ExecutionConfig", "ROW_STRATEGIES", "TUBE_STRATEGIES"]

#: Strategies understood by the row-extremum family (Table 1.1/1.2).
ROW_STRATEGIES = ("auto", "sqrt", "halving")
#: Schemes understood by the tube family (Table 1.3).
TUBE_STRATEGIES = ("auto", "crew", "crcw")

_ALL_STRATEGIES = tuple(dict.fromkeys(ROW_STRATEGIES + TUBE_STRATEGIES))


@dataclass(frozen=True)
class ExecutionConfig:
    """Cross-cutting execution policy for one (or many) engine queries.

    Immutable; use :meth:`with_overrides` to derive variants.  Field
    semantics are documented in the module docstring.
    """

    strategy: str = "auto"
    cache: bool = False
    strict: bool = True
    checked: bool = False
    faults: Optional["FaultPlan"] = None
    retries: int = 0
    certify: bool = False
    trace: bool = False
    shards: Optional[int] = None
    shard_timeout: Optional[float] = None
    kernel_tier: Optional[str] = None
    tile_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on internally inconsistent settings."""
        if self.strategy not in _ALL_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of {_ALL_STRATEGIES}"
            )
        if not isinstance(self.retries, int) or isinstance(self.retries, bool):
            raise ValueError(f"retries must be an int, got {self.retries!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.shards is not None:
            if not isinstance(self.shards, int) or isinstance(self.shards, bool):
                raise ValueError(f"shards must be an int or None, got {self.shards!r}")
            if self.shards < 1:
                raise ValueError(
                    f"shards must be >= 1, got {self.shards} (use the "
                    "REPRO_SHARDS=0 environment kill switch to force serial "
                    "globally; shards=1 pins it per query)"
                )
        if self.shard_timeout is not None:
            if isinstance(self.shard_timeout, bool) or not isinstance(
                self.shard_timeout, (int, float)
            ):
                raise ValueError(
                    f"shard_timeout must be a positive number of seconds or "
                    f"None, got {self.shard_timeout!r}"
                )
            timeout = float(self.shard_timeout)
            if not timeout > 0 or timeout != timeout or timeout == float("inf"):
                raise ValueError(
                    f"shard_timeout must be a positive finite number of "
                    f"seconds or None, got {self.shard_timeout!r}"
                )
        if self.kernel_tier is not None:
            from repro.kernels.registry import get_tier

            get_tier(self.kernel_tier)  # ValueError lists the known tiers
        if self.tile_bytes is not None:
            if not isinstance(self.tile_bytes, int) or isinstance(self.tile_bytes, bool):
                raise ValueError(
                    f"tile_bytes must be a positive int or None, got {self.tile_bytes!r}"
                )
            if self.tile_bytes <= 0:
                raise ValueError(
                    f"tile_bytes must be a positive byte budget, got {self.tile_bytes}"
                )

    def with_overrides(self, **kw) -> "ExecutionConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **kw)

    def fingerprint(self) -> tuple:
        """The batch-compatibility fingerprint (DESIGN.md §9).

        Two queries may share one fused sweep only when these fields
        agree; strategy and shape are keyed separately by the planner,
        and ``faults``/``retries`` disqualify fusion outright (so they
        never appear here).  ``trace`` is included so traced and
        untraced queries never share a bucket — a traced bucket pays
        the per-owner span bookkeeping for all its members.  ``shards``
        and ``shard_timeout`` are included so differently-sharded (or
        differently-deadlined) queries never share a bucket: both decide
        how the whole bucket executes.  ``kernel_tier`` and
        ``tile_bytes`` are included so mixed-tier (or mixed-budget)
        queries never fuse — one bucket runs under exactly one tier.
        """
        return (self.cache, self.strict, self.checked, self.certify, self.trace,
                self.shards, self.shard_timeout, self.kernel_tier,
                self.tile_bytes)

    # ------------------------------------------------------------------ #
    def resolve_strategy(self, problem: str, crcw: bool) -> str:
        """The concrete strategy ``"auto"`` stands for.

        ``problem`` is an engine problem key; ``crcw`` says whether the
        resolved machine supports concurrent writes.  Non-``auto``
        strategies pass through unchanged (the registry validates them
        against the solver's declared capabilities).
        """
        if self.strategy != "auto":
            return self.strategy
        if problem.startswith("tube"):
            return "crcw" if crcw else "crew"
        if problem in ("rowmin", "rowmax", "rowmax_inverse"):
            return "sqrt"
        return "auto"  # strategy-free problems (staircase, banded)
