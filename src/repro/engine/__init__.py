"""The unified solver engine (DESIGN.md §8).

Layering: the :mod:`~repro.engine.registry` declares what can run where
(``(problem, backend)`` → :class:`SolverSpec` with capabilities and
Table-1.x bound predicates); an :class:`ExecutionConfig` says how to run
it; a :class:`Session` owns machines and per-query ledger sub-accounts;
every query returns a structured :class:`SearchResult` that still
unpacks as ``(values, witnesses)``.  Batches of queries go through
the plan → group → execute pipeline (DESIGN.md §9):
:meth:`Session.solve_many` lowers each query to a
:class:`~repro.engine.planner.QueryPlan`, groups compatible plans,
and :func:`repro.engine.lifecycle.run_plans` walks each bucket down
the executor chain (sharded → fused → serial), returning a
:class:`BatchResult` in input order.  :meth:`Session.prepare` is the
build-once entry: it returns a :class:`PreparedHandle` answering many
queries against one precomputed index (DESIGN.md §14).

Quick start::

    import repro

    result = repro.solve("rowmin", array)                 # CRCW PRAM
    values, cols = result                                  # tuple-compat
    result.rounds, result.snapshot                         # this query's cost

    from repro import ExecutionConfig, Session
    s = Session("hypercube")
    r = s.solve("tube_min", comp, config=ExecutionConfig(certify=True))
    r.certified, s.ledger                                  # verdict + totals
"""

from repro.engine.config import ROW_STRATEGIES, TUBE_STRATEGIES, ExecutionConfig
from repro.engine.machines import (
    backend_of,
    build_machine,
    charge_parallel,
    fresh_clone,
)
from repro.engine.registry import (
    BACKENDS,
    NETWORK_BACKENDS,
    PRAM_BACKENDS,
    PROBLEMS,
    CapabilityError,
    SolverRegistry,
    SolverSpec,
    register,
    registry,
)
from repro.engine.lifecycle import (
    EXECUTORS,
    Executor,
    FusedExecutor,
    SerialExecutor,
    ShardedExecutor,
    execute_bucket,
    run_plans,
)
from repro.engine.planner import QueryPlan, group_plans, plan_query
from repro.engine.prepared import PreparedHandle, prepare
from repro.engine.result import BatchResult, SearchResult
from repro.engine.session import QueryRecord, Session, dispatch_on, solve, solve_many

__all__ = [
    "solve",
    "solve_many",
    "prepare",
    "PreparedHandle",
    "Session",
    "QueryRecord",
    "QueryPlan",
    "plan_query",
    "group_plans",
    "Executor",
    "SerialExecutor",
    "FusedExecutor",
    "ShardedExecutor",
    "EXECUTORS",
    "execute_bucket",
    "run_plans",
    "BatchResult",
    "ExecutionConfig",
    "SearchResult",
    "SolverRegistry",
    "SolverSpec",
    "CapabilityError",
    "registry",
    "register",
    "dispatch_on",
    "backend_of",
    "build_machine",
    "fresh_clone",
    "charge_parallel",
    "PROBLEMS",
    "BACKENDS",
    "PRAM_BACKENDS",
    "NETWORK_BACKENDS",
    "ROW_STRATEGIES",
    "TUBE_STRATEGIES",
]
