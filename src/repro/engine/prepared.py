"""The precompute-once entry shape: ``prepare → query`` (DESIGN.md §14).

``solve`` pays for each request in full; :meth:`Session.prepare` instead
runs a registered solver's ``prepare`` capability once — for
``submatrix_max`` that builds a
:class:`~repro.monge.index.MongeIndex` — and returns a
:class:`PreparedHandle` whose :meth:`~PreparedHandle.query` answers many
requests against the built structure.  Builds and queries charge the
session ledger exactly like solves do (each on its own
:class:`~repro.pram.ledger.CostLedger` sub-account, merged back), emit
``index-build`` / ``index-query`` spans when tracing is on, and bump the
``index.*`` metrics; they are **not** appended to ``Session.queries`` —
the query log stays the record of solve-shaped requests, while prepared
work is visible through the ledger, metrics, and traces.

Handles are cached per session in a small LRU keyed on
``(problem, backend, id(data), config fingerprint)`` — preparing the
same array twice under the same config returns the same handle
(``index.lru.hits``) without rebuilding.  The handle keeps a strong
reference to the data, so an ``id``-keyed hit can never alias a
recycled object.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.config import ExecutionConfig
from repro.engine.lifecycle import ledger_swap
from repro.engine.registry import CapabilityError, registry
from repro.engine.result import SearchResult
from repro.obs.metrics import metrics
from repro.obs.tracer import Tracer
from repro.pram.ledger import CostLedger

__all__ = ["PreparedHandle", "prepare_handle", "prepare"]


class PreparedHandle:
    """A built index bound to its session, config, and machine.

    ``handle.query(rows, cols)`` returns a full
    :class:`~repro.engine.result.SearchResult` (strategy ``"index"``)
    whose snapshot is the query's own ledger sub-account.  ``handle.index``
    exposes the underlying structure (e.g.
    :class:`~repro.monge.index.MongeIndex`) for direct, uncharged reads.
    """

    def __init__(self, session, problem: str, spec, cfg: ExecutionConfig,
                 index, machine, data, build_snapshot: Optional[dict],
                 build_trace) -> None:
        self.session = session
        self.problem = problem
        self.spec = spec
        self.config = cfg
        self.index = index
        self.machine = machine
        self.data = data  # strong ref: keeps the id()-keyed LRU sound
        #: Ledger snapshot of the build sub-account (``None`` sequentially).
        self.build_snapshot = build_snapshot
        #: Trace of the build span when the config enables tracing.
        self.build_trace = build_trace

    @property
    def shape(self):
        return self.index.shape

    def query(self, rows, cols) -> SearchResult:
        """Answer one ``(row_range, col_range)`` rectangle.

        Charges the scanned envelope entries plus one combine round on a
        private sub-account, merges it into the session ledger, and
        returns the result with its snapshot — the same accounting shape
        a :meth:`Session.solve` result carries.
        """
        session = self.session
        machine = self.machine
        cfg = self.config
        limit = machine.ledger.processor_limit if machine is not None else None
        qledger = CostLedger(processor_limit=limit) if machine is not None else None

        tracer = Tracer() if cfg.trace else None
        span = None
        if tracer is not None:
            span = tracer.begin(
                "index-query",
                "query",
                problem=self.problem,
                backend=session.backend,
                strategy="index",
                shape=self.index.shape,
            )
            if qledger is not None:
                tracer.bind(qledger, span)

        with ledger_swap(machine, qledger, None):
            values, witnesses, info = self.index.query_on(machine, rows, cols)

        trace = None
        if tracer is not None:
            if qledger is not None:
                tracer.unbind(qledger)
            span.attrs["nodes"] = info["nodes"]
            span.attrs["scanned"] = info["scanned"]
            tracer.end(span)
            trace = tracer.trace(span)

        snapshot = qledger.snapshot() if qledger is not None else None
        if qledger is not None:
            session.ledger.merge(qledger)
        metrics().counter("index.queries").inc()

        return SearchResult(
            values=values,
            witnesses=witnesses,
            problem=self.problem,
            backend=session.backend,
            strategy="index",
            snapshot=snapshot,
            ledger=qledger,
            certificate=None,
            degradation=[],
            retries=0,
            trace=trace,
        )


def prepare_handle(session, problem: str, data, cfg: ExecutionConfig
                   ) -> PreparedHandle:
    """Build (or fetch from the session LRU) a prepared handle."""
    from repro.engine.planner import shape_of
    from repro.kernels.registry import resolve_kernel_tier, tier_context

    spec = registry.lookup(problem, session.backend)
    if not spec.preparable:
        preparable = sorted(
            {p for p, b in registry.keys()
             if b == session.backend and registry.lookup(p, b).preparable}
        )
        raise CapabilityError(
            f"({problem}, {session.backend}) declares no prepare capability; "
            f"preparable problems on this backend: {preparable or ['<none>']}"
        )
    spec.check_kernel_tier(cfg.kernel_tier)
    shape = shape_of(problem, data)

    m = metrics()
    key = (problem, session.backend, id(data), cfg.fingerprint())
    cached = session._prepared.get(key)
    if cached is not None:
        session._prepared.move_to_end(key)
        m.counter("index.lru.hits").inc()
        return cached
    m.counter("index.lru.misses").inc()

    nodes = spec.nodes_for(shape) if spec.nodes_for is not None else 2
    machine = session.machine(nodes)
    limit = machine.ledger.processor_limit if machine is not None else None
    qledger = CostLedger(processor_limit=limit) if machine is not None else None

    tracer = Tracer() if cfg.trace else None
    span = None
    if tracer is not None:
        span = tracer.begin(
            "index-build",
            "prepare",
            problem=problem,
            backend=session.backend,
            shape=shape,
            kernel_tier=resolve_kernel_tier(cfg.kernel_tier),
        )
        if qledger is not None:
            tracer.bind(qledger, span)

    with ledger_swap(machine, qledger, None):
        with tier_context(cfg.kernel_tier, cfg.tile_bytes):
            index = spec.prepare(machine, data, cfg)

    trace = None
    if tracer is not None:
        if qledger is not None:
            tracer.unbind(qledger)
        span.attrs["build_evals"] = index.build_evals
        tracer.end(span)
        trace = tracer.trace(span)

    snapshot = qledger.snapshot() if qledger is not None else None
    if qledger is not None:
        session.ledger.merge(qledger)
    m.counter("index.builds").inc()

    handle = PreparedHandle(
        session, problem, spec, cfg, index, machine, data, snapshot, trace
    )
    session._prepared[key] = handle
    while len(session._prepared) > session.index_cache:
        session._prepared.popitem(last=False)
        m.counter("index.lru.evictions").inc()
    return handle


def prepare(problem, data=None, backend: str = "auto",
            config: Optional[ExecutionConfig] = None, *, machine=None,
            **overrides) -> PreparedHandle:
    """One-shot front door: ``repro.prepare(array).query(rows, cols)``.

    Spins a throwaway session (see
    :meth:`repro.engine.session.Session.prepare`); the handle keeps the
    session alive, so its ledger keeps aggregating across queries.
    """
    from repro.engine.session import Session

    session = Session(backend, machine=machine)
    return session.prepare(problem, data, config, **overrides)
