"""Query planning and grouping: the *plan → group* half of the pipeline.

The engine executes every query in three stages (DESIGN.md §9):

**plan**
    :func:`plan_query` lowers one ``(problem, data, config)`` request to
    a declarative :class:`QueryPlan` — the registry spec, the resolved
    strategy, the shape class, and a *fused key* saying which batch
    bucket (if any) the query may share.

**group**
    :func:`group_plans` buckets compatible plans.  Plans with equal,
    non-``None`` fused keys execute as one stacked sweep on one machine
    allocation; everything else becomes a singleton bucket and runs
    through the unchanged serial path (retries, faults, degradation).

**execute**
    :meth:`repro.engine.session.Session.solve_many` walks the buckets.

Batch-compatibility rules
-------------------------
A plan is *fusable* (``fused_key is not None``) iff all of:

- the registry spec declares ``batchable`` (row-extremum family on the
  simulated PRAMs — their ``sqrt`` recursion has data-independent row
  structure, which makes per-query charge replay exact);
- the resolved strategy is ``"sqrt"`` (the ``halving`` ablation
  localizes rows between *neighbors'* minima, which would couple
  stacked queries across owner boundaries);
- ``strict=True`` (degradation probes inspect each array individually);
- no fault plan (query- or session-level) and no retries — fault replay
  and ``run_resilient`` stay strictly per-query;
- a genuine 2-D shape with at least one row and column (edge shapes
  keep the serial error/empty contracts).

Two fusable plans share a bucket iff their keys agree: same problem,
backend, strategy, shape, and :meth:`ExecutionConfig.fingerprint` —
which includes the ``shards`` width (the shard count decides how the
whole bucket executes; see DESIGN.md §11) and the ``kernel_tier`` /
``tile_bytes`` pair, so mixed-tier queries never fuse: one bucket runs
under exactly one kernel tier (DESIGN.md §13).
The session adds machine-level conditions at execution time (plain
:class:`~repro.pram.machine.Pram`, a fused-class kernel tier, unbounded
processor budget); a bucket that fails those simply runs serially —
grouping never changes results, only wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.engine.config import ExecutionConfig
from repro.engine.registry import SolverSpec
from repro.engine.registry import registry as _global_registry

__all__ = ["QueryPlan", "shape_of", "plan_query", "group_plans"]

#: Problems whose data is an ``(array, lo, hi)`` window triple.
_WINDOW_PROBLEMS = ("banded_min", "banded_max", "windowed_min")


def shape_of(problem: str, data) -> Tuple[int, ...]:
    """The problem-family shape key used for machine sizing, bounds, and
    batch grouping."""
    if problem.startswith("tube"):
        from repro.core.tube_pram import _as_composite

        return tuple(_as_composite(data).shape)
    from repro.monge.arrays import as_search_array

    if problem in _WINDOW_PROBLEMS:
        if not isinstance(data, (tuple, list)) or len(data) != 3:
            raise TypeError(
                f"{problem!r} data must be an (array, lo, hi) triple: the "
                "search array plus per-row column windows"
            )
        return tuple(as_search_array(data[0]).shape)
    if problem == "submatrix_max" and isinstance(data, (tuple, list)):
        # one-shot form: (array, (r0, r1), (c0, c1)); the shape key is
        # the full array's — the rectangle is query state, not shape
        # class.  A bare array (the prepare entry) falls through below.
        if len(data) != 3:
            raise TypeError(
                "'submatrix_max' data must be an (array, (r0, r1), (c0, c1)) "
                "triple: the search array plus a half-open query rectangle"
            )
        return tuple(as_search_array(data[0]).shape)
    return tuple(as_search_array(data).shape)


@dataclass
class QueryPlan:
    """One query lowered to its declarative execution plan."""

    index: int
    problem: str
    data: Any
    backend: str
    strategy: str
    shape: Tuple[int, ...]
    spec: SolverSpec
    config: ExecutionConfig
    #: Batch-compatibility bucket key; ``None`` means "must run serially".
    fused_key: Optional[Tuple] = None


def _fused_key(
    spec: SolverSpec,
    strategy: str,
    shape: Tuple[int, ...],
    cfg: ExecutionConfig,
    session_faults,
) -> Optional[Tuple]:
    """Apply the batch-compatibility rules (module docstring)."""
    if not spec.batchable:
        return None
    if strategy != "sqrt":
        return None
    if not cfg.strict:
        return None
    # machine-level fault plans disqualify fusion (the fused sweep runs
    # one machine for many owners); shard-only plans never touch the
    # machines — they chaos-test the executor — so fusion stays legal.
    if cfg.faults is not None and not getattr(cfg.faults, "shard_only", False):
        return None
    if session_faults is not None and not getattr(
        session_faults, "shard_only", False
    ):
        return None
    if cfg.retries:
        return None
    if len(shape) != 2 or shape[0] < 1 or shape[1] < 1:
        return None
    return (spec.problem, spec.backend, strategy, shape, cfg.fingerprint())


def plan_query(
    problem: str,
    data,
    cfg: ExecutionConfig,
    backend: str,
    *,
    index: int = 0,
    session_faults=None,
    registry=None,
) -> QueryPlan:
    """Lower one query to a :class:`QueryPlan` (stage one of the pipeline).

    Raises :class:`~repro.engine.registry.CapabilityError` exactly where
    a serial :meth:`Session.solve` would: unknown pairs and undeclared
    strategies fail at plan time, before any machine is built.
    """
    reg = registry if registry is not None else _global_registry
    spec = reg.lookup(problem, backend)
    shape = shape_of(problem, data)
    strategy = cfg.resolve_strategy(problem, backend == "pram-crcw")
    spec.check_strategy(strategy)
    return QueryPlan(
        index=index,
        problem=problem,
        data=data,
        backend=backend,
        strategy=strategy,
        shape=shape,
        spec=spec,
        config=cfg,
        fused_key=_fused_key(spec, strategy, shape, cfg, session_faults),
    )


def group_plans(plans: Sequence[QueryPlan]) -> List[List[QueryPlan]]:
    """Bucket plans for execution (stage two of the pipeline).

    Fusable plans with equal keys share one bucket, kept in first-
    appearance order; every unfusable plan is its own singleton bucket.
    Result order within a bucket follows input order, and
    :func:`~repro.engine.lifecycle.run_plans` reassembles results by
    argument position, so grouping never reorders results.

    **Stability contract (DESIGN.md §15).**  Grouping is stateless and
    deterministic: re-lowering the same ``(problem, data, config)``
    request always yields an identical fused key (the key is built
    purely from declarative plan fields — never from ``id()``\\ s,
    arrival order, or planner state), and calling this function
    repeatedly over interleaved arrivals partitions exactly as one
    all-at-once call would.  The query service depends on this to
    bucket *incrementally* as requests arrive: the fused key is the
    bucketing contract, and ``QueryService`` re-lowers each plan at
    flush time and asserts the key unchanged
    (tests/test_engine_planner.py pins both properties).
    """
    buckets: List[List[QueryPlan]] = []
    by_key: dict = {}
    for plan in plans:
        if plan.fused_key is None:
            buckets.append([plan])
            continue
        slot = by_key.get(plan.fused_key)
        if slot is None:
            by_key[plan.fused_key] = len(buckets)
            buckets.append([plan])
        else:
            buckets[slot].append(plan)
    return buckets
