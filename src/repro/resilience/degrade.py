"""Graceful degradation for non-(staircase-)Monge inputs.

The core entry points hard-require their structural preconditions: the
Table 1.1–1.3 algorithms are simply wrong on arbitrary arrays.  With
``strict=False`` they instead *verify* the precondition (an ``O(mn)``
dense scan — this mode trades speed for safety) and, when it fails,
emit a structured :class:`DegradedResultWarning` and compute the answer
by a dense fallback scan that is correct for any input.

The fallback is still executed against the caller's machine: its rounds
are time-sliced onto the machine's processor budget (Brent style) and
charged under the ``"degraded-fallback"`` ledger phase, so cost
accounting stays meaningful even in degraded mode.

This module deliberately imports nothing from :mod:`repro.core` (the
core entry points import *it*); the machine is always passed in.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

from repro._util.bits import ceil_div, ceil_log2
from repro.monge.properties import (
    is_inverse_monge,
    is_monge,
    is_staircase_monge,
    monge_defect,
    staircase_boundary,
)

__all__ = [
    "DegradedResultWarning",
    "warn_degraded",
    "monge_reason",
    "inverse_monge_reason",
    "staircase_reason",
    "composite_reason",
    "brute_rows",
    "brute_tube",
]


class DegradedResultWarning(UserWarning):
    """A structured warning: an entry point fell back to a dense scan.

    Attributes
    ----------
    problem:
        The entry point that degraded (e.g. ``"monge_row_minima_pram"``).
    reason:
        Why the structured algorithm could not be trusted.
    fallback:
        The substitute computation used.
    """

    def __init__(self, problem: str, reason: str, fallback: str) -> None:
        self.problem = problem
        self.reason = reason
        self.fallback = fallback
        super().__init__(f"{problem}: {reason}; degrading to {fallback}")


def warn_degraded(problem: str, reason: str, fallback: str) -> None:
    warnings.warn(DegradedResultWarning(problem, reason, fallback), stacklevel=3)


# --------------------------------------------------------------------- #
# Precondition checks (each returns None when the input is fine).
# --------------------------------------------------------------------- #
def monge_reason(a) -> Optional[str]:
    """Why ``a`` cannot be trusted as a Monge array, or ``None``."""
    if is_monge(a):
        return None
    dense = np.asarray(a.materialize() if hasattr(a, "materialize") else a)
    if not np.isfinite(dense).all():
        return "input contains non-finite entries"
    return f"input is not Monge (defect {monge_defect(a):+.3g} > 0)"


def inverse_monge_reason(a) -> Optional[str]:
    if is_inverse_monge(a):
        return None
    dense = np.asarray(a.materialize() if hasattr(a, "materialize") else a)
    if not np.isfinite(dense).all():
        return "input contains non-finite entries"
    return "input is not inverse-Monge"


def staircase_reason(a) -> Optional[str]:
    """Why ``a`` is not staircase-Monge, or ``None``."""
    if is_staircase_monge(a):
        return None
    if staircase_boundary(a) is None:
        return "infinite entries are not staircase-shaped"
    return "finite part violates the Monge condition"


def composite_reason(c) -> Optional[str]:
    """Why a composite's factors cannot be trusted as Monge, or ``None``."""
    bad = [name for name, f in (("D", c.D), ("E", c.E)) if not is_monge(f)]
    if not bad:
        return None
    return f"factor{'s' if len(bad) > 1 else ''} {', '.join(bad)} not Monge"


# --------------------------------------------------------------------- #
# Dense fallbacks, charged against the caller's machine.
# --------------------------------------------------------------------- #
def _charge_dense_scan(pram, cells: int, reduce_width: int) -> None:
    """Time-slice a dense scan onto the machine's budget (Brent style):
    one evaluation round plus a ``lg``-depth tournament reduction, each
    sliced into ``⌈cells / p⌉`` rounds of width ``min(cells, p)``."""
    p = max(1, pram.processors)
    slices = ceil_div(max(1, cells), p)
    width = min(max(1, cells), p)
    pram.charge(rounds=slices, processors=width, work=cells)  # evaluation
    depth = max(1, ceil_log2(max(2, reduce_width)))
    pram.charge(rounds=depth * slices, processors=width, work=max(1, cells - 1))


def brute_rows(pram, dense: np.ndarray, mode: str = "min") -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row extrema of an arbitrary dense matrix.

    Non-finite entries are treated as absent (matching the staircase
    convention); rows with no finite entry report ``(±inf, -1)``.
    """
    dense = np.asarray(dense, dtype=np.float64)
    m, n = dense.shape
    if mode == "min":
        masked = np.where(np.isfinite(dense), dense, np.inf)
        empty_value = np.inf
    else:
        masked = np.where(np.isfinite(dense), dense, -np.inf)
        empty_value = -np.inf
    with pram.phase("degraded-fallback"):
        _charge_dense_scan(pram, m * n, n)
        if n == 0 or m == 0:
            return np.full(m, empty_value), np.full(m, -1, dtype=np.int64)
        pick = masked.argmin(axis=1) if mode == "min" else masked.argmax(axis=1)
        vals = masked[np.arange(m), pick]
        cols = np.where(np.isfinite(vals), pick, -1).astype(np.int64)
        vals = np.where(np.isfinite(vals), vals, empty_value)
    return vals, cols


def brute_tube(pram, cube: np.ndarray, mode: str = "min") -> Tuple[np.ndarray, np.ndarray]:
    """Tube extrema over the middle axis of a dense ``(p, q, r)`` cube,
    smallest-``j`` ties; cells with no finite candidate give ``(±inf, -1)``."""
    cube = np.asarray(cube, dtype=np.float64)
    p, q, r = cube.shape
    if mode == "min":
        masked = np.where(np.isfinite(cube), cube, np.inf)
        empty_value = np.inf
    else:
        masked = np.where(np.isfinite(cube), cube, -np.inf)
        empty_value = -np.inf
    with pram.phase("degraded-fallback"):
        _charge_dense_scan(pram, p * q * r, q)
        if p == 0 or r == 0 or q == 0:
            return (np.full((p, r), empty_value), np.full((p, r), -1, dtype=np.int64))
        pick = masked.argmin(axis=1) if mode == "min" else masked.argmax(axis=1)
        vals = np.take_along_axis(masked, pick[:, None, :], axis=1)[:, 0, :]
        args = np.where(np.isfinite(vals), pick, -1).astype(np.int64)
        vals = np.where(np.isfinite(vals), vals, empty_value)
    return vals, args
