"""Deterministic, seeded fault injection for the simulated machines.

A :class:`FaultPlan` is a reproducible adversary: given a seed and
per-kind rates, it decides — one pseudo-random draw per opportunity —
whether a simulated failure strikes.  The machines consult the plan at
well-defined *fault sites*:

``processor_drop``
    a :class:`~repro.pram.machine.Pram` round loses a processor and
    must be replayed (checked once per :meth:`Pram.charge`);
``link_drop``
    a network :meth:`~repro.networks.topology.CubeLike.exchange` loses
    its messages and the exchange is replayed from the pre-round
    checkpoint;
``message_corrupt``
    an exchange delivers, but one register arrives perturbed — the
    result is silently wrong and only a downstream certifier
    (:mod:`repro.resilience.certify`) can catch it;
``write_conflict``
    a ghost processor joins a checked scatter, colliding with a real
    write.  Exclusive/common models detect the collision and replay;
    arbitrary/priority models legally resolve it (the ghost always
    loses, so results are unchanged).

Dropped rounds are *replayed*: the machine charges the lost round's
cost to the ledger's separate retry account
(:meth:`~repro.pram.ledger.CostLedger.charge_retry`) and re-runs, so
paper-bound accounting stays untouched.  Because the simulation is
deterministic, a replayed round reproduces its original data — only
``message_corrupt`` can alter results, which is exactly the case the
certifier + re-execution loop (:mod:`repro.resilience.executor`)
exists for.

Every decision comes from one ``numpy`` generator seeded at
construction, so a plan's behavior is a pure function of its seed and
the (deterministic) sequence of fault sites the run visits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultError",
    "TransientFault",
    "FaultRetriesExhausted",
    "FAULT_KINDS",
]

FAULT_KINDS = ("processor_drop", "link_drop", "message_corrupt", "write_conflict")


class FaultError(RuntimeError):
    """Base class for injected-fault errors."""


class TransientFault(FaultError):
    """A recoverable injected failure (retry or re-execute)."""


class FaultRetriesExhausted(TransientFault):
    """A fault site kept failing past the machine's retry limit."""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what fired, where, and when."""

    kind: str
    site: str
    round_index: int
    detail: str = ""


@dataclass
class FaultPlan:
    """A seeded schedule of injected faults.

    Parameters
    ----------
    seed:
        Seeds the private generator; two plans with equal seeds and
        rates inject identical fault sequences for identical runs.
    processor_drop, link_drop, message_corrupt, write_conflict:
        Per-opportunity firing probabilities in ``[0, 1]``.
    corruption_scale:
        Magnitude of the perturbation applied by ``message_corrupt``.
    max_events:
        Cap on the retained :class:`FaultEvent` list (counting
        continues past the cap).
    """

    seed: int = 0
    processor_drop: float = 0.0
    link_drop: float = 0.0
    message_corrupt: float = 0.0
    write_conflict: float = 0.0
    corruption_scale: float = 1.0
    max_events: int = 10000
    events: List[FaultEvent] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        self._rng = np.random.default_rng(self.seed)
        self._counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.armed = True

    # ------------------------------------------------------------------ #
    def rate(self, kind: str) -> float:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        return float(getattr(self, kind))

    def fires(self, kind: str, site: str = "", round_index: int = -1, detail: str = "") -> bool:
        """One draw: does a ``kind`` fault strike this opportunity?

        Zero-rate kinds never consume a draw, so a plan's stream is a
        function only of the kinds it actually injects.
        """
        rate = self.rate(kind)
        if not self.armed or rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self._record(kind, site, round_index, detail)
        return True

    def corrupt(self, values: np.ndarray, site: str = "", round_index: int = -1) -> np.ndarray:
        """Possibly perturb one entry of a delivered message register.

        Returns ``values`` untouched when no fault fires; otherwise a
        perturbed *copy* (the simulated sender's state is never
        modified).  Non-numeric registers pass through unharmed.
        """
        if not self.fires("message_corrupt", site=site, round_index=round_index):
            return values
        arr = np.asarray(values)
        if arr.size == 0 or not np.issubdtype(arr.dtype, np.number):
            return values
        out = np.array(arr, copy=True)
        flat = out.reshape(-1)
        pos = int(self._rng.integers(flat.size))
        old = flat[pos]
        if np.issubdtype(out.dtype, np.floating):
            if np.isfinite(old):
                flat[pos] = old + self.corruption_scale * (1.0 + abs(float(old)))
            else:
                flat[pos] = 0.0
        else:
            flat[pos] = old + 1
        return out

    def exhausted(self, kind: str, site: str, attempts: int) -> None:
        """Raise :class:`FaultRetriesExhausted` for a persistent fault."""
        raise FaultRetriesExhausted(
            f"{kind} at {site} persisted through {attempts} replay attempts "
            f"(seed={self.seed}, rate={self.rate(kind)})"
        )

    # ------------------------------------------------------------------ #
    def disarm(self) -> None:
        """Stop injecting (events and counts are retained)."""
        self.armed = False

    def arm(self) -> None:
        self.armed = True

    def reset(self) -> None:
        """Restore the constructed state: reseed the stream, clear events."""
        self._rng = np.random.default_rng(self.seed)
        self.events.clear()
        self._counts = {kind: 0 for kind in FAULT_KINDS}
        self.armed = True

    def counts(self) -> Dict[str, int]:
        """Fired-fault totals by kind (uncapped, unlike ``events``)."""
        return dict(self._counts)

    @property
    def total_fired(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------ #
    def _record(self, kind: str, site: str, round_index: int, detail: str) -> None:
        self._counts[kind] += 1
        if len(self.events) < self.max_events:
            self.events.append(FaultEvent(kind, site, int(round_index), detail))
