"""Deterministic, seeded fault injection for the simulated machines.

A :class:`FaultPlan` is a reproducible adversary: given a seed and
per-kind rates, it decides — one pseudo-random draw per opportunity —
whether a simulated failure strikes.  The machines consult the plan at
well-defined *fault sites*:

``processor_drop``
    a :class:`~repro.pram.machine.Pram` round loses a processor and
    must be replayed (checked once per :meth:`Pram.charge`);
``link_drop``
    a network :meth:`~repro.networks.topology.CubeLike.exchange` loses
    its messages and the exchange is replayed from the pre-round
    checkpoint;
``message_corrupt``
    an exchange delivers, but one register arrives perturbed — the
    result is silently wrong and only a downstream certifier
    (:mod:`repro.resilience.certify`) can catch it;
``write_conflict``
    a ghost processor joins a checked scatter, colliding with a real
    write.  Exclusive/common models detect the collision and replay;
    arbitrary/priority models legally resolve it (the ghost always
    loses, so results are unchanged).

The *shard* kinds extend the same vocabulary into the multi-process
executor (:mod:`repro.shard.supervise`); the supervisor draws them in
the parent at dispatch time, so a seed fully determines which tasks are
struck:

``worker_kill``
    the worker process assigned a shard task dies mid-task (process
    pools observe ``BrokenProcessPool`` and the supervisor respawns the
    pool; the ``thread`` start method simulates the loss by raising
    :class:`~repro.shard.supervise.ShardWorkerLost`);
``task_delay``
    the worker sleeps ``delay_s`` seconds before sweeping — the
    straggler that deadlines and hedging exist for;
``shm_corrupt``
    the task's shared-memory segment header (placement metadata) is
    scribbled before dispatch; the worker's checksum verification
    raises :class:`~repro.shard.supervise.ShardIntegrityError` and the
    supervisor repairs the segment and retries;
``result_drop``
    the worker's completed result is discarded in transit, as if the
    return pickle never arrived.

A plan whose *machine* rates are all zero but carries shard rates is
``shard_only``: it does not disqualify batch fusion (the simulated
machines never consult it), so seeded chaos can drive the sharded
executor while the answers stay bit-identical to the serial path.

Dropped rounds are *replayed*: the machine charges the lost round's
cost to the ledger's separate retry account
(:meth:`~repro.pram.ledger.CostLedger.charge_retry`) and re-runs, so
paper-bound accounting stays untouched.  Because the simulation is
deterministic, a replayed round reproduces its original data — only
``message_corrupt`` can alter results, which is exactly the case the
certifier + re-execution loop (:mod:`repro.resilience.executor`)
exists for.

Every decision comes from one ``numpy`` generator seeded at
construction, so a plan's behavior is a pure function of its seed and
the (deterministic) sequence of fault sites the run visits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultError",
    "TransientFault",
    "FaultRetriesExhausted",
    "FAULT_KINDS",
    "MACHINE_FAULT_KINDS",
    "SHARD_FAULT_KINDS",
]

#: Kinds consulted by the simulated machines (PR 2).
MACHINE_FAULT_KINDS = (
    "processor_drop", "link_drop", "message_corrupt", "write_conflict",
)
#: Kinds consulted by the shard supervisor (parent-side draws).
SHARD_FAULT_KINDS = ("worker_kill", "task_delay", "shm_corrupt", "result_drop")
FAULT_KINDS = MACHINE_FAULT_KINDS + SHARD_FAULT_KINDS


class FaultError(RuntimeError):
    """Base class for injected-fault errors."""


class TransientFault(FaultError):
    """A recoverable injected failure (retry or re-execute)."""


class FaultRetriesExhausted(TransientFault):
    """A fault site kept failing past the machine's retry limit."""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what fired, where, and when."""

    kind: str
    site: str
    round_index: int
    detail: str = ""


@dataclass
class FaultPlan:
    """A seeded schedule of injected faults.

    Parameters
    ----------
    seed:
        Seeds the private generator; two plans with equal seeds and
        rates inject identical fault sequences for identical runs.
    processor_drop, link_drop, message_corrupt, write_conflict:
        Per-opportunity machine-level firing probabilities in ``[0, 1]``.
    worker_kill, task_delay, shm_corrupt, result_drop:
        Per-dispatch shard-level firing probabilities in ``[0, 1]``
        (consulted by :mod:`repro.shard.supervise`, never by the
        machines).
    corruption_scale:
        Magnitude of the perturbation applied by ``message_corrupt``.
    delay_s:
        Seconds a ``task_delay`` straggler sleeps before sweeping.
    max_events:
        Cap on the retained :class:`FaultEvent` list (counting
        continues past the cap).
    """

    seed: int = 0
    processor_drop: float = 0.0
    link_drop: float = 0.0
    message_corrupt: float = 0.0
    write_conflict: float = 0.0
    worker_kill: float = 0.0
    task_delay: float = 0.0
    shm_corrupt: float = 0.0
    result_drop: float = 0.0
    corruption_scale: float = 1.0
    delay_s: float = 0.05
    max_events: int = 10000
    events: List[FaultEvent] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        self._rng = np.random.default_rng(self.seed)
        self._counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.armed = True

    # ------------------------------------------------------------------ #
    @property
    def shard_only(self) -> bool:
        """True when only shard-level kinds can fire.

        Shard-only plans never perturb the simulated machines, so they
        do not disqualify batch fusion — they exist to chaos-test the
        multi-process executor while every answer stays bit-identical
        to the serial path.
        """
        return all(
            getattr(self, kind) == 0.0 for kind in MACHINE_FAULT_KINDS
        ) and any(getattr(self, kind) > 0.0 for kind in SHARD_FAULT_KINDS)

    # ------------------------------------------------------------------ #
    def rate(self, kind: str) -> float:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        return float(getattr(self, kind))

    def fires(self, kind: str, site: str = "", round_index: int = -1, detail: str = "") -> bool:
        """One draw: does a ``kind`` fault strike this opportunity?

        Zero-rate kinds never consume a draw, so a plan's stream is a
        function only of the kinds it actually injects.
        """
        rate = self.rate(kind)
        if not self.armed or rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self._record(kind, site, round_index, detail)
        return True

    def fires_keyed(self, kind: str, key, site: str = "", detail: str = "") -> bool:
        """An order-independent draw: a pure function of ``(seed, kind, key)``.

        The machines consult :meth:`fires` sequentially, so their shared
        stream is reproducible.  The shard supervisor cannot — retries
        and hedges complete in wall-clock order — so it keys each
        opportunity by stable coordinates (shard index, attempt number)
        instead of consuming the stream: the injected *schedule* is then
        a pure function of the seed no matter how dispatches interleave.
        """
        rate = self.rate(kind)
        if not self.armed or rate <= 0.0:
            return False
        rng = np.random.default_rng(
            (self.seed, FAULT_KINDS.index(kind)) + tuple(int(x) for x in key)
        )
        if rng.random() >= rate:
            return False
        self._record(kind, site, -1, detail)
        return True

    def corrupt(self, values: np.ndarray, site: str = "", round_index: int = -1) -> np.ndarray:
        """Possibly perturb one entry of a delivered message register.

        Returns ``values`` untouched when no fault fires; otherwise a
        perturbed *copy* (the simulated sender's state is never
        modified).  Non-numeric registers pass through unharmed.
        """
        if not self.fires("message_corrupt", site=site, round_index=round_index):
            return values
        arr = np.asarray(values)
        if arr.size == 0 or not np.issubdtype(arr.dtype, np.number):
            return values
        out = np.array(arr, copy=True)
        flat = out.reshape(-1)
        pos = int(self._rng.integers(flat.size))
        old = flat[pos]
        if np.issubdtype(out.dtype, np.floating):
            if np.isfinite(old):
                flat[pos] = old + self.corruption_scale * (1.0 + abs(float(old)))
            else:
                flat[pos] = 0.0
        else:
            flat[pos] = old + 1
        return out

    def exhausted(self, kind: str, site: str, attempts: int) -> None:
        """Raise :class:`FaultRetriesExhausted` for a persistent fault."""
        raise FaultRetriesExhausted(
            f"{kind} at {site} persisted through {attempts} replay attempts "
            f"(seed={self.seed}, rate={self.rate(kind)})"
        )

    # ------------------------------------------------------------------ #
    def disarm(self) -> None:
        """Stop injecting (events and counts are retained)."""
        self.armed = False

    def arm(self) -> None:
        self.armed = True

    def reset(self) -> None:
        """Restore the constructed state: reseed the stream, clear events."""
        self._rng = np.random.default_rng(self.seed)
        self.events.clear()
        self._counts = {kind: 0 for kind in FAULT_KINDS}
        self.armed = True

    def counts(self) -> Dict[str, int]:
        """Fired-fault totals by kind (uncapped, unlike ``events``)."""
        return dict(self._counts)

    @property
    def total_fired(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------ #
    def _record(self, kind: str, site: str, round_index: int, detail: str) -> None:
        self._counts[kind] += 1
        if len(self.events) < self.max_events:
            self.events.append(FaultEvent(kind, site, int(round_index), detail))
