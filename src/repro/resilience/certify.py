"""Self-certification of search results via local-optimality windows.

A run of the Table 1.1–1.3 algorithms returns values and witness
columns.  Given that the *input* really is (staircase-)Monge, the
output can be verified far more cheaply than by re-solving:

**Full Monge arrays** (``certify_row_minima`` with no boundary).  Check

1. every reported value matches its witness entry,
2. witness columns are nondecreasing (leftmost-minima monotonicity),
3. each row ``i`` beats every column of its *window*
   ``[c_{i-1}, c_{i+1}]`` (row 0 anchored at column 0, the last row at
   column ``n-1``) — strictly for columns left of the witness (this
   certifies the *leftmost* tie-break), weakly to the right.

Soundness: suppose all checks pass but row ``i``'s true minimum sits at
``j < c_{i-1}`` with ``a[i,j] < a[i,c_i]``.  The Monge quadruple on
rows ``(i-1, i)`` and columns ``(j, c_{i-1})`` gives
``a[i-1,j] - a[i-1,c_{i-1}] <= a[i,j] - a[i,c_{i-1}] < 0``, i.e. row
``i-1`` would also improve at ``j`` — the violation propagates up to
row 0, whose window starts at column 0 and would have caught it.
Symmetrically for ``j > c_{i+1}`` propagating down to the last row.
The window sizes telescope: ``O(m + n)`` evaluations total.

**Staircase-Monge arrays** (``certify_staircase_row_minima`` /
``certify_row_minima`` with ``boundary=f``).  Witness positions are
*not* globally monotone (that is the whole difficulty of Theorem 2.3);
what survives is the conditional form: for consecutive finite rows,
``c_{i+1} >= c_i`` **or** ``c_i >= f_{i+1}`` (if row ``i``'s witness is
still finite in row ``i+1``'s prefix, monotonicity applies to the
shared prefix, which is a full Monge array).  The window of row ``i``
becomes ``[lo_i, c_{i+1}] ∪ [f_{i+1}, f_i)``, where ``lo_i = c_{i-1}``
when the chain is unbroken (``c_{i-1} < f_i``) and ``0`` otherwise —
chain-break rows pay their full finite prefix, so the worst case is
``O(mn)`` but typical staircases stay near-linear.  The upward/downward
propagation argument above applies within each shared finite prefix;
the overhang columns ``[f_{i+1}, f_i)`` exist only in row ``i``'s
prefix and are checked directly.

**Tube (Monge-composite) outputs** (``certify_tube_minima``).  For
fixed ``i`` the slab ``M_i[k,j] = d[i,j] + e[j,k]`` is Monge in
``(k,j)``, so each output row ``i`` is certified with the full-Monge
window scheme along ``k``; the cross-row condition ``j*(i,k)``
nondecreasing in ``i`` (the ``(i,j)`` slab is Monge too) is checked as
a necessary condition.  ``O(p(q + r))`` evaluations.

All certificates are *conditional*: they assume the input has the
structure the algorithm was promised.  Use
:mod:`repro.resilience.degrade` (``strict=False``) when even that is in
doubt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.monge.arrays import MongeComposite, as_search_array
from repro.monge.staircase_seq import effective_boundary

__all__ = [
    "Certificate",
    "CertificationError",
    "certify_row_minima",
    "certify_staircase_row_minima",
    "certify_tube_minima",
]

_MAX_FAILURES = 32  # retained failure messages per certificate


class CertificationError(RuntimeError):
    """Raised by ``Certificate.require()`` on a failed certificate."""


@dataclass
class Certificate:
    """Outcome of one certification pass.

    ``evals`` counts the array-entry evaluations the check spent —
    the certificate's own cost, reported so callers can see it stays
    near-linear.
    """

    ok: bool
    kind: str
    evals: int = 0
    failures: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def fail(self, message: str) -> None:
        self.ok = False
        if len(self.failures) < _MAX_FAILURES:
            self.failures.append(message)

    def require(self) -> "Certificate":
        if not self.ok:
            shown = "; ".join(self.failures[:4])
            raise CertificationError(f"{self.kind} certificate failed: {shown}")
        return self


# --------------------------------------------------------------------- #
def certify_row_minima(array, values, cols, boundary=None) -> Certificate:
    """Certify leftmost row-minima output of a (staircase-)Monge array.

    Parameters
    ----------
    array:
        Anything :func:`~repro.monge.arrays.as_search_array` accepts.
    values, cols:
        The claimed minima and witness columns; all-``∞`` rows must
        report ``(inf, -1)``.
    boundary:
        Per-row first-infinite-column vector ``f`` for staircase
        inputs (``None`` means fully finite).
    """
    kind = "row-minima" if boundary is None else "staircase-row-minima"
    cert = Certificate(True, kind)
    a = as_search_array(array)
    m, n = a.shape
    vals = np.asarray(values, dtype=np.float64)
    cols_ = np.asarray(cols, dtype=np.int64)
    if vals.shape != (m,) or cols_.shape != (m,):
        cert.fail(f"output shapes {vals.shape}/{cols_.shape} do not match {m} rows")
        return cert
    if m == 0:
        return cert

    if boundary is None:
        f = np.full(m, n, dtype=np.int64)
    else:
        f = np.asarray(boundary, dtype=np.int64)
        if f.shape != (m,):
            cert.fail(f"boundary shape {f.shape} does not match {m} rows")
            return cert
        if (f < 0).any() or (f > n).any():
            cert.fail("boundary entries out of range [0, n]")
            return cert
        if (np.diff(f) > 0).any():
            cert.fail("boundary is not nonincreasing (not staircase-shaped)")
            return cert

    # -- shape of the answer on empty/non-empty rows -------------------- #
    empty = f == 0
    bad_empty = empty & ((cols_ != -1) | ~np.isposinf(vals))
    for i in np.nonzero(bad_empty)[0][:4]:
        cert.fail(f"row {i} has an empty finite prefix but reports "
                  f"({vals[i]}, {cols_[i]}) instead of (inf, -1)")
    valid = ~empty
    out_of_range = valid & ((cols_ < 0) | (cols_ >= f))
    for i in np.nonzero(out_of_range)[0][:4]:
        cert.fail(f"row {i} witness column {cols_[i]} outside its finite "
                  f"prefix [0, {f[i]})")
    if not cert.ok:
        return cert

    rows_idx = np.nonzero(valid)[0]
    if rows_idx.size == 0:
        return cert

    # -- (1) witness consistency ---------------------------------------- #
    got = a.eval(rows_idx, cols_[rows_idx])
    cert.evals += rows_idx.size
    bad = got != vals[rows_idx]
    for i, g in zip(rows_idx[bad][:4], got[bad][:4]):
        cert.fail(f"row {i}: reported value {vals[i]} but a[{i},{cols_[i]}] = {g}")
    if not cert.ok:
        return cert

    # -- (2) (conditional) witness monotonicity ------------------------- #
    prev = rows_idx[:-1]
    nxt = rows_idx[1:]
    mono_ok = (cols_[nxt] >= cols_[prev]) | (cols_[prev] >= f[nxt])
    for i, j in zip(prev[~mono_ok][:4], nxt[~mono_ok][:4]):
        cert.fail(f"rows {i}->{j}: witnesses {cols_[i]}->{cols_[j]} violate "
                  f"monotonicity (both inside the shared finite prefix)")
    if not cert.ok:
        return cert

    # -- (3) window optimality ------------------------------------------ #
    seg_rows: List[np.ndarray] = []
    seg_cols: List[np.ndarray] = []
    for pos, i in enumerate(rows_idx):
        fi = f[i]
        ci = cols_[i]
        if pos > 0:
            cp = cols_[rows_idx[pos - 1]]
            lo = cp if cp < fi else 0  # chain break: pay the full prefix
        else:
            lo = 0
        segments = []
        if pos + 1 < rows_idx.size:
            i_next = rows_idx[pos + 1]
            cn = cols_[i_next]
            # a legal downward jump (c_{i+1} < c_i, possible only across a
            # boundary drop) breaks the monotone chain: pay the full prefix
            hi = min(cn, fi - 1) if cn >= ci else fi - 1
            segments.append((lo, hi))
            if f[i_next] < fi:
                segments.append((int(f[i_next]), fi - 1))  # the overhang
        else:
            segments.append((lo, fi - 1))
        covered = []
        for a_lo, a_hi in segments:
            if a_hi >= a_lo:
                covered.append(np.arange(a_lo, a_hi + 1, dtype=np.int64))
        if not covered:
            continue
        js = np.unique(np.concatenate(covered))
        js = js[js != ci]
        if js.size:
            seg_rows.append(np.full(js.size, i, dtype=np.int64))
            seg_cols.append(js)
    if seg_rows:
        rr = np.concatenate(seg_rows)
        jj = np.concatenate(seg_cols)
        entries = a.eval(rr, jj)
        cert.evals += rr.size
        left = jj < cols_[rr]
        bad_left = left & ~(entries > vals[rr])
        bad_right = ~left & ~(entries >= vals[rr])
        for t in np.nonzero(bad_left)[0][:4]:
            cert.fail(f"row {rr[t]}: a[{rr[t]},{jj[t]}] = {entries[t]} does not "
                      f"exceed the reported minimum {vals[rr[t]]} left of the "
                      f"witness (leftmost tie-break violated or wrong minimum)")
        for t in np.nonzero(bad_right)[0][:4]:
            cert.fail(f"row {rr[t]}: a[{rr[t]},{jj[t]}] = {entries[t]} is below "
                      f"the reported minimum {vals[rr[t]]}")
    return cert


def certify_staircase_row_minima(array, values, cols, boundary=None) -> Certificate:
    """Certify Theorem 2.3 output; computes the boundary if not given."""
    if boundary is None:
        try:
            arr, f = effective_boundary(array)
        except ValueError as exc:
            cert = Certificate(False, "staircase-row-minima")
            cert.fail(f"input is not staircase-shaped: {exc}")
            return cert
        return certify_row_minima(arr, values, cols, boundary=f)
    return certify_row_minima(array, values, cols, boundary=boundary)


# --------------------------------------------------------------------- #
def _as_composite(c) -> MongeComposite:
    if isinstance(c, MongeComposite):
        return c
    if isinstance(c, tuple) and len(c) == 2:
        return MongeComposite(*c)
    raise TypeError("expected a MongeComposite or a (D, E) pair")


def certify_tube_minima(composite, values, jargs) -> Certificate:
    """Certify tube minima ``f[i,k] = min_j d[i,j] + e[j,k]`` with
    smallest-``j`` witnesses, in ``O(p(q + r))`` evaluations."""
    cert = Certificate(True, "tube-minima")
    c = _as_composite(composite)
    p, q, r = c.shape
    V = np.asarray(values, dtype=np.float64)
    J = np.asarray(jargs, dtype=np.int64)
    if V.shape != (p, r) or J.shape != (p, r):
        cert.fail(f"output shapes {V.shape}/{J.shape} do not match ({p}, {r})")
        return cert
    if p == 0 or r == 0:
        return cert
    if q == 0:
        if not (np.isposinf(V).all() and (J == -1).all()):
            cert.fail("empty middle axis must report (inf, -1) everywhere")
        return cert
    if (J < 0).any() or (J >= q).any():
        cert.fail("witness j outside [0, q)")
        return cert

    # -- (1) witness consistency ---------------------------------------- #
    ii = np.repeat(np.arange(p), r)
    kk = np.tile(np.arange(r), p)
    jw = J.ravel()
    got = c.D.eval(ii, jw, checked=False) + c.E.eval(jw, kk, checked=False)
    cert.evals += ii.size
    bad = got != V.ravel()
    for t in np.nonzero(bad)[0][:4]:
        cert.fail(f"cell ({ii[t]},{kk[t]}): reported {V.ravel()[t]} but "
                  f"c[{ii[t]},{jw[t]},{kk[t]}] = {got[t]}")
    if not cert.ok:
        return cert

    # -- (2) witness monotonicity along both output axes ---------------- #
    if (np.diff(J, axis=0) < 0).any():
        cert.fail("witnesses not nondecreasing along i (rows of J)")
    if (np.diff(J, axis=1) < 0).any():
        cert.fail("witnesses not nondecreasing along k (columns of J)")
    if not cert.ok:
        return cert

    # -- (3) window optimality along k (each slab M_i is Monge) --------- #
    lo = np.empty((p, r), dtype=np.int64)
    hi = np.empty((p, r), dtype=np.int64)
    lo[:, 0] = 0
    lo[:, 1:] = J[:, :-1]
    hi[:, -1] = q - 1
    hi[:, :-1] = J[:, 1:]
    widths = (hi - lo + 1).ravel()
    local = np.arange(int(widths.sum())) - np.repeat(
        np.cumsum(widths) - widths, widths
    )
    owner = np.repeat(np.arange(p * r), widths)
    jj = lo.ravel()[owner] + local
    keep = jj != J.ravel()[owner]
    owner, jj = owner[keep], jj[keep]
    oi = owner // r
    ok = owner % r
    entries = c.D.eval(oi, jj, checked=False) + c.E.eval(jj, ok, checked=False)
    cert.evals += owner.size
    ref = V.ravel()[owner]
    left = jj < J.ravel()[owner]
    bad_left = left & ~(entries > ref)
    bad_right = ~left & ~(entries >= ref)
    for t in np.nonzero(bad_left)[0][:4]:
        cert.fail(f"cell ({oi[t]},{ok[t]}): c[{oi[t]},{jj[t]},{ok[t]}] = "
                  f"{entries[t]} does not exceed the reported minimum left of "
                  f"the witness (smallest-j tie-break violated or wrong minimum)")
    for t in np.nonzero(bad_right)[0][:4]:
        cert.fail(f"cell ({oi[t]},{ok[t]}): c[{oi[t]},{jj[t]},{ok[t]}] = "
                  f"{entries[t]} is below the reported minimum {ref[t]}")
    return cert
