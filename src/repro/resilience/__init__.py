"""Fault injection, self-certification, and graceful degradation.

The machine stack (``Pram``, ``BrentPram``, the ``CubeLike`` networks
and ``NetworkMachine``) accepts an optional seeded
:class:`~repro.resilience.faults.FaultPlan` that drops processors and
links, corrupts messages, and forces write conflicts.  Dropped rounds
replay from their checkpoint, charging a separate ledger retry account;
corrupted results are caught by the certifiers here and re-executed by
:func:`~repro.resilience.executor.run_resilient`.  The ``strict=False``
flag on the :mod:`repro.core` entry points adds input-side resilience:
non-Monge inputs fall back to a charged dense scan with a structured
:class:`~repro.resilience.degrade.DegradedResultWarning` instead of
raising.  See DESIGN.md §"Fault model & certification".
"""

from repro.resilience.certify import (
    Certificate,
    CertificationError,
    certify_row_minima,
    certify_staircase_row_minima,
    certify_tube_minima,
)
from repro.resilience.degrade import DegradedResultWarning
from repro.resilience.executor import (
    AttemptRecord,
    ResilienceExhausted,
    ResilientReport,
    run_resilient,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    MACHINE_FAULT_KINDS,
    SHARD_FAULT_KINDS,
    FaultError,
    FaultEvent,
    FaultPlan,
    FaultRetriesExhausted,
    TransientFault,
)

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultError",
    "TransientFault",
    "FaultRetriesExhausted",
    "FAULT_KINDS",
    "MACHINE_FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "Certificate",
    "CertificationError",
    "certify_row_minima",
    "certify_staircase_row_minima",
    "certify_tube_minima",
    "DegradedResultWarning",
    "run_resilient",
    "AttemptRecord",
    "ResilientReport",
    "ResilienceExhausted",
]
