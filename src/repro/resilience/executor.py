"""Run-certify-retry orchestration.

:func:`run_resilient` drives one computation under fault injection to a
*certified* answer:

1. run the attempt (a closure that builds its machine, binds the plan,
   and returns a result);
2. recoverable failures — injected transients that exhausted their
   round-level retries, routing collisions or concurrency violations
   provoked by corrupted registers, or index/value errors from
   corrupted index arithmetic — count as a failed attempt and trigger
   re-execution;
3. a surviving result is certified (when a certifier is supplied); a
   rejected certificate also triggers re-execution;
4. the final attempt runs with the plan *disarmed* (fault-free), which
   guarantees termination with the reference answer — the simulated
   machines are deterministic, so a fault-free attempt is bit-equal to
   the no-plan run.

The report records every attempt, so chaos tests can assert both that
faults actually fired and that the certified answer matched the
reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.networks.primitives import RoutingCollision
from repro.pram.models import ConcurrencyViolation
from repro.resilience.certify import Certificate
from repro.resilience.faults import FaultPlan, TransientFault

__all__ = [
    "run_resilient",
    "AttemptRecord",
    "ResilientReport",
    "ResilienceExhausted",
    "RECOVERABLE_ERRORS",
]

#: Exception types one attempt may raise that justify re-execution.
#: IndexError/ValueError are included because corrupted registers feed
#: index arithmetic downstream; a *clean* (disarmed) attempt re-raises
#: them — with no faults injected they indicate a genuine bug.
RECOVERABLE_ERRORS = (TransientFault, RoutingCollision, ConcurrencyViolation,
                      IndexError, ValueError)


class ResilienceExhausted(RuntimeError):
    """No attempt produced a certified answer within ``max_attempts``."""


@dataclass
class AttemptRecord:
    """What happened on one attempt."""

    index: int
    clean: bool                      # ran with the plan disarmed?
    ok: bool = False
    error: Optional[str] = None
    certificate: Optional[Certificate] = None
    faults_fired: int = 0            # plan firings during this attempt


@dataclass
class ResilientReport:
    """Outcome of :func:`run_resilient`."""

    result: object
    attempts: List[AttemptRecord] = field(default_factory=list)
    certified: bool = False
    forced_clean: bool = False       # answer came from the disarmed attempt

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)


def run_resilient(
    attempt: Callable[[], object],
    certify: Optional[Callable[[object], Certificate]] = None,
    plan: Optional[FaultPlan] = None,
    max_attempts: int = 4,
) -> ResilientReport:
    """Execute ``attempt`` until its result certifies.

    Parameters
    ----------
    attempt:
        Zero-argument closure returning the result; it must construct
        (or reset) its own machine state per call so a replay starts
        from a clean checkpoint.
    certify:
        Maps the result to a :class:`Certificate`; ``None`` skips
        certification (drop-only fault plans cannot corrupt results,
        so retry alone suffices there).
    plan:
        The fault plan driving the attempt's machines, if any; it is
        disarmed for the final attempt and re-armed before returning.
    max_attempts:
        Total attempts including the final fault-free one.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    report = ResilientReport(result=None)
    was_armed = plan.armed if plan is not None else False
    try:
        for k in range(max_attempts):
            clean = plan is not None and (k == max_attempts - 1)
            if clean:
                plan.disarm()
            fired_before = plan.total_fired if plan is not None else 0
            rec = AttemptRecord(index=k, clean=clean)
            try:
                result = attempt()
            except RECOVERABLE_ERRORS as exc:
                rec.error = f"{type(exc).__name__}: {exc}"
                rec.faults_fired = (plan.total_fired - fired_before) if plan else 0
                report.attempts.append(rec)
                if clean or plan is None:
                    # no faults were injected: this is a genuine bug
                    raise
                continue
            rec.faults_fired = (plan.total_fired - fired_before) if plan else 0
            cert = certify(result) if certify is not None else None
            rec.certificate = cert
            if cert is None or cert.ok:
                rec.ok = True
                report.attempts.append(rec)
                report.result = result
                report.certified = cert is not None and cert.ok
                report.forced_clean = clean
                return report
            rec.error = f"certificate rejected: {'; '.join(cert.failures[:2])}"
            report.attempts.append(rec)
            if clean:
                raise ResilienceExhausted(
                    f"fault-free attempt failed certification: {rec.error} "
                    "(algorithm bug or untrusted input; try strict=False)"
                )
        raise ResilienceExhausted(
            f"no certified result in {max_attempts} attempts; last: "
            f"{report.attempts[-1].error if report.attempts else 'none'}"
        )
    finally:
        if plan is not None and was_armed:
            plan.arm()
