"""String editing via grid-DAGs and Monge-composite searching (§1.3 app 4).

Transform ``x`` into ``y`` with minimum total cost using deletions
(``D(x_i)``), insertions (``I(y_j)``), and substitutions
(``S(x_i, y_j)``).  [WF74] solves it in ``O(st)`` — our baseline.

The parallel algorithm is the grid-DAG reduction of [AP89a, AALM88]:

- the edit graph's vertices are ``(i, j)``; a *strip* of rows
  ``[a, b]`` has a DIST matrix ``DIST[p][q]`` = cheapest path from
  ``(a, p)`` to ``(b, q)``;
- DIST matrices are Monge once the infeasible corner (``q < p``) is
  filled with the linear *ramp* ``BIG·(p - q)`` — the standard
  device that preserves the Monge inequality exactly (all mixed
  quadruples acquire a dominating ``BIG`` multiple);
- splitting ``x`` in half, ``DIST = DIST_top ⊗ DIST_bottom`` where
  ``⊗`` is the (min,+) product — the tube-minima problem of Table 1.3,
  executed by :func:`repro.core.tube_pram.tube_minima_pram` (and on the
  hypercube by a :class:`~repro.core.network_machine.NetworkMachine`);
- a one-row strip's DIST has the closed form
  ``prefI(q) - prefI(p) + min(D(x_r), min_{p < c <= q}(S(x_r,y_c) - I(y_c)))``
  (pay the inserts, plus the cheapest place to consume ``x_r``),
  computed with a sparse-table range minimum.

``lg s`` combining levels, each a tube product of ``(t+1)``-square
Monge factors → measured rounds ``O(lg s · lg t)``, the shape of the
paper's ``O(lg m lg n)`` hypercube bound (their ``nm``-processor
claim).  The recursion returns the full DIST of ``x`` × ``y``; the edit
distance is its ``[0, t]`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.engine import Session
from repro.monge.arrays import ExplicitArray
from repro.pram.machine import Pram

__all__ = [
    "EditCosts",
    "edit_distance_wagner_fischer",
    "edit_distance_dag_parallel",
    "strip_dist_matrix",
    "longest_common_subsequence",
]


@dataclass
class EditCosts:
    """Cost model: unit costs by default; callables may vary per symbol.

    ``substitute(a, b)`` should be 0 when ``a == b`` for the classic
    edit distance, but any nonnegative cost function is allowed.
    """

    delete: Callable[[str], float] = field(default=lambda a: 1.0)
    insert: Callable[[str], float] = field(default=lambda b: 1.0)
    substitute: Callable[[str, str], float] = field(
        default=lambda a, b: 0.0 if a == b else 1.0
    )

    def validate(self, x: str, y: str) -> None:
        for a in set(x):
            if self.delete(a) < 0:
                raise ValueError("negative deletion cost")
        for b in set(y):
            if self.insert(b) < 0:
                raise ValueError("negative insertion cost")
        for a in set(x):
            for b in set(y):
                if self.substitute(a, b) < 0:
                    raise ValueError("negative substitution cost")


def edit_distance_wagner_fischer(
    x: str, y: str, costs: Optional[EditCosts] = None
) -> Tuple[float, list]:
    """[WF74]: ``O(st)`` dynamic program.  Returns ``(cost, script)``
    where ``script`` is a minimal edit script of
    ``("delete", i) / ("insert", j) / ("substitute", i, j)`` operations
    (matches with zero substitution cost are omitted)."""
    costs = costs or EditCosts()
    costs.validate(x, y)
    s, t = len(x), len(y)
    dp = np.zeros((s + 1, t + 1))
    for i in range(1, s + 1):
        dp[i, 0] = dp[i - 1, 0] + costs.delete(x[i - 1])
    for j in range(1, t + 1):
        dp[0, j] = dp[0, j - 1] + costs.insert(y[j - 1])
    for i in range(1, s + 1):
        for j in range(1, t + 1):
            dp[i, j] = min(
                dp[i - 1, j] + costs.delete(x[i - 1]),
                dp[i, j - 1] + costs.insert(y[j - 1]),
                dp[i - 1, j - 1] + costs.substitute(x[i - 1], y[j - 1]),
            )
    # traceback
    script = []
    i, j = s, t
    while i > 0 or j > 0:
        if i > 0 and j > 0 and np.isclose(
            dp[i, j], dp[i - 1, j - 1] + costs.substitute(x[i - 1], y[j - 1])
        ):
            if costs.substitute(x[i - 1], y[j - 1]) > 0:
                script.append(("substitute", i - 1, j - 1))
            i, j = i - 1, j - 1
        elif i > 0 and np.isclose(dp[i, j], dp[i - 1, j] + costs.delete(x[i - 1])):
            script.append(("delete", i - 1))
            i -= 1
        else:
            script.append(("insert", j - 1))
            j -= 1
    script.reverse()
    return float(dp[s, t]), script


# --------------------------------------------------------------------- #
# grid-DAG DIST machinery
# --------------------------------------------------------------------- #
#: DIST entries are snapped to multiples of this exact power of two, so
#: mathematically-equal path sums compare exactly equal and the tube
#: search's leftmost-witness monotonicity is immune to 1e-16 float noise
#: (sums of grid values stay on the grid through every combining level).
_GRID = 2.0**-30


def _snap(a: np.ndarray) -> np.ndarray:
    return np.round(a / _GRID) * _GRID


def _big_for(x: str, y: str, costs: EditCosts) -> float:
    total = 1.0
    total += sum(costs.delete(a) for a in x)
    total += sum(costs.insert(b) for b in y)
    total += sum(max(costs.substitute(a, b) for b in y) if y else 0.0 for a in x)
    return float(total + 1.0)


def strip_dist_matrix(row_char: str, y: str, costs: EditCosts, big: float) -> np.ndarray:
    """DIST of the one-row strip consuming ``row_char`` against ``y``.

    ``DIST[p][q]`` (``0 <= p, q <= t``) = cheapest path entering at top
    column ``p`` and leaving at bottom column ``q``; infeasible
    ``q < p`` entries carry the Monge-preserving ramp ``big·(p-q)``.
    """
    t = len(y)
    ins = np.array([costs.insert(b) for b in y], dtype=np.float64)
    pref = np.concatenate([[0.0], np.cumsum(ins)])  # pref[q] = cost of y[:q]
    sub = np.array([costs.substitute(row_char, b) for b in y], dtype=np.float64)
    dele = costs.delete(row_char)
    # gain[c] = cost of consuming row_char by substituting at column c+1
    # instead of inserting y[c+1]
    gain = sub - ins  # length t
    # best[p][q] = min(dele, min_{p <= c < q} gain[c]); use running minima
    # via a prefix-minimum sparse structure (vectorized suffix scan)
    out = np.empty((t + 1, t + 1))
    # ramp for q < p
    pp, qq = np.meshgrid(np.arange(t + 1), np.arange(t + 1), indexing="ij")
    out[:] = big * (pp - qq)
    # feasible part
    best = np.full((t + 1, t + 1), np.inf)
    # min over window of `gain`: incremental per diagonal is O(t^2); use
    # cummin per row (windows are suffixes of [p, q))
    for p in range(t + 1):
        if p < t:
            run = np.minimum.accumulate(gain[p:])
            best[p, p + 1 :] = run
        best[p, p:] = np.minimum(best[p, p:], dele)
    feas = qq >= pp
    out[feas] = (pref[qq] - pref[pp] + best)[feas]
    return _snap(out)


def _machine_from(pram: Optional[Pram], session: Optional[Session]) -> Pram:
    """Resolve the machine an application runs on.

    Explicit ``pram`` wins; otherwise the ``session`` (a private
    throwaway one when neither is given) provides its machine, so the
    app's rounds accumulate into the session's ledger.
    """
    if pram is not None:
        return pram
    return (session if session is not None else Session("pram-crcw")).machine()


def edit_distance_dag_parallel(
    x: str,
    y: str,
    costs: Optional[EditCosts] = None,
    pram: Optional[Pram] = None,
    return_dist: bool = False,
    session: Optional[Session] = None,
):
    """Edit distance via hierarchical DIST combination (parallel).

    Splits ``x`` recursively; each level combines sibling strips with a
    tube-minima product on the supplied machine (PRAM by default; pass
    a :class:`~repro.core.network_machine.NetworkMachine` for the
    hypercube variant, or ``session=`` to reuse an engine
    :class:`~repro.engine.session.Session`'s machine and ledger).
    Returns the distance, or the full DIST matrix when ``return_dist``
    is set.
    """
    costs = costs or EditCosts()
    costs.validate(x, y)
    machine = _machine_from(pram, session)
    t = len(y)
    if len(x) == 0:
        pref = np.concatenate([[0.0], np.cumsum([costs.insert(b) for b in y])])
        big = _big_for(x, y, costs)
        pp, qq = np.meshgrid(np.arange(t + 1), np.arange(t + 1), indexing="ij")
        dist = _snap(np.where(qq >= pp, pref[qq] - pref[pp], big * (pp - qq)))
    else:
        big = _big_for(x, y, costs)
        strips = [strip_dist_matrix(ch, y, costs, big) for ch in x]
        # balanced binary combining tree; sibling products at one level
        # run concurrently, so the level's round cost is the MAX over
        # siblings (work still sums) — realized by batching each level's
        # tube products through ``solve_many`` on a session that adopts
        # the app's machine, then composing the per-query sub-account
        # snapshots as one concurrent phase
        sess = Session(machine=machine)
        while len(strips) > 1:
            batch = sess.solve_many(
                [
                    ("tube_min", (ExplicitArray(strips[k]), ExplicitArray(strips[k + 1])))
                    for k in range(0, len(strips) - 1, 2)
                ]
            )
            nxt = [res.values for res in batch]
            if len(strips) % 2:
                nxt.append(strips[-1])
            snaps = batch.snapshots
            machine.ledger.charge(
                rounds=max(1, max(s["rounds"] for s in snaps)),
                processors=max(1, sum(s["peak_processors"] for s in snaps)),
                work=sum(s["work"] for s in snaps),
            )
            strips = nxt
        dist = strips[0]
    value = float(dist[0, t])
    if return_dist:
        return value, dist
    return value


def longest_common_subsequence(
    x: str, y: str, pram: Optional[Pram] = None, session: Optional[Session] = None
) -> int:
    """LCS length via the standard edit-distance reduction.

    With unit insert/delete and substitution cost 2 (i.e. substitution
    never beats delete+insert), the minimal edit cost ``d`` satisfies
    ``|LCS| = (|x| + |y| - d) / 2``.  Runs on the parallel grid-DAG
    machinery, so it inherits the Table 1.3 round classes.
    """
    costs = EditCosts(
        delete=lambda a: 1.0,
        insert=lambda b: 1.0,
        substitute=lambda a, b: 0.0 if a == b else 2.0,
    )
    d = edit_distance_dag_parallel(x, y, costs, pram=pram, session=session)
    lcs2 = len(x) + len(y) - d
    return int(round(lcs2 / 2.0))
