"""All-farthest neighbors across convex chains — the §1.2 example.

Splitting a convex polygon into counterclockwise chains ``P`` and ``Q``
(Figure 1.1) makes the distance array ``a[i,j] = d(p_i, q_j)``
inverse-Monge by the quadrangle inequality, so

- :func:`farthest_between_chains` finds, for every vertex of ``P``, the
  farthest vertex of ``Q`` in ``Θ(m+n)`` sequential time [AKM+87];
- :func:`farthest_between_chains_pram` does it in parallel via
  Table 1.1's machinery on any machine (PRAM or network);
- :func:`all_farthest_neighbors` solves the full all-farthest-neighbors
  problem of a convex polygon by recursive chain splitting
  (``O(n lg n)`` sequential; [AKM+87]'s linear-time refinement embeds
  the polygon in a single wrapped totally monotone array — our
  recursion keeps the code aligned with the Fig. 1.1 presentation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.rowmin_pram import inverse_monge_row_maxima_pram
from repro.monge.generators import chain_distance_array
from repro.monge.smawk import row_maxima
from repro.pram.machine import Pram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Session

__all__ = [
    "farthest_between_chains",
    "farthest_between_chains_pram",
    "all_farthest_neighbors",
    "all_farthest_neighbors_brute",
]


def _check_chains(P, Q):
    P = np.asarray(P, dtype=np.float64)
    Q = np.asarray(Q, dtype=np.float64)
    if P.ndim != 2 or P.shape[1] != 2 or Q.ndim != 2 or Q.shape[1] != 2:
        raise ValueError("chains must be (k, 2) coordinate arrays")
    if P.shape[0] == 0 or Q.shape[0] == 0:
        raise ValueError("chains must be nonempty")
    return P, Q


def farthest_between_chains(P, Q) -> Tuple[np.ndarray, np.ndarray]:
    """For each vertex of chain ``P``: (distance, index) of the farthest
    vertex of chain ``Q``.  ``Θ(m+n)`` via SMAWK (Fig. 1.1)."""
    P, Q = _check_chains(P, Q)
    a = chain_distance_array(P, Q)
    return row_maxima(a)


def _machine_from(pram: Optional[Pram], session: Optional["Session"]):
    """Resolve the machine an application runs on.

    Explicit ``pram`` wins; otherwise the ``session`` (a private
    throwaway one when neither is given) provides its machine, so the
    app's rounds accumulate into the session's ledger.
    """
    from repro.engine import Session

    if pram is not None:
        return pram
    return (session if session is not None else Session("pram-crcw")).machine()


def farthest_between_chains_pram(
    pram: Optional[Pram], P, Q, session: Optional["Session"] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Parallel variant of :func:`farthest_between_chains`.

    Pass a machine, or ``session=`` to run on (and charge) an engine
    :class:`~repro.engine.session.Session`'s machine and shared ledger.
    """
    machine = _machine_from(pram, session)
    P, Q = _check_chains(P, Q)
    a = chain_distance_array(P, Q)
    return inverse_monge_row_maxima_pram(machine, a)


def all_farthest_neighbors_brute(polygon) -> Tuple[np.ndarray, np.ndarray]:
    """O(n²) reference: farthest other vertex for every vertex."""
    p = np.asarray(polygon, dtype=np.float64)
    n = p.shape[0]
    d = np.hypot(p[:, 0][:, None] - p[:, 0][None, :], p[:, 1][:, None] - p[:, 1][None, :])
    np.fill_diagonal(d, -np.inf)
    idx = d.argmax(axis=1)
    return d[np.arange(n), idx], idx.astype(np.int64)


def all_farthest_neighbors(
    polygon, pram: Optional[Pram] = None, session: Optional["Session"] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Farthest other vertex for every vertex of a convex polygon.

    Recursive chain splitting: the cross-chain searches are Monge
    (Fig. 1.1); within-chain pairs are handled by recursing on each
    half.  ``O(n lg n)`` distance evaluations.  With a ``pram`` or
    ``session=`` the cross searches run on the machine (charging its
    ledger — the session's shared one when adopted from ``session=``);
    sequential SMAWK otherwise.  Leftmost-maxima tie-breaking matches
    in both modes, so results are identical.
    """
    machine = None
    if pram is not None or session is not None:
        machine = _machine_from(pram, session)
    p = np.asarray(polygon, dtype=np.float64)
    n = p.shape[0]
    if n < 2:
        raise ValueError("need at least 2 vertices")
    best_d = np.full(n, -np.inf)
    best_i = np.full(n, -1, dtype=np.int64)

    def merge(rows: np.ndarray, dists: np.ndarray, idx: np.ndarray) -> None:
        better = dists > best_d[rows]
        best_d[rows[better]] = dists[better]
        best_i[rows[better]] = idx[better]

    def cross_maxima(arr):
        if machine is not None:
            return inverse_monge_row_maxima_pram(machine, arr)
        return row_maxima(arr)

    def solve(indices: np.ndarray) -> None:
        k = indices.size
        if k < 2:
            return
        if k <= 3:
            sub = p[indices]
            d = np.hypot(
                sub[:, 0][:, None] - sub[:, 0][None, :],
                sub[:, 1][:, None] - sub[:, 1][None, :],
            )
            np.fill_diagonal(d, -np.inf)
            j = d.argmax(axis=1)
            merge(indices, d[np.arange(k), j], indices[j])
            return
        half = k // 2
        A, B = indices[:half], indices[half:]
        # cross searches — both chains are contiguous arcs of a convex
        # polygon, so the distance arrays are inverse-Monge
        dv, dc = cross_maxima(chain_distance_array(p[A], p[B]))
        merge(A, dv, B[dc])
        dv, dc = cross_maxima(chain_distance_array(p[B], p[A]))
        merge(B, dv, A[dc])
        solve(A)
        solve(B)

    solve(np.arange(n, dtype=np.int64))
    return best_d, best_i
