"""Planar geometry helpers shared by the §1.3 applications.

Convex polygons are ``(k, 2)`` float arrays in counterclockwise order.
All predicates are exact up to floating point; generators keep inputs
away from degeneracies (collinear triples) so tests are stable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "cross",
    "is_ccw_convex",
    "ensure_ccw",
    "polygon_contains_strictly",
    "segment_crosses_polygon_interior",
    "visible_arc",
    "pareto_staircase",
    "random_convex_polygon",
    "separated_convex_polygons",
]


def cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """2-D cross product ``(a - o) × (b - o)`` (broadcasting)."""
    oa = a - o
    ob = b - o
    return oa[..., 0] * ob[..., 1] - oa[..., 1] * ob[..., 0]


def is_ccw_convex(poly: np.ndarray) -> bool:
    """True iff ``poly`` is strictly convex in counterclockwise order."""
    p = np.asarray(poly, dtype=np.float64)
    if p.ndim != 2 or p.shape[1] != 2 or p.shape[0] < 3:
        return False
    nxt = np.roll(p, -1, axis=0)
    nxt2 = np.roll(p, -2, axis=0)
    return bool((cross(p, nxt, nxt2) > 0).all())


def ensure_ccw(poly: np.ndarray) -> np.ndarray:
    """Return ``poly`` oriented counterclockwise (signed-area test)."""
    p = np.asarray(poly, dtype=np.float64)
    x, y = p[:, 0], p[:, 1]
    area2 = np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
    return p if area2 > 0 else p[::-1].copy()


def polygon_contains_strictly(poly: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Strict interior test for convex ccw ``poly`` (vectorized)."""
    p = np.asarray(poly, dtype=np.float64)
    q = np.atleast_2d(np.asarray(pts, dtype=np.float64))
    nxt = np.roll(p, -1, axis=0)
    # point strictly inside iff strictly left of every directed edge
    c = cross(p[None, :, :], nxt[None, :, :], q[:, None, :])
    return (c > 0).all(axis=1)


def _segments_properly_intersect(p1, p2, q1, q2) -> bool:
    """Proper (interior) intersection of segments p1p2 and q1q2."""
    d1 = cross(q1, q2, p1)
    d2 = cross(q1, q2, p2)
    d3 = cross(p1, p2, q1)
    d4 = cross(p1, p2, q2)
    # proper = strict straddling on both segments (touching is not proper)
    return bool((d1 * d2 < 0) and (d3 * d4 < 0))


def segment_crosses_polygon_interior(a: np.ndarray, b: np.ndarray, poly: np.ndarray) -> bool:
    """Does the open segment ``ab`` intersect the open interior of ``poly``?

    Exact for strictly convex polygons: the segment meets the interior
    iff its midpoint-sampled clip is inside or it properly crosses two
    edges.  We test: any endpoint strictly inside, the midpoint strictly
    inside, or a proper crossing with some edge pair.
    """
    poly = np.asarray(poly, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    pts = np.vstack([a, b, (a + b) / 2.0])
    if polygon_contains_strictly(poly, pts).any():
        return True
    nxt = np.roll(poly, -1, axis=0)
    crossings = [
        _segments_properly_intersect(a, b, poly[i], nxt[i]) for i in range(len(poly))
    ]
    if sum(crossings) >= 2:
        return True
    if sum(crossings) == 1:
        # one proper crossing with a convex polygon boundary implies the
        # other end pierces near a vertex; check interior via quarter pts
        t = np.linspace(0.1, 0.9, 9)[:, None]
        samples = np.asarray(a)[None, :] * (1 - t) + np.asarray(b)[None, :] * t
        return bool(polygon_contains_strictly(poly, samples).any())
    return False


def visible_arc(x: np.ndarray, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """Boolean mask over ``Q``'s vertices visible from vertex ``x`` of ``P``.

    ``v`` is visible iff segment ``xv`` meets neither polygon's open
    interior (§1.3 app 3's notion).  O(|Q|·(|P|+|Q|)) reference
    predicate — the Monge-based solvers are tested against it.
    """
    Q = np.asarray(Q, dtype=np.float64)
    out = np.zeros(Q.shape[0], dtype=bool)
    for j in range(Q.shape[0]):
        v = Q[j]
        out[j] = not (
            segment_crosses_polygon_interior(x, v, Q)
            or segment_crosses_polygon_interior(x, v, P)
        )
    return out


def pareto_staircase(points: np.ndarray, x_sign: int, y_sign: int) -> np.ndarray:
    """Indices of Pareto-optimal points for objective
    (minimize ``x_sign·x``, minimize ``y_sign·y``), sorted by x.

    E.g. ``x_sign=+1, y_sign=-1`` selects the NW staircase (small x,
    large y).  Ties are kept (weak domination removes only strictly
    worse points in one coordinate and no better in the other).
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    kx = x_sign * pts[:, 0]
    ky = y_sign * pts[:, 1]
    order = np.lexsort((ky, kx))  # by kx, then ky
    keep = []
    best_ky = np.inf
    for idx in order:
        if ky[idx] < best_ky:
            keep.append(idx)
            best_ky = ky[idx]
    keep = np.array(keep, dtype=np.int64)
    # sort selected by actual x ascending for downstream band building
    return keep[np.argsort(pts[keep, 0], kind="stable")]


def random_convex_polygon(
    n: int, rng: np.random.Generator, center=(0.0, 0.0), radius: float = 1.0
) -> np.ndarray:
    """A strictly convex ccw polygon with ``n`` vertices."""
    if n < 3:
        raise ValueError("need at least 3 vertices")
    angles = np.sort(rng.uniform(0, 2 * np.pi, size=n))
    while np.min(np.diff(np.concatenate([angles, [angles[0] + 2 * np.pi]]))) < 1e-6:
        angles = np.sort(rng.uniform(0, 2 * np.pi, size=n))  # pragma: no cover
    r = radius * (0.8 + 0.2 * rng.random())
    pts = np.column_stack(
        [center[0] + r * np.cos(angles), center[1] + r * np.sin(angles)]
    )
    return pts


def separated_convex_polygons(
    m: int, n: int, rng: np.random.Generator, gap: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Two disjoint strictly convex polygons separated by a vertical gap."""
    P = random_convex_polygon(m, rng, center=(-1.5 - gap / 2, 0.0))
    Q = random_convex_polygon(n, rng, center=(1.5 + gap / 2, 0.0))
    return P, Q
