"""Largest-area empty rectangle (§1.3 app 1; [AS87], [AK88], [KK88]).

Given ``n`` points inside an axis-parallel box, find the largest-area
axis-parallel rectangle inside the box whose **open interior** contains
no point.

Three solvers:

- :func:`largest_empty_rectangle_brute` — exact reference:
  every maximal rectangle's x-sides come from point coordinates or box
  edges, and its y-extent is a maximal gap of the strip's points;
- :func:`largest_empty_corner_rectangle` — the classic staircase-Monge
  warm-up ([AK88]): rectangles anchored at the box's SW corner; the
  width×height array masked by the Pareto staircase of blocking points
  is staircase-inverse-Monge, searched by Theorem 2.3's machinery;
- :func:`largest_empty_rectangle` — exact divide and conquer:
  rectangles split by a vertical median ``X``; crossing rectangles
  split by a horizontal median ``Y``; rectangles containing the center
  ``(X, Y)`` reduce to **four staircase-inverse-Monge searches** over
  (left support × right support) arrays built from the four blocker
  envelopes ``TL, BL / TR, BR``:

  * pure cases (top and bottom bound by the same side) have separable
    heights and one-sided binding windows with nonincreasing
    boundaries — textbook staircase instances;
  * mixed cases (e.g. top-left/bottom-right) additionally carry a
    suffix condition whose start is nonincreasing; grouping rows by
    that start yields a batch of staircase instances solved in one
    level-synchronous call (:func:`staircase_row_minima_batch`).

  Within its binding region every case array equals the true area, so
  the four staircase maxima combine exactly.

All case-array Monge orientations are asserted in the test-suite on
random instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.staircase_pram import staircase_row_minima_batch
from repro.monge.arrays import ImplicitArray
from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram
from repro.pram.models import CRCW_COMMON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Session

__all__ = [
    "largest_empty_rectangle",
    "largest_empty_rectangle_brute",
    "largest_empty_corner_rectangle",
    "largest_empty_corner_rectangle_brute",
]

Box = Tuple[float, float, float, float]  # (xmin, ymin, xmax, ymax)


def _check_box(box: Box) -> Box:
    xmin, ymin, xmax, ymax = map(float, box)
    if not (xmax > xmin and ymax > ymin):
        raise ValueError(f"degenerate box {box}")
    return xmin, ymin, xmax, ymax


def _scratch_pram() -> Pram:
    return Pram(CRCW_COMMON, 1 << 40, ledger=CostLedger())


# --------------------------------------------------------------------- #
# brute-force references
# --------------------------------------------------------------------- #
def largest_empty_rectangle_brute(points, box: Box) -> Tuple[float, Box]:
    """Exact O(n³ lg n) reference.  Returns ``(area, rectangle)``."""
    xmin, ymin, xmax, ymax = _check_box(box)
    p = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    xs = np.unique(np.concatenate([p[:, 0], [xmin, xmax]]))
    best = (0.0, (xmin, ymin, xmin, ymin))
    for a in range(xs.size):
        for b in range(a + 1, xs.size):
            xl, xr = xs[a], xs[b]
            if xr <= xl:
                continue
            inside = p[(p[:, 0] > xl) & (p[:, 0] < xr)]
            ys = np.sort(np.concatenate([[ymin], inside[:, 1], [ymax]]))
            gaps = np.diff(ys)
            g = int(np.argmax(gaps))
            area = (xr - xl) * gaps[g]
            if area > best[0]:
                best = (float(area), (float(xl), float(ys[g]), float(xr), float(ys[g + 1])))
    return best


def largest_empty_corner_rectangle_brute(points, box: Box) -> Tuple[float, float, float]:
    """Exact reference for SW-corner rectangles: ``(area, width, height)``."""
    xmin, ymin, xmax, ymax = _check_box(box)
    p = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    xs = np.concatenate([p[:, 0], [xmax]])
    ys = np.concatenate([p[:, 1], [ymax]])
    best = (0.0, 0.0, 0.0)
    for x in xs:
        for y in ys:
            if x <= xmin or y <= ymin:
                continue
            blocked = ((p[:, 0] < x) & (p[:, 1] < y)).any()
            if not blocked:
                area = (x - xmin) * (y - ymin)
                if area > best[0]:
                    best = (float(area), float(x - xmin), float(y - ymin))
    return best


# --------------------------------------------------------------------- #
# staircase search plumbing
# --------------------------------------------------------------------- #
def _staircase_cases_max(pram: Optional[Pram], cases) -> list:
    """Run several staircase-inverse-Monge max searches as ONE batch.

    Each case is a ``(value_fn, nrows, ncols, boundary, start)`` tuple
    with the semantics of :func:`_staircase_case_max`.  The cases'
    staircase instances are concatenated — per-case row offsets into one
    combined implicit array, one combined global boundary — and solved
    by a single :func:`staircase_row_minima_batch` call, so sibling
    cases share level-synchronous rounds instead of looping.  Returns a
    ``(best, i, j)`` triple per case, in input order.
    """
    results = [(-np.inf, -1, -1)] * len(cases)
    entries = []  # (case, row offset, value_fn, instance windows)
    total_rows = 0
    max_cols = 0
    f_parts = []
    for ci, (value_fn, nrows, ncols, boundary, start) in enumerate(cases):
        if nrows == 0 or ncols == 0:
            continue
        boundary = np.minimum.accumulate(np.clip(boundary, 0, ncols))
        if start is None:
            start = np.zeros(nrows, dtype=np.int64)
        else:
            start = np.minimum.accumulate(np.clip(start, 0, ncols))
        # batch: one staircase instance per run of equal `start`
        change = np.nonzero(np.diff(start))[0] + 1
        starts_at = np.concatenate([[0], change, [nrows]])
        rs = starts_at[:-1].astype(np.int64)
        rcount = np.diff(starts_at).astype(np.int64)
        cs = start[rs]
        ccount = np.maximum(0, ncols - cs)
        keep = (rcount > 0) & (ccount > 0)
        if not keep.any():
            continue
        entries.append((ci, total_rows, value_fn, rs[keep], rcount[keep], cs[keep], ccount[keep]))
        f_parts.append(boundary)
        total_rows += nrows
        max_cols = max(max_cols, ncols)
    if not entries:
        return results
    machine = pram if pram is not None else _scratch_pram()

    offs = np.array([e[1] for e in entries], dtype=np.int64)
    fns = [e[2] for e in entries]

    def _eval(rr, cc):
        rr = np.asarray(rr)
        cc = np.asarray(cc)
        out = np.empty(rr.shape, dtype=np.float64)
        which = np.searchsorted(offs, rr, side="right") - 1
        for k in range(len(entries)):
            m = which == k
            if m.any():
                out[m] = -fns[k](rr[m] - offs[k], cc[m])
        return out

    neg = ImplicitArray(_eval, (total_rows, max_cols))
    f_global = np.concatenate(f_parts)
    rs_g = np.concatenate([e[3] + e[1] for e in entries])
    rcount_g = np.concatenate([e[4] for e in entries])
    cs_g = np.concatenate([e[5] for e in entries])
    ccount_g = np.concatenate([e[6] for e in entries])
    vals, cols = staircase_row_minima_batch(
        machine, neg, f_global, rs_g, rcount_g, cs_g, ccount_g
    )
    # map flat batch rows back to global rows, then split per case
    owner_rows = np.concatenate(
        [np.arange(r, r + c) for r, c in zip(rs_g, rcount_g)]
    )
    for ci, off, _fn, _rs, _rc, _cs, _cc in entries:
        in_case = (owner_rows >= off) & (owner_rows < off + cases[ci][1])
        finite = in_case & (cols >= 0)
        if not finite.any():
            continue
        areas = -vals[finite]
        k = int(np.argmax(areas))
        results[ci] = (
            float(areas[k]),
            int(owner_rows[finite][k] - off),
            int(cols[finite][k]),
        )
    return results


def _staircase_case_max(
    pram: Optional[Pram],
    value_fn,
    nrows: int,
    ncols: int,
    boundary: np.ndarray,
    start: Optional[np.ndarray] = None,
) -> Tuple[float, int, int]:
    """Max of ``value_fn(i, j)`` over ``start[i] <= j < boundary[i]``.

    ``boundary`` (and ``start`` if given) must be nonincreasing — the
    staircase-inverse-Monge row-maxima problem, solved as row minima of
    the negation via Theorem 2.3.  ``start`` groups rows into batch
    instances sharing a column offset.  Returns ``(best, i, j)`` with
    ``best = -inf`` when the region is empty.  A thin single-case
    wrapper over :func:`_staircase_cases_max`.
    """
    return _staircase_cases_max(pram, [(value_fn, nrows, ncols, boundary, start)])[0]


# --------------------------------------------------------------------- #
# the corner-rectangle staircase application
# --------------------------------------------------------------------- #
def largest_empty_corner_rectangle(
    points, box: Box, pram: Optional[Pram] = None, session: Optional["Session"] = None
) -> Tuple[float, float, float]:
    """Largest empty rectangle anchored at the box's SW corner.

    Candidate widths/heights come from point coordinates and the box;
    feasibility is the region under the Pareto staircase of blockers;
    the (width × height) array restricted there is staircase-inverse-
    Monge, searched by the Theorem 2.3 solver.  Returns
    ``(area, width, height)``.
    """
    if pram is None and session is not None:
        pram = session.machine()
    xmin, ymin, xmax, ymax = _check_box(box)
    p = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    X = np.unique(np.concatenate([p[:, 0], [xmax]]))  # candidate right edges, asc
    X = X[X > xmin]
    Yc = np.unique(np.concatenate([p[:, 1], [ymax]]))
    Yc = Yc[Yc > ymin]
    Y = Yc[::-1].copy()  # candidate top edges, descending

    # g(Xi) = lowest blocker y among points strictly left of Xi
    g = np.full(X.size, np.inf)
    for i, x in enumerate(X):
        sel = p[:, 0] < x
        if sel.any():
            g[i] = p[sel, 1].min()
    # feasible tops: y <= g(Xi); Y is descending, feasible j form a
    # suffix — flip columns so it becomes a prefix with nonincreasing
    # boundary (g is nonincreasing in i).
    Yflip = Y[::-1].copy()  # ascending
    # prefix length in flipped order: number of Y values <= g[i]
    boundary = np.searchsorted(Yflip, g, side="right").astype(np.int64)

    def area(rr, cc):
        return (X[rr] - xmin) * (Yflip[cc] - ymin)

    best, i, j = _staircase_case_max(pram, area, X.size, Yflip.size, boundary)
    if best <= 0 or i < 0:
        return (0.0, 0.0, 0.0)
    return (best, float(X[i] - xmin), float(Yflip[j] - ymin))


# --------------------------------------------------------------------- #
# the full divide-and-conquer solver
# --------------------------------------------------------------------- #
def largest_empty_rectangle(
    points, box: Box, pram: Optional[Pram] = None, session: Optional["Session"] = None
) -> Tuple[float, Box]:
    """Exact largest empty rectangle via D&C + staircase searching.

    Returns ``(area, (xl, yb, xr, yt))``.  Pass a machine to account the
    staircase searches' parallel rounds, or ``session=`` to use an
    engine :class:`~repro.engine.session.Session`'s machine and ledger.
    """
    if pram is None and session is not None:
        pram = session.machine()
    xmin, ymin, xmax, ymax = _check_box(box)
    p = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    if p.size and (
        (p[:, 0] < xmin).any()
        or (p[:, 0] > xmax).any()
        or (p[:, 1] < ymin).any()
        or (p[:, 1] > ymax).any()
    ):
        raise ValueError("points must lie inside the box")
    return _ler(p, (xmin, ymin, xmax, ymax), pram)


def _branch_pair(pram, tasks):
    """Run independent D&C branches with parallel-composition accounting
    (rounds = max over branches)."""
    from repro.engine import charge_parallel, fresh_clone

    results = []
    ledgers = []
    for task in tasks:
        if pram is None:
            results.append(task(None))
        else:
            sub = fresh_clone(pram)
            results.append(task(sub))
            ledgers.append(sub.ledger)
    if pram is not None:
        charge_parallel(pram, ledgers)
    return results


def _ler(p: np.ndarray, box: Box, pram) -> Tuple[float, Box]:
    xmin, ymin, xmax, ymax = box
    if p.shape[0] == 0:
        return ((xmax - xmin) * (ymax - ymin), box)
    X = float(np.median(p[:, 0]))
    left = p[p[:, 0] < X]
    right = p[p[:, 0] > X]
    tasks = [lambda m: _crossing(p, box, X, m)]
    if X > xmin:
        tasks.append(lambda m: _ler(left, (xmin, ymin, X, ymax), m))
    if X < xmax:
        tasks.append(lambda m: _ler(right, (X, ymin, xmax, ymax), m))
    results = _branch_pair(pram, tasks)
    return max(results, key=lambda t: t[0])


def _crossing(p: np.ndarray, box: Box, X: float, pram) -> Tuple[float, Box]:
    """Largest empty rectangle with ``xl < X < xr`` inside ``box``."""
    xmin, ymin, xmax, ymax = box
    if xmin >= X or X >= xmax:
        return (0.0, box)
    if p.shape[0] == 0:
        return ((xmax - xmin) * (ymax - ymin), box)
    Y = float(np.median(p[:, 1]))
    above = p[p[:, 1] > Y]
    below = p[p[:, 1] < Y]
    tasks = [lambda m: _center_case(p, box, X, Y, m)]
    if above.shape[0] < p.shape[0] and Y < ymax:
        tasks.append(lambda m: _crossing(above, (xmin, Y, xmax, ymax), X, m))
    if below.shape[0] < p.shape[0] and Y > ymin:
        tasks.append(lambda m: _crossing(below, (xmin, ymin, xmax, Y), X, m))
    results = _branch_pair(pram, tasks)
    return max(results, key=lambda t: t[0])


def _envelopes(pts: np.ndarray, Y: float, top: float, bot: float, barrier_t, barrier_b):
    """Sweep envelopes: after passing ``k`` points, the lowest blocker
    above ``Y`` and highest below (``y == Y`` points update both)."""
    k = pts.shape[0]
    T = np.empty(k + 1)
    B = np.empty(k + 1)
    t, b = barrier_t, barrier_b
    T[0], B[0] = t, b
    for i in range(k):
        y = pts[i, 1]
        if y >= Y:
            t = min(t, y)
        if y <= Y:
            b = max(b, y)
        T[i + 1], B[i + 1] = t, b
    return np.minimum(T, top), np.maximum(B, bot)


def _center_case(p: np.ndarray, box: Box, X: float, Y: float, pram) -> Tuple[float, Box]:
    """Largest empty rectangle whose open interior contains ``(X, Y)``."""
    xmin, ymin, xmax, ymax = box
    # barriers: points exactly at x == X clamp the envelopes everywhere
    at_x = p[p[:, 0] == X]
    bt = ymax
    bb = ymin
    for y in at_x[:, 1]:
        if y >= Y:
            bt = min(bt, y)
        if y <= Y:
            bb = max(bb, y)

    lpts = p[p[:, 0] < X]
    rpts = p[p[:, 0] > X]
    # left supports swept nearest-to-X first, then REVERSED to xl-asc
    lorder = np.argsort(-lpts[:, 0], kind="stable")
    lpts = lpts[lorder]
    TLs, BLs = _envelopes(lpts, Y, ymax, ymin, bt, bb)
    # row i (xl asc): i = 0 is the box edge (all left points passed)
    xl = np.concatenate([[xmin], lpts[::-1, 0]])
    TL = TLs[::-1].copy()
    BL = BLs[::-1].copy()

    rorder = np.argsort(rpts[:, 0], kind="stable")
    rpts = rpts[rorder]
    TRs, BRs = _envelopes(rpts, Y, ymax, ymin, bt, bb)
    # col j (xr asc): j = nr is the box edge
    xr = np.concatenate([rpts[:, 0], [xmax]])
    TR = np.concatenate([TRs[:-1], [TRs[-1]]])
    BR = np.concatenate([BRs[:-1], [BRs[-1]]])

    nl, nr = xl.size, xr.size
    best = (-np.inf, None)

    def consider(area, rect):
        nonlocal best
        if area > best[0]:
            best = (area, rect)

    # The four case searches are collected first and solved as ONE
    # combined staircase batch (all cases share level-synchronous
    # rounds); each case carries a post-processor that maps its local
    # (best, i, j) back to a candidate rectangle.
    cases = []
    posts = []

    # ---- pure case LL: top and bottom both from the left --------------- #
    h = TL - BL
    ok = h > 0
    if ok.any():
        r0 = int(np.argmax(ok))  # h nondecreasing: valid rows are a suffix
        e1 = np.searchsorted(-TR, -TL[r0:], side="right")  # TR_j >= TL_i
        e2 = np.searchsorted(BR, BL[r0:], side="right")    # BR_j <= BL_i
        e = np.minimum(e1, e2).astype(np.int64)
        cases.append((
            lambda rr, cc, r0=r0: (xr[cc] - xl[r0 + rr]) * (TL[r0 + rr] - BL[r0 + rr]),
            nl - r0,
            nr,
            e,
            None,
        ))

        def _post_ll(a, i, j, r0=r0):
            gi = r0 + i
            consider(a, (xl[gi], BL[gi], xr[j], TL[gi]))

        posts.append(_post_ll)

    # ---- pure case RR: top and bottom both from the right -------------- #
    # transpose: rows = right supports in xr DESC, cols = left in xl DESC
    hR = TR - BR
    rows = np.argsort(-xr, kind="stable")  # xr desc
    hRo = hR[rows]
    okR = hRo > 0
    if okR.any():
        r0 = int(np.argmax(okR))
        TLd = TL[::-1]  # cols xl desc
        BLd = BL[::-1]
        xld = xl[::-1]
        sel = rows[r0:]
        e1 = np.searchsorted(-TLd, -TR[sel], side="right")  # TL_i >= TR_j
        e2 = np.searchsorted(BLd, BR[sel], side="right")    # BL_i <= BR_j
        e = np.minimum(e1, e2).astype(np.int64)
        cases.append((
            lambda rr, cc, sel=sel, xld=xld: (xr[sel[rr]] - xld[cc]) * (TR[sel[rr]] - BR[sel[rr]]),
            sel.size,
            nl,
            e,
            None,
        ))

        def _post_rr(a, jj, ii, sel=sel, xld=xld):
            gj = sel[jj]
            consider(a, (xld[ii], BR[gj], xr[gj], TR[gj]))

        posts.append(_post_rr)

    # ---- mixed case LR: top from left, bottom from right --------------- #
    # valid: TL_i <= TR_j (prefix e) and BR_j >= BL_i (suffix start s)
    e = np.searchsorted(-TR, -TL, side="right").astype(np.int64)
    s = np.searchsorted(BR, BL, side="left").astype(np.int64)
    cases.append((
        lambda rr, cc: (xr[cc] - xl[rr]) * (TL[rr] - BR[cc]),
        nl,
        nr,
        e,
        s,
    ))

    def _post_lr(a, i, j):
        if TL[i] - BR[j] > 0:
            consider(a, (xl[i], BR[j], xr[j], TL[i]))

    posts.append(_post_lr)

    # ---- mixed case RL: top from right, bottom from left --------------- #
    # transpose: rows = right supports xr desc, cols = left supports xl desc
    rows = np.argsort(-xr, kind="stable")
    TLd, BLd, xld = TL[::-1], BL[::-1], xl[::-1]
    eT = np.searchsorted(-TLd, -TR[rows], side="right").astype(np.int64)  # TL_i >= TR_j
    # valid when TR_j <= TL_i (cols prefix eT, nonincreasing) and
    # BL_i >= BR_j (BLd nondecreasing along cols: suffix start sL)
    sL = np.searchsorted(BLd, BR[rows], side="left").astype(np.int64)
    cases.append((
        lambda rr, cc, rows=rows: (xr[rows[rr]] - xld[cc]) * (TR[rows[rr]] - BLd[cc]),
        rows.size,
        nl,
        eT,
        sL,
    ))

    def _post_rl(a, jj, ii, rows=rows, BLd=BLd, xld=xld):
        if TR[rows[jj]] - BLd[ii] > 0:
            gj = rows[jj]
            consider(a, (xld[ii], BLd[ii], xr[gj], TR[gj]))

    posts.append(_post_rl)

    for (a, i, j), post in zip(_staircase_cases_max(pram, cases), posts):
        if i >= 0:
            post(a, i, j)

    if best[1] is None or best[0] <= 0:
        return (0.0, box)
    xlb, yb, xrb, yt = best[1]
    return (float(best[0]), (float(xlb), float(yb), float(xrb), float(yt)))
