"""Largest-area two-corner rectangle (§1.3 app 2, [Mel89]).

Given ``n`` points, maximize ``|x_i - x_j| · |y_i - y_j|`` over pairs —
Melville's proxy for the most damaging leakage path between circuit
nodes.  The paper reports an optimal ``Θ(lg n)``-time, ``n``-processor
CRCW algorithm via staircase searching.

Reduction implemented here (tested against brute force):

- only *staircase-maximal* corners matter: an upper-left corner
  dominated toward (smaller x, larger y) can be replaced by its
  dominator without shrinking the rectangle;
- case NW→SE: rows = the NW Pareto staircase, columns = the SE
  staircase (both sorted by x; along each staircase y increases);
  the area array ``(x_j - x_i)(y_i - y_j)`` is inverse-Monge there
  (the bilinear cross-difference ``(x_j-x_l)(y_i-y_k) +
  (x_i-x_k)(y_j-y_l)`` is a sum of products of same-signed factors),
  and the feasibility constraints ``x_j ≥ x_i``, ``y_j ≤ y_i`` carve a
  *monotone band* — precisely the staircase instances of §2, searched
  with :mod:`repro.core.banded`;
- case SW→NE is symmetric.

The staircases themselves are computed with a sort + prefix-max scan
(``O(lg² n)`` bitonic rounds in our network-faithful accounting; the
paper's ``Θ(lg n)`` assumes an AKS/Cole-class sort).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.apps.geometry import pareto_staircase
from repro.core.banded import banded_row_maxima, banded_row_maxima_pram
from repro.monge.arrays import ImplicitArray
from repro.pram.machine import Pram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Session

__all__ = ["largest_two_corner_rectangle", "largest_rectangle_brute"]


def largest_rectangle_brute(points) -> Tuple[float, int, int]:
    """O(n²) reference: ``(area, i, j)`` with ``i < j``."""
    p = np.asarray(points, dtype=np.float64)
    n = p.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points")
    dx = np.abs(p[:, 0][:, None] - p[:, 0][None, :])
    dy = np.abs(p[:, 1][:, None] - p[:, 1][None, :])
    area = dx * dy
    iu = np.triu_indices(n, k=1)
    k = int(np.argmax(area[iu]))
    return float(area[iu][k]), int(iu[0][k]), int(iu[1][k])


def largest_two_corner_rectangle(
    points, pram: Optional[Pram] = None, session: Optional["Session"] = None
) -> Tuple[float, int, int]:
    """Largest axis-parallel rectangle with two input points as opposite
    corners: ``(area, i, j)``.

    Sequential by default; pass a machine (PRAM or NetworkMachine) to
    run the two banded searches in parallel and account rounds, or
    ``session=`` to use an engine
    :class:`~repro.engine.session.Session`'s machine and ledger.
    """
    if pram is None and session is not None:
        pram = session.machine()
    p = np.asarray(points, dtype=np.float64)
    n = p.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points")

    best = (-np.inf, -1, -1)

    # ---- case NW (upper-left) → SE (lower-right) ----------------------- #
    nw = pareto_staircase(p, x_sign=+1, y_sign=-1)  # minimize x, maximize y
    se = pareto_staircase(p, x_sign=-1, y_sign=+1)  # maximize x, minimize y
    best = max(best, _case_nw_se(p, nw, se, pram), key=lambda t: t[0])

    # ---- case SW (lower-left) → NE (upper-right) ----------------------- #
    sw = pareto_staircase(p, x_sign=+1, y_sign=+1)
    ne = pareto_staircase(p, x_sign=-1, y_sign=-1)
    best = max(best, _case_sw_ne(p, sw, ne, pram), key=lambda t: t[0])

    if best[1] < 0:
        # all pairs degenerate (collinear axis-aligned input): area 0
        return 0.0, 0, 1 if n > 1 else 0
    i, j = best[1], best[2]
    if i > j:
        i, j = j, i
    return max(best[0], 0.0), i, j


def _case_nw_se(p, rows_idx, cols_idx, pram):
    """Rows: NW staircase (x inc, y inc along it); cols: SE staircase."""
    if rows_idx.size == 0 or cols_idx.size == 0:
        return (-np.inf, -1, -1)
    rx, ry = p[rows_idx, 0], p[rows_idx, 1]
    cx, cy = p[cols_idx, 0], p[cols_idx, 1]

    def area(rr, cc):
        return (cx[cc] - rx[rr]) * (ry[rr] - cy[cc])

    arr = ImplicitArray(area, (rows_idx.size, cols_idx.size))
    lo = np.searchsorted(cx, rx, side="left").astype(np.int64)   # x_j >= x_i
    hi = np.searchsorted(cy, ry, side="right").astype(np.int64)  # y_j <= y_i
    hi = np.maximum(hi, lo)
    vals, cols = (
        banded_row_maxima(arr, lo, hi)
        if pram is None
        else banded_row_maxima_pram(pram, arr, lo, hi)
    )
    if not np.isfinite(vals).any() or vals.max() == -np.inf:
        return (-np.inf, -1, -1)
    r = int(np.argmax(vals))
    return (float(vals[r]), int(rows_idx[r]), int(cols_idx[cols[r]]))


def _case_sw_ne(p, rows_idx, cols_idx, pram):
    """Rows: SW staircase (x inc, y dec); cols: NE staircase (x inc, y dec)."""
    if rows_idx.size == 0 or cols_idx.size == 0:
        return (-np.inf, -1, -1)
    rx, ry = p[rows_idx, 0], p[rows_idx, 1]
    cx, cy = p[cols_idx, 0], p[cols_idx, 1]

    def area(rr, cc):
        return (cx[cc] - rx[rr]) * (cy[cc] - ry[rr])

    arr = ImplicitArray(area, (rows_idx.size, cols_idx.size))
    lo = np.searchsorted(cx, rx, side="left").astype(np.int64)  # x_j >= x_i
    # y_j >= y_i with cy nonincreasing: feasible j form a PREFIX in cy
    # order; hi = first j with cy[j] < ry[i]
    hi = np.searchsorted(-cy, -ry, side="right").astype(np.int64)
    hi = np.maximum(hi, lo)
    vals, cols = (
        banded_row_maxima(arr, lo, hi)
        if pram is None
        else banded_row_maxima_pram(pram, arr, lo, hi)
    )
    if not np.isfinite(vals).any() or vals.max() == -np.inf:
        return (-np.inf, -1, -1)
    r = int(np.argmax(vals))
    return (float(vals[r]), int(rows_idx[r]), int(cols_idx[cols[r]]))
