"""Economic lot-sizing via Monge dynamic programming ([AP90], §1.1).

The paper's introduction cites Aggarwal–Park's use of Monge arrays for
the economic lot-size model: schedule production of known demands
``d_1..d_n`` choosing in which periods to set up a production run, so
that total setup plus holding cost is minimal (Wagner–Whitin).  The
classic DP

    ``E[j] = min_{0 <= i < j} ( E[i] + w(i, j) )``

has ``w(i, j)`` = cost of one run in period ``i+1`` covering demands
``d_{i+1}..d_j``; with per-period nonnegative holding costs ``w`` is
**Monge** (``w(i,j) + w(i',j') <= w(i,j') + w(i',j)`` for
``i<i', j<j'``) — holding a marginal unit longer never gets cheaper.

Solvers:

- :func:`least_weight_subsequence_brute` — the O(n²) DP, any weights;
- :func:`least_weight_subsequence` — O(n lg n) for Monge (concave-
  Hirschberg–Larmore sense) weights: every column's champion row forms
  nondecreasing intervals; a stack of (champion, takeover-point) pairs
  maintained with binary searches (the sequential analogue of the
  staircase searching of §2, and the structure [LS89] uses for RNA
  folding);
- :func:`wagner_whitin` — the lot-size wrapper building the Monge
  weight function from demands/costs and recovering the run schedule.

Correctness is hypothesis-tested against the brute DP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Session

__all__ = [
    "least_weight_subsequence",
    "least_weight_subsequence_brute",
    "wagner_whitin",
    "lot_size_weight",
]


def least_weight_subsequence_brute(
    n: int, w: Callable[[int, int], float]
) -> Tuple[np.ndarray, np.ndarray]:
    """O(n²) reference: ``E[j]`` and predecessor links for ``j in [0, n]``."""
    if n < 0:
        raise ValueError("n must be nonnegative")
    E = np.full(n + 1, np.inf)
    prev = np.full(n + 1, -1, dtype=np.int64)
    E[0] = 0.0
    for j in range(1, n + 1):
        for i in range(j):
            c = E[i] + w(i, j)
            if c < E[j]:
                E[j] = c
                prev[j] = i
    return E, prev


def least_weight_subsequence(
    n: int, w: Callable[[int, int], float], session: Optional["Session"] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """O(n lg n) LWS for Monge weights (leftmost-champion ties).

    Maintains the stack of future champions: entries ``(row i, from)``
    meaning "for targets ``j >= from`` (until the next entry), ``i`` is
    the best predecessor found so far".  Monge-ness makes takeover
    points monotone, so each new row binary-searches its insertion.

    Pass ``session=`` to charge the weight evaluations (this solver's
    unit of sequential time) to the engine session's shared ledger.
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    evals = [0]
    if session is not None:
        base_w = w

        def w(i: int, j: int) -> float:
            evals[0] += 1
            return base_w(i, j)

    def _account() -> None:
        if session is not None:
            session.ledger.charge(rounds=max(1, evals[0]), processors=1)

    E = np.full(n + 1, np.inf)
    prev = np.full(n + 1, -1, dtype=np.int64)
    E[0] = 0.0
    if n == 0:
        _account()
        return E, prev
    # stack of (row, from_index); invariant: from strictly increasing
    stack: List[Tuple[int, int]] = [(0, 1)]
    ptr = 0  # index into stack of the entry covering the current j

    def better(a: int, b: int, j: int) -> bool:
        """Is row ``a`` a strictly better predecessor than ``b`` for ``j``?"""
        return E[a] + w(a, j) < E[b] + w(b, j)

    for j in range(1, n + 1):
        while ptr + 1 < len(stack) and stack[ptr + 1][1] <= j:
            ptr += 1
        i = stack[ptr][0]
        E[j] = E[i] + w(i, j)
        prev[j] = i
        if j == n:
            break
        # insert row j as a future champion: pop dominated tops (their
        # reigns start after j, so popping never disturbs `ptr`)
        while stack[-1][1] > j and better(j, stack[-1][0], stack[-1][1]):
            stack.pop()
        # binary search j's takeover point against the surviving top —
        # by Monge-ness, once j beats a row it stays better
        top_row, top_from = stack[-1]
        lo, hi = max(top_from, j + 1), n + 1
        while lo < hi:
            mid = (lo + hi) // 2
            if better(j, top_row, mid):
                hi = mid
            else:
                lo = mid + 1
        if lo <= n:
            stack.append((j, lo))
    _account()
    return E, prev


def _traceback(prev: np.ndarray) -> List[int]:
    path = []
    j = prev.size - 1
    while j > 0:
        path.append(int(prev[j]))
        j = int(prev[j])
    return path[::-1]


def lot_size_weight(
    demands: Sequence[float],
    setup_cost: float,
    holding_cost: float,
) -> Callable[[int, int], float]:
    """Monge weight for Wagner–Whitin: a run in period ``i+1`` covering
    demands ``i+1..j`` pays the setup plus holding of each unit for the
    periods it waits."""
    d = np.asarray(demands, dtype=np.float64)
    if (d < 0).any():
        raise ValueError("demands must be nonnegative")
    if setup_cost < 0 or holding_cost < 0:
        raise ValueError("costs must be nonnegative")
    # pref[k] = sum d[:k]; wait[k] = sum_t (t * d[t]) for t < k
    pref = np.concatenate([[0.0], np.cumsum(d)])
    idx = np.arange(d.size)
    wait = np.concatenate([[0.0], np.cumsum(idx * d)])

    def w(i: int, j: int) -> float:
        # units d[i..j-1] produced at period i, held until their period
        hold = (wait[j] - wait[i]) - i * (pref[j] - pref[i])
        return setup_cost + holding_cost * hold

    return w


def wagner_whitin(
    demands: Sequence[float],
    setup_cost: float,
    holding_cost: float,
    session: Optional["Session"] = None,
) -> Tuple[float, List[int]]:
    """Optimal lot-sizing: ``(total_cost, production_periods)``.

    ``production_periods`` are 0-based periods in which a run starts.
    Periods with zero demand never force a run.  ``session=`` forwards
    to :func:`least_weight_subsequence` for shared-ledger accounting.
    """
    d = list(demands)
    n = len(d)
    if n == 0:
        return 0.0, []
    w = lot_size_weight(d, setup_cost, holding_cost)
    E, prev = least_weight_subsequence(n, w, session=session)
    return float(E[n]), _traceback(prev)
