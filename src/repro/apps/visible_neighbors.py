"""Nearest/farthest visible/invisible neighbors (§1.3 app 3).

Given two non-intersecting convex polygons ``P`` (``m`` vertices) and
``Q`` (``n`` vertices): for every vertex ``x`` of ``P``, find the
nearest (farthest) vertex of ``Q`` visible (invisible) from ``x`` —
``v`` is visible iff segment ``xv`` meets neither polygon's open
interior.

Geometric structure (verified on generated instances by the
test-suite):

- each row's visible set is the tangent arc of ``Q`` minus the interval
  hidden behind ``P``'s wedge at ``x`` — at most *two* circular arcs,
  and the invisible complement likewise;
- neither family of arcs carries a *uniform* Monge structure across two
  disjoint polygons: the Figure 1.1 quadrangle argument needs the four
  vertices in convex position, which chains of a single polygon
  guarantee but vertices of two separated polygons do not (adversarial
  instances found by the property tests violate both orientations).
  The paper defers its reduction's details to a final version that
  never appeared; we substitute the exact **unimodality** argument —
  the distance from an external point to a strictly convex polygon's
  vertices is unimodal along the boundary, so every arc's minimum is at
  an endpoint or at the global-nearest vertex, and its maximum at an
  endpoint or the global-farthest vertex.  The global witnesses come
  from one concurrent ``O(lg n)`` unimodal search per vertex and the
  endpoint combination is constant depth — the ``O(lg(m+n))`` time
  class the paper states (see DESIGN.md's substitution table).  The
  windowed Monge machinery this app originally motivated is exercised
  by apps 1–2 and the core test-suite, where the Monge property holds
  by construction.

:func:`neighbor_queries_brute` is the exact reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro._util.bits import ceil_log2
from repro.apps.geometry import ensure_ccw, visible_arc
from repro.pram.machine import Pram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Session

__all__ = ["neighbor_queries_brute", "visible_neighbor_queries"]

QUERIES = (
    "nearest_visible",
    "farthest_visible",
    "nearest_invisible",
    "farthest_invisible",
)


def neighbor_queries_brute(P, Q) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Exact reference for all four queries: per query ``(dist, index)``
    arrays over ``P``'s vertices (``(±inf, -1)`` when the set is empty)."""
    P = ensure_ccw(np.asarray(P, dtype=np.float64))
    Q = ensure_ccw(np.asarray(Q, dtype=np.float64))
    m = P.shape[0]
    d = np.hypot(P[:, 0][:, None] - Q[:, 0][None, :], P[:, 1][:, None] - Q[:, 1][None, :])
    vis = np.array([visible_arc(P[i], P, Q) for i in range(m)])
    out = {}
    for name in QUERIES:
        mask = vis if name.endswith("_visible") else ~vis
        sign = 1.0 if name.startswith("nearest") else -1.0
        vals = np.where(mask, sign * d, np.inf)
        idx = vals.argmin(axis=1)
        best = vals[np.arange(m), idx]
        empty = ~mask.any(axis=1)
        out[name] = (
            np.where(empty, np.inf * sign, sign * best),
            np.where(empty, -1, idx).astype(np.int64),
        )
    return out


def _row_arcs(mask: np.ndarray):
    """Circular runs of True in ``mask`` as ``(start, length)`` pairs.

    A vertex's visible set is the tangent arc minus the wedge blocked by
    ``P`` — removing an interval from an interval, so up to *two* arcs
    per row (and the invisible complement likewise).
    """
    n = mask.size
    k = int(mask.sum())
    if k == 0:
        return []
    if k == n:
        return [(0, n)]
    arcs = []
    for j in range(n):
        if mask[j] and not mask[j - 1]:
            length = 1
            while mask[(j + length) % n]:
                length += 1
            arcs.append((j, length))
    arcs.sort()
    return arcs


def _slot_windows(masks: np.ndarray):
    """Per-slot window arrays ``[(lo, hi), ...]`` covering every row's
    arcs (slot ``s`` holds each row's ``s``-th arc; absent arcs give
    empty windows).  Windows live on a doubled column axis."""
    m, n = masks.shape
    per_row = [_row_arcs(masks[i]) for i in range(m)]
    slots = max((len(a) for a in per_row), default=0)
    out = []
    for s in range(slots):
        lo = np.zeros(m, dtype=np.int64)
        hi = np.zeros(m, dtype=np.int64)
        for i, arcs in enumerate(per_row):
            if s < len(arcs):
                a, k = arcs[s]
                lo[i], hi[i] = a, a + k
        out.append((lo, hi))
    return out


def visible_neighbor_queries(
    P, Q, pram: Optional[Pram] = None, session: Optional["Session"] = None
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Monge-accelerated solver for all four neighbor queries.

    Returns the same structure as :func:`neighbor_queries_brute`.
    Pass a machine (PRAM or NetworkMachine) to account parallel rounds,
    or ``session=`` to charge an engine
    :class:`~repro.engine.session.Session`'s shared ledger.
    """
    from repro.engine import Session

    P = ensure_ccw(np.asarray(P, dtype=np.float64))
    Q = ensure_ccw(np.asarray(Q, dtype=np.float64))
    m, n = P.shape[0], Q.shape[0]
    if pram is not None:
        machine = pram
    else:
        machine = (session if session is not None else Session("pram-crcw")).machine()

    # masks (charged as the standard per-vertex tangent binary searches)
    vis = np.array([visible_arc(P[i], P, Q) for i in range(m)])
    machine.charge(rounds=2 * max(1, ceil_log2(max(2, n))), processors=max(1, m))

    out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    # ---- all four queries use the exact unimodal endpoint argument ----- #
    vis_slots = _slot_windows(vis)
    inv_slots = _slot_windows(~vis)
    rowsel = np.arange(m)
    d_full = np.hypot(
        P[:, 0][:, None] - Q[:, 0][None, :], P[:, 1][:, None] - Q[:, 1][None, :]
    )
    # global unimodal witnesses: one concurrent O(lg n) search per vertex
    t_near = d_full.argmin(axis=1)
    t_far = d_full.argmax(axis=1)
    machine.charge(rounds=2 * max(1, ceil_log2(max(2, n))), processors=max(1, m))

    def arc_extreme(slots, witness, objective: str):
        vals = np.full(m, np.inf if objective == "min" else -np.inf)
        idx = np.full(m, -1, dtype=np.int64)
        for lo, hi in slots:
            nonempty = hi > lo
            cand_cols = [lo % n, (hi - 1) % n]
            for shift in (0, 1):
                w = witness + shift * n
                inside = (w >= lo) & (w < hi)
                cand_cols.append(np.where(inside, witness, lo % n))
            for cc in cand_cols:
                v = d_full[rowsel, cc]
                if objective == "min":
                    take = nonempty & ((idx < 0) | (v < vals))
                else:
                    take = nonempty & ((idx < 0) | (v > vals))
                vals = np.where(take, v, vals)
                idx = np.where(take, cc, idx)
        vals = np.where(idx < 0, np.inf if objective == "min" else -np.inf, vals)
        return vals, idx

    # the four candidate sweeps are independent per-vertex evaluations,
    # so they run as ONE fused batch: a single concurrent round on
    # 4m processors instead of four serial one-round charges
    out["nearest_visible"] = arc_extreme(vis_slots, t_near, "min")
    out["farthest_visible"] = arc_extreme(vis_slots, t_far, "max")
    out["nearest_invisible"] = arc_extreme(inv_slots, t_near, "min")
    out["farthest_invisible"] = arc_extreme(inv_slots, t_far, "max")
    machine.charge(rounds=1, processors=max(1, 4 * m))
    return out
