"""The paper's applications (§1.3).

1. :mod:`repro.apps.empty_rectangle` — largest-area empty rectangle
   ([AS87]; the staircase-Monge searching application);
2. :mod:`repro.apps.largest_rectangle` — largest-area two-corner
   rectangle ([Mel89]'s circuit-leakage motivation);
3. :mod:`repro.apps.visible_neighbors` — nearest/farthest
   visible/invisible neighbors of two convex polygons;
4. :mod:`repro.apps.string_edit` — string editing via grid-DAG DIST
   matrices and Monge-composite tube searching ([WF74] baseline);
plus :mod:`repro.apps.farthest_neighbors` — the §1.2 / Figure 1.1
motivating example (all-farthest neighbors across convex chains).

Every application ships a brute-force reference implementation used by
its tests and benches.
"""

from repro.apps.farthest_neighbors import (
    all_farthest_neighbors,
    farthest_between_chains,
    farthest_between_chains_pram,
)
from repro.apps.largest_rectangle import (
    largest_rectangle_brute,
    largest_two_corner_rectangle,
)
from repro.apps.empty_rectangle import (
    largest_empty_corner_rectangle,
    largest_empty_corner_rectangle_brute,
    largest_empty_rectangle,
    largest_empty_rectangle_brute,
)
from repro.apps.visible_neighbors import (
    neighbor_queries_brute,
    visible_neighbor_queries,
)
from repro.apps.lot_size import (
    least_weight_subsequence,
    least_weight_subsequence_brute,
    wagner_whitin,
)
from repro.apps.string_edit import (
    edit_distance_dag_parallel,
    edit_distance_wagner_fischer,
    EditCosts,
)

__all__ = [
    "all_farthest_neighbors",
    "farthest_between_chains",
    "farthest_between_chains_pram",
    "largest_two_corner_rectangle",
    "largest_rectangle_brute",
    "largest_empty_corner_rectangle",
    "largest_empty_corner_rectangle_brute",
    "largest_empty_rectangle",
    "largest_empty_rectangle_brute",
    "visible_neighbor_queries",
    "neighbor_queries_brute",
    "edit_distance_wagner_fischer",
    "edit_distance_dag_parallel",
    "EditCosts",
    "least_weight_subsequence",
    "least_weight_subsequence_brute",
    "wagner_whitin",
]
