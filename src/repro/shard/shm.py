"""Shared-memory placement for sharded sweeps.

The whole point of the shard executor is that workers *map* the float
tensor instead of receiving a pickled copy, so the scatter step costs
one ``memcpy`` into a ``multiprocessing.shared_memory.SharedMemory``
segment the first time an array is seen — and nothing at all on repeat
solves.  :class:`ShmArena` is the parent-side placement cache:

- ``place(array)`` returns a :class:`TensorRef` (segment name + shape)
  for a C-contiguous float64 matrix, creating and filling a segment on
  first sight and reusing it (keyed by ``id(array)``, with a strong
  reference pinning the identity) afterwards;
- a byte budget (``REPRO_SHARD_SHM_BYTES``, default 4 GiB) bounds the
  cache — eviction unlinks the segment and queues its name so workers
  drop their own attachment (existing POSIX mappings survive an unlink;
  the memory is reclaimed once every attachment closes);
- ``release_all()`` unlinks everything (wired to ``atexit`` by the
  executor so segments never outlive the process).

Workers attach by name through :func:`attach_readonly`, which also
works around the CPython ≤3.12 ``resource_tracker`` misfeature of
tracking *attached* (not created) segments — without the unregister,
every worker exit would spuriously warn about (and on some platforms
prematurely unlink) segments the parent still owns.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["TensorRef", "ShmArena", "attach_readonly", "detach", "worker_cache_clear"]


@dataclass(frozen=True)
class TensorRef:
    """Pickle-cheap handle to a parent-placed matrix.

    ``name=None`` means the tensor travels inline (thread mode — the
    worker shares the parent's address space, so ``data`` IS the
    parent's array and no segment exists).
    """

    name: object  # str | None
    shape: Tuple[int, int]
    data: object = None  # np.ndarray | None (inline / thread mode)


def _byte_budget() -> int:
    raw = os.environ.get("REPRO_SHARD_SHM_BYTES", "").strip()
    try:
        return max(1, int(raw)) if raw else (4 << 30)
    except ValueError:
        return 4 << 30


class ShmArena:
    """Parent-side segment cache: one segment per distinct source array."""

    def __init__(self, byte_budget: int | None = None) -> None:
        self.byte_budget = _byte_budget() if byte_budget is None else int(byte_budget)
        # id(array) -> (array ref, segment, nbytes); insertion order = LRU
        self._cache: "OrderedDict[int, Tuple[np.ndarray, shared_memory.SharedMemory, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        #: Names unlinked since the last drain — shipped to workers so
        #: they close their stale attachments.
        self._retired: List[str] = []

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def bytes_resident(self) -> int:
        return self._bytes

    def place(self, array: np.ndarray) -> TensorRef:
        """Segment-backed ref for ``array`` (cached by object identity)."""
        key = id(array)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            return TensorRef(name=hit[1].name, shape=tuple(array.shape))
        mat = np.ascontiguousarray(array, dtype=np.float64)
        nbytes = max(1, mat.nbytes)
        while self._cache and self._bytes + nbytes > self.byte_budget:
            self._evict_oldest()
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        view = np.ndarray(mat.shape, dtype=np.float64, buffer=seg.buf)
        view[...] = mat
        self._cache[key] = (array, seg, nbytes)
        self._bytes += nbytes
        return TensorRef(name=seg.name, shape=tuple(array.shape))

    def _evict_oldest(self) -> None:
        _, (_, seg, nbytes) = self._cache.popitem(last=False)
        self._bytes -= nbytes
        self._retired.append(seg.name)
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def drain_retired(self) -> List[str]:
        """Names unlinked since the last call (to forward to workers)."""
        out, self._retired = self._retired, []
        return out

    def release_all(self) -> None:
        while self._cache:
            self._evict_oldest()
        self._retired = []


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_readonly(ref: TensorRef) -> np.ndarray:
    """The matrix behind ``ref``, mapped (or passed through) zero-copy."""
    if ref.name is None:
        return ref.data
    seg = _ATTACHED.get(ref.name)
    if seg is None:
        seg = _attach_untracked(ref.name)
        _ATTACHED[ref.name] = seg
    return np.ndarray(ref.shape, dtype=np.float64, buffer=seg.buf)


def detach(names) -> None:
    """Close attachments to segments the parent has retired."""
    for name in names:
        seg = _ATTACHED.pop(name, None)
        if seg is not None:
            seg.close()


def worker_cache_clear() -> None:  # pragma: no cover - process teardown aid
    detach(list(_ATTACHED))


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker side effects.

    CPython ≤3.12 registers every ``SharedMemory`` the process touches
    — including mere *attachments* — so a spawn-mode worker would grow
    its own tracker that unlinks the parent's segments when the worker
    exits, and a fork-mode worker (which shares the parent's tracker)
    would corrupt the parent's bookkeeping if it tried to unregister.
    3.13+ has ``track=False``; for older interpreters we suppress the
    registration call for the duration of the attach, which is correct
    under both start methods.  Shard workers run tasks serially, so the
    brief patch is race-free.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
