"""Crash-safe shared-memory placement for sharded sweeps.

The whole point of the shard executor is that workers *map* the float
tensor instead of receiving a pickled copy, so the scatter step costs
one ``memcpy`` into a ``multiprocessing.shared_memory.SharedMemory``
segment the first time an array is seen — and nothing at all on repeat
solves.  :class:`ShmArena` is the parent-side placement cache:

- ``place(array)`` returns a :class:`TensorRef` (segment name + shape +
  generation) for a C-contiguous float64 matrix, creating and filling a
  segment on first sight and reusing it (keyed by ``id(array)``, with a
  strong reference pinning the identity) afterwards;
- a byte budget (``REPRO_SHARD_SHM_BYTES``, default 4 GiB) bounds the
  cache — eviction unlinks the segment and queues its name so workers
  drop their own attachment (existing POSIX mappings survive an unlink;
  the memory is reclaimed once every attachment closes);
- ``release_all()`` unlinks everything (wired to ``atexit`` by the
  executor so segments never outlive the process).

Crash safety (DESIGN.md §12) adds three mechanisms:

**Per-segment header.**  Every segment begins with a
:data:`HEADER_BYTES`-byte header — magic, a monotonically increasing
*generation* counter, the placed shape, the data byte count, and a
CRC-32 checksum over all of it.  :func:`attach_readonly` verifies the
header against the :class:`TensorRef` on every attach, so a stale
mapping (name reuse across a crashed parent), a shape mismatch, or
scribbled placement metadata surfaces as a structured
:class:`~repro.shard.supervise.ShardIntegrityError` — retryable — never
as silently wrong minima.  :meth:`ShmArena.repair` restores a damaged
segment (header *and* data) from the parent's pinned source array;
cache hits self-heal the same way.

**Orphan reaping.**  Segment names embed the creating pid
(``repro-shm-<pid>-<token>``).  :func:`reap_orphans` scans ``/dev/shm``
for segments whose owner is dead (a SIGKILLed or crashed parent leaks
its arena) and unlinks them; the first :class:`ShmArena` constructed in
a process runs it automatically.

**Teardown that cannot leak.**  ``release_all``/eviction unlink from
the *parent* side, which succeeds regardless of worker state — a
SIGKILLed worker only abandons its own attachment (reclaimed by the
kernel), never the name.  Close/unlink failures are contained so one
bad segment cannot strand the rest.

Workers attach by name through :func:`attach_readonly`, which also
works around the CPython ≤3.12 ``resource_tracker`` misfeature of
tracking *attached* (not created) segments — without the unregister,
every worker exit would spuriously warn about (and on some platforms
prematurely unlink) segments the parent still owns.
"""

from __future__ import annotations

import os
import secrets
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.shard.supervise import ShardIntegrityError

__all__ = [
    "TensorRef",
    "ShmArena",
    "attach_readonly",
    "detach",
    "worker_cache_clear",
    "reap_orphans",
    "HEADER_BYTES",
]

#: Reserved bytes at the head of every segment (the data region follows).
HEADER_BYTES = 64
_MAGIC = 0x5250524F53484D32  # b"RPROSHM2" as a big-endian u64
_HEADER = struct.Struct("<QQQQQI")  # magic, generation, rows, cols, nbytes, crc32
_NAME_PREFIX = "repro-shm"


def _pack_header(generation: int, shape: Tuple[int, int], nbytes: int) -> bytes:
    body = struct.pack(
        "<QQQQQ", _MAGIC, generation, int(shape[0]), int(shape[1]), int(nbytes)
    )
    return body + struct.pack("<I", zlib.crc32(body))


def _write_header(seg, generation: int, shape: Tuple[int, int], nbytes: int) -> None:
    seg.buf[: _HEADER.size] = _pack_header(generation, shape, nbytes)


def _check_header(seg, ref: "TensorRef") -> Optional[str]:
    """``None`` when the header matches ``ref``; else a short diagnosis."""
    raw = bytes(seg.buf[: _HEADER.size])
    magic, generation, rows, cols, nbytes, crc = _HEADER.unpack(raw)
    if magic != _MAGIC:
        return f"bad magic 0x{magic:x}"
    if crc != zlib.crc32(raw[:-4]):
        return "metadata checksum mismatch"
    if generation != ref.generation:
        return f"generation {generation} != expected {ref.generation} (stale attach)"
    if (rows, cols) != tuple(ref.shape):
        return f"shape ({rows}, {cols}) != expected {tuple(ref.shape)}"
    if nbytes + HEADER_BYTES > seg.size:
        return f"declared {nbytes} data bytes exceed segment size {seg.size}"
    return None


@dataclass(frozen=True)
class TensorRef:
    """Pickle-cheap handle to a parent-placed matrix.

    ``name=None`` means the tensor travels inline (thread mode — the
    worker shares the parent's address space, so ``data`` IS the
    parent's array and no segment exists).  ``generation`` is the
    arena's placement counter at creation, verified against the segment
    header on attach.
    """

    name: object  # str | None
    shape: Tuple[int, int]
    data: object = None  # np.ndarray | None (inline / thread mode)
    generation: int = 0


def _byte_budget() -> int:
    raw = os.environ.get("REPRO_SHARD_SHM_BYTES", "").strip()
    try:
        return max(1, int(raw)) if raw else (4 << 30)
    except ValueError:
        return 4 << 30


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's live pid
        return True
    return True


def reap_orphans(directory: str = "/dev/shm") -> List[str]:
    """Unlink ``repro-shm-*`` segments whose creating process is dead.

    A parent that dies uncleanly (SIGKILL, OOM) cannot run its
    ``atexit`` unlink; its segments survive in ``/dev/shm`` forever.
    Names embed the creator pid, so leaked segments are identified by
    pid liveness — live processes' segments (including our own) are
    never touched.  Returns the reaped names.  No-op on platforms
    without a scannable shm directory.
    """
    reaped: List[str] = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return reaped
    for entry in entries:
        if not entry.startswith(_NAME_PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            seg = _attach_untracked(entry)
        except (FileNotFoundError, OSError):  # pragma: no cover - race
            continue
        try:
            seg.unlink()
            reaped.append(entry)
        except (FileNotFoundError, OSError):  # pragma: no cover - race
            pass
        finally:
            try:
                seg.close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass
    return reaped


_REAPED_ONCE = False


def _reap_once() -> None:
    global _REAPED_ONCE
    if not _REAPED_ONCE:
        _REAPED_ONCE = True
        reap_orphans()


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh segment with a pid-stamped, collision-checked name."""
    while True:
        name = f"{_NAME_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        try:
            return shared_memory.SharedMemory(
                create=True, size=HEADER_BYTES + nbytes, name=name
            )
        except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
            continue


class ShmArena:
    """Parent-side segment cache: one segment per distinct source array."""

    def __init__(self, byte_budget: int | None = None) -> None:
        _reap_once()
        self.byte_budget = _byte_budget() if byte_budget is None else int(byte_budget)
        # id(array) -> (array ref, contiguous mat, segment, nbytes, generation);
        # insertion order = LRU
        self._cache: "OrderedDict[int, Tuple[np.ndarray, np.ndarray, shared_memory.SharedMemory, int, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._generation = 0
        #: Names unlinked since the last drain — shipped to workers so
        #: they close their stale attachments.
        self._retired: List[str] = []

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def bytes_resident(self) -> int:
        return self._bytes

    def place(self, array: np.ndarray) -> TensorRef:
        """Segment-backed ref for ``array`` (cached by object identity).

        Cache hits re-verify the segment header and self-heal a
        corrupted placement before handing out the ref, so a scribbled
        header never survives past the next placement.
        """
        key = id(array)
        hit = self._cache.get(key)
        if hit is not None:
            _, mat, seg, nbytes, generation = hit
            self._cache.move_to_end(key)
            ref = TensorRef(
                name=seg.name, shape=tuple(array.shape), generation=generation
            )
            if _check_header(seg, ref) is not None:
                self._restore(mat, seg, nbytes, generation)
            return ref
        mat = np.ascontiguousarray(array, dtype=np.float64)
        nbytes = max(1, mat.nbytes)
        while self._cache and self._bytes + nbytes > self.byte_budget:
            self._evict_oldest()
        seg = _new_segment(nbytes)
        self._generation += 1
        generation = self._generation
        self._restore(mat, seg, nbytes, generation)
        self._cache[key] = (array, mat, seg, nbytes, generation)
        self._bytes += nbytes
        return TensorRef(name=seg.name, shape=tuple(array.shape), generation=generation)

    @staticmethod
    def _restore(mat: np.ndarray, seg, nbytes: int, generation: int) -> None:
        """(Re)write a segment's data region and header from its source."""
        if mat.size:
            view = np.ndarray(
                mat.shape, dtype=np.float64, buffer=seg.buf, offset=HEADER_BYTES
            )
            view[...] = mat
            del view
        _write_header(seg, generation, mat.shape, nbytes)

    def repair(self, name: str) -> bool:
        """Restore the named segment (header + data) from its pinned source.

        The recovery hook for detected metadata corruption: the
        supervisor calls this before re-dispatching a task whose worker
        raised :class:`~repro.shard.supervise.ShardIntegrityError`.
        Returns ``False`` when the name is not resident (evicted — the
        caller re-places through :meth:`place` instead).
        """
        for _, mat, seg, nbytes, generation in self._cache.values():
            if seg.name == name:
                self._restore(mat, seg, nbytes, generation)
                return True
        return False

    def corrupt_header(self, name: str) -> bool:
        """Scribble the named segment's placement metadata (chaos aid).

        This is the ``shm_corrupt`` fault's injection site — it damages
        only the header (checksum field included), never the float
        data, so a repaired segment is bit-identical to the original.
        """
        for _, _, seg, _, _ in self._cache.values():
            if seg.name == name:
                seg.buf[: _HEADER.size] = b"\xde\xad" * (_HEADER.size // 2)
                return True
        return False

    def _evict_oldest(self) -> None:
        _, (_, _, seg, nbytes, _) = self._cache.popitem(last=False)
        self._bytes -= nbytes
        self._retired.append(seg.name)
        self._unlink(seg)

    @staticmethod
    def _unlink(seg) -> None:
        """Close + unlink, containing per-segment failures (teardown must
        keep going even if a buffer is still exported somewhere)."""
        try:
            seg.close()
        except (BufferError, OSError):  # pragma: no cover - exported view
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        except OSError:  # pragma: no cover - defensive
            pass

    def drain_retired(self) -> List[str]:
        """Names unlinked since the last call (to forward to workers)."""
        out, self._retired = self._retired, []
        return out

    def release_all(self) -> None:
        """Unlink every resident segment; idempotent and exception-proof
        (interpreter-shutdown teardown must never mask a user exception
        or leak a segment because one close failed)."""
        while self._cache:
            try:
                self._evict_oldest()
            except Exception:  # pragma: no cover - defensive
                pass
        self._retired = []


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_readonly(ref: TensorRef) -> np.ndarray:
    """The matrix behind ``ref``, mapped (or passed through) zero-copy.

    Every attach verifies the segment header against the ref — magic,
    checksum, generation, shape — and raises
    :class:`~repro.shard.supervise.ShardIntegrityError` on any mismatch
    (including a vanished segment), which the supervisor treats as
    retryable after repairing/re-placing the segment.
    """
    if ref.name is None:
        return ref.data
    seg = _ATTACHED.get(ref.name)
    if seg is None:
        try:
            seg = _attach_untracked(ref.name)
        except FileNotFoundError:
            raise ShardIntegrityError(
                f"shared-memory segment {ref.name!r} does not exist "
                "(evicted or reaped before attach)"
            ) from None
        _ATTACHED[ref.name] = seg
    problem = _check_header(seg, ref)
    if problem is not None:
        raise ShardIntegrityError(
            f"shared-memory segment {ref.name!r} failed verification: {problem}"
        )
    return np.ndarray(ref.shape, dtype=np.float64, buffer=seg.buf, offset=HEADER_BYTES)


def detach(names) -> None:
    """Close attachments to segments the parent has retired."""
    for name in names:
        seg = _ATTACHED.pop(name, None)
        if seg is not None:
            try:
                seg.close()
            except (BufferError, OSError):  # pragma: no cover - exported view
                pass


def worker_cache_clear() -> None:  # pragma: no cover - process teardown aid
    detach(list(_ATTACHED))


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker side effects.

    CPython ≤3.12 registers every ``SharedMemory`` the process touches
    — including mere *attachments* — so a spawn-mode worker would grow
    its own tracker that unlinks the parent's segments when the worker
    exits, and a fork-mode worker (which shares the parent's tracker)
    would corrupt the parent's bookkeeping if it tried to unregister.
    3.13+ has ``track=False``; for older interpreters we suppress the
    registration call for the duration of the attach, which is correct
    under both start methods.  Shard workers run tasks serially, so the
    brief patch is race-free.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
