"""Explicit row-block decomposition of a single large query.

The engine's bucket sharding is *owner-granular*: whole queries are the
unit of distribution because that is the granularity at which the
ChargeFan invariant makes replayed ledgers bit-identical to serial
(see DESIGN.md §11).  Within one query the ``sqrt`` recursion's charge
sequence is data-*dependent* — the phase (c) column bounds come from
the sampled rows' minima — so a row-block split cannot reproduce the
serial charge stream, and the engine therefore never row-splits a
single query behind your back.

:func:`row_block_minima` is the explicit opt-in for the single-query
fast path.  Row extrema are row-local, so cutting the matrix into ``S``
contiguous row blocks and solving each block with the standard sweep
yields **bit-identical values and witnesses** (each block sees the full
column range; leftmost tie-breaking is per-row).  The accounting is the
row-block schedule's own: per-block ledger snapshots of ``S``
independent sweeps, returned alongside the answer rather than disguised
as the serial query's snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.shard.executor import ShardError, get_executor, shardable_payload
from repro.shard.plan import plan_shards

__all__ = ["row_block_minima", "RowBlockReport"]


@dataclass
class RowBlockReport:
    """Schedule-level accounting of one row-block solve.

    ``block_rows[k]``/``block_snapshots[k]`` describe block ``k``'s row
    range and its own sweep's ledger snapshot; ``imbalance`` is the
    planned max/mean row load ratio.
    """

    values: np.ndarray
    witnesses: np.ndarray
    block_rows: Tuple[Tuple[int, int], ...]
    block_snapshots: Tuple[dict, ...]
    imbalance: float

    def __iter__(self):
        yield self.values
        yield self.witnesses


def row_block_minima(
    array,
    shards: int,
    *,
    problem: str = "rowmin",
    start_method: Optional[str] = None,
    model: str = "CRCW-common",
    budget: int = 1 << 40,
) -> RowBlockReport:
    """Solve one row-extremum query as ``shards`` independent row blocks.

    ``array`` must be explicit (an ``np.ndarray`` or
    :class:`~repro.monge.arrays.ExplicitArray`) — implicit inputs would
    have to be materialized to be mapped into shared memory, which is
    exactly the evaluation storm sharding exists to avoid.  ``problem``
    is one of the row family (``rowmin``/``rowmax``/``rowmax_inverse``).
    Values and witnesses are bit-identical to the serial solve;
    ``block_snapshots`` expose the per-block accounting.
    """
    mat = shardable_payload(array)
    if mat is None:
        raise ShardError(
            "row_block_minima needs an explicit matrix (ndarray or "
            "ExplicitArray); implicit arrays would be materialized "
            "entry-by-entry during scatter"
        )
    m = int(mat.shape[0])
    plan = plan_shards([1] * m, shards)
    executor = get_executor(workers=len(plan), start_method=start_method)
    ref = executor.ref_for(mat)
    tasks = [
        {
            "refs": [ref],
            "rows": [(lo, hi)],
            "problem": problem,
            "cache": False,
            "model": model,
            "budget": int(budget),
            "retired": [],
        }
        for lo, hi in plan.ranges
    ]
    results = executor.run_tasks(tasks)
    vals: List[np.ndarray] = []
    wits: List[np.ndarray] = []
    for res in results:
        (v, w), = res["outs"]
        vals.append(v)
        wits.append(w)
    return RowBlockReport(
        values=np.concatenate(vals),
        witnesses=np.concatenate(wits),
        block_rows=plan.ranges,
        block_snapshots=tuple(res["sweep"] for res in results),
        imbalance=plan.imbalance,
    )
