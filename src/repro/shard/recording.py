"""Charge-replay logs: how sharded ledgers stay bit-identical to serial.

A worker process cannot charge the parent's per-query
:class:`~repro.pram.ledger.CostLedger` sub-accounts directly, and it
must not try — the parent's ledgers carry observers (tracer bindings)
and feed the session aggregate.  Instead each worker hands its
:class:`~repro.kernels.chargefan.ChargeFan` a :class:`RecordingLedger` per
owner: a ledger-shaped sink that appends every charge and kernel
notification, in order, to a plain event list.  The parent then calls
:func:`replay_events` on the real sub-account, re-issuing the identical
``charge(rounds, processors, work)`` calls and
:func:`~repro.pram.ledger.notify_kernel` notifications.

Because the ChargeFan invariant guarantees each owner's fanned-out
charge sequence equals its *serial* charge sequence regardless of
bucket composition (see :class:`~repro.kernels.chargefan.ChargeFan`),
replaying a worker's per-owner log reproduces the serial snapshot —
and, through the sub-account's observer, the serial trace — bit for
bit.  ``tests/test_shard_equivalence.py`` pins this end to end.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from repro.pram.ledger import CostLedger, notify_kernel

__all__ = ["RecordingLedger", "replay_events", "events_digest", "ChargeEvent"]

#: ``("c", rounds, processors, work)`` or ``("k", name, size, None)`` —
#: a single flat tuple shape keeps the logs cheap to pickle.
ChargeEvent = Tuple


class RecordingLedger:
    """A ledger-shaped charge sink that logs instead of accumulating.

    Implements exactly the surface the fused sweep's charge path
    touches: ``charge`` (from :meth:`ChargeFan.charge` and
    :func:`~repro.pram.primitives.replay_grouped_min_charges`) and the
    ``observer`` attribute (read by
    :func:`~repro.pram.ledger.notify_kernel`).  It registers *itself*
    as observer so grouped-minimum kernel notifications land in the
    same ordered log as the charges they precede — replay then emits
    them in the original interleaving, which is what keeps traced
    sharded runs span-identical to serial ones.
    """

    __slots__ = ("events", "observer")

    def __init__(self) -> None:
        self.events: List[ChargeEvent] = []
        self.observer = self

    # -- ledger surface (ChargeFan / replay_grouped_min_charges) -------- #
    def charge(
        self, rounds: int = 1, processors: int = 1, work: Optional[int] = None
    ) -> None:
        self.events.append(
            ("c", int(rounds), int(processors), None if work is None else int(work))
        )

    # -- observer surface (notify_kernel) -------------------------------- #
    def on_kernel(self, ledger, name: str, size: int) -> None:
        self.events.append(("k", str(name), int(size), None))


def replay_events(ledger: CostLedger, events: List[ChargeEvent]) -> None:
    """Re-issue a recorded charge/kernel sequence on a real ledger.

    The charges flow through :meth:`CostLedger.charge` — observers,
    processor-limit checks, and round hooks all fire exactly as they
    would have in the serial run — and kernel events flow through
    :func:`notify_kernel`, so a bound tracer sees the serial event
    stream.
    """
    for ev in events:
        if ev[0] == "c":
            ledger.charge(rounds=ev[1], processors=ev[2], work=ev[3])
        else:
            notify_kernel(ledger, ev[1], ev[2])


def events_digest(events: List[ChargeEvent]) -> int:
    """Order-sensitive CRC-32 of one owner's charge/kernel log.

    Two logs digest equal iff they would replay identically (same
    events, same interleaving).  The supervisor uses this to confirm
    that a straggler's late result and its in-process hedge twin agree
    before merging either (:mod:`repro.shard.supervise`).
    """
    crc = 0
    for ev in events:
        crc = zlib.crc32(repr(tuple(ev)).encode("ascii"), crc)
    return crc
