"""Shard planning: contiguous, balanced row-block partitions.

Both shard modes — owner-granular bucket sharding and explicit
single-query row-block decomposition — reduce to the same planning
problem: split ``weights[i]`` units of work (rows) across at most ``S``
contiguous blocks so the heaviest block is as light as possible.  For a
fused bucket the units are whole queries (every owner contributes ``m``
rows, so a balanced split is a near-equal owner count per shard); for a
single query the units are individual rows.

Contiguity is load-bearing, not cosmetic: the stacked array lays owners
out as consecutive row blocks, so a contiguous owner range maps to one
contiguous slab of the shared-memory tensor and the gather step is a
row-order concatenation with no permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """A balanced contiguous partition of ``len(weights)`` items.

    ``ranges[k] = (lo, hi)`` gives shard ``k`` items ``lo:hi``; ranges
    cover ``0..n`` in order with no gaps.  ``imbalance`` is the ratio of
    the heaviest shard's weight to the mean shard weight (≥ 1.0; 1.0 is
    a perfect split) — the quantity the ``shard.imbalance`` histogram
    tracks.
    """

    ranges: Tuple[Tuple[int, int], ...]
    weights: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.ranges)

    @property
    def imbalance(self) -> float:
        loads = [sum(self.weights[lo:hi]) for lo, hi in self.ranges]
        mean = sum(loads) / len(loads)
        return (max(loads) / mean) if mean > 0 else 1.0


def plan_shards(weights: Sequence[int], shards: int) -> ShardPlan:
    """Split items with the given weights into ≤ ``shards`` contiguous blocks.

    Uses the classic fractional-boundary rounding: block ``k`` ends
    where the running weight prefix crosses ``k/S`` of the total.  For
    uniform weights this degenerates to ``np.array_split`` semantics
    (the non-divisible remainder spread one item at a time), and every
    block is non-empty as long as ``shards <= len(weights)`` — callers
    clamp, but the plan also drops empty tails defensively.
    """
    n = len(weights)
    if n == 0:
        raise ValueError("cannot shard zero items")
    shards = max(1, min(int(shards), n))
    w = np.asarray(weights, dtype=np.int64)
    if shards == 1:
        return ShardPlan(ranges=((0, n),), weights=tuple(int(x) for x in w))
    prefix = np.concatenate([[0], np.cumsum(w)])
    total = int(prefix[-1])
    if total == 0:
        cuts = np.linspace(0, n, shards + 1).round().astype(np.int64)
    else:
        targets = np.arange(1, shards, dtype=np.float64) * (total / shards)
        cuts = np.concatenate(
            [[0], np.searchsorted(prefix[1:], targets, side="left") + 1, [n]]
        )
    ranges: List[Tuple[int, int]] = []
    for k in range(len(cuts) - 1):
        lo, hi = int(cuts[k]), int(cuts[k + 1])
        if hi > lo:
            ranges.append((lo, hi))
    return ShardPlan(ranges=tuple(ranges), weights=tuple(int(x) for x in w))
