"""The shard executor: persistent pools + scatter/gather orchestration.

One :class:`ShardExecutor` owns a worker pool (``fork`` / ``spawn`` /
``forkserver`` process pools, or an in-process ``thread`` pool) and a
:class:`~repro.shard.shm.ShmArena` placement cache.  Executors are
process-global and keyed by ``(start_method, workers)`` — pool spin-up
(milliseconds under fork, ~a second under spawn) and shared-memory
placement are paid once, so steady-state sharded solves cost only task
dispatch + the sweep itself.  ``atexit`` tears every executor down and
unlinks every segment; the reaper is idempotent and exception-proof, so
interpreter-shutdown teardown can never mask a user exception or leak a
segment because one worker already died.

``run_bucket`` is the engine's entry point: given one explicit payload
per owner, it plans a balanced contiguous owner partition
(:func:`~repro.shard.plan.plan_shards`), places tensors, and hands one
:func:`~repro.shard.worker.run_shard_task` per shard to the *supervised*
dispatch loop (:func:`~repro.shard.supervise.run_supervised`) — which
owns deadlines, retry/backoff, pool respawn, straggler hedging, and
per-shard in-process quarantine (DESIGN.md §12).  Merging (charge
replay, tracer spans, certificates) stays in the session, which owns
those objects.

Only an *unrecoverable* failure — a shard that fails even the
in-process fallback — surfaces as
:class:`~repro.shard.supervise.ShardError`; the session treats that as
"sharding unavailable" and re-runs the bucket through the in-process
fused path, so a broken pool can slow a solve down but never change or
lose an answer.
"""

from __future__ import annotations

import atexit
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.shard.config import START_METHODS, default_start_method
from repro.shard.plan import ShardPlan, plan_shards
from repro.shard.shm import ShmArena, TensorRef
from repro.shard.supervise import (
    ShardError,
    SupervisePolicy,
    SupervisionReport,
    default_policy,
    run_supervised,
)

__all__ = [
    "ShardError",
    "ShardExecutor",
    "get_executor",
    "shutdown_executors",
    "shardable_payload",
]


def shardable_payload(data) -> Optional[np.ndarray]:
    """The explicit float matrix behind ``data``, or ``None``.

    Sharding maps tensors into shared memory with one ``memcpy``; any
    input that would need *materializing* first (implicit, composite,
    cached, staircase arrays) is declined here — the engine then runs
    the normal in-process path, trading the speedup for zero risk of an
    O(m·n) evaluation storm during scatter.
    """
    from repro.monge.arrays import ExplicitArray

    if isinstance(data, ExplicitArray):
        mat = data.data
    elif isinstance(data, np.ndarray):
        mat = data
    else:
        return None
    if mat.ndim != 2 or mat.size == 0:
        return None
    return mat


class ShardExecutor:
    """A persistent worker pool + placement arena for one start method."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        method = start_method if start_method is not None else default_start_method()
        if method not in START_METHODS:
            raise ValueError(
                f"unknown start method {method!r}; expected one of {START_METHODS}"
            )
        self.workers = int(workers)
        self.start_method = method
        self.arena: Optional[ShmArena] = None if method == "thread" else ShmArena()
        self._pool = None
        # rolling broadcast of unlinked segment names; every task carries
        # it so whichever worker picks the task up drops stale mappings
        self._retired_log: deque = deque(maxlen=256)

    # -- pool lifecycle -------------------------------------------------- #
    def _ensure_pool(self):
        if self._pool is None:
            if self.start_method == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-shard"
                )
            else:
                import multiprocessing

                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(self.start_method),
                )
        return self._pool

    def _reset_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - already-broken pool
                pass

    def respawn_pool(self) -> None:
        """Tear down a (possibly broken) pool; the next dispatch rebuilds it.

        The supervisor calls this after ``BrokenProcessPool`` — the
        arena and its placements survive, so re-dispatched tasks re-use
        the existing shared-memory segments with zero re-copy.
        """
        self._reset_pool()

    def shutdown(self) -> None:
        """Release the pool and every shared-memory segment.

        Idempotent and exception-proof by construction: a dead pool or
        an already-unlinked segment is skipped, never raised — this runs
        at interpreter shutdown, where an exception would mask the
        user's own.
        """
        self._reset_pool()
        if self.arena is not None:
            self.arena.release_all()

    # -- placement ------------------------------------------------------- #
    def ref_for(self, mat: np.ndarray) -> TensorRef:
        """A worker-resolvable handle for one payload matrix."""
        if self.arena is None:  # thread mode shares the address space
            return TensorRef(name=None, shape=tuple(mat.shape), data=mat)
        return self.arena.place(mat)

    # -- dispatch -------------------------------------------------------- #
    def run_tasks(
        self,
        tasks: Sequence[Dict],
        *,
        policy: Optional[SupervisePolicy] = None,
        faults=None,
    ) -> List[Dict]:
        """Run shard tasks under supervision; results in task order.

        The simple face over :func:`~repro.shard.supervise.run_supervised`
        for callers (``row_block_minima``) that don't need the
        :class:`~repro.shard.supervise.SupervisionReport`.
        """
        results, _ = self.run_tasks_supervised(tasks, policy=policy, faults=faults)
        return results

    def run_tasks_supervised(
        self,
        tasks: Sequence[Dict],
        *,
        policy: Optional[SupervisePolicy] = None,
        faults=None,
        owners=None,
        refresh=None,
    ) -> Tuple[List[Dict], SupervisionReport]:
        try:
            return run_supervised(
                self,
                tasks,
                policy=policy if policy is not None else default_policy(),
                faults=faults,
                owners=owners,
                refresh=refresh,
            )
        except ShardError:
            raise
        except Exception as exc:
            self._reset_pool()
            raise ShardError(
                f"shard pool ({self.start_method}, {self.workers} workers) "
                f"failed: {exc!r}"
            ) from exc

    def run_bucket(
        self,
        payloads: Sequence[np.ndarray],
        *,
        problem: str,
        cache: bool,
        model: str,
        budget: int,
        shards: int,
        policy: Optional[SupervisePolicy] = None,
        faults=None,
        kernel_tier: Optional[str] = None,
        tile_bytes: Optional[int] = None,
    ) -> Tuple[ShardPlan, List[Dict], SupervisionReport]:
        """Scatter one fused bucket across ≤ ``shards`` owner-block tasks.

        Returns ``(plan, shard_results, report)``: the
        :class:`ShardPlan` over owners, one worker result dict per shard
        in shard order, and the supervision report (attempts, hedges,
        timeouts, quarantines) for spans and metrics.
        """
        plan: ShardPlan = plan_shards([int(p.shape[0]) for p in payloads], shards)

        def make_task(lo: int, hi: int) -> Dict:
            refs = [self.ref_for(p) for p in payloads[lo:hi]]
            if self.arena is not None:
                self._retired_log.extend(self.arena.drain_retired())
            return {
                "refs": refs,
                "rows": [None] * (hi - lo),
                "problem": problem,
                "cache": bool(cache),
                "model": model,
                "budget": int(budget),
                "retired": list(self._retired_log),
                # parent-resolved kernel tier + tile budget: explicit in
                # the task payload so fork AND spawn workers run the
                # same tier without consulting their own environment
                "tier": kernel_tier,
                "tile_bytes": tile_bytes,
            }

        tasks = [make_task(lo, hi) for lo, hi in plan.ranges]
        results, report = self.run_tasks_supervised(
            tasks,
            policy=policy,
            faults=faults,
            owners=plan.ranges,
            # a re-dispatch re-resolves refs so evicted segments are
            # re-placed (cache hits also self-heal corrupt headers)
            refresh=lambda k: make_task(*plan.ranges[k]),
        )
        return plan, results, report


# --------------------------------------------------------------------- #
# process-global executor registry
# --------------------------------------------------------------------- #
_EXECUTORS: Dict[tuple, ShardExecutor] = {}


def get_executor(workers: int, start_method: Optional[str] = None) -> ShardExecutor:
    """The shared executor for ``(start_method, workers)`` (created lazily)."""
    method = start_method if start_method is not None else default_start_method()
    key = (method, int(workers))
    ex = _EXECUTORS.get(key)
    if ex is None:
        ex = _EXECUTORS[key] = ShardExecutor(workers, method)
    return ex


def shutdown_executors() -> None:
    """Tear down every pool and unlink every shared-memory segment.

    Safe to call any number of times, from ``atexit`` or by hand, with
    workers alive, dead, or SIGKILLed: each executor's teardown failure
    is contained so the remaining executors still release their
    segments, and a second call over an empty registry is a no-op.
    """
    while _EXECUTORS:
        _, ex = _EXECUTORS.popitem()
        try:
            ex.shutdown()
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass


atexit.register(shutdown_executors)
