"""Shard supervision: deadlines, retry/backoff, hedging, quarantine.

PR 6's executor had all-or-nothing robustness: ``run_tasks`` was a bare
``pool.map`` — one slow worker stalled the bucket indefinitely, and any
exception abandoned every shard's completed work for the serial
fallback.  This module replaces that with a supervised dispatch loop
(:func:`run_supervised`) built around four mechanisms, all of which
preserve the bit-identity contract (a recovered shard re-runs the same
deterministic sweep, and :class:`~repro.shard.recording.RecordingLedger`
replay reproduces the identical charge stream):

**Deadlines.**  Each task carries a per-attempt deadline
(:attr:`SupervisePolicy.timeout_s`, from ``ExecutionConfig.shard_timeout``
or ``REPRO_SHARD_TIMEOUT``) and the bucket a total budget
(``timeout_s × budget_factor``).  A timed-out attempt is abandoned (the
future is ignored when it eventually lands) and either retried or
quarantined; a blown bucket budget sends every unfinished shard to the
in-process fallback at once.

**Retry with backoff.**  Retryable failures — a dead worker
(``BrokenProcessPool``), an injected or real
:class:`ShardWorkerLost`, a shared-memory attach race or checksum
mismatch (:class:`ShardIntegrityError`) — are re-dispatched up to
:attr:`SupervisePolicy.max_attempts` times with exponential backoff
plus deterministic jitter.  A broken process pool is respawned
transparently, corrupt segments are repaired
(:meth:`~repro.shard.shm.ShmArena.repair`), and evicted placements are
re-placed through the caller's ``refresh`` hook before re-dispatch.

**Straggler hedging.**  Once completed-task wall times establish a
quantile, a task exceeding ``max(hedge_min_s, hedge_factor × q)`` (or
the absolute :attr:`SupervisePolicy.hedge_after_s`) is speculatively
re-run *in-process* and the first result wins — safe because the sweep
is deterministic, and verified when both copies arrive by comparing
:func:`~repro.shard.recording.events_digest` checksums.

**Partial degradation.**  A shard that exhausts retries falls back
alone to an in-process :func:`~repro.shard.worker.run_shard_task`
(fault directives stripped, segments repaired first), quarantining the
failure instead of discarding the other shards' completed work.  Only
when even that fails does the whole bucket raise :class:`ShardError`,
which the session converts into the wholesale serial fallback — so the
old guarantee ("sharding can be slower, never wrong") still holds at
every level of degradation.

Seeded chaos drives all of it: a
:class:`~repro.resilience.faults.FaultPlan` with shard-kind rates
(``worker_kill`` / ``task_delay`` / ``shm_corrupt`` / ``result_drop``)
is consulted *in the parent at dispatch time*, so the injected schedule
is a pure function of the seed.  Recovery is observable through the
``shard.retries`` / ``shard.hedges`` / ``shard.timeouts`` /
``shard.partial_fallbacks`` counters, the ``shard.hedge_latency_s``
histogram, and per-shard ``attempt`` / ``hedged`` span attributes
(DESIGN.md §12).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import metrics

__all__ = [
    "ShardError",
    "ShardTimeout",
    "ShardWorkerLost",
    "ShardIntegrityError",
    "SupervisePolicy",
    "TaskReport",
    "SupervisionReport",
    "run_supervised",
    "default_policy",
    "set_default_policy",
    "policy_override",
]


# --------------------------------------------------------------------- #
# error taxonomy
# --------------------------------------------------------------------- #
class ShardError(RuntimeError):
    """A shard bucket failed beyond recovery; callers fall back to serial.

    Subclasses carry structured coordinates: ``shard`` (task index
    within the bucket), ``attempt`` (1-based attempt count when the
    error was raised), and ``owners`` (the ``(lo, hi)`` owner block the
    shard covered) — all optional, because some failures (a dead pool)
    have no single shard to blame.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: Optional[int] = None,
        attempt: Optional[int] = None,
        owners: Optional[Tuple[int, int]] = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempt = attempt
        self.owners = owners


class ShardTimeout(ShardError):
    """A shard attempt exceeded its deadline (or the bucket its budget)."""


class ShardWorkerLost(ShardError):
    """The worker owning a shard task died (or its result never arrived)."""


class ShardIntegrityError(ShardError):
    """Shared-memory metadata or a returned result failed verification."""


#: Failure types worth re-dispatching: pool/worker loss, shm races and
#: checksum mismatches, and transient OS-level errors.  Anything else is
#: assumed deterministic (a genuine bug) and goes straight to quarantine.
RETRYABLE = (BrokenExecutor, ShardWorkerLost, ShardIntegrityError, OSError)


# --------------------------------------------------------------------- #
# policy
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SupervisePolicy:
    """Tuning knobs for one supervised bucket dispatch.

    ``timeout_s`` is the per-attempt deadline (``None`` disables
    deadlines; the default — resolution from ``shard_timeout`` /
    ``REPRO_SHARD_TIMEOUT`` happens in the session).  The bucket-level
    budget is ``timeout_s × budget_factor``.  Hedging triggers at
    ``max(hedge_min_s, hedge_factor × quantile(completed walls))`` once
    at least one task has completed, or unconditionally after
    ``hedge_after_s`` when set.  Defaults are deliberately conservative
    so a loaded single-core host never hedges spuriously.
    """

    timeout_s: Optional[float] = None
    budget_factor: float = 4.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    hedge_quantile: float = 0.5
    hedge_factor: float = 6.0
    hedge_min_s: float = 0.5
    hedge_after_s: Optional[float] = None
    tick_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(f"timeout_s must be > 0 or None, got {self.timeout_s}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.hedge_quantile <= 1.0:
            raise ValueError(
                f"hedge_quantile must be in [0, 1], got {self.hedge_quantile}"
            )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before re-dispatch attempt ``attempt`` (1-based, jittered)."""
        base = self.backoff_base_s * (self.backoff_factor ** max(0, attempt - 1))
        return base * (1.0 + self.backoff_jitter * rng.random())


_DEFAULT_POLICY: Optional[SupervisePolicy] = None


def default_policy(timeout_s: Optional[float] = None) -> SupervisePolicy:
    """The process default policy, with ``timeout_s`` folded in if given."""
    base = _DEFAULT_POLICY if _DEFAULT_POLICY is not None else SupervisePolicy()
    if timeout_s is not None:
        base = replace(base, timeout_s=timeout_s)
    return base


def set_default_policy(policy: Optional[SupervisePolicy]) -> Optional[SupervisePolicy]:
    """Pin the process default policy (``None`` restores the built-in);
    returns the previous pin."""
    global _DEFAULT_POLICY
    prev = _DEFAULT_POLICY
    _DEFAULT_POLICY = policy
    return prev


@contextmanager
def policy_override(policy: Optional[SupervisePolicy]) -> Iterator[None]:
    """Temporarily pin the default supervision policy (tests, chaos)."""
    prev = set_default_policy(policy)
    try:
        yield
    finally:
        set_default_policy(prev)


# --------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------- #
@dataclass
class TaskReport:
    """Per-shard supervision outcome (feeds span attributes)."""

    shard: int
    owners: Optional[Tuple[int, int]] = None
    attempts: int = 0
    hedged: bool = False
    timeouts: int = 0
    partial_fallback: bool = False
    wall_s: float = 0.0


@dataclass
class SupervisionReport:
    """Bucket-level supervision outcome (feeds metrics + bucket span)."""

    tasks: List[TaskReport] = field(default_factory=list)
    retries: int = 0
    hedges: int = 0
    timeouts: int = 0
    partial_fallbacks: int = 0

    @property
    def recovered(self) -> bool:
        """Did the supervisor have to intervene at all?"""
        return bool(
            self.retries or self.hedges or self.timeouts or self.partial_fallbacks
        )


# --------------------------------------------------------------------- #
# the supervised dispatch loop
# --------------------------------------------------------------------- #
def _validate_result(res, task: Dict, shard: int, attempt: int) -> None:
    """Structural integrity of one worker result dict."""
    required = ("outs", "events", "evals", "sweep", "wall_s")
    if not isinstance(res, dict) or any(key not in res for key in required):
        raise ShardIntegrityError(
            f"shard {shard} returned a malformed result "
            f"(attempt {attempt}): {type(res).__name__}",
            shard=shard,
            attempt=attempt,
        )
    if len(res["outs"]) != len(task["refs"]):
        raise ShardIntegrityError(
            f"shard {shard} returned {len(res['outs'])} owner results for "
            f"{len(task['refs'])} owners (attempt {attempt})",
            shard=shard,
            attempt=attempt,
        )


def _quantile(values: Sequence[float], q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def run_supervised(
    executor,
    tasks: Sequence[Dict],
    *,
    policy: Optional[SupervisePolicy] = None,
    faults=None,
    owners: Optional[Sequence[Tuple[int, int]]] = None,
    refresh: Optional[Callable[[int], Dict]] = None,
) -> Tuple[List[Dict], SupervisionReport]:
    """Dispatch ``tasks`` on ``executor``'s pool under full supervision.

    Returns one worker result dict per task (task order) plus the
    :class:`SupervisionReport`.  ``owners`` optionally labels each
    task's owner block for error messages and reports; ``refresh(k)``
    rebuilds task ``k``'s dict before a re-dispatch (re-placing evicted
    shared-memory segments).  ``faults`` is an optional
    :class:`~repro.resilience.faults.FaultPlan` whose shard-kind rates
    are drawn here, in the parent, once per dispatch attempt.

    Raises :class:`ShardError` (or a subclass) only when a shard cannot
    be recovered even by the in-process fallback — the signal for the
    session's wholesale serial fallback.
    """
    from repro.shard.worker import run_shard_task

    policy = policy if policy is not None else default_policy()
    n = len(tasks)
    if n == 0:
        return [], SupervisionReport()
    rng = random.Random(policy.seed if faults is None else faults.seed)
    m = metrics()

    report = SupervisionReport(
        tasks=[
            TaskReport(shard=k, owners=tuple(owners[k]) if owners else None)
            for k in range(n)
        ]
    )
    current: List[Dict] = [dict(t) for t in tasks]
    results: List[Optional[Dict]] = [None] * n
    live: Dict[object, int] = {}  # future -> task index
    started: Dict[int, float] = {}
    dropped: Dict[int, bool] = {}  # parent-side result_drop draw, per attempt
    backlog: List[Tuple[int, float]] = []  # (task index, earliest re-dispatch)
    completed_walls: List[float] = []

    t_bucket = time.monotonic()
    budget_s = (
        policy.timeout_s * policy.budget_factor
        if policy.timeout_s is not None
        else None
    )

    def owner_block(k: int) -> Optional[Tuple[int, int]]:
        return report.tasks[k].owners

    def repair_refs(k: int) -> None:
        """Rewrite the headers (and data) of task ``k``'s segments."""
        arena = getattr(executor, "arena", None)
        if arena is None:
            return
        for ref in current[k].get("refs", ()):
            if getattr(ref, "name", None) is not None:
                arena.repair(ref.name)

    def draw_directives(k: int) -> None:
        """Consult the fault plan for this dispatch; annotate the task.

        Draws are keyed by ``(shard, attempt)`` so the injected schedule
        is a pure function of the seed regardless of how concurrent
        completions interleave (:meth:`FaultPlan.fires_keyed`).
        """
        current[k].pop("fault", None)
        dropped[k] = False
        if faults is None:
            return
        site = f"shard-{k}"
        attempt = report.tasks[k].attempts
        directive: Dict = {}
        if faults.fires_keyed("task_delay", (k, attempt), site=site):
            directive["delay_s"] = float(faults.delay_s)
        if faults.fires_keyed("worker_kill", (k, attempt), site=site):
            directive["kill"] = True
            directive["thread"] = getattr(executor, "start_method", "") == "thread"
        if directive:
            current[k]["fault"] = directive
        dropped[k] = faults.fires_keyed("result_drop", (k, attempt), site=site)
        if faults.fires_keyed("shm_corrupt", (k, attempt), site=site):
            arena = getattr(executor, "arena", None)
            if arena is not None:
                for ref in current[k].get("refs", ()):
                    if getattr(ref, "name", None) is not None:
                        arena.corrupt_header(ref.name)
                        break

    def submit(k: int) -> None:
        report.tasks[k].attempts += 1
        if refresh is not None and report.tasks[k].attempts > 1:
            current[k] = dict(refresh(k))
        draw_directives(k)
        started[k] = time.monotonic()
        try:
            fut = executor._ensure_pool().submit(run_shard_task, current[k])
        except (BrokenExecutor, RuntimeError):
            # pool died between completions (or was shut down under us):
            # respawn once and submit on the fresh pool — if that also
            # fails, the bucket is genuinely unsalvageable.
            executor.respawn_pool()
            fut = executor._ensure_pool().submit(run_shard_task, current[k])
        live[fut] = k

    def run_inline(k: int, *, why: str) -> Dict:
        """Quarantined in-process execution (faults stripped, shm repaired)."""
        task = dict(current[k])
        task.pop("fault", None)
        repair_refs(k)
        try:
            res = run_shard_task(task)
            _validate_result(res, task, k, report.tasks[k].attempts)
        except Exception as exc:
            raise ShardError(
                f"shard {k} (owners {owner_block(k)}) failed in-process after "
                f"{report.tasks[k].attempts} pool attempt(s) [{why}]: {exc!r}",
                shard=k,
                attempt=report.tasks[k].attempts,
                owners=owner_block(k),
            ) from exc
        return res

    def quarantine(k: int, *, why: str) -> None:
        results[k] = run_inline(k, why=why)
        report.tasks[k].partial_fallback = True
        report.tasks[k].wall_s = results[k]["wall_s"]
        report.partial_fallbacks += 1
        m.counter("shard.partial_fallbacks").inc()

    def retry_or_quarantine(k: int, exc: Optional[BaseException], *, why: str) -> None:
        if isinstance(exc, ShardIntegrityError):
            repair_refs(k)
        if report.tasks[k].attempts < policy.max_attempts:
            delay = policy.backoff(report.tasks[k].attempts, rng)
            backlog.append((k, time.monotonic() + delay))
            report.retries += 1
            m.counter("shard.retries").inc()
        else:
            quarantine(k, why=why)

    def hedge(k: int, fut) -> None:
        """Speculative in-process twin; first bit-identical result wins."""
        report.tasks[k].hedged = True
        report.hedges += 1
        m.counter("shard.hedges").inc()
        t0 = time.monotonic()
        res = run_inline(k, why="straggler hedge")
        m.histogram("shard.hedge_latency_s").observe(time.monotonic() - t0)
        live.pop(fut, None)
        if fut.done() and fut.exception() is None:
            # the straggler finished while we hedged: both results exist
            # and determinism says they are identical — verify, and take
            # the worker's (it finished first).
            from repro.shard.recording import events_digest

            wres = fut.result()
            try:
                _validate_result(wres, current[k], k, report.tasks[k].attempts)
            except ShardIntegrityError:
                wres = None
            if wres is not None:
                hedge_dig = [events_digest(ev) for ev in res["events"]]
                work_dig = [events_digest(ev) for ev in wres["events"]]
                if hedge_dig != work_dig:
                    raise ShardIntegrityError(
                        f"shard {k}: hedged in-process result diverged from "
                        "the worker's (charge-log digests differ) — refusing "
                        "to merge a non-deterministic bucket",
                        shard=k,
                        attempt=report.tasks[k].attempts,
                        owners=owner_block(k),
                    )
                res = wres
        results[k] = res
        report.tasks[k].wall_s = res["wall_s"]

    def handle_failure(k: int, exc: BaseException) -> None:
        if isinstance(exc, BrokenExecutor):
            # the pool is dead: every in-flight future is lost with it.
            lost = [k] + [live.pop(f) for f in list(live)]
            executor.respawn_pool()
            for j in lost:
                retry_or_quarantine(
                    j, ShardWorkerLost(str(exc), shard=j), why="worker lost"
                )
        elif isinstance(exc, RETRYABLE):
            retry_or_quarantine(k, exc, why=type(exc).__name__)
        else:
            # deterministic failure: retrying the same task is pointless,
            # but the in-process path may still differ (fresh attach, no
            # pool) — quarantine, and let its error surface if genuine.
            quarantine(k, why=f"non-retryable {type(exc).__name__}")

    def hedge_threshold() -> Optional[float]:
        if policy.hedge_after_s is not None:
            return policy.hedge_after_s
        if not completed_walls:
            return None
        q = _quantile(completed_walls, policy.hedge_quantile)
        return max(policy.hedge_min_s, policy.hedge_factor * q)

    for k in range(n):
        submit(k)

    while any(r is None for r in results):
        now = time.monotonic()

        # bucket budget: everything still unfinished quarantines at once
        if budget_s is not None and now - t_bucket > budget_s:
            stranded = sorted(set(live.values()) | {k for k, _ in backlog})
            for fut in list(live):
                live.pop(fut)
            backlog.clear()
            for k in stranded:
                if results[k] is None:
                    report.timeouts += 1
                    report.tasks[k].timeouts += 1
                    m.counter("shard.timeouts").inc()
                    quarantine(k, why="bucket budget exhausted")
            continue

        # re-dispatch backlog entries whose backoff has elapsed
        due = [k for k, when in backlog if when <= now]
        backlog = [(k, when) for k, when in backlog if when > now]
        for k in due:
            submit(k)

        if not live and not backlog:
            # nothing in flight and nothing scheduled, yet tasks remain
            # unfinished — only reachable through a logic error; refuse
            # to spin forever.
            missing = [k for k in range(n) if results[k] is None]
            raise ShardError(
                f"supervisor stalled with unfinished shards {missing}"
            )  # pragma: no cover - defensive

        if live:
            done, _ = wait(
                set(live), timeout=policy.tick_s, return_when=FIRST_COMPLETED
            )
            for fut in done:
                if fut not in live:
                    # already handled (a broken pool fails every in-flight
                    # future at once and the first one re-dispatches all)
                    continue
                k = live.pop(fut)
                wall = time.monotonic() - started[k]
                exc = fut.exception()
                if exc is not None:
                    handle_failure(k, exc)
                    continue
                res = fut.result()
                try:
                    _validate_result(res, current[k], k, report.tasks[k].attempts)
                    if dropped.get(k):
                        raise ShardWorkerLost(
                            f"shard {k}: result dropped in transit (injected)",
                            shard=k,
                            attempt=report.tasks[k].attempts,
                            owners=owner_block(k),
                        )
                except ShardError as verr:
                    handle_failure(k, verr)
                    continue
                results[k] = res
                report.tasks[k].wall_s = wall
                completed_walls.append(wall)
        elif backlog:
            time.sleep(
                max(0.0, min(when for _, when in backlog) - time.monotonic())
            )

        # deadlines and hedging for whatever is still in flight
        now = time.monotonic()
        threshold = hedge_threshold()
        for fut, k in list(live.items()):
            elapsed = now - started[k]
            if policy.timeout_s is not None and elapsed > policy.timeout_s:
                live.pop(fut)  # abandon; ignore the eventual completion
                report.timeouts += 1
                report.tasks[k].timeouts += 1
                m.counter("shard.timeouts").inc()
                retry_or_quarantine(
                    k,
                    ShardTimeout(
                        f"shard {k} exceeded its {policy.timeout_s:.3f}s "
                        f"deadline (attempt {report.tasks[k].attempts})",
                        shard=k,
                        attempt=report.tasks[k].attempts,
                        owners=owner_block(k),
                    ),
                    why="deadline exceeded",
                )
            elif (
                threshold is not None
                and elapsed > threshold
                and not report.tasks[k].hedged
            ):
                hedge(k, fut)

    return [r for r in results if r is not None], report
