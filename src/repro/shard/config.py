"""Shard-count and start-method switches (mirrors :mod:`repro.pram.fastpath`).

Sharding is opt-in: the default shard count is 1 (serial) unless the
``REPRO_SHARDS`` environment variable sets a process-wide default.  An
:class:`~repro.engine.config.ExecutionConfig` whose ``shards`` field is
``None`` inherits that default; an explicit ``shards=`` always wins —
*except* that ``REPRO_SHARDS=0`` is a kill switch forcing the exact
serial code path everywhere (the escape hatch the golden-trace gate and
bisection workflows rely on, exactly like ``REPRO_FAST_PATH=0``).

``REPRO_SHARD_START`` picks the worker start method: ``fork`` (default
where available), ``spawn``, ``forkserver``, or ``thread`` (an
in-process pool — no shared-memory segments needed, useful where
``multiprocessing`` is unavailable or the arrays are tiny).
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "resolve_shards",
    "set_default_shards",
    "shards_override",
    "default_start_method",
    "set_default_start_method",
    "START_METHODS",
]

START_METHODS = ("fork", "spawn", "forkserver", "thread")


def _env_shards() -> Optional[int]:
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return None
    try:
        return max(0, int(raw))
    except ValueError:
        return None


#: Process-global default shard count (``None`` → env unset → serial)
#: and kill switch (``0`` → force serial regardless of explicit config).
_DEFAULT: Optional[int] = _env_shards()


def resolve_shards(requested: Optional[int]) -> int:
    """The effective shard count for one bucket.

    ``requested`` is ``ExecutionConfig.shards``: ``None`` defers to the
    ``REPRO_SHARDS`` default, explicit values pass through.  The env
    kill switch (``REPRO_SHARDS=0``) overrides everything and returns 1.
    """
    if _DEFAULT == 0:
        return 1
    if requested is not None:
        return max(1, int(requested))
    if _DEFAULT is None:
        return 1
    return max(1, _DEFAULT)


def set_default_shards(count: Optional[int]) -> Optional[int]:
    """Set the process default (``None`` unsets, ``0`` is the kill
    switch); returns the previous value."""
    global _DEFAULT
    prev = _DEFAULT
    _DEFAULT = None if count is None else max(0, int(count))
    return prev


@contextmanager
def shards_override(count: Optional[int]) -> Iterator[None]:
    """Temporarily pin the default shard count (tests)."""
    prev = set_default_shards(count)
    try:
        yield
    finally:
        set_default_shards(prev)


def _env_start_method() -> Optional[str]:
    raw = os.environ.get("REPRO_SHARD_START", "").strip().lower()
    return raw if raw in START_METHODS else None


_START: Optional[str] = _env_start_method()


def default_start_method() -> str:
    """The worker start method sharded buckets use.

    Honors ``REPRO_SHARD_START`` when set to a valid method; otherwise
    prefers ``fork`` (cheapest — workers inherit the loaded interpreter)
    and falls back to ``spawn`` on platforms without it.
    """
    if _START is not None:
        return _START
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def set_default_start_method(method: Optional[str]) -> Optional[str]:
    """Pin the start method programmatically (``None`` restores the
    env/platform default); returns the previous pin."""
    global _START
    if method is not None and method not in START_METHODS:
        raise ValueError(
            f"unknown start method {method!r}; expected one of {START_METHODS}"
        )
    prev = _START
    _START = method
    return prev
