"""Shard-count, start-method, and deadline switches.

Sharding is opt-in: the default shard count is 1 (serial) unless the
``REPRO_SHARDS`` environment variable sets a process-wide default.  An
:class:`~repro.engine.config.ExecutionConfig` whose ``shards`` field is
``None`` inherits that default; an explicit ``shards=`` always wins —
*except* that ``REPRO_SHARDS=0`` is a kill switch forcing the exact
serial code path everywhere (the escape hatch the golden-trace gate and
bisection workflows rely on, exactly like ``REPRO_FAST_PATH=0``).

``REPRO_SHARD_START`` picks the worker start method: ``fork`` (default
where available), ``spawn``, ``forkserver``, or ``thread`` (an
in-process pool — no shared-memory segments needed, useful where
``multiprocessing`` is unavailable or the arrays are tiny).

``REPRO_SHARD_TIMEOUT`` sets the default per-shard-task deadline in
seconds (see :mod:`repro.shard.supervise`); ``ExecutionConfig.
shard_timeout`` overrides it per query, and unset means no deadline.

Malformed environment values are rejected eagerly with a ``ValueError``
naming the variable and its accepted range — a deployment typo
(``REPRO_SHARDS=four``) must fail loudly, not silently run serial.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from typing import Iterator, Optional

from repro._util.env import env_choice, env_float, env_int

__all__ = [
    "resolve_shards",
    "resolve_shard_timeout",
    "set_default_shards",
    "shards_override",
    "default_start_method",
    "set_default_start_method",
    "START_METHODS",
]

START_METHODS = ("fork", "spawn", "forkserver", "thread")

_UNSET = object()  # "not yet resolved from the environment"


def _env_shards() -> Optional[int]:
    return env_int(
        "REPRO_SHARDS",
        requirement=(
            "an integer >= 0 (0 disables sharding, "
            "k >= 2 is the default worker count)"
        ),
        minimum=0,
    )


#: Process-global default shard count.  ``_UNSET`` → lazily resolved
#: from ``REPRO_SHARDS`` on first use (so a malformed value raises a
#: clear error at resolve time, not at import time); ``None`` → no
#: default (serial); ``0`` → kill switch.
_DEFAULT = _UNSET


def _default_shards() -> Optional[int]:
    global _DEFAULT
    if _DEFAULT is _UNSET:
        _DEFAULT = _env_shards()
    return _DEFAULT


def resolve_shards(requested: Optional[int]) -> int:
    """The effective shard count for one bucket.

    ``requested`` is ``ExecutionConfig.shards``: ``None`` defers to the
    ``REPRO_SHARDS`` default, explicit values pass through.  The env
    kill switch (``REPRO_SHARDS=0``) overrides everything and returns 1.
    Raises ``ValueError`` when ``REPRO_SHARDS`` is set but malformed.
    """
    default = _default_shards()
    if default == 0:
        return 1
    if requested is not None:
        return max(1, int(requested))
    if default is None:
        return 1
    return max(1, default)


def resolve_shard_timeout(requested: Optional[float]) -> Optional[float]:
    """The effective per-shard-task deadline in seconds (``None`` = none).

    ``requested`` is ``ExecutionConfig.shard_timeout``: explicit values
    pass through; ``None`` defers to ``REPRO_SHARD_TIMEOUT``.  Raises
    ``ValueError`` when the env value is set but not a positive number
    of seconds.
    """
    if requested is not None:
        return float(requested)
    return env_float(
        "REPRO_SHARD_TIMEOUT",
        requirement=(
            "a positive finite number of seconds "
            "(e.g. REPRO_SHARD_TIMEOUT=30), or unset for no deadline"
        ),
        positive=True,
        finite=True,
    )


def set_default_shards(count: Optional[int]) -> Optional[int]:
    """Set the process default (``None`` unsets, ``0`` is the kill
    switch); returns the previous value."""
    global _DEFAULT
    prev = _default_shards()
    _DEFAULT = None if count is None else max(0, int(count))
    return prev


@contextmanager
def shards_override(count: Optional[int]) -> Iterator[None]:
    """Temporarily pin the default shard count (tests)."""
    prev = set_default_shards(count)
    try:
        yield
    finally:
        set_default_shards(prev)


def _reload_env_defaults() -> None:
    """Re-read ``REPRO_SHARDS`` / ``REPRO_SHARD_START`` (tests only)."""
    global _DEFAULT, _START
    _DEFAULT = _UNSET
    _START = _env_start_method()


def _env_start_method() -> Optional[str]:
    # Unrecognized methods mean "no setting" (fall through to the
    # platform default) rather than an error — historical behavior.
    return env_choice("REPRO_SHARD_START", START_METHODS, strict=False)


_START: Optional[str] = _env_start_method()


def default_start_method() -> str:
    """The worker start method sharded buckets use.

    Honors ``REPRO_SHARD_START`` when set to a valid method; otherwise
    prefers ``fork`` (cheapest — workers inherit the loaded interpreter)
    and falls back to ``spawn`` on platforms without it.
    """
    if _START is not None:
        return _START
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def set_default_start_method(method: Optional[str]) -> Optional[str]:
    """Pin the start method programmatically (``None`` restores the
    env/platform default); returns the previous pin."""
    global _START
    if method is not None and method not in START_METHODS:
        raise ValueError(
            f"unknown start method {method!r}; expected one of {START_METHODS}"
        )
    prev = _START
    _START = method
    return prev
