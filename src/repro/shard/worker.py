"""The shard worker: one grouped-extremum sweep over a row slab.

Each task is a self-contained description of one shard — tensor refs
(shared-memory names or inline arrays), optional per-owner row ranges,
the problem key, and the machine coordinates (model name + processor
budget) needed to rebuild an equivalent :class:`~repro.pram.machine.Pram`
in the worker process.  The worker runs **the existing fused sweep**,
:func:`repro.core.rowmin_pram.batched_row_extrema`, verbatim on its
owner subset; there is no shard-special algorithm, so values and
witnesses are the serial kernel's own outputs and the attached
:class:`~repro.shard.recording.RecordingLedger` fan captures each
owner's serial charge sequence for parent-side replay.

The function must stay importable at module top level
(``repro.shard.worker.run_shard_task``) so ``spawn``/``forkserver``
pools can pickle it by reference.
"""

from __future__ import annotations

import os
import time
from time import perf_counter
from typing import Dict

from repro.monge.arrays import ExplicitArray
from repro.kernels.chargefan import ChargeFan
from repro.kernels.registry import tier_context
from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram
from repro.pram.models import CRCW_ARBITRARY, CRCW_COMMON, CRCW_PRIORITY, CREW, EREW
from repro.shard.recording import RecordingLedger
from repro.shard.shm import attach_readonly, detach
from repro.shard.supervise import ShardWorkerLost

__all__ = ["run_shard_task", "model_named"]

_MODELS = {
    m.name: m for m in (EREW, CREW, CRCW_COMMON, CRCW_ARBITRARY, CRCW_PRIORITY)
}


def model_named(name: str):
    """The PRAM model constant for its ``name`` string."""
    try:
        return _MODELS[name]
    except KeyError:
        raise ValueError(f"unknown PRAM model {name!r}") from None


def _apply_fault_directives(fault) -> None:
    """Act out a parent-drawn chaos directive (see ``supervise.py``).

    ``delay_s`` sleeps to fake a straggler; ``kill`` dies the way a real
    worker crash looks from the parent — ``os._exit`` for process pools
    (→ ``BrokenProcessPool``) and a raised :class:`ShardWorkerLost` for
    the thread pool, whose workers share the parent's process and must
    not take it down.
    """
    if not fault:
        return
    delay = fault.get("delay_s")
    if delay:
        time.sleep(float(delay))
    if fault.get("kill"):
        if fault.get("thread"):
            raise ShardWorkerLost("injected worker_kill (thread-mode simulation)")
        os._exit(70)  # pragma: no cover - dies before coverage flushes


def run_shard_task(task: Dict) -> Dict:
    """Execute one shard; returns results + charge logs + shard stats.

    Output dict: ``outs`` (per-owner ``(values, witnesses)`` pairs, in
    shard-local order), ``events`` (per-owner charge-replay logs),
    ``evals`` (per-owner entry-evaluation counts, so the parent can
    keep the source arrays' ``eval_count`` observable), ``sweep`` (this
    shard's scratch-ledger snapshot, for the per-shard span), and
    ``wall_s``.
    """
    t0 = perf_counter()
    _apply_fault_directives(task.get("fault"))
    detach(task.get("retired", ()))
    from repro.core.rowmin_pram import batched_row_extrema

    bases = []
    for ref, rows in zip(task["refs"], task["rows"]):
        mat = attach_readonly(ref)
        if rows is not None:
            mat = mat[rows[0]:rows[1]]
        # C-contiguous float64 slab -> ExplicitArray wraps it zero-copy
        bases.append(ExplicitArray(mat))

    pram = Pram(
        model_named(task["model"]), task["budget"], ledger=CostLedger()
    )
    recorders = [RecordingLedger() for _ in bases]
    fan = ChargeFan(recorders, crcw=pram.model.is_crcw, budget=pram.processors)
    with tier_context(task.get("tier"), task.get("tile_bytes")):
        outs = batched_row_extrema(
            pram, bases, problem=task["problem"], cache=task["cache"], fan=fan
        )
    return {
        "outs": outs,
        "events": [r.events for r in recorders],
        "evals": [int(b.eval_count) for b in bases],
        "sweep": pram.ledger.snapshot(),
        "wall_s": perf_counter() - t0,
    }
