"""Sharded multi-process execution of fused sweeps (DESIGN.md §11).

The shard layer escapes the GIL: a fused bucket's row-stacked tensor is
mapped into ``multiprocessing.shared_memory`` and contiguous row blocks
of it (whole owners — query boundaries) are swept concurrently by a
persistent worker pool, each worker running the unchanged
grouped-extremum kernel and shipping back ``(values, witnesses,
charge-replay log)``.  The parent merges in row order and replays each
owner's serial charge sequence onto its real ledger sub-account, so
snapshots, traces, and certificates are bit-identical to the serial
path — the fused-kernel invariant, extended across processes.

Users normally reach this through ``ExecutionConfig.shards`` /
``repro.solve_many(..., shards=4)`` or the ``REPRO_SHARDS`` environment
default; the names exported here are the explicit/advanced surface
(row-block decomposition of one big query, executor lifecycle, and the
planning/replay building blocks the engine uses).
"""

from repro.shard.config import (
    START_METHODS,
    default_start_method,
    resolve_shard_timeout,
    resolve_shards,
    set_default_shards,
    set_default_start_method,
    shards_override,
)
from repro.shard.executor import (
    ShardError,
    ShardExecutor,
    get_executor,
    shardable_payload,
    shutdown_executors,
)
from repro.shard.plan import ShardPlan, plan_shards
from repro.shard.recording import RecordingLedger, events_digest, replay_events
from repro.shard.rowblock import RowBlockReport, row_block_minima
from repro.shard.shm import reap_orphans
from repro.shard.supervise import (
    ShardIntegrityError,
    ShardTimeout,
    ShardWorkerLost,
    SupervisePolicy,
    SupervisionReport,
    default_policy,
    policy_override,
    run_supervised,
    set_default_policy,
)

__all__ = [
    "START_METHODS",
    "RecordingLedger",
    "RowBlockReport",
    "ShardError",
    "ShardExecutor",
    "ShardIntegrityError",
    "ShardPlan",
    "ShardTimeout",
    "ShardWorkerLost",
    "SupervisePolicy",
    "SupervisionReport",
    "default_policy",
    "default_start_method",
    "events_digest",
    "get_executor",
    "plan_shards",
    "policy_override",
    "reap_orphans",
    "replay_events",
    "resolve_shard_timeout",
    "resolve_shards",
    "row_block_minima",
    "run_supervised",
    "set_default_policy",
    "set_default_shards",
    "set_default_start_method",
    "shardable_payload",
    "shards_override",
    "shutdown_executors",
]
