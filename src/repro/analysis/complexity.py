"""Fitting measured round counts to the paper's growth laws.

The tables assert asymptotic shapes, so the reproduction criterion is:
*measured rounds divided by the claimed growth function is flat across
problem sizes*.  :func:`fit_ratios` computes those normalized ratios,
:func:`flatness` summarizes their spread, and :func:`best_fit` picks
the candidate law with the flattest normalized curve — the quantity
EXPERIMENTS.md reports per table row.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Sequence, Tuple

__all__ = ["GROWTHS", "fit_ratios", "flatness", "best_fit"]


def _lg(n: float) -> float:
    return math.log2(max(2.0, n))


GROWTHS: Dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "lg n": lambda n: _lg(n),
    "lg lg n": lambda n: _lg(_lg(n)),
    "(lg lg n)^2": lambda n: _lg(_lg(n)) ** 2,
    "lg n lg lg n": lambda n: _lg(n) * _lg(_lg(n)),
    "lg^2 n": lambda n: _lg(n) ** 2,
    "sqrt n": lambda n: math.sqrt(n),
    "n": lambda n: float(n),
}


def fit_ratios(
    ns: Sequence[int], rounds: Sequence[float], growth: str
) -> Tuple[float, list]:
    """Normalized ratios ``rounds / growth(n)`` and their mean."""
    g = GROWTHS.get(growth)
    if g is None:
        raise ValueError(f"unknown growth {growth!r}; choose from {sorted(GROWTHS)}")
    if len(ns) != len(rounds) or not ns:
        raise ValueError("ns and rounds must be equal-length and nonempty")
    ratios = [r / g(n) for n, r in zip(ns, rounds)]
    return sum(ratios) / len(ratios), ratios


def flatness(ratios: Iterable[float]) -> float:
    """Spread metric: ``max/min`` of the normalized ratios (1.0 = flat).

    A measured curve matches a growth law when its flatness stays small
    (we use ≤ 2.5 as the default acceptance in the benches) while
    steeper/shallower laws blow up.
    """
    rs = [r for r in ratios]
    lo, hi = min(rs), max(rs)
    if lo <= 0:
        return math.inf
    return hi / lo


def best_fit(
    ns: Sequence[int], rounds: Sequence[float], candidates: Sequence[str] | None = None
) -> Tuple[str, float]:
    """The candidate law whose normalized curve is flattest.

    Returns ``(law, flatness)``.
    """
    cands = list(candidates) if candidates else list(GROWTHS)
    best = None
    for name in cands:
        _, ratios = fit_ratios(ns, rounds, name)
        f = flatness(ratios)
        if best is None or f < best[1]:
            best = (name, f)
    assert best is not None
    return best
