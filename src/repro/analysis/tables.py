"""Live regeneration of Tables 1.1–1.3.

Each ``table_*_rows`` function runs the corresponding algorithms at the
requested sizes and returns one dict per (model, n) with measured
rounds, peak processors, and the normalization against the paper's
claimed growth.  ``render_table`` formats the rows the way the paper
prints them (model / time / processors) plus the measured columns.

Machine realizations per row:

- CRCW: :class:`~repro.pram.scheduling.BrentPram` over CRCW-common with
  ``8n`` physical processors (the paper's ``n`` up to the constant the
  doubly-log primitives need; see EXPERIMENTS.md);
- CREW: BrentPram over CREW with ``n / lg lg n`` processors — the
  tables' stated budget;
- network rows: a :class:`~repro.core.network_machine.NetworkMachine`
  over the requested topology.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.complexity import GROWTHS
from repro.core import (
    monge_row_maxima_pram,
    monge_row_maxima_network,
    staircase_row_minima_network,
    staircase_row_minima_pram,
    tube_maxima_network,
    tube_maxima_pram,
)
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.pram.ledger import CostLedger
from repro.pram.models import CRCW_COMMON, CREW
from repro.pram.scheduling import BrentPram

__all__ = ["table_1_1_rows", "table_1_2_rows", "table_1_3_rows", "render_table"]


def _crcw(n: int) -> BrentPram:
    return BrentPram(CRCW_COMMON, 1 << 44, 8 * n, ledger=CostLedger())


def _crew(n: int) -> BrentPram:
    phys = max(1, int(n / math.log2(max(2.0, math.log2(max(2, n))))))
    return BrentPram(CREW, 1 << 44, phys, ledger=CostLedger())


def _measure(make_machine, run, sizes: Sequence[int], claimed: str, procs: str):
    rows = []
    for n in sizes:
        machine = make_machine(n)
        run(machine, n)
        led = machine.ledger
        rows.append(
            {
                "n": n,
                "rounds": led.rounds,
                "peak_processors": led.peak_processors,
                "claimed_time": claimed,
                "claimed_processors": procs,
                "normalized": led.rounds / GROWTHS[claimed](n),
            }
        )
    return rows


def table_1_1_rows(sizes: Sequence[int] = (64, 256, 1024)) -> Dict[str, List[dict]]:
    """Row maxima of an n×n Monge array (Table 1.1)."""

    def run_pram(machine, n):
        a = random_monge(n, n, np.random.default_rng(n))
        monge_row_maxima_pram(machine, a)

    out = {
        "CRCW-PRAM": _measure(_crcw, run_pram, sizes, "lg n", "n"),
        "CREW-PRAM": _measure(_crew, run_pram, sizes, "lg n lg lg n", "n/lg lg n"),
    }
    net_rows = []
    for n in sizes:
        a = random_monge(n, n, np.random.default_rng(n))
        _, _, led = monge_row_maxima_network(a, "hypercube")
        net_rows.append(
            {
                "n": n,
                "rounds": led.rounds,
                "peak_processors": led.peak_processors,
                "claimed_time": "lg n lg lg n",
                "claimed_processors": "n/lg lg n",
                "normalized": led.rounds / GROWTHS["lg n lg lg n"](n),
            }
        )
    out["hypercube, etc."] = net_rows
    return out


def table_1_2_rows(sizes: Sequence[int] = (64, 256, 1024)) -> Dict[str, List[dict]]:
    """Row minima of an n×n staircase-Monge array (Table 1.2)."""

    def run_pram(machine, n):
        a = random_staircase_monge(n, n, np.random.default_rng(n))
        staircase_row_minima_pram(machine, a)

    out = {
        "CRCW-PRAM": _measure(_crcw, run_pram, sizes, "lg n", "n"),
        "CREW-PRAM": _measure(_crew, run_pram, sizes, "lg n lg lg n", "n/lg lg n"),
    }
    net_rows = []
    for n in sizes:
        a = random_staircase_monge(n, n, np.random.default_rng(n))
        _, _, led = staircase_row_minima_network(a, "hypercube")
        net_rows.append(
            {
                "n": n,
                "rounds": led.rounds,
                "peak_processors": led.peak_processors,
                "claimed_time": "lg n lg lg n",
                "claimed_processors": "n/lg lg n",
                "normalized": led.rounds / GROWTHS["lg n lg lg n"](n),
            }
        )
    out["hypercube, etc."] = net_rows
    return out


def table_1_3_rows(sizes: Sequence[int] = (16, 64, 256)) -> Dict[str, List[dict]]:
    """Tube maxima of an n×n×n Monge-composite array (Table 1.3)."""

    def crcw_machine(n):
        return BrentPram(CRCW_COMMON, 1 << 46, 8 * n * n, ledger=CostLedger())

    def crew_machine(n):
        phys = max(1, int(n * n / math.log2(max(2, n))))
        return BrentPram(CREW, 1 << 46, phys, ledger=CostLedger())

    def run(machine, n):
        c = random_composite(n, n, n, np.random.default_rng(n))
        tube_maxima_pram(machine, c)

    out = {
        "CRCW-PRAM": _measure(crcw_machine, run, sizes, "lg lg n", "n^2/lg lg n"),
        "CREW-PRAM": _measure(crew_machine, run, sizes, "lg n", "n^2/lg n"),
    }
    net_rows = []
    for n in sizes:
        c = random_composite(n, n, n, np.random.default_rng(n))
        _, _, led = tube_maxima_network(c, "hypercube")
        net_rows.append(
            {
                "n": n,
                "rounds": led.rounds,
                "peak_processors": led.peak_processors,
                "claimed_time": "lg n",
                "claimed_processors": "n^2",
                "normalized": led.rounds / GROWTHS["lg n"](n),
            }
        )
    out["hypercube, etc."] = net_rows
    return out


def render_table(title: str, rows_by_model: Dict[str, List[dict]]) -> str:
    """Format a live table next to the paper's claims."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'Model':<16} {'claimed time':<14} {'claimed procs':<13} "
        f"{'n':>6} {'rounds':>8} {'rounds/claim':>13} {'peak procs':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for model, rows in rows_by_model.items():
        for r in rows:
            lines.append(
                f"{model:<16} {r['claimed_time']:<14} {r['claimed_processors']:<13} "
                f"{r['n']:>6} {r['rounds']:>8} {r['normalized']:>13.2f} "
                f"{r['peak_processors']:>11}"
            )
    return "\n".join(lines)
