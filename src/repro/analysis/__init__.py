"""Measurement analysis: growth-law fitting and table regeneration."""

from repro.analysis.complexity import GROWTHS, best_fit, fit_ratios, flatness
from repro.analysis.tables import (
    table_1_1_rows,
    table_1_2_rows,
    table_1_3_rows,
    render_table,
)

__all__ = [
    "GROWTHS",
    "fit_ratios",
    "flatness",
    "best_fit",
    "table_1_1_rows",
    "table_1_2_rows",
    "table_1_3_rows",
    "render_table",
]
