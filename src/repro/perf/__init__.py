"""Wall-clock perf measurement (timers, throughput counters, JSON baselines).

See :mod:`repro.perf.harness`; the consumer is
``benchmarks/bench_regress.py``, which emits ``BENCH_hotpath.json``.
"""

from repro.perf.harness import (
    Timer,
    WorkloadRecord,
    emit_json,
    environment_fingerprint,
    measure_best,
    throughput,
)

__all__ = [
    "Timer",
    "WorkloadRecord",
    "emit_json",
    "environment_fingerprint",
    "measure_best",
    "throughput",
]
