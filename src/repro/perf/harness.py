"""Wall-clock measurement utilities for the perf-regression harness.

The simulator's first-class metrics are *simulated* (rounds, work, peak
processors — see :mod:`repro.pram.ledger`); this module adds the
*wall-clock* dimension: how fast the simulation itself executes on the
host.  ``benchmarks/bench_regress.py`` combines the two into the repo's
perf baseline (``BENCH_hotpath.json``) so later PRs can show
trajectories instead of anecdotes.

Conventions
-----------
- Timings are best-of-``repeats`` of a zero-argument callable
  (:func:`measure_best`) — the standard defense against one-off
  scheduler noise; the callable's *last* return value is kept so the
  caller can verify results across configurations.
- Derived throughputs (:func:`throughput`) divide simulated quantities
  by wall seconds: rounds/sec measures simulator overhead per
  synchronous round, evals/sec measures entry-evaluation bandwidth.
- :func:`emit_json` writes deterministic, pretty-printed JSON with a
  provenance header (:func:`environment_fingerprint`) so baselines from
  different machines are distinguishable.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Timer",
    "measure_best",
    "throughput",
    "environment_fingerprint",
    "emit_json",
    "WorkloadRecord",
]


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self.seconds: float = 0.0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0


def measure_best(fn: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Best wall-clock of ``repeats`` calls, plus the last call's result."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        with Timer() as t:
            result = fn()
        best = min(best, t.seconds)
    return best, result


def throughput(quantity: int, seconds: float) -> float:
    """``quantity / seconds`` guarded against zero-duration timings."""
    return float(quantity) / max(seconds, 1e-12)


def environment_fingerprint() -> Dict[str, str]:
    """Provenance header for emitted baselines."""
    return {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


@dataclass
class WorkloadRecord:
    """One pinned workload's measurements across simulator configurations.

    ``wall_s`` maps configuration name (``ref`` / ``fast`` /
    ``fast_cache``) to best-of-repeats seconds; the simulated costs are
    configuration-independent by the fused-kernel invariant, which
    ``ledger_identical`` / ``results_identical`` certify for this run.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    wall_s: Dict[str, float] = field(default_factory=dict)
    rounds: int = 0
    work: int = 0
    peak_processors: int = 0
    evals: int = 0
    #: Shard width the workload ran at (1 = in-process serial/fused).
    #: Keeps BENCH_hotpath.json rows schema-aligned with the sharded
    #: tier in BENCH_shard.json so baselines can be compared column-wise.
    shards: int = 1
    #: Configuration name -> kernel tier it ran under (DESIGN.md §13),
    #: e.g. ``{"ref": "reference", "fast": "fused", "blocked": "blocked"}``.
    kernel_tiers: Dict[str, str] = field(default_factory=dict)
    ledger_identical: bool = False
    results_identical: bool = False

    def speedup(self, config: str = "fast", baseline: str = "ref") -> Optional[float]:
        if config not in self.wall_s or baseline not in self.wall_s:
            return None
        return self.wall_s[baseline] / max(self.wall_s[config], 1e-12)

    def as_json(self) -> Dict[str, Any]:
        fast = self.wall_s.get("fast")
        payload: Dict[str, Any] = {
            "params": self.params,
            "wall_s": {k: round(v, 6) for k, v in self.wall_s.items()},
            "rounds": self.rounds,
            "work": self.work,
            "peak_processors": self.peak_processors,
            "evals": self.evals,
            "shards": self.shards,
            "ledger_identical": self.ledger_identical,
            "results_identical": self.results_identical,
        }
        if self.kernel_tiers:
            payload["kernel_tiers"] = dict(self.kernel_tiers)
        for config in self.wall_s:
            if config == "ref":
                continue
            s = self.speedup(config)
            if s is not None:
                payload[f"speedup_{config}"] = round(s, 3)
        if fast:
            payload["rounds_per_s_fast"] = round(throughput(self.rounds, fast), 1)
            payload["evals_per_s_fast"] = round(throughput(self.evals, fast), 1)
        return payload


def emit_json(path: str, payload: Dict[str, Any]) -> None:
    """Write ``payload`` as stable pretty-printed JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
