"""The SMAWK algorithm of Aggarwal, Klawe, Moran, Shor, Wilber [AKM+87].

Computes the leftmost row minima of a *totally monotone* ``m×n`` array
in ``O(m + n)`` entry evaluations (``O(n (1 + lg(m/n)))`` when
``m < n``).  Every Monge array is totally monotone, so this is the
sequential baseline for Table 1.1 and the building block of the
sequential tube searcher.

Tie handling: values are compared lexicographically as
``(value, column)``, which is equivalent to an infinitesimal rightward
penalty; under Monge inputs this preserves total monotonicity and makes
the reported minima exactly the leftmost ones.

The implementation works on :class:`~repro.monge.arrays.SearchArray`
(never materializing the input) and is index-list based, following the
classic presentation: REDUCE prunes columns to at most the number of
rows, then the algorithm recurses on the odd-indexed rows and fills the
even rows by scanning between their neighbors' minima.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.monge.arrays import SearchArray, as_search_array

__all__ = ["smawk", "row_minima", "row_maxima"]


def smawk(array) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row minima of a totally monotone array.

    Returns ``(values, columns)``, each of length ``m``.

    The input must satisfy total monotonicity for minima (every Monge
    array does); this is *not* re-verified here (it costs ``O(mn)``) —
    use :func:`repro.monge.properties.is_totally_monotone_minima` in
    tests.
    """
    a = as_search_array(array)
    m, n = a.shape
    if m == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    if n == 0:
        raise ValueError("cannot take row minima of a zero-column array")

    # Local accessor: fall back to per-entry eval; ExplicitArray fast path.
    data = getattr(a, "data", None)
    if data is not None:
        def ev(i: int, j: int) -> float:
            a.eval_count += 1
            return data[i, j]
    else:
        def ev(i: int, j: int) -> float:
            return float(a.eval(np.array([i]), np.array([j]))[0])

    out_col = np.full(m, -1, dtype=np.int64)

    def solve(rows: list[int], cols: list[int]) -> None:
        if not rows:
            return
        # ---- REDUCE: prune to at most len(rows) live columns ---------- #
        if len(cols) > len(rows):
            stack: list[int] = []
            for c in cols:
                while stack:
                    r = rows[len(stack) - 1]
                    # column c lex-beats the stack top at row r?
                    if ev(r, stack[-1]) > ev(r, c):
                        stack.pop()
                    else:
                        break
                if len(stack) < len(rows):
                    stack.append(c)
            cols = stack
        # ---- recurse on odd rows -------------------------------------- #
        solve(rows[1::2], cols)
        # ---- fill even rows between neighbors' minima ------------------ #
        # position of each col in `cols` for bounding scans
        col_pos = {c: t for t, c in enumerate(cols)}
        lo = 0
        for idx in range(0, len(rows), 2):
            r = rows[idx]
            hi = col_pos[out_col[rows[idx + 1]]] if idx + 1 < len(rows) else len(cols) - 1
            best_v = np.inf
            best_c = -1
            for t in range(lo, hi + 1):
                v = ev(r, cols[t])
                if v < best_v:
                    best_v, best_c = v, cols[t]
            out_col[r] = best_c
            lo = hi
        # advance lower bounds for the *next* even rows via their
        # predecessors: handled by `lo = hi` above (positions monotone).

    solve(list(range(m)), list(range(n)))

    rows_idx = np.arange(m)
    values = a.eval(rows_idx, out_col) if data is None else data[rows_idx, out_col]
    return np.asarray(values, dtype=np.float64), out_col


def row_minima(array) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row minima of a **Monge** array in ``O(m+n)`` evals.

    Alias of :func:`smawk`; named for discoverability next to
    :func:`row_maxima`.
    """
    return smawk(array)


def row_maxima(array) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row maxima of an **inverse-Monge** array.

    The negated array is Monge, and leftmost minima of ``-A`` are
    leftmost maxima of ``A`` — the reduction noted in §1.2.
    ``Θ(m+n)`` evals; this is the routine behind the all-farthest-
    neighbors example of Figure 1.1.
    """
    a = as_search_array(array)
    values, cols = smawk(a.negate())
    return -values, cols
