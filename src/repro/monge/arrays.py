"""Array wrappers used by every searching algorithm.

The paper's model (§1.2) assumes any entry ``a[i, j]`` is computable in
``O(1)`` time from compact data — the array is never materialized.  We
capture that with :class:`SearchArray`: an object exposing ``shape``
and a *vectorized* batch evaluator ``eval(rows, cols)``.  Concrete
flavors:

:class:`ExplicitArray`
    wraps a materialized NumPy matrix (mainly for tests/baselines);
:class:`ImplicitArray`
    wraps a vectorized callable ``f(rows, cols) -> values`` — e.g. the
    Euclidean distances of Figure 1.1, evaluated from the two point
    chains;
:class:`StaircaseArray`
    decorates another array with the staircase ``∞`` region via the
    boundary vector ``f`` (``f[i]`` = first infinite column of row
    ``i``; ``f`` must be nonincreasing per the staircase definition);
:class:`MongeComposite`
    the pair ``(D, E)`` defining ``c[i,j,k] = d[i,j] + e[j,k]``.

Algorithms never materialize a full array; their work is measured in
entry evaluations, which :class:`SearchArray` counts (``eval_count``)
so tests can assert the sequential ``O(m+n)`` bounds.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro._util.validation import as_float_matrix
from repro.obs.metrics import metrics as _metrics

__all__ = [
    "SearchArray",
    "ExplicitArray",
    "ImplicitArray",
    "CachedArray",
    "StaircaseArray",
    "MongeComposite",
    "as_search_array",
]


class SearchArray:
    """Abstract 2-D array with vectorized entry evaluation.

    Subclasses implement :meth:`_eval`.  ``eval`` validates indices,
    broadcasts, and counts evaluations.
    """

    def __init__(self, shape: Tuple[int, int]) -> None:
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ValueError(f"shape must be nonnegative, got {shape}")
        self.shape: Tuple[int, int] = (m, n)
        self.eval_count: int = 0

    # -- required -------------------------------------------------------
    def _eval(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- public ---------------------------------------------------------
    def eval(self, rows, cols, checked: bool = True) -> np.ndarray:
        """Entries at broadcasting index arrays ``rows``, ``cols``.

        ``checked=False`` skips bounds validation — the hot-path option
        for callers (the core searching recursions, internal index
        transforms) whose indices are in range by construction.  This
        runs on every entry evaluation of every algorithm, so the
        checked path uses one fused out-of-bounds test instead of four
        full min/max reductions; the extrema are only computed when the
        check fails and the error message needs them.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        rows, cols = np.broadcast_arrays(rows, cols)
        if checked and rows.size:
            m, n = self.shape
            if ((rows < 0) | (rows >= m) | (cols < 0) | (cols >= n)).any():
                raise IndexError(
                    f"index out of bounds for shape {self.shape}: "
                    f"rows [{rows.min()}, {rows.max()}], cols [{cols.min()}, {cols.max()}]"
                )
        self.eval_count += rows.size
        out = self._eval(rows, cols)
        return np.asarray(out, dtype=np.float64)

    def __getitem__(self, ij) -> float:
        i, j = ij
        return float(self.eval(np.array([i]), np.array([j]))[0])

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` as a dense vector."""
        n = self.shape[1]
        return self.eval(np.full(n, i), np.arange(n))

    def materialize(self) -> np.ndarray:
        """Dense copy — for tests and brute-force baselines only."""
        m, n = self.shape
        return self.eval(np.arange(m)[:, None], np.arange(n)[None, :])

    def transpose(self) -> "SearchArray":
        return _Transposed(self)

    def negate(self) -> "SearchArray":
        return _Negated(self)

    def flip_cols(self) -> "SearchArray":
        return _ColFlipped(self)

    def submatrix(self, rows: np.ndarray, cols: np.ndarray) -> "SearchArray":
        """The (virtual) subarray indexed by ``rows`` × ``cols``."""
        return _Submatrix(self, np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))


class ExplicitArray(SearchArray):
    """A materialized matrix."""

    def __init__(self, data) -> None:
        self.data = as_float_matrix(data, "ExplicitArray data")
        super().__init__(self.data.shape)

    def _eval(self, rows, cols):
        return self.data[rows, cols]


class ImplicitArray(SearchArray):
    """Entries computed by a vectorized callable ``f(rows, cols)``."""

    def __init__(self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray], shape) -> None:
        super().__init__(shape)
        self.fn = fn

    def _eval(self, rows, cols):
        return self.fn(rows, cols)


class CachedArray(SearchArray):
    """Opt-in memoizing decorator over another :class:`SearchArray`.

    The searching recursions re-evaluate the same ``(i, j)`` entries
    across recursion levels (sampled-row phases revisit columns that
    later feasible-region refinements probe again — the reuse the
    submatrix-maximum-query line of work exploits).  ``CachedArray``
    dedups those evaluations: entries are keyed by flat index
    ``i·n + j`` in a sorted key array with an aligned value store;
    lookups and inserts are vectorized (``searchsorted`` + merge), so a
    whole batch resolves in a handful of NumPy passes.

    Accounting semantics — important for the paper's bounds:

    - ``self.eval_count`` counts entries *requested* through this
      wrapper (like any :class:`SearchArray`);
    - ``base.eval_count`` (also exposed as :attr:`raw_eval_count`)
      counts entries *actually computed* — the quantity the sequential
      ``O(m+n)``-evaluation assertions bound.  Repeats within a batch
      are deduped before reaching the base, so raw counts only grow for
      genuinely new entries.
    - Ledger charges are issued by the *callers* per requested batch
      and are therefore identical with or without the cache; the cache
      changes wall-clock only, never rounds/processors/work.

    Sharding semantics (``ExecutionConfig.shards > 1``, DESIGN.md §11):
    memoization is **per-worker**.  Each shard worker builds its own
    cache over its own shared-memory mapping; there are no cross-process
    cache writes, no shared hit/miss counters, and a parent-side
    ``CachedArray`` is never consulted or updated by workers.  This is
    sound precisely because of the accounting rule above — charges never
    depend on cache state — so snapshots stay bit-identical.  The engine
    enforces the contract's edge: combining ``cache=True`` with
    ``shards > 1`` on a solver that *cannot* shard raises
    :class:`~repro.engine.registry.CapabilityError` rather than running
    serially while appearing to honor per-worker caching.
    """

    def __init__(self, base) -> None:
        base = as_search_array(base)
        super().__init__(base.shape)
        self.base = base
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.float64)
        self.hits: int = 0
        self.misses: int = 0

    @property
    def raw_eval_count(self) -> int:
        """Entries actually computed by the wrapped array."""
        return self.base.eval_count

    def clear(self) -> None:
        """Drop all memoized entries (counters are kept)."""
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.float64)

    def _eval(self, rows, cols):
        n = self.shape[1]
        flat = rows.ravel() * np.int64(n) + cols.ravel()
        out = np.empty(flat.size, dtype=np.float64)
        if self._keys.size:
            pos = np.searchsorted(self._keys, flat)
            pos_c = np.minimum(pos, self._keys.size - 1)
            hit = self._keys[pos_c] == flat
            out[hit] = self._vals[pos_c[hit]]
        else:
            hit = np.zeros(flat.size, dtype=bool)
        miss = ~hit
        n_miss_entries = int(miss.sum())
        self.hits += flat.size - n_miss_entries
        self.misses += n_miss_entries
        m = _metrics()
        m.counter("cache.hits").inc(flat.size - n_miss_entries)
        m.counter("cache.misses").inc(n_miss_entries)
        if n_miss_entries:
            # dedup within the batch too: each new entry is computed once
            new_keys, inv = np.unique(flat[miss], return_inverse=True)
            new_vals = self.base.eval(new_keys // n, new_keys % n, checked=False)
            out[miss] = new_vals[inv]
            merged_keys = np.concatenate([self._keys, new_keys])
            merged_vals = np.concatenate([self._vals, new_vals])
            order = np.argsort(merged_keys, kind="mergesort")
            self._keys = merged_keys[order]
            self._vals = merged_vals[order]
        return out.reshape(rows.shape)


class StaircaseArray(SearchArray):
    """A base array with the staircase-``∞`` region applied.

    ``boundary[i]`` is the first infinite column of row ``i`` (``n`` if
    the whole row is finite).  The staircase definition (§1) requires
    the infinite region to be closed to the right and downward, i.e.
    ``boundary`` nonincreasing; violated inputs are rejected.
    """

    def __init__(self, base: SearchArray, boundary) -> None:
        if not isinstance(base, SearchArray):
            base = as_search_array(base)
        m, n = base.shape
        b = np.asarray(boundary, dtype=np.int64)
        if b.shape != (m,):
            raise ValueError(f"boundary must have length {m}, got shape {b.shape}")
        if b.size and (b.min() < 0 or b.max() > n):
            raise ValueError(f"boundary entries must lie in [0, {n}]")
        if (np.diff(b) > 0).any():
            raise ValueError(
                "staircase boundary must be nonincreasing "
                "(infinite entries propagate right and down)"
            )
        super().__init__((m, n))
        self.base = base
        self.boundary = b

    def _eval(self, rows, cols):
        finite = cols < self.boundary[rows]
        out = np.full(rows.shape, np.inf)
        if finite.any():
            out[finite] = self.base.eval(rows[finite], cols[finite], checked=False)
        return out


class MongeComposite:
    """The 3-D array ``c[i,j,k] = d[i,j] + e[j,k]`` given by two arrays.

    ``D`` is ``p×q`` and ``E`` is ``q×r``; the composite is ``p×q×r``.
    Only the pair is stored (the paper's model: ``D`` and ``E`` live in
    global memory; a processor combines one entry of each).
    """

    def __init__(self, D, E) -> None:
        self.D = as_search_array(D)
        self.E = as_search_array(E)
        if self.D.shape[1] != self.E.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: D is {self.D.shape}, E is {self.E.shape}"
            )
        p, q = self.D.shape
        r = self.E.shape[1]
        self.shape = (p, q, r)

    def eval(self, i, j, k) -> np.ndarray:
        """``c[i,j,k]`` at broadcasting index arrays."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        i, j, k = np.broadcast_arrays(i, j, k)
        return self.D.eval(i, j) + self.E.eval(j, k)

    def slab(self, i: int, k) -> SearchArray:
        """The (min/max over j) search row for output cell row ``i``:
        the ``r×q`` array ``M[k,j] = d[i,j] + e[j,k]`` (Monge when D and
        E are — the d-term is constant per column pair)."""
        D, E = self.D, self.E
        q = D.shape[1]
        r = E.shape[1]

        def fn(kk, jj):
            return D.eval(np.full(kk.shape, i), jj) + E.eval(jj, kk)

        return ImplicitArray(fn, (r, q))


class _Transposed(SearchArray):
    def __init__(self, base: SearchArray) -> None:
        super().__init__((base.shape[1], base.shape[0]))
        self.base = base

    def _eval(self, rows, cols):
        return self.base.eval(cols, rows, checked=False)


class _Negated(SearchArray):
    def __init__(self, base: SearchArray) -> None:
        super().__init__(base.shape)
        self.base = base

    def _eval(self, rows, cols):
        return -self.base.eval(rows, cols, checked=False)


class _ColFlipped(SearchArray):
    def __init__(self, base: SearchArray) -> None:
        super().__init__(base.shape)
        self.base = base

    def _eval(self, rows, cols):
        return self.base.eval(rows, self.shape[1] - 1 - cols, checked=False)


class _Submatrix(SearchArray):
    def __init__(self, base: SearchArray, rows: np.ndarray, cols: np.ndarray) -> None:
        m, n = base.shape
        if rows.size and (rows.min() < 0 or rows.max() >= m):
            raise IndexError("submatrix row indices out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= n):
            raise IndexError("submatrix column indices out of range")
        super().__init__((rows.size, cols.size))
        self.base = base
        self.rows = rows
        self.cols = cols

    def _eval(self, rows, cols):
        return self.base.eval(self.rows[rows], self.cols[cols], checked=False)


def as_search_array(x) -> SearchArray:
    """Coerce matrices / SearchArrays to a :class:`SearchArray`."""
    if isinstance(x, SearchArray):
        return x
    return ExplicitArray(x)
