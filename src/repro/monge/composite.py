"""Sequential searching in Monge-composite arrays ("tube" problems).

A ``p×q×r`` Monge-composite array ``c[i,j,k] = d[i,j] + e[j,k]`` is
given by its factor pair ``(D, E)``.  Following the applications in
[AP89a, AALM88] (string editing, grid-DAG shortest paths, parallel
tree construction), the tube runs over the *middle* coordinate: for
every output cell ``(i, k)``,

    ``f[i,k] = min_j (d[i,j] + e[j,k])``     (tube minima)
    ``f[i,k] = max_j (d[i,j] + e[j,k])``     (tube maxima)

i.e. the (min,+) / (max,+) matrix product of ``D`` and ``E``.  (The
extended abstract's wording fixes the first two coordinates, which
would make the problem trivially separable — see DESIGN.md §1 for why
we read it as the product form.)  Ties break to the smallest ``j``
("minimum third coordinate" in the paper's indexing).

Sequentially, fixing ``i`` makes ``M_i[k,j] = d[i,j] + e[j,k]`` a Monge
array in ``(k,j)`` (the ``d`` term cancels from cross-differences, and
``E``'s Monge condition gives the rest), so SMAWK computes each output
row in ``O(q + r)`` — ``O((q+r)·p)`` total, the paper's ``O((p+r)q)``
class of bound.

A useful closure property (tested): the (min,+) product of two Monge
arrays is itself Monge — this is what lets grid-DAG DIST matrices be
combined hierarchically in the string-editing application.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util.validation import as_float_tensor
from repro.monge.arrays import ImplicitArray, MongeComposite
from repro.monge.smawk import smawk

__all__ = [
    "product_argmin",
    "product_argmax",
    "tube_minima_sequential",
    "tube_maxima_sequential",
    "product_argmin_brute",
    "product_argmax_brute",
]


def _as_composite(c) -> MongeComposite:
    if isinstance(c, MongeComposite):
        return c
    if isinstance(c, tuple) and len(c) == 2:
        return MongeComposite(*c)
    raise TypeError("expected a MongeComposite or a (D, E) pair")


def product_argmin(composite) -> Tuple[np.ndarray, np.ndarray]:
    """(min,+) product with witnesses: ``values[i,k], args[i,k]``.

    ``O((q+r) p)`` evaluations via one SMAWK call per output row.
    """
    c = _as_composite(composite)
    p, q, r = c.shape
    values = np.empty((p, r))
    args = np.empty((p, r), dtype=np.int64)
    D, E = c.D, c.E
    for i in range(p):
        d_row = D.eval(np.full(q, i), np.arange(q))

        def fn(kk, jj, d_row=d_row):
            return d_row[jj] + E.eval(jj, kk)

        slab = ImplicitArray(fn, (r, q))  # rows indexed by k, cols by j
        v, j = smawk(slab)
        values[i] = v
        args[i] = j
    return values, args


def product_argmax(composite) -> Tuple[np.ndarray, np.ndarray]:
    """(max,+) product with witnesses, smallest-``j`` ties.

    Negating both factors turns the problem into a (min,+) product of
    Monge factors whenever the originals are inverse-Monge; for Monge
    factors the slab ``M_i`` is Monge, so its row *maxima* are found by
    flipping the slab's rows (Monge row-flipped is inverse-Monge, and
    leftmost maxima positions become nondecreasing).  Both cases reduce
    to SMAWK on a transformed slab; we implement the direct negated-slab
    route, which is correct for any composite whose slabs are totally
    monotone after negation and row reversal — in particular for Monge
    ``D, E`` (tested against brute force).
    """
    c = _as_composite(composite)
    p, q, r = c.shape
    values = np.empty((p, r))
    args = np.empty((p, r), dtype=np.int64)
    D, E = c.D, c.E
    for i in range(p):
        d_row = D.eval(np.full(q, i), np.arange(q))

        # slab[k, j] = d[i,j] + e[j,k] is Monge in (k, j); reversing the
        # row order k -> r-1-k makes it inverse-Monge, whose negation is
        # Monge again: SMAWK then yields leftmost maxima per original row.
        def fn(kk, jj, d_row=d_row):
            return -(d_row[jj] + E.eval(jj, (r - 1) - kk))

        slab = ImplicitArray(fn, (r, q))
        v, j = smawk(slab)
        values[i] = -v[::-1]
        args[i] = j[::-1]
    return values, args


def tube_minima_sequential(composite) -> Tuple[np.ndarray, np.ndarray]:
    """Paper-named alias of :func:`product_argmin`."""
    return product_argmin(composite)


def tube_maxima_sequential(composite) -> Tuple[np.ndarray, np.ndarray]:
    """Paper-named alias of :func:`product_argmax`."""
    return product_argmax(composite)


def product_argmin_brute(composite) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``O(pqr)`` reference implementation (tests only)."""
    c = _as_composite(composite)
    p, q, r = c.shape
    d = c.D.materialize()
    e = c.E.materialize()
    cube = as_float_tensor(d[:, :, None] + e[None, :, :], "composite cube")  # (p, q, r)
    args = cube.argmin(axis=1).astype(np.int64)
    values = np.take_along_axis(cube, args[:, None, :], axis=1)[:, 0, :]
    return values, args


def product_argmax_brute(composite) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``O(pqr)`` (max,+) reference, smallest-``j`` ties (tests only)."""
    c = _as_composite(composite)
    d = c.D.materialize()
    e = c.E.materialize()
    cube = as_float_tensor(d[:, :, None] + e[None, :, :], "composite cube")  # (p, q, r)
    args = cube.argmax(axis=1).astype(np.int64)
    values = np.take_along_axis(cube, args[:, None, :], axis=1)[:, 0, :]
    return values, args
