"""Recognition and canonical decomposition of Monge arrays.

Every Monge array has a unique representation

    ``a[i,j] = u[i] + v[j] + S[i,j]``

where ``S`` is the 2-D prefix sum of a *nonpositive* interior density
``g`` (the cross-differences), ``u`` are row potentials, and ``v``
column potentials — the inverse of the generator construction in
:mod:`repro.monge.generators`.  The decomposition is useful for

- certifying how "strictly" Monge an input is (the density margin);
- perturbation analysis: how much can entries move before the Monge
  property breaks (:func:`monge_margin`);
- normalizing instances (subtracting potentials does not change any
  argmin/argmax, so searches can be studied on the pure density part).

All functions are exact (up to float arithmetic) and tested round-trip
against the generator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util.validation import as_float_matrix

__all__ = ["monge_decomposition", "reconstruct", "monge_margin", "normalize_potentials"]


def monge_decomposition(a) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``a`` into ``(u, v, density)`` with
    ``a[i,j] = u[i] + v[j] + cumsum2d(density)[i,j]``.

    Convention: ``density[0,0] = 0``, ``density[0,1:]`` and
    ``density[1:,0]`` hold the first row/column increments, and the
    interior ``density[1:,1:]`` holds the cross-differences — all
    nonpositive iff ``a`` is Monge.  ``u[0] = 0`` after normalization,
    ``v[j] = a[0,j] - a[0,0]``... concretely: ``u[i] = a[i,0] - a[0,0]``
    , ``v[j] = a[0,j]``, density interior = the local cross terms.
    """
    d = as_float_matrix(a, "array")
    m, n = d.shape
    if m == 0 or n == 0:
        raise ValueError("cannot decompose an empty array")
    u = d[:, 0] - d[0, 0]
    v = d[0, :].copy()
    density = np.zeros((m, n))
    if m > 1 and n > 1:
        density[1:, 1:] = d[1:, 1:] - d[:-1, 1:] - d[1:, :-1] + d[:-1, :-1]
    return u, v, density


def reconstruct(u: np.ndarray, v: np.ndarray, density: np.ndarray) -> np.ndarray:
    """Inverse of :func:`monge_decomposition`."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    density = np.asarray(density, dtype=np.float64)
    if density.shape != (u.size, v.size):
        raise ValueError("density shape must be (len(u), len(v))")
    s = density.cumsum(axis=0).cumsum(axis=1)
    return u[:, None] + v[None, :] + s


def monge_margin(a) -> float:
    """The strictness margin: ``-max`` interior density.

    Positive = strictly Monge with that much slack per adjacent
    quadruple; zero = ties; negative = not Monge (by that much).
    Perturbing every entry by less than ``margin/4`` cannot destroy the
    property.
    """
    _, _, density = monge_decomposition(a)
    if density.shape[0] < 2 or density.shape[1] < 2:
        return np.inf
    return float(-density[1:, 1:].max())


def normalize_potentials(a) -> np.ndarray:
    """``a`` minus its row/column potentials: first row and column zero.

    Subtracting potentials preserves all cross-differences — hence the
    Monge property and its margin — leaving only the pure density part.
    (Row potentials preserve argmins; column potentials do not, so this
    is a *structural* normalization, not a search-preserving one.)
    """
    d = as_float_matrix(a, "array")
    return d - d[:, :1] - d[:1, :] + d[0, 0]
