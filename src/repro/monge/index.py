"""The precompute-once Monge submatrix-maximum index (DESIGN.md §14).

A :class:`MongeIndex` answers ``(row_range, col_range) → (max, argmax)``
rectangle queries over a fixed Monge array after one build pass.  The
structure is a segment tree over row blocks storing, per node, the
*dense upper envelope* of its block: for every column ``c``, the block
maximum ``env_val[node, c]`` and the topmost row attaining it
``env_row[node, c]``.  A query rectangle decomposes into ``O(lg m)``
canonical nodes; each contributes its leftmost envelope maximum over
the column range, and the winners combine under the global tie-break
(max value, then leftmost column, then topmost row — the column-major
first maximizer, matching the brute-force oracle).

Why this shape: for a Monge array the argmax row of a column is
monotone across the envelope merge (the upper block's envelope wins a
prefix of columns, the lower block's a suffix, with a single
crossover), so the true Gawrychowski–Mozes–Weimann structure stores
only breakpoints.  We store the dense envelopes instead — ``2·P·n``
entries, ``P`` the row count rounded up to a power of two — trading a
factor-two memory overhead for exact, replayable charge accounting:
every merge level charges the ledger with the exact sequence the
:func:`~repro.kernels.api.eval_grouped_min` chokepoint would issue for
its (parent, column) candidate groups, so builds are accounted exactly
like any other grouped-extremum sweep (the merge itself runs as one
vectorized elementwise pass — the charge-replay form of the
fused-kernel invariant, the same contract the batched sweeps use).

Build cost: ``m·n`` array evaluations for the leaves plus ``≈ 2·m·n``
grouped-min candidates across the internal levels.  Query cost:
``O(lg m · width)`` scanned envelope entries, charged as one evaluation
round plus one combine round.  Sequential builds (``machine=None``)
merge with plain numpy and charge nothing — the array's ``eval_count``
remains the observable cost.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.monge.arrays import CachedArray, as_search_array

__all__ = ["MongeIndex", "check_rectangle"]


def check_rectangle(shape: Tuple[int, int], rows, cols) -> Tuple[int, int, int, int]:
    """Validate a half-open query rectangle against ``shape``.

    Returns ``(r0, r1, c0, c1)`` as ints; raises :class:`TypeError` on
    malformed ranges and :class:`ValueError` on empty or out-of-range
    ones (empty rectangles have no maximum to report).
    """
    m, n = shape
    try:
        r0, r1 = rows
        c0, c1 = cols
        r0, r1, c0, c1 = int(r0), int(r1), int(c0), int(c1)
    except (TypeError, ValueError):
        raise TypeError(
            "query rectangle must be two half-open ranges: rows=(r0, r1), "
            f"cols=(c0, c1); got rows={rows!r}, cols={cols!r}"
        )
    if not 0 <= r0 < r1 <= m:
        raise ValueError(
            f"row range [{r0}, {r1}) is empty or outside [0, {m}) "
            f"(ranges are half-open)"
        )
    if not 0 <= c0 < c1 <= n:
        raise ValueError(
            f"column range [{c0}, {c1}) is empty or outside [0, {n}) "
            f"(ranges are half-open)"
        )
    return r0, r1, c0, c1


class MongeIndex:
    """Envelope segment tree over the rows of one search array.

    Build with :meth:`build`; answer rectangles with :meth:`query` (pure,
    uncharged) or :meth:`query_on` (charges the machine's ledger).  The
    engine front door is :meth:`repro.engine.session.Session.prepare`,
    which wraps queries in ledger sub-accounts, spans, and metrics.
    """

    def __init__(self, array, env_val: np.ndarray, env_row: np.ndarray,
                 leaf_base: int, build_evals: int) -> None:
        self.array = array
        self.shape: Tuple[int, int] = tuple(array.shape)
        self._env_val = env_val
        self._env_row = env_row
        self._P = leaf_base
        #: Candidates charged during the build (leaf evaluations plus
        #: grouped-min merge candidates).
        self.build_evals = int(build_evals)
        #: Rectangles answered so far (all entry points).
        self.queries_answered = 0

    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        return self._env_val.nbytes + self._env_row.nbytes

    @classmethod
    def build(cls, machine, array, *, cache: bool = False) -> "MongeIndex":
        """Build the index for ``array`` (optionally memoized through
        :class:`~repro.monge.arrays.CachedArray`).

        With a machine, leaf evaluation and every merge level charge the
        ledger through :func:`~repro.kernels.api.eval_grouped_min`;
        without one the merges are plain numpy.
        """
        a = as_search_array(array)
        if cache and not isinstance(a, CachedArray):
            a = CachedArray(a)
        m, n = a.shape
        if m < 1 or n < 1:
            raise ValueError(
                f"cannot index an empty array (shape {a.shape}); need at "
                "least one row and one column"
            )
        P = 1
        while P < m:
            P <<= 1
        env_val = np.full((2 * P, n), -np.inf)
        env_row = np.full((2 * P, n), -1, dtype=np.int64)
        env_row[P : P + m] = np.arange(m, dtype=np.int64)[:, None]

        # leaves: one batched evaluation pass, chunked to bound the
        # transient index arrays (~1M candidates per chunk)
        chunk = max(1, (1 << 20) // n)
        cols = np.arange(n, dtype=np.int64)
        for r in range(0, m, chunk):
            rend = min(r + chunk, m)
            rr = np.repeat(np.arange(r, rend, dtype=np.int64), n)
            cc = np.tile(cols, rend - r)
            env_val[P + r : P + rend] = a.eval(rr, cc, checked=False).reshape(
                rend - r, n
            )
        build_evals = m * n
        if machine is not None:
            machine.charge_eval(m * n)

        # internal levels, bottom-up; only parents containing at least
        # one real row are merged (fully padded nodes stay -inf / -1)
        clo, chi = P, P + m
        while clo > 1:
            plo, phi = clo >> 1, (chi + 1) >> 1
            K = phi - plo
            if machine is not None:
                build_evals += cls._merge_level_charged(
                    machine, env_val, env_row, plo, K, n
                )
            else:
                cls._merge_level_numpy(env_val, env_row, plo, K)
            clo, chi = plo, phi

        return cls(a, env_val, env_row, P, build_evals)

    @staticmethod
    def _merge_level_charged(machine, env_val, env_row, plo: int, K: int,
                             n: int) -> int:
        """Merge one level, charging the grouped-min chokepoint sequence.

        Each (parent, column) pair is a width-2 group of its children's
        envelope values; the ledger receives exactly what routing those
        groups through :func:`~repro.kernels.api.eval_grouped_min` would
        issue — ``charge_eval(2·K·n)`` plus one grouped-min charge
        replay — while the merge itself runs as a single vectorized
        elementwise pass (the charge-replay form of the fused-kernel
        invariant; pushing pairwise groups through the general grouped
        machinery costs several times the merge it accounts for).  The
        elementwise strict ``>`` keeps the upper block on ties, which is
        the same winner the chokepoint's leftmost-tie convention picks
        (child 0 = the topmost-row block).
        """
        from repro.pram.primitives import replay_grouped_min_charges

        total = 2 * K * n
        machine.charge_eval(total)
        replay_grouped_min_charges(
            machine,
            np.full(K * n, 2, dtype=np.int64),
            crcw=machine.model.is_crcw,
            budget=getattr(machine, "physical_processors", machine.processors),
        )
        MongeIndex._merge_level_numpy(env_val, env_row, plo, K)
        return total

    @staticmethod
    def _merge_level_numpy(env_val, env_row, plo: int, K: int) -> None:
        top = env_val[2 * plo : 2 * plo + 2 * K : 2]
        bot = env_val[2 * plo + 1 : 2 * plo + 2 * K : 2]
        take_bot = bot > top  # strict: ties keep the upper (topmost) block
        env_val[plo : plo + K] = np.where(take_bot, bot, top)
        env_row[plo : plo + K] = np.where(
            take_bot,
            env_row[2 * plo + 1 : 2 * plo + 2 * K : 2],
            env_row[2 * plo : 2 * plo + 2 * K : 2],
        )

    # ------------------------------------------------------------------ #
    def _decompose(self, r0: int, r1: int) -> List[int]:
        """Canonical segment-tree nodes covering rows ``[r0, r1)``."""
        nodes: List[int] = []
        lo, hi = r0 + self._P, r1 + self._P
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo >>= 1
            hi >>= 1
        return nodes

    def query(self, rows, cols) -> Tuple[np.floating, np.ndarray]:
        """Pure rectangle maximum: ``(value, [row, col])``, uncharged."""
        values, witnesses, _ = self._answer(rows, cols)
        return values, witnesses

    def query_on(self, machine, rows, cols
                 ) -> Tuple[np.floating, np.ndarray, dict]:
        """Rectangle maximum charged against ``machine`` (one evaluation
        round over the scanned envelope entries plus one combine round
        across the decomposition nodes).  Returns ``(value, [row, col],
        info)`` where ``info`` reports the work done."""
        values, witnesses, info = self._answer(rows, cols)
        if machine is not None:
            machine.charge_eval(info["scanned"])
            machine.charge(rounds=1, processors=max(1, info["nodes"]))
        return values, witnesses, info

    def _answer(self, rows, cols) -> Tuple[np.floating, np.ndarray, dict]:
        r0, r1, c0, c1 = check_rectangle(self.shape, rows, cols)
        nodes = self._decompose(r0, r1)
        best_v = -np.inf
        best_col = best_row = None
        for k in nodes:
            seg = self._env_val[k, c0:c1]
            j = int(np.argmax(seg))  # first occurrence: leftmost column
            v = float(seg[j])
            if v < best_v:
                continue
            col = c0 + j
            row = int(self._env_row[k, col])
            if (
                best_col is None
                or v > best_v
                or (col, row) < (best_col, best_row)
            ):
                best_v, best_col, best_row = v, col, row
        self.queries_answered += 1
        info = {"nodes": len(nodes), "scanned": len(nodes) * (c1 - c0)}
        return (
            np.float64(best_v),
            np.array([best_row, best_col], dtype=np.int64),
            info,
        )
