"""Monge-array abstractions and sequential searching algorithms.

This package is the sequential foundation the parallel algorithms build
on and are tested against:

- :mod:`repro.monge.arrays` — explicit / implicit (callable) array
  wrappers, staircase wrappers carrying the `∞`-boundary vector, and
  Monge-composite pairs;
- :mod:`repro.monge.properties` — exact property verifiers (Monge,
  inverse-Monge, staircase-Monge, total monotonicity);
- :mod:`repro.monge.generators` — reproducible random instances of all
  array classes plus the paper's geometric instances;
- :mod:`repro.monge.smawk` — the `O(m+n)` SMAWK searcher of [AKM+87];
- :mod:`repro.monge.staircase_seq` — sequential staircase-Monge row
  minima baselines;
- :mod:`repro.monge.composite` — (min,+)/(max,+) products of Monge
  arrays ("tube" searching, sequential form);
- :mod:`repro.monge.index` — the precompute-once envelope segment tree
  answering submatrix (rectangle) maximum queries.
"""

from repro.monge.arrays import (
    CachedArray,
    ExplicitArray,
    ImplicitArray,
    MongeComposite,
    SearchArray,
    StaircaseArray,
    as_search_array,
)
from repro.monge.properties import (
    is_inverse_monge,
    is_monge,
    is_staircase_inverse_monge,
    is_staircase_monge,
    is_totally_monotone_minima,
    staircase_boundary,
)
from repro.monge.smawk import row_maxima, row_minima, smawk
from repro.monge.recognition import (
    monge_decomposition,
    monge_margin,
    normalize_potentials,
    reconstruct,
)
from repro.monge.composite import (
    product_argmax,
    product_argmin,
    tube_maxima_sequential,
    tube_minima_sequential,
)
from repro.monge.index import MongeIndex

__all__ = [
    "CachedArray",
    "ExplicitArray",
    "ImplicitArray",
    "StaircaseArray",
    "MongeComposite",
    "SearchArray",
    "as_search_array",
    "is_monge",
    "is_inverse_monge",
    "is_staircase_monge",
    "is_staircase_inverse_monge",
    "is_totally_monotone_minima",
    "staircase_boundary",
    "smawk",
    "row_minima",
    "row_maxima",
    "monge_decomposition",
    "monge_margin",
    "normalize_potentials",
    "reconstruct",
    "MongeIndex",
    "product_argmin",
    "product_argmax",
    "tube_minima_sequential",
    "tube_maxima_sequential",
]
