"""Reproducible generators for every array class the paper searches.

The workhorse is the *density construction*: if ``g`` is any matrix
whose interior (``g[1:,1:]``) is nonpositive, then the 2-D prefix sum
``a[i,j] = Σ_{p<=i, q<=j} g[p,q]`` has adjacent cross-difference exactly
``g[i+1,j+1]``, hence is Monge; adding arbitrary row and column
potentials preserves the property.  This spans all Monge arrays (the
map ``g → a`` is a bijection), so sampling ``g`` uniformly samples a
nondegenerate cross-section of the class.

Geometric generators build the paper's own instances: points in convex
position, split into the chains P and Q of Figure 1.1, whose pairwise
distance array is inverse-Monge by the quadrangle inequality.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.monge.arrays import ExplicitArray, ImplicitArray, MongeComposite, StaircaseArray

__all__ = [
    "random_monge",
    "random_inverse_monge",
    "random_staircase_boundary",
    "random_staircase_monge",
    "random_staircase_inverse_monge",
    "random_composite",
    "transportation_cost_array",
    "convex_position_points",
    "chain_distance_array",
]


def _require_rng(rng) -> np.random.Generator:
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            "pass a numpy Generator (np.random.default_rng(seed)) for reproducibility"
        )
    return rng


def random_monge(
    m: int,
    n: int,
    rng: np.random.Generator,
    scale: float = 1.0,
    integer: bool = False,
) -> ExplicitArray:
    """A random ``m×n`` Monge array via the density construction.

    ``integer=True`` quantizes entries (useful for exercising ties).
    """
    rng = _require_rng(rng)
    if m < 1 or n < 1:
        raise ValueError("m and n must be >= 1")
    g = np.zeros((m, n))
    if integer:
        g[1:, 1:] = -rng.integers(0, 3, size=(m - 1, n - 1)).astype(float)
        g[0, :] = rng.integers(-5, 6, size=n).astype(float)
        g[1:, 0] = rng.integers(-5, 6, size=m - 1).astype(float)
    else:
        g[1:, 1:] = -rng.random(size=(m - 1, n - 1)) * scale
        g[0, :] = rng.normal(scale=scale, size=n)
        g[1:, 0] = rng.normal(scale=scale, size=m - 1)
    a = g.cumsum(axis=0).cumsum(axis=1)
    # row/column potentials keep the class fully general
    if integer:
        a += rng.integers(-5, 6, size=(m, 1)).astype(float)
        a += rng.integers(-5, 6, size=(1, n)).astype(float)
    else:
        a += rng.normal(scale=scale, size=(m, 1))
        a += rng.normal(scale=scale, size=(1, n))
    return ExplicitArray(a)


def random_inverse_monge(
    m: int, n: int, rng: np.random.Generator, scale: float = 1.0, integer: bool = False
) -> ExplicitArray:
    """A random inverse-Monge array (negated :func:`random_monge`)."""
    return ExplicitArray(-random_monge(m, n, rng, scale=scale, integer=integer).data)


def random_staircase_boundary(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """A random nonincreasing boundary ``f`` with ``f[0] = n`` kept
    likely-large so instances have substantial finite regions."""
    rng = _require_rng(rng)
    f = np.sort(rng.integers(0, n + 1, size=m))[::-1].copy()
    # Ensure at least one nonempty row so searches are nontrivial.
    if f[0] == 0:
        f[0] = rng.integers(1, n + 1)
    return f.astype(np.int64)


def random_staircase_monge(
    m: int,
    n: int,
    rng: np.random.Generator,
    boundary: np.ndarray | None = None,
    integer: bool = False,
) -> StaircaseArray:
    """A random staircase-Monge array: Monge base + staircase ``∞`` mask."""
    rng = _require_rng(rng)
    base = random_monge(m, n, rng, integer=integer)
    if boundary is None:
        boundary = random_staircase_boundary(m, n, rng)
    return StaircaseArray(base, boundary)


def random_staircase_inverse_monge(
    m: int,
    n: int,
    rng: np.random.Generator,
    boundary: np.ndarray | None = None,
    integer: bool = False,
) -> StaircaseArray:
    """A random staircase-inverse-Monge array."""
    rng = _require_rng(rng)
    base = random_inverse_monge(m, n, rng, integer=integer)
    if boundary is None:
        boundary = random_staircase_boundary(m, n, rng)
    return StaircaseArray(base, boundary)


def random_composite(
    p: int, q: int, r: int, rng: np.random.Generator, integer: bool = False
) -> MongeComposite:
    """A random Monge-composite array ``c[i,j,k] = d[i,j] + e[j,k]``."""
    rng = _require_rng(rng)
    return MongeComposite(
        random_monge(p, q, rng, integer=integer), random_monge(q, r, rng, integer=integer)
    )


def transportation_cost_array(
    sources: np.ndarray,
    sinks: np.ndarray,
    cost: Callable[[np.ndarray], np.ndarray] = np.abs,
) -> ImplicitArray:
    """Hoffman's transportation instance: ``a[i,j] = cost(x_i - y_j)``.

    For sorted locations and convex ``cost`` the array is Monge — the
    structure behind Monge's 1781 observation and [Hof61].
    """
    x = np.sort(np.asarray(sources, dtype=np.float64))
    y = np.sort(np.asarray(sinks, dtype=np.float64))

    def fn(rows, cols):
        return cost(x[rows] - y[cols])

    return ImplicitArray(fn, (x.size, y.size))


def convex_position_points(
    n: int, rng: np.random.Generator, radius: float = 1.0, jitter: bool = True
) -> np.ndarray:
    """``n`` points in convex position, counterclockwise order.

    Sorted random angles on an ellipse; distinct angles guarantee strict
    convexity.
    """
    rng = _require_rng(rng)
    if n < 3:
        raise ValueError("a convex polygon needs at least 3 vertices")
    if jitter:
        angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=n))
        # enforce distinctness
        while np.unique(angles).size < n:  # pragma: no cover - probability 0
            angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=n))
    else:
        angles = np.arange(n) * (2.0 * np.pi / n)
    rx = radius * (1.0 + (0.3 * rng.random() if jitter else 0.0))
    ry = radius
    return np.column_stack([rx * np.cos(angles), ry * np.sin(angles)])


def chain_distance_array(P: np.ndarray, Q: np.ndarray) -> ImplicitArray:
    """Figure 1.1's array: ``a[i,j] = d(p_i, q_j)`` for two convex
    chains obtained by splitting one convex polygon.

    ``P`` in counterclockwise order and ``Q`` in counterclockwise order
    (continuing around the polygon) make the array inverse-Monge by the
    quadrangle inequality.
    """
    P = np.asarray(P, dtype=np.float64)
    Q = np.asarray(Q, dtype=np.float64)
    if P.ndim != 2 or P.shape[1] != 2 or Q.ndim != 2 or Q.shape[1] != 2:
        raise ValueError("P and Q must be (k, 2) coordinate arrays")

    def fn(rows, cols):
        diff = P[rows] - Q[cols]
        return np.hypot(diff[..., 0], diff[..., 1])

    return ImplicitArray(fn, (P.shape[0], Q.shape[0]))
