"""Sequential row minima/maxima for staircase-Monge arrays.

The paper cites [AK88] (``O((m+n) lg lg (m+n))``) and [KK88]
(``O(m + n α(m))``) as the sequential state of the art for staircase
row *minima*.  Reproducing those exact constructions is out of scope
(each is its own paper); this module provides the baselines our
parallel algorithms are validated against and benchmarked relative to:

- :func:`row_minima_staircase_brute` — exact ``O(mn)`` reference;
- :func:`row_minima_staircase_blocks` — decompose by distinct boundary
  values into full Monge blocks, SMAWK each: ``O(Σ_b (m_b + f_b))``
  evaluations, near-linear on random staircases (worst case ``O(mn)``
  when every row has a distinct boundary; documented substitution, see
  DESIGN.md);
- :func:`row_maxima_staircase` — the *easy* direction noted in §1.2:
  maxima over the finite prefixes via divide and conquer using the
  nonincreasing-maxima-position property of Monge arrays,
  ``O((m+n) lg m)`` evaluations.

All functions ignore ``∞`` entries (a row that is entirely ``∞``
reports value ``inf`` and column ``-1``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.monge.arrays import SearchArray, StaircaseArray, as_search_array
from repro.monge.properties import staircase_boundary
from repro.monge.smawk import smawk

__all__ = [
    "row_minima_staircase_brute",
    "row_minima_staircase_blocks",
    "row_maxima_staircase",
    "effective_boundary",
]


def effective_boundary(a) -> Tuple[SearchArray, np.ndarray]:
    """The array and its staircase boundary vector ``f``.

    For :class:`StaircaseArray` the stored boundary is used; otherwise
    the dense array is scanned (and its staircase shape verified).
    """
    arr = as_search_array(a)
    if isinstance(arr, StaircaseArray):
        return arr, arr.boundary
    f = staircase_boundary(arr)
    if f is None:
        raise ValueError("array's infinite entries are not staircase-shaped")
    return arr, f


def row_minima_staircase_brute(a) -> Tuple[np.ndarray, np.ndarray]:
    """Exact leftmost row minima by full scan (reference baseline)."""
    arr = as_search_array(a)
    dense = arr.materialize()
    m, n = dense.shape
    cols = np.argmin(dense, axis=1).astype(np.int64)  # argmin is leftmost-first
    vals = dense[np.arange(m), cols]
    cols = np.where(np.isinf(vals), -1, cols)
    return vals, cols


def row_minima_staircase_blocks(a) -> Tuple[np.ndarray, np.ndarray]:
    """Row minima via the boundary-block decomposition.

    Rows sharing a boundary value ``f_b`` form a *full* ``m_b × f_b``
    Monge block (their finite prefixes are identical), searchable by
    SMAWK.  Exact for any staircase-Monge input.
    """
    arr, f = effective_boundary(a)
    m, n = arr.shape
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    if m == 0:
        return vals, cols
    # group consecutive rows with equal boundary
    starts = [0]
    for i in range(1, m):
        if f[i] != f[i - 1]:
            starts.append(i)
    starts.append(m)
    for b in range(len(starts) - 1):
        r0, r1 = starts[b], starts[b + 1]
        width = int(f[r0])
        if width == 0:
            continue
        block = arr.submatrix(np.arange(r0, r1), np.arange(width))
        bv, bc = smawk(block)
        vals[r0:r1] = bv
        cols[r0:r1] = bc
    return vals, cols


def row_maxima_staircase(a) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost row maxima of a staircase-Monge array over its finite
    prefixes (§1.2's "easy direction").

    For a Monge array, leftmost row-maxima positions are *nonincreasing*
    in the row index, and this holds for maxima over any fixed column
    prefix; divide and conquer over rows therefore narrows the column
    range on both sides: ``O((m+n) lg m)`` evaluations.
    """
    arr, f = effective_boundary(a)
    m, n = arr.shape
    vals = np.full(m, -np.inf)
    cols = np.full(m, -1, dtype=np.int64)

    def solve(r0: int, r1: int, c_lo_of_r1: int, c_hi_of_r0: int) -> None:
        """Rows [r0, r1): maxima positions lie in [c_lo_of_r1, c_hi_of_r0]
        (positions nonincreasing going down)."""
        if r0 >= r1:
            return
        mid = (r0 + r1) // 2
        width = int(f[mid])
        if width == 0:
            # all rows from mid on are entirely infinite
            solve(r0, mid, c_lo_of_r1, c_hi_of_r0)
            return
        lo = max(0, c_lo_of_r1)
        hi = min(width - 1, c_hi_of_r0)
        if lo > hi:
            lo, hi = 0, width - 1  # defensive; cannot happen for valid input
        span = np.arange(lo, hi + 1)
        row_vals = arr.eval(np.full(span.size, mid), span)
        k = int(np.argmax(row_vals))
        vals[mid] = row_vals[k]
        cols[mid] = lo + k
        solve(r0, mid, cols[mid], c_hi_of_r0)
        solve(mid + 1, r1, c_lo_of_r1, cols[mid])

    solve(0, m, 0, n - 1)
    return vals, cols
