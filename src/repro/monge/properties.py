"""Exact verifiers for the array classes of §1.1.

The local (adjacent 2×2) characterizations are used throughout:

- ``A`` is Monge iff (1.1) holds for all *adjacent* quadruples
  ``(i, i+1, j, j+1)`` — general quadruples follow by summing.
- A staircase array's finite region is a Young diagram (finite prefixes
  of nonincreasing length), so if all four corners of a general
  quadruple are finite, every adjacent quadruple inside it is finite
  too, and the same summation argument applies.  Hence the local check
  is exact for staircase-Monge as well.

All verifiers accept anything :func:`repro.monge.arrays.as_search_array`
accepts and run in ``O(mn)`` — they exist for tests, generators, and
input validation, not for inner loops.
"""

from __future__ import annotations

import numpy as np

from repro.monge.arrays import as_search_array

__all__ = [
    "is_monge",
    "is_inverse_monge",
    "is_staircase_monge",
    "is_staircase_inverse_monge",
    "is_totally_monotone_minima",
    "staircase_boundary",
    "monge_defect",
]


def _dense(a) -> np.ndarray:
    arr = as_search_array(a)
    return arr.materialize()


def monge_defect(a) -> float:
    """Max violation of (1.1) over adjacent quadruples (≤ 0 means Monge).

    ``defect = max over i,j of a[i,j] + a[i+1,j+1] - a[i,j+1] - a[i+1,j]``.
    Useful for diagnosing almost-Monge inputs.
    """
    d = _dense(a)
    if d.shape[0] < 2 or d.shape[1] < 2:
        return -np.inf
    cross = d[:-1, :-1] + d[1:, 1:] - d[:-1, 1:] - d[1:, :-1]
    return float(cross.max())


def is_monge(a, tol: float = 1e-9) -> bool:
    """True iff (1.1) holds: ``a[i,j] + a[k,l] <= a[i,l] + a[k,j]``."""
    d = _dense(a)
    if not np.isfinite(d).all():
        return False
    return monge_defect(d) <= tol


def is_inverse_monge(a, tol: float = 1e-9) -> bool:
    """True iff (1.2) holds (the reverse inequality)."""
    d = _dense(a)
    if not np.isfinite(d).all():
        return False
    return monge_defect(-d) <= tol


def staircase_boundary(a) -> np.ndarray | None:
    """Boundary vector ``f`` of a staircase-shaped ``∞`` region.

    ``f[i]`` = first infinite column of row ``i`` (``n`` if none).
    Returns ``None`` if the infinite entries are *not* staircase-shaped
    (condition 2 of the definition): each row's finite part must be a
    prefix and the prefix lengths must be nonincreasing.
    """
    d = _dense(a)
    m, n = d.shape
    inf_mask = np.isinf(d)
    if (d == -np.inf).any():
        return None
    f = np.where(inf_mask.any(axis=1), inf_mask.argmax(axis=1), n).astype(np.int64)
    # finite part must be a prefix: everything at/after f[i] is infinite
    cols = np.arange(n)
    expected = cols[None, :] >= f[:, None]
    if not np.array_equal(inf_mask, expected):
        return None
    if (np.diff(f) > 0).any():
        return None
    return f


def is_staircase_monge(a, tol: float = 1e-9) -> bool:
    """True iff ``a`` is staircase-Monge (conditions 1–3 of §1.1).

    Plain Monge arrays (no ``∞``) qualify, as the definition intends.
    """
    d = _dense(a)
    if np.isnan(d).any() or (d == -np.inf).any():
        return False
    if staircase_boundary(d) is None:
        return False
    return _finite_local_defect(d) <= tol


def is_staircase_inverse_monge(a, tol: float = 1e-9) -> bool:
    """Staircase variant of (1.2); the ``∞`` shape rule is identical."""
    d = _dense(a)
    if np.isnan(d).any() or (d == -np.inf).any():
        return False
    if staircase_boundary(d) is None:
        return False
    return _finite_local_defect(-d) <= tol


def _finite_local_defect(d: np.ndarray) -> float:
    """Max (1.1) violation over adjacent quadruples with all entries finite."""
    if d.shape[0] < 2 or d.shape[1] < 2:
        return -np.inf
    a, b, c, e = d[:-1, :-1], d[1:, 1:], d[:-1, 1:], d[1:, :-1]
    ok = np.isfinite(a) & np.isfinite(b) & np.isfinite(c) & np.isfinite(e)
    if not ok.any():
        return -np.inf
    z = np.zeros_like(a)
    cross = (
        np.where(ok, a, z) + np.where(ok, b, z) - np.where(ok, c, z) - np.where(ok, e, z)
    )
    cross = np.where(ok, cross, -np.inf)
    return float(cross.max())


def is_totally_monotone_minima(a, tol: float = 0.0) -> bool:
    """Total monotonicity (for leftmost row minima): for every 2×2
    submatrix, ``a[i,j] > a[i,l]`` implies ``a[k,j] > a[k,l]``.

    This is the weaker property SMAWK actually needs; every Monge array
    satisfies it.  Checked exhaustively over all (not just adjacent)
    quadruples, because total monotonicity has no local characterization.
    """
    d = _dense(a)
    m, n = d.shape
    for j in range(n - 1):
        for l in range(j + 1, n):
            upper_beats = d[:, j] > d[:, l] + tol  # right column strictly better
            # once the right column wins at some row, it must keep winning
            won = np.maximum.accumulate(upper_beats)
            if (won & ~upper_beats).any():
                return False
    return True
