"""The async query service: adaptive micro-batching over the engine.

:class:`QueryService` is the long-running front door (DESIGN.md §15).
Many concurrent clients ``await service.solve(...)``; the service plans
each request immediately (capability errors surface at submit time),
buckets fusable plans by the planner's **fused key** — the same key
:func:`repro.engine.planner.group_plans` uses, so incremental bucketing
cannot drift from batch semantics — and holds each bucket for an
adaptive fusion window (:class:`~repro.serve.window.WindowController`).
A bucket flushes when its window elapses, when it reaches the
``max_batch`` size cap, or at drain; flushed buckets run through the
ordinary staged lifecycle (:func:`repro.engine.lifecycle.run_plans`),
so fused buckets inherit sharding, kernel tiers, resilience, and
tracing unchanged, and every answer is bit-identical to a direct
:meth:`Session.solve`.

Admission control is a bounded queue: past ``max_pending`` in-flight
requests a submit either sheds immediately
(:class:`ServiceOverloadedError`) or, with ``admission_wait > 0``,
backpressures for up to that long before shedding.  Per-request
deadlines drop expired work *before* execution (at flush, and again
when the bucket reaches the executor) with
:class:`RequestExpiredError`.  :meth:`QueryService.drain` stops intake,
flushes everything immediately, and waits for in-flight work.

Every time-dependent decision goes through the injectable
:class:`~repro.serve.clock.Clock`, and execution goes through an
injectable executor (:class:`ThreadExecutor` by default — one worker
thread keeps the event loop responsive while the CPU-bound sweep runs;
:class:`InlineExecutor` for deterministic tests), so the whole
window/deadline/shedding state machine is testable without wall-clock
sleeps.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.config import ExecutionConfig
from repro.engine.lifecycle import run_plans
from repro.engine.planner import QueryPlan, plan_query
from repro.engine.result import SearchResult
from repro.engine.session import Session
from repro.obs.metrics import metrics
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.window import WindowController

__all__ = [
    "ServiceConfig",
    "QueryService",
    "InlineExecutor",
    "ThreadExecutor",
    "ServeError",
    "ServiceOverloadedError",
    "RequestExpiredError",
    "ServiceClosedError",
]


# --------------------------------------------------------------------- #
# errors
# --------------------------------------------------------------------- #
class ServeError(RuntimeError):
    """Base class for service-level request failures."""


class ServiceOverloadedError(ServeError):
    """Admission control shed this request (queue full past the wait)."""


class RequestExpiredError(ServeError):
    """The request's deadline passed before it reached execution."""


class ServiceClosedError(ServeError):
    """The service is draining or closed and accepts no new work."""


# --------------------------------------------------------------------- #
# execution seam
# --------------------------------------------------------------------- #
class InlineExecutor:
    """Run bucket work synchronously on the event-loop thread.

    Deterministic (no thread handoff, no scheduling jitter) — the
    executor the serve test-suite injects.  Unsuitable for production
    traffic: a large sweep would stall the loop."""

    async def call(self, fn: Callable):
        return fn()

    def shutdown(self) -> None:  # symmetry with ThreadExecutor
        pass


class ThreadExecutor:
    """Run bucket work on a single dedicated worker thread (default).

    One worker serializes all engine execution (a :class:`Session` is
    not thread-safe) while the event loop stays free to admit, bucket,
    and shed; the service additionally holds its executor lock across
    each call, so a custom multi-worker executor still sees one bucket
    at a time per service."""

    def __init__(self) -> None:
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )

    async def call(self, fn: Callable):
        return await asyncio.get_running_loop().run_in_executor(self._pool, fn)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`QueryService`.

    ``min_window`` / ``max_window``
        Clamp bounds (seconds) for the adaptive fusion window.  Setting
        ``max_window=0`` disables holding — every request flushes
        immediately (the serial-per-request baseline in
        ``bench_serve.py``).
    ``target_width``
        Requests one window aims to collect (drives the EWMA window).
    ``ewma_alpha``
        Smoothing factor for the interarrival EWMA.
    ``max_batch``
        Size cap: a bucket this wide flushes without waiting out its
        window.
    ``max_pending``
        Admission bound on in-flight requests (admitted, not yet
        settled).
    ``admission_wait``
        Seconds a submit may backpressure-wait for a free slot before
        shedding; ``0`` sheds immediately when the queue is full.
    ``default_deadline``
        Deadline (seconds from submission) applied to requests that
        pass none; ``None`` means no implicit deadline.
    ``verify_keys``
        Re-lower each plan at execution time and require its fused key
        unchanged — the guard that incremental bucketing can never
        drift from what one ``solve_many`` call would have grouped.
    """

    min_window: float = 0.0
    max_window: float = 0.02
    target_width: int = 16
    ewma_alpha: float = 0.2
    max_batch: int = 64
    max_pending: int = 1024
    admission_wait: float = 0.0
    default_deadline: Optional[float] = None
    verify_keys: bool = True

    def __post_init__(self) -> None:
        # WindowController re-validates the window bounds and EWMA knobs
        WindowController(self.min_window, self.max_window,
                         target_width=self.target_width, alpha=self.ewma_alpha)
        if not isinstance(self.max_batch, int) or self.max_batch < 1:
            raise ValueError(f"max_batch must be an int >= 1, got {self.max_batch!r}")
        if not isinstance(self.max_pending, int) or self.max_pending < 1:
            raise ValueError(
                f"max_pending must be an int >= 1, got {self.max_pending!r}"
            )
        if self.admission_wait < 0:
            raise ValueError(
                f"admission_wait must be >= 0 seconds, got {self.admission_wait}"
            )
        if self.default_deadline is not None and not self.default_deadline > 0:
            raise ValueError(
                f"default_deadline must be > 0 seconds or None, "
                f"got {self.default_deadline}"
            )

    def controller(self) -> WindowController:
        return WindowController(self.min_window, self.max_window,
                                target_width=self.target_width,
                                alpha=self.ewma_alpha)


# --------------------------------------------------------------------- #
# request / bucket bookkeeping
# --------------------------------------------------------------------- #
class _Request:
    __slots__ = ("plan", "future", "arrival", "expires")

    def __init__(self, plan: QueryPlan, future: "asyncio.Future",
                 arrival: float, expires: Optional[float]) -> None:
        self.plan = plan
        self.future = future
        self.arrival = arrival
        self.expires = expires

    def expired(self, now: float) -> bool:
        return self.expires is not None and now >= self.expires


class _Bucket:
    __slots__ = ("key", "requests", "opened_at", "flush_at")

    def __init__(self, key, opened_at: float, flush_at: float) -> None:
        self.key = key
        self.requests: List[_Request] = []
        self.opened_at = opened_at
        self.flush_at = flush_at


# --------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------- #
class QueryService:
    """An asyncio front door that micro-batches engine queries.

    Parameters
    ----------
    backend:
        Engine backend for the owned session (ignored when ``session=``
        is passed).
    session:
        Adopt an existing :class:`~repro.engine.session.Session`
        instead of owning a fresh one (its config becomes the
        per-request default).
    policy:
        The :class:`ServiceConfig` (window bounds, admission, deadlines).
    config:
        Default :class:`ExecutionConfig` override for the owned session.
    clock:
        A :class:`~repro.serve.clock.Clock`; defaults to the monotonic
        wall clock.  Tests inject a
        :class:`~repro.serve.clock.VirtualClock`.
    executor:
        The execution seam — any object with ``async call(fn)`` and
        ``shutdown()``.  Defaults to a private :class:`ThreadExecutor`.

    Usage::

        service = QueryService("pram-crcw")
        async with service:
            results = await asyncio.gather(
                *(service.solve("rowmin", a) for a in arrays)
            )
    """

    def __init__(
        self,
        backend: str = "auto",
        *,
        session: Optional[Session] = None,
        policy: Optional[ServiceConfig] = None,
        config: Optional[ExecutionConfig] = None,
        clock: Optional[Clock] = None,
        executor=None,
    ) -> None:
        self.policy = policy if policy is not None else ServiceConfig()
        if session is not None:
            self._session = session
        else:
            self._session = Session(backend, config=config)
        self._clock = clock if clock is not None else MonotonicClock()
        self._owns_executor = executor is None
        self._executor = executor if executor is not None else ThreadExecutor()
        self._controller = self.policy.controller()
        self._buckets: dict = {}
        self._inflight: set = set()
        self._pending = 0
        self._closed = False
        self._batcher: Optional[asyncio.Task] = None
        self._wakeup = asyncio.Event()
        self._slot_free = asyncio.Event()
        self._exec_lock = asyncio.Lock()
        self._seq = itertools.count()

    # -- introspection -------------------------------------------------- #
    @property
    def session(self) -> Session:
        """The engine session answering this service's requests."""
        return self._session

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def pending(self) -> int:
        """Requests admitted and not yet settled."""
        return self._pending

    @property
    def closed(self) -> bool:
        return self._closed

    def current_window(self) -> float:
        """The fusion window a bucket opened now would be held for."""
        return self._controller.window()

    # -- lifecycle ------------------------------------------------------ #
    async def __aenter__(self) -> "QueryService":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    def start(self) -> None:
        """Start the batcher task (idempotent; submits also auto-start)."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        if self._batcher is None or self._batcher.done():
            self._batcher = asyncio.get_running_loop().create_task(
                self._batch_loop()
            )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, flush every open bucket
        immediately, wait for in-flight executions, release the
        executor.  Idempotent; held requests are *served*, not dropped
        (deadlines still apply at execution)."""
        self._closed = True
        self._wakeup.set()
        self._slot_free.set()  # admission waiters observe the close
        if self._batcher is not None:
            await self._batcher
            self._batcher = None
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self._owns_executor:
            self._executor.shutdown()

    async def close(self) -> None:
        """Alias for :meth:`drain`."""
        await self.drain()

    # -- submission ----------------------------------------------------- #
    async def solve(
        self,
        problem: str,
        data,
        config: Optional[ExecutionConfig] = None,
        *,
        deadline: Optional[float] = None,
        **overrides,
    ) -> SearchResult:
        """Submit one query; resolves to its :class:`SearchResult`.

        ``deadline`` is seconds from *now* (defaults to the policy's
        ``default_deadline``); a request still unexecuted when it
        expires fails with :class:`RequestExpiredError`.  Raises
        :class:`ServiceOverloadedError` when admission sheds it and
        :class:`ServiceClosedError` after :meth:`drain`.
        """
        if self._closed:
            raise ServiceClosedError("service is draining; no new work accepted")
        self.start()
        cfg = self._session._derive_config(config, overrides)
        # plan immediately: capability errors belong to the submitter,
        # not to whichever bucket the request would have joined
        plan = self._session._plan(problem, data, cfg, index=next(self._seq))
        await self._admit()

        now = self._clock.now()
        m = metrics()
        m.counter("serve.requests").inc()
        self._controller.observe_arrival(now)
        if deadline is None:
            deadline = self.policy.default_deadline
        if deadline is not None and not deadline > 0:
            self._release_slot()
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        expires = None if deadline is None else now + deadline

        request = _Request(
            plan, asyncio.get_running_loop().create_future(), now, expires
        )
        self._enqueue(request, now)
        return await request.future

    async def solve_many(
        self,
        queries: Sequence,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> List[SearchResult]:
        """Submit ``(problem, data)`` / ``(problem, data, config)`` tuples
        concurrently; resolves to their results in input order.

        Unlike :meth:`Session.solve_many` this is just a convenience
        fan-out: each query is admitted (and shed / expired)
        individually, and fusion happens through the ordinary window."""
        coros = []
        for item in queries:
            if len(item) == 2:
                qproblem, qdata = item
                qcfg = config
            elif len(item) == 3:
                qproblem, qdata, qcfg = item
                if qcfg is None:
                    qcfg = config
            else:
                raise TypeError(
                    "solve_many query items must be (problem, data) or "
                    "(problem, data, config) tuples"
                )
            coros.append(self.solve(qproblem, qdata, qcfg, **overrides))
        return list(await asyncio.gather(*coros))

    async def prepare(self, problem, data=None,
                      config: Optional[ExecutionConfig] = None, **overrides):
        """Build (or fetch) a prepared handle through the service.

        ``prepare`` bypasses the fusion window — index builds are not
        fusable — but runs on the service executor behind the same
        serialization lock as bucket execution."""
        if self._closed:
            raise ServiceClosedError("service is draining; no new work accepted")
        metrics().counter("serve.prepares").inc()
        async with self._exec_lock:
            return await self._executor.call(
                lambda: self._session.prepare(problem, data, config, **overrides)
            )

    async def query(self, handle, rows, cols) -> SearchResult:
        """Answer one rectangle query on a prepared handle (executor-run)."""
        if self._closed:
            raise ServiceClosedError("service is draining; no new work accepted")
        metrics().counter("serve.index_queries").inc()
        async with self._exec_lock:
            return await self._executor.call(lambda: handle.query(rows, cols))

    # -- admission ------------------------------------------------------ #
    def _release_slot(self) -> None:
        self._pending -= 1
        metrics().gauge("serve.queue_depth").set(self._pending)
        self._slot_free.set()

    async def _admit(self) -> None:
        m = metrics()
        if self._pending < self.policy.max_pending:
            self._pending += 1
            m.gauge("serve.queue_depth").set(self._pending)
            return
        wait = self.policy.admission_wait
        give_up = self._clock.now() + wait
        while wait > 0:
            remaining = give_up - self._clock.now()
            if remaining <= 0:
                break
            self._slot_free.clear()
            if self._pending < self.policy.max_pending:
                self._pending += 1
                m.gauge("serve.queue_depth").set(self._pending)
                return
            await self._race_event(self._slot_free, remaining)
            if self._closed:
                raise ServiceClosedError(
                    "service drained while this request waited for admission"
                )
            if self._pending < self.policy.max_pending:
                self._pending += 1
                m.gauge("serve.queue_depth").set(self._pending)
                return
        m.counter("serve.shed").inc()
        raise ServiceOverloadedError(
            f"queue full ({self._pending}/{self.policy.max_pending} pending"
            + (f", waited {wait}s" if wait > 0 else "")
            + "); retry later or raise max_pending/admission_wait"
        )

    async def _race_event(self, event: asyncio.Event, timeout: float) -> None:
        """Wait until ``event`` is set or ``timeout`` clock-seconds pass."""
        waiter = asyncio.ensure_future(event.wait())
        sleeper = asyncio.ensure_future(self._clock.sleep(timeout))
        try:
            await asyncio.wait(
                {waiter, sleeper}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (waiter, sleeper):
                if not task.done():
                    task.cancel()
            await asyncio.gather(waiter, sleeper, return_exceptions=True)

    # -- bucketing ------------------------------------------------------ #
    def _enqueue(self, request: _Request, now: float) -> None:
        plan = request.plan
        if plan.fused_key is not None:
            key = plan.fused_key
            hold = self._controller.window()
        else:
            # unfusable plans gain nothing from holding: flush at once
            key = ("serial", plan.index)
            hold = 0.0
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(key, now, now + hold)
            self._buckets[key] = bucket
            if plan.fused_key is not None:
                metrics().histogram("serve.window_s").observe(hold)
        bucket.requests.append(request)
        self._wakeup.set()

    async def _batch_loop(self) -> None:
        while True:
            self._wakeup.clear()
            now = self._clock.now()
            for bucket in self._ready_buckets(now):
                self._dispatch(bucket)
            if self._closed and not self._buckets:
                return
            if self._closed:
                continue
            delay = None
            if self._buckets:
                soonest = min(b.flush_at for b in self._buckets.values())
                delay = max(0.0, soonest - now)
                if delay == 0.0:
                    continue
            await self._sleep_or_wakeup(delay)

    def _ready_buckets(self, now: float) -> List[_Bucket]:
        ready = [
            b for b in self._buckets.values()
            if self._closed or now >= b.flush_at
            or len(b.requests) >= self.policy.max_batch
        ]
        for bucket in ready:
            del self._buckets[bucket.key]
        return ready

    async def _sleep_or_wakeup(self, delay: Optional[float]) -> None:
        if delay is None:
            await self._wakeup.wait()
            return
        await self._race_event(self._wakeup, delay)

    def _dispatch(self, bucket: _Bucket) -> None:
        # a bucket may outgrow ``max_batch`` between batcher passes
        # (submissions keep landing while earlier work holds the
        # executor); the cap bounds *execution* width, so oversized
        # buckets are split into max_batch-wide chunks here
        cap = self.policy.max_batch
        for i in range(0, len(bucket.requests), cap):
            task = asyncio.get_running_loop().create_task(
                self._run_bucket(bucket.requests[i:i + cap])
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    # -- execution ------------------------------------------------------ #
    def _expire(self, request: _Request, now: float) -> None:
        metrics().counter("serve.expired").inc()
        self._release_slot()
        if not request.future.done():
            request.future.set_exception(RequestExpiredError(
                f"deadline passed {now - request.expires:.6f}s before "
                f"execution (submitted at {request.arrival:.6f}, expired at "
                f"{request.expires:.6f})"
            ))

    def _reap(self, requests: List[_Request], now: float) -> List[_Request]:
        """Drop expired / abandoned requests; return the live ones."""
        live: List[_Request] = []
        for request in requests:
            if request.future.cancelled():
                metrics().counter("serve.cancelled").inc()
                self._release_slot()
            elif request.expired(now):
                self._expire(request, now)
            else:
                live.append(request)
        return live

    def _check_stable_keys(self, requests: List[_Request]) -> None:
        """The bucketing contract: what we grouped incrementally must be
        exactly what the planner would group in one ``solve_many`` call.
        Re-lower every plan and require an identical fused key (and one
        shared key across the bucket)."""
        keys = {r.plan.fused_key for r in requests}
        if len(keys) != 1:
            raise AssertionError(
                f"bucket holds {len(keys)} distinct fused keys: {keys}"
            )
        if not self.policy.verify_keys:
            return
        for r in requests:
            replanned = plan_query(
                r.plan.problem, r.plan.data, r.plan.config,
                self._session.backend, index=r.plan.index,
                session_faults=self._session.faults,
            )
            if replanned.fused_key != r.plan.fused_key:
                raise AssertionError(
                    f"fused key drifted between admission and flush for "
                    f"request {r.plan.index}: {r.plan.fused_key!r} -> "
                    f"{replanned.fused_key!r}; group_plans must be stable "
                    f"under repeated invocation (DESIGN.md §15)"
                )

    async def _run_bucket(self, requests: List[_Request]) -> None:
        m = metrics()
        async with self._exec_lock:
            # deadlines are re-checked *here* — a request may expire while
            # earlier buckets hold the executor
            live = self._reap(requests, self._clock.now())
            if not live:
                return
            try:
                self._check_stable_keys(live)
                plans = [r.plan for r in live]
                m.counter("serve.buckets").inc()
                m.histogram("serve.fusion_width").observe(len(live))
                results, groups = await self._executor.call(
                    lambda: run_plans(self._session, plans)
                )
            except Exception as exc:  # engine errors belong to the callers
                for request in live:
                    self._release_slot()
                    if not request.future.done():
                        request.future.set_exception(exc)
                return
        m.counter("serve.fused_requests").inc(
            sum(g["count"] for g in groups if g.get("fused"))
        )
        end = self._clock.now()
        for request, result in zip(live, results):
            self._session._record(request.plan, result)
            m.histogram("serve.latency_s").observe(end - request.arrival)
            m.counter("serve.completed").inc()
            self._release_slot()
            if not request.future.done():
                request.future.set_result(result)


# --------------------------------------------------------------------- #
# one-shot convenience
# --------------------------------------------------------------------- #
async def serve_solve(
    problem: str,
    data,
    backend: str = "auto",
    *,
    policy: Optional[ServiceConfig] = None,
    **overrides,
) -> SearchResult:
    """Spin a throwaway service for one query (mainly for smoke tests).

    Real deployments keep one :class:`QueryService` alive — the fusion
    window only pays off across many concurrent submitters."""
    service = QueryService(backend, policy=policy)
    async with service:
        return await service.solve(problem, data, **overrides)
