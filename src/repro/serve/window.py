"""The adaptive fusion-window controller (DESIGN.md §15).

The service holds compatible requests for a short *fusion window* so
concurrent traffic gets the measured batched-sweep speedup
(BENCH_batch.json) without any caller handing us a list.  The window is
the classic hardware fan-in arbiter trade: a bounded hold buys
throughput.  How long to hold is adaptive:

- the controller keeps an EWMA of request interarrival time;
- the window aims to collect ``target_width`` requests — i.e. roughly
  ``(target_width - 1) x`` the smoothed interarrival gap;
- the result is clamped to ``[min_window, max_window]`` so a traffic
  burst cannot starve latency and a trickle cannot hold a request
  beyond the configured bound.

Under heavy load the gap shrinks, so the window *narrows* — requests
pile up fast and flushing early keeps tail latency flat.  Under light
load the gap grows and the window *widens* toward ``max_window``,
catching stragglers that would otherwise run serially.  The controller
is pure (fed explicit timestamps), so tests drive it deterministically.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["WindowController"]


class WindowController:
    """EWMA-of-arrival-rate fusion window, clamped to a latency budget.

    Parameters
    ----------
    min_window, max_window:
        Clamp bounds in seconds (``0 <= min <= max``).  Setting both to
        ``0`` disables holding entirely — every request flushes
        immediately (the "window-disabled" serial-per-request service
        benchmarked by ``bench_serve.py``).
    target_width:
        How many requests one window aims to collect (``>= 2``).
    alpha:
        EWMA smoothing factor in ``(0, 1]``; higher adapts faster.
    """

    def __init__(self, min_window: float, max_window: float, *,
                 target_width: int = 16, alpha: float = 0.2) -> None:
        if min_window < 0 or max_window < 0:
            raise ValueError(
                f"window bounds must be >= 0, got [{min_window}, {max_window}]"
            )
        if min_window > max_window:
            raise ValueError(
                f"min_window {min_window} exceeds max_window {max_window}"
            )
        if target_width < 2:
            raise ValueError(f"target_width must be >= 2, got {target_width}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.min_window = float(min_window)
        self.max_window = float(max_window)
        self.target_width = int(target_width)
        self.alpha = float(alpha)
        self._ewma_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None

    # ------------------------------------------------------------------ #
    def observe_arrival(self, now: float) -> None:
        """Fold one arrival timestamp into the interarrival EWMA."""
        if self._last_arrival is not None:
            gap = max(0.0, now - self._last_arrival)
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap = self.alpha * gap + (1 - self.alpha) * self._ewma_gap
        self._last_arrival = now

    def window(self) -> float:
        """The current hold window in seconds.

        Before two arrivals exist there is no rate estimate: the
        controller returns ``max_window`` (hold as long as the latency
        budget allows — the safest guess for a cold service)."""
        if self._ewma_gap is None:
            return self.max_window
        want = (self.target_width - 1) * self._ewma_gap
        return min(self.max_window, max(self.min_window, want))

    @property
    def interarrival(self) -> Optional[float]:
        """The smoothed interarrival gap (``None`` before two arrivals)."""
        return self._ewma_gap

    @property
    def rate(self) -> Optional[float]:
        """Smoothed arrivals per second (``None`` until estimable)."""
        if self._ewma_gap is None or self._ewma_gap <= 0:
            return None
        return 1.0 / self._ewma_gap
