"""Async query serving with adaptive micro-batching (DESIGN.md §15).

The paper's premise is that grouped Monge searches are cheaper together
than apart; :meth:`Session.solve_many` proves it offline
(BENCH_batch.json).  :class:`QueryService` makes real concurrent
traffic get that speedup automatically: an asyncio front door that
holds compatible requests for a short adaptive fusion window — the
hardware fan-in-arbiter trade of a bounded hold for throughput — and
lowers each bucket through the existing planner and staged lifecycle,
so served answers are bit-identical to direct :meth:`Session.solve`
calls and inherit sharding, kernel tiers, resilience, and tracing
unchanged.

Quickstart::

    import asyncio, repro
    from repro.serve import QueryService

    async def client(service, a):
        r = await service.solve("rowmin", a, deadline=0.5)
        return r.values

    async def main(arrays):
        async with QueryService("pram-crcw") as service:
            return await asyncio.gather(*(client(service, a) for a in arrays))

    asyncio.run(main(arrays))

Determinism seams for tests: a :class:`VirtualClock` (time moves only
via ``await clock.advance(dt)``) and an :class:`InlineExecutor`
(buckets run synchronously on the loop thread) make every window,
deadline, and shedding path reproducible without wall-clock sleeps.
"""

from repro.serve.clock import Clock, MonotonicClock, VirtualClock
from repro.serve.service import (
    InlineExecutor,
    QueryService,
    RequestExpiredError,
    ServeError,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
    ThreadExecutor,
    serve_solve,
)
from repro.serve.window import WindowController

__all__ = [
    "QueryService",
    "ServiceConfig",
    "WindowController",
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "InlineExecutor",
    "ThreadExecutor",
    "serve_solve",
    "ServeError",
    "ServiceOverloadedError",
    "RequestExpiredError",
    "ServiceClosedError",
]
