"""The scheduler seam: wall clocks and the deterministic virtual clock.

Every time-dependent decision in :mod:`repro.serve` — fusion-window
expiry, per-request deadlines, admission-wait backpressure — goes
through a :class:`Clock` rather than ``time.monotonic`` /
``asyncio.sleep`` directly.  Production uses :class:`MonotonicClock`;
the test suite uses :class:`VirtualClock`, which only moves when a test
calls :meth:`~VirtualClock.advance`, so every window/deadline/shedding
behavior is exercised deterministically with **no wall-clock sleeps**
(tests/test_serve_service.py pins this; DESIGN.md §15).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock:
    """What the service needs from a time source.

    ``now()`` is a monotonically non-decreasing float of seconds;
    ``sleep(delay)`` is an awaitable that resolves once ``now()`` has
    advanced by at least ``delay``.  Sleeps must tolerate cancellation
    (the batcher races them against its wake-up event).
    """

    def now(self) -> float:
        raise NotImplementedError

    async def sleep(self, delay: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: ``time.monotonic`` + ``asyncio.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(max(0.0, delay))


class VirtualClock(Clock):
    """A manually advanced clock for deterministic asyncio tests.

    Time starts at ``0.0`` and moves only inside
    :meth:`advance`: pending :meth:`sleep` calls whose deadlines fall
    inside the advanced span are woken **in deadline order**, and the
    event loop is drained between wake-ups so tasks observe
    intermediate times exactly as they would under a real clock —
    a sleeper that schedules a *new* shorter sleep inside the span is
    woken within the same ``advance`` call.

    Usage::

        clock = VirtualClock()
        service = QueryService("pram-crcw", clock=clock, ...)
        task = asyncio.create_task(service.solve("rowmin", a))
        await clock.advance(0.05)        # window elapses; bucket flushes
        result = await task
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []  # (deadline, seq, future)
        self._seq = itertools.count()

    def now(self) -> float:
        return self._now

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            await asyncio.sleep(0)
            return
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(self._heap, (self._now + float(delay), next(self._seq), fut))
        await fut

    # ------------------------------------------------------------------ #
    async def _drain(self, rounds: int = 12) -> None:
        """Yield to the loop until ready callbacks have run.

        A bounded number of zero-sleep yields is enough for the service
        (each wake-up triggers a short, non-reentrant cascade: batcher
        cycle → flush → inline execution → future callbacks)."""
        for _ in range(rounds):
            await asyncio.sleep(0)

    def _pop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled():
            heapq.heappop(self._heap)

    async def advance(self, delay: float) -> None:
        """Move time forward by ``delay`` seconds, firing due sleepers.

        Every sleeper whose deadline lands inside the span fires at its
        exact deadline (``now()`` reads that deadline while it runs);
        sleepers scheduled *during* the advance are honored too when
        they fall inside the remaining span."""
        if delay < 0:
            raise ValueError(f"cannot advance a clock backwards (delay={delay})")
        target = self._now + float(delay)
        while True:
            await self._drain()
            self._pop_cancelled()
            if not self._heap or self._heap[0][0] > target:
                break
            when, _, fut = heapq.heappop(self._heap)
            self._now = max(self._now, when)
            if not fut.done():
                fut.set_result(None)
            await self._drain()
        self._now = target
        await self._drain()

    @property
    def pending_sleepers(self) -> int:
        """Live (uncancelled) sleeps waiting on this clock (test aid)."""
        self._pop_cancelled()
        return sum(1 for _, _, fut in self._heap if not fut.cancelled())
