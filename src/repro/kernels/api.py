"""Tier-dispatched evaluation chokepoint for the grouped-extremum sweeps.

Every core sweep used to inline the same three-step motif at its hot
spot::

    values = arr.eval(rows_flat, cols_flat, checked=False)
    pram.charge_eval(values.size)
    gv, gi = grouped_min(pram, values, offsets)

:func:`eval_grouped_min` owns that motif now, taking the evaluation as
a half-open range closure so the ``blocked`` tier can stream it through
byte-budgeted tiles instead of materializing the whole candidate
tensor.  The contract is the fused-kernel invariant, extended to
residency: **whatever the tier, the ledger receives the exact charge
sequence the dense reference execution would have issued** —
``charge_eval(total)`` followed by one ``grouped_min`` charge replay —
and the returned ``(values, argmin)`` pair is bit-identical (leftmost
ties included).

Streaming correctness: tiles are processed in ascending flat order and
folded with a strict ``<`` (ties keep the accumulator, i.e. the earlier
flat index; within-tile ties are already leftmost via
``_grouped_min_fused``).  Minimum over IEEE floats is associative and
commutative absent NaN, so the fold equals the dense result exactly.

One documented degenerate exception: when the resolved strategy is
``doubly_log`` and a ``-inf`` candidate appears, the reference
semantics are block-structure-dependent (see
``_grouped_min_doubly_log``), so the blocked tier falls back to a full
dense evaluation — a double evaluation of a degenerate input that
changes wall-clock and array eval counters only, never ledger charges.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.kernels.registry import current_tier, resolve_tile_bytes

__all__ = ["eval_grouped_min"]

# NOTE: repro.pram.primitives imports repro.kernels.registry at module
# scope, and importing any repro.kernels submodule runs this package's
# __init__ first — so primitives must be imported late, inside the
# function, to keep the package importable from either direction.


def _observe_tile(nbytes: int) -> None:
    from repro.obs.metrics import metrics

    metrics().histogram("kernel.tile_bytes").observe(float(nbytes))


def eval_grouped_min(
    pram,
    evaluate: Callable[[int, int], np.ndarray],
    total: int,
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate ``total`` flat candidates and take leftmost group minima.

    ``evaluate(lo, hi)`` returns candidate values for the half-open flat
    range ``[lo, hi)`` — the caller closes over its row/column index
    arrays.  ``offsets`` delimits the groups exactly as in
    :func:`~repro.pram.primitives.grouped_min`; returned ``argmin``
    indices are global flat positions (``-1`` for empty/all-∞ groups).

    Dense tiers (and network machines, whose grouped minimum runs on
    the simulated interconnect) evaluate the whole range at once —
    byte-identical to the historical inline motif.  The ``blocked``
    tier streams tiles of at most ``resolve_tile_bytes()`` bytes.
    """
    from repro.pram.primitives import (
        _grouped_min_fused,
        grouped_min,
        replay_grouped_min_charges,
        resolve_grouped_strategy,
    )

    total = int(total)
    tier = current_tier()
    tile_elems = max(1, resolve_tile_bytes(None) // 8)  # float64 candidates

    if (
        not tier.out_of_core
        or hasattr(pram, "network_grouped_min")
        or total <= tile_elems
    ):
        values = evaluate(0, total)
        if tier.out_of_core:
            _observe_tile(values.nbytes)
        pram.charge_eval(values.size)
        return grouped_min(pram, values, offsets)

    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a nonempty 1-D array")
    widths = np.diff(offsets)
    if offsets[0] != 0 or offsets[-1] != total or (widths < 0).any():
        raise ValueError("offsets must start at 0, end at len(values), and be nondecreasing")

    crcw = pram.model.is_crcw
    budget = getattr(pram, "physical_processors", pram.processors)
    strategy = resolve_grouped_strategy(crcw, budget, widths)

    n_groups = widths.size
    acc_v = np.full(n_groups, np.inf)
    acc_i = np.full(n_groups, -1, dtype=np.int64)
    saw_neginf = False
    for lo in range(0, total, tile_elems):
        hi = min(lo + tile_elems, total)
        tile = np.asarray(evaluate(lo, hi), dtype=np.float64)
        _observe_tile(tile.nbytes)
        if strategy == "doubly_log" and not saw_neginf and np.isneginf(tile).any():
            saw_neginf = True
        # Groups overlapping [lo, hi): the last group starting at or
        # before lo through the last group starting strictly before hi.
        g0 = int(np.searchsorted(offsets, lo, side="right")) - 1
        g1 = int(np.searchsorted(offsets, hi, side="left"))
        local = np.clip(offsets[g0 : g1 + 1], lo, hi) - lo
        tv, ti = _grouped_min_fused(tile, local, np.diff(local))
        ti = np.where(ti >= 0, ti + lo, -1)
        take = tv < acc_v[g0:g1]  # strict: ties keep the earlier tile
        acc_v[g0:g1] = np.where(take, tv, acc_v[g0:g1])
        acc_i[g0:g1] = np.where(take, ti, acc_i[g0:g1])

    if saw_neginf:
        # Degenerate -inf input under doubly_log: reference results
        # depend on the recursion's block structure, so stream results
        # are not authoritative — re-run dense (see module docstring).
        values = evaluate(0, total)
        pram.charge_eval(values.size)
        return grouped_min(pram, values, offsets)

    pram.charge_eval(total)
    replay_grouped_min_charges(
        pram, widths, crcw=crcw, budget=budget, strategy=strategy
    )
    return acc_v, acc_i
