"""Per-query ledger fan-out for fused batched sweeps.

Home of :class:`ChargeFan`, moved here from :mod:`repro.pram.fastpath`
when tier selection grew into the kernel registry (DESIGN.md §13).  The
class is tier-independent: every fused-class tier (``fused``,
``blocked``, ``numba``) charges batched sweeps through it, and the
``blocked`` tier's streaming chokepoint replays the identical per-owner
sequences because the fan works on owner/width metadata, never on the
candidate values themselves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ChargeFan"]


class ChargeFan:
    """Per-query ledger fan-out for one fused batched sweep.

    The fused-kernel invariant extends across queries: a batched kernel
    may stack ``B`` same-shape queries and compute all results in one
    global pass, provided each query's sub-account receives **the exact
    charge sequence its own serial run would have issued**.  The batched
    ``sqrt``-recursion makes this possible because its row structure
    (sample strides, block sizes, recursion depth) is data-independent
    for same-shape inputs, so the global charge at every site decomposes
    into per-owner unit counts; this class performs that decomposition.

    ``ledgers[q]`` is query ``q``'s :class:`~repro.pram.ledger.CostLedger`
    sub-account.  ``crcw``/``budget`` reproduce the machine context the
    per-owner grouped-minimum strategy resolution needs.
    """

    def __init__(self, ledgers: Sequence, *, crcw: bool, budget: int) -> None:
        self.ledgers = list(ledgers)
        self.crcw = bool(crcw)
        self.budget = int(budget)

    def counts(self, owner: np.ndarray, weights=None) -> np.ndarray:
        """Per-owner unit totals: ``sum(weights)`` (or multiplicity) by owner."""
        owner = np.asarray(owner, dtype=np.int64)
        if weights is None:
            c = np.bincount(owner, minlength=len(self.ledgers))
        else:
            c = np.bincount(
                owner,
                weights=np.asarray(weights, dtype=np.float64),
                minlength=len(self.ledgers),
            )
        return np.rint(c).astype(np.int64)

    def charge(self, counts: np.ndarray, rounds: int = 1) -> None:
        """Charge each owner with a positive count ``rounds`` rounds at
        ``counts[q]`` processors — owners absent from a site charge
        nothing, exactly as their serial run would skip the branch."""
        for q in np.nonzero(counts)[0]:
            self.ledgers[int(q)].charge(rounds=rounds, processors=int(counts[q]))

    def grouped_min(self, widths: np.ndarray, group_owner: np.ndarray) -> None:
        """Replay one serial ``grouped_min(strategy="auto")`` per owner
        over that owner's own groups (``group_owner`` is nondecreasing —
        the batch layout keeps owners contiguous)."""
        from repro.pram.primitives import replay_grouped_min_charges

        widths = np.asarray(widths, dtype=np.int64)
        owner = np.asarray(group_owner, dtype=np.int64)
        if owner.size == 0:
            return
        change = np.nonzero(np.diff(owner))[0] + 1
        bounds = np.concatenate([[0], change, [owner.size]])
        for k in range(bounds.size - 1):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            replay_grouped_min_charges(
                self.ledgers[int(owner[lo])],
                widths[lo:hi],
                crcw=self.crcw,
                budget=self.budget,
            )
