"""The kernel-tier registry — named execution tiers for the hot paths.

Tier selection used to be a process-global boolean (``REPRO_FAST_PATH``
in :mod:`repro.pram.fastpath`) that every layer consulted implicitly;
there was no place to hang a third kernel.  This module replaces the
boolean with a registry of named :class:`KernelTier` entries:

``reference``
    The round-by-round simulation — one Python-level round per charged
    round.  Slowest, and the ground truth the fused-kernel invariant is
    stated against.
``fused``
    The NumPy fast path (the old ``REPRO_FAST_PATH=1``): primitives
    compute with vectorized kernels while charging the ledger the exact
    reference charge sequence.
``blocked``
    Out-of-core variant of ``fused``: the grouped-extremum and
    staircase sweeps stream their candidate tensors through row tiles
    bounded by a byte budget (``tile_bytes`` /
    ``REPRO_TILE_BYTES``, default 64 MiB), so stacked tensors larger
    than RAM never materialize.  Charges, values, witnesses, traces,
    and certificates are bit-identical to ``fused`` and ``reference``.
``numba``
    Optional JIT stub, registered only so a future PR is a registry
    entry rather than another refactor.  Unavailable unless the
    ``numba`` package is importable; selecting it without the package
    raises a :class:`~repro.engine.registry.CapabilityError` naming the
    nearest available tier.

Selection precedence (first match wins):

1. explicit ``ExecutionConfig.kernel_tier`` / ``kernel_tier(...)``
   context / ``set_kernel_tier(...)``;
2. ``REPRO_KERNEL_TIER`` environment variable (validated eagerly with a
   ``ValueError`` naming the variable, like ``REPRO_SHARDS``);
3. the legacy ``REPRO_FAST_PATH`` variable via the deprecation shim in
   :mod:`repro.pram.fastpath` (``0``/``false``/``no`` → ``reference``,
   anything else → ``fused``; warns ``DeprecationWarning`` once);
4. the default, ``fused``.

When both environment variables are set they must agree on whether the
fused kernels are in play — ``REPRO_KERNEL_TIER`` wins when coherent,
and conflicting settings (e.g. ``REPRO_FAST_PATH=0`` with
``REPRO_KERNEL_TIER=fused``) raise a ``ValueError`` rather than
silently picking one.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro._util.env import env_choice, env_int

__all__ = [
    "KernelTier",
    "register_tier",
    "get_tier",
    "all_tiers",
    "available_tiers",
    "current_tier",
    "current_tier_name",
    "fused_kernels_enabled",
    "set_kernel_tier",
    "kernel_tier",
    "resolve_kernel_tier",
    "resolve_tile_bytes",
    "set_tile_bytes",
    "tile_bytes_override",
    "tier_context",
    "DEFAULT_TILE_BYTES",
]

#: Default byte budget for one resident tile in the ``blocked`` tier.
DEFAULT_TILE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class KernelTier:
    """One named execution tier.

    ``fused`` says whether primitives may use the vectorized fast-path
    kernels (with charge replay); ``out_of_core`` says whether the
    grouped-extremum chokepoint streams candidate tensors through
    byte-budgeted tiles instead of materializing them whole.
    ``available`` is ``False`` for tiers whose backing dependency is
    missing (``requires`` names it); selecting an unavailable tier is a
    declared-capability error, not an ImportError at some random depth.
    """

    name: str
    description: str
    fused: bool
    out_of_core: bool = False
    available: bool = True
    requires: str = ""
    #: Preference-ordered fallback suggestions for CapabilityErrors.
    proximity: Tuple[str, ...] = field(default=())


_TIERS: Dict[str, KernelTier] = {}


def register_tier(tier: KernelTier) -> KernelTier:
    """Register (or replace) a tier under ``tier.name``."""
    _TIERS[tier.name] = tier
    return tier


def get_tier(name: str) -> KernelTier:
    """Look up a tier; ``ValueError`` lists the known names."""
    try:
        return _TIERS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel tier {name!r}; expected one of {tuple(_TIERS)}"
        ) from None


def all_tiers() -> Tuple[KernelTier, ...]:
    """Every registered tier, in registration order."""
    return tuple(_TIERS.values())


def available_tiers() -> Tuple[str, ...]:
    """Names of the tiers whose dependencies are importable."""
    return tuple(t.name for t in _TIERS.values() if t.available)


def _numba_available() -> bool:
    try:  # pragma: no cover - depends on the host image
        import numba  # noqa: F401

        return True
    except ImportError:
        return False


register_tier(
    KernelTier(
        name="reference",
        description="round-by-round simulation (ground truth)",
        fused=False,
        proximity=("fused", "blocked"),
    )
)
register_tier(
    KernelTier(
        name="fused",
        description="vectorized NumPy kernels with ledger charge replay",
        fused=True,
        proximity=("blocked", "reference"),
    )
)
register_tier(
    KernelTier(
        name="blocked",
        description="fused kernels streaming over byte-budgeted row tiles",
        fused=True,
        out_of_core=True,
        proximity=("fused", "reference"),
    )
)
register_tier(
    KernelTier(
        name="numba",
        description="JIT-compiled kernels (stub; requires the numba package)",
        fused=True,
        available=_numba_available(),
        requires="numba",
        proximity=("fused", "blocked", "reference"),
    )
)


# --------------------------------------------------------------------- #
# Active-tier resolution: explicit > REPRO_KERNEL_TIER > REPRO_FAST_PATH
# (deprecation shim) > "fused".
# --------------------------------------------------------------------- #

_UNSET = object()  # "not yet resolved from the environment"

_ACTIVE = _UNSET
_LEGACY_WARNED = False


def _env_tier() -> Optional[str]:
    return env_choice("REPRO_KERNEL_TIER", tuple(_TIERS))


def _env_legacy() -> Optional[str]:
    raw = os.environ.get("REPRO_FAST_PATH")
    if raw is None:
        return None
    return "reference" if raw in ("0", "false", "no") else "fused"


def _warn_legacy_once() -> None:
    global _LEGACY_WARNED
    if _LEGACY_WARNED:
        return
    _LEGACY_WARNED = True
    warnings.warn(
        "REPRO_FAST_PATH is deprecated; use REPRO_KERNEL_TIER=reference|"
        "fused|blocked (or ExecutionConfig.kernel_tier) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _resolve_env_tier() -> str:
    tier = _env_tier()
    legacy = _env_legacy()
    if tier is not None and legacy is not None:
        # Coherence: both set is fine only when they agree on whether
        # the fused kernels are in play.  REPRO_KERNEL_TIER wins when
        # coherent; a genuine conflict must fail loudly.
        if (legacy == "reference") != (tier == "reference"):
            raise ValueError(
                f"conflicting kernel selection: REPRO_KERNEL_TIER={tier!r} "
                f"but REPRO_FAST_PATH maps to {legacy!r}; unset "
                f"REPRO_FAST_PATH (deprecated) or make them agree"
            )
        return tier
    if tier is not None:
        return tier
    if legacy is not None:
        _warn_legacy_once()
        return legacy
    return "fused"


def current_tier_name() -> str:
    """The active tier's name (resolving the environment lazily)."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        _ACTIVE = _resolve_env_tier()
    return _ACTIVE


def current_tier() -> KernelTier:
    """The active :class:`KernelTier`."""
    return _TIERS[current_tier_name()]


def fused_kernels_enabled() -> bool:
    """True when primitives should use the fused wall-clock kernels.

    The registry-era spelling of the old ``fast_path_enabled()``: true
    for every tier whose ``fused`` flag is set (``fused``, ``blocked``,
    ``numba``), false only for ``reference``.
    """
    return current_tier().fused


def _require_available(tier: KernelTier) -> None:
    if tier.available:
        return
    from repro.engine.registry import CapabilityError

    alt = next((n for n in tier.proximity if _TIERS[n].available), "fused")
    raise CapabilityError(
        f"kernel tier {tier.name!r} is unavailable: requires the "
        f"{tier.requires!r} package (not importable here); nearest "
        f"available tier is {alt!r}"
    )


def set_kernel_tier(name: str) -> str:
    """Activate a tier process-wide; returns the previous tier name."""
    tier = get_tier(name)
    _require_available(tier)
    global _ACTIVE
    prev = current_tier_name()
    _ACTIVE = tier.name
    return prev


@contextmanager
def kernel_tier(name: str) -> Iterator[None]:
    """Temporarily activate a tier."""
    prev = set_kernel_tier(name)
    try:
        yield
    finally:
        set_kernel_tier(prev)


def resolve_kernel_tier(requested: Optional[str]) -> str:
    """The effective tier name for one query.

    ``requested`` is ``ExecutionConfig.kernel_tier``: explicit values
    pass through (validated); ``None`` defers to the active tier (which
    itself lazily resolves ``REPRO_KERNEL_TIER`` / the legacy shim).
    """
    if requested is not None:
        return get_tier(requested).name
    return current_tier_name()


# --------------------------------------------------------------------- #
# Tile byte budget: explicit > set_tile_bytes override > REPRO_TILE_BYTES
# > DEFAULT_TILE_BYTES.
# --------------------------------------------------------------------- #

_TILE_ENV = _UNSET
_TILE_OVERRIDE: Optional[int] = None


def _env_tile_bytes() -> Optional[int]:
    return env_int(
        "REPRO_TILE_BYTES",
        requirement=(
            f"a positive integer byte budget for the blocked kernel tier "
            f"(e.g. REPRO_TILE_BYTES={DEFAULT_TILE_BYTES})"
        ),
        exclusive_minimum=0,
    )


def _default_tile_bytes() -> Optional[int]:
    global _TILE_ENV
    if _TILE_ENV is _UNSET:
        _TILE_ENV = _env_tile_bytes()
    return _TILE_ENV


def resolve_tile_bytes(requested: Optional[int] = None) -> int:
    """The effective blocked-tier tile budget in bytes.

    Precedence: explicit ``requested`` (``ExecutionConfig.tile_bytes``)
    > :func:`set_tile_bytes` override > ``REPRO_TILE_BYTES`` >
    ``DEFAULT_TILE_BYTES``.  Raises ``ValueError`` when the env value is
    set but malformed.
    """
    if requested is not None:
        value = int(requested)
        if value <= 0:
            raise ValueError(f"tile_bytes must be a positive integer, got {requested!r}")
        return value
    if _TILE_OVERRIDE is not None:
        return _TILE_OVERRIDE
    env = _default_tile_bytes()
    if env is not None:
        return env
    return DEFAULT_TILE_BYTES


def set_tile_bytes(nbytes: Optional[int]) -> Optional[int]:
    """Pin the tile budget programmatically (``None`` unpins); returns
    the previous pin."""
    global _TILE_OVERRIDE
    prev = _TILE_OVERRIDE
    if nbytes is None:
        _TILE_OVERRIDE = None
    else:
        value = int(nbytes)
        if value <= 0:
            raise ValueError(f"tile_bytes must be a positive integer, got {nbytes!r}")
        _TILE_OVERRIDE = value
    return prev


@contextmanager
def tile_bytes_override(nbytes: Optional[int]) -> Iterator[None]:
    """Temporarily pin the tile budget (tests, benches)."""
    prev = set_tile_bytes(nbytes)
    try:
        yield
    finally:
        set_tile_bytes(prev)


@contextmanager
def tier_context(
    tier: Optional[str] = None, tile_bytes: Optional[int] = None
) -> Iterator[str]:
    """Activate an (optional) tier and tile budget for one execution.

    ``None`` fields are no-ops — the active process-wide settings stay
    in force.  Yields the effective tier name, so callers can stamp it
    on spans and counters.  This is the one chokepoint the engine and
    shard workers use to scope ``ExecutionConfig.kernel_tier`` /
    ``tile_bytes`` to a query without leaking process-global state.
    """
    prev_tier = set_kernel_tier(tier) if tier is not None else None
    prev_tile = set_tile_bytes(tile_bytes) if tile_bytes is not None else _UNSET
    try:
        yield current_tier_name()
    finally:
        if prev_tier is not None:
            set_kernel_tier(prev_tier)
        if prev_tile is not _UNSET:
            set_tile_bytes(prev_tile)


def _reload_env_defaults() -> None:
    """Re-read the env variables and reset the warn-once latch (tests)."""
    global _ACTIVE, _TILE_ENV, _LEGACY_WARNED
    _ACTIVE = _UNSET
    _TILE_ENV = _UNSET
    _LEGACY_WARNED = False
