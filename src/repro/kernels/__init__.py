"""Kernel-tier registry and tier-dispatched hot-path kernels.

Tier selection, the tile byte budget, and the streaming
grouped-extremum chokepoint live here (DESIGN.md §13).  The legacy
boolean switch in :mod:`repro.pram.fastpath` is a deprecation shim over
this package.
"""

from repro.kernels.api import eval_grouped_min
from repro.kernels.chargefan import ChargeFan
from repro.kernels.registry import (
    DEFAULT_TILE_BYTES,
    KernelTier,
    all_tiers,
    available_tiers,
    current_tier,
    current_tier_name,
    fused_kernels_enabled,
    get_tier,
    kernel_tier,
    register_tier,
    resolve_kernel_tier,
    resolve_tile_bytes,
    set_kernel_tier,
    set_tile_bytes,
    tier_context,
    tile_bytes_override,
)

__all__ = [
    "KernelTier",
    "register_tier",
    "get_tier",
    "all_tiers",
    "available_tiers",
    "current_tier",
    "current_tier_name",
    "fused_kernels_enabled",
    "set_kernel_tier",
    "kernel_tier",
    "resolve_kernel_tier",
    "resolve_tile_bytes",
    "set_tile_bytes",
    "tile_bytes_override",
    "tier_context",
    "DEFAULT_TILE_BYTES",
    "ChargeFan",
    "eval_grouped_min",
]
