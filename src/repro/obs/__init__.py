"""Round-level observability: tracing, metrics, and profiling hooks.

Three independent instruments over the same charge stream (DESIGN.md
§10):

- :class:`Tracer` / :class:`Trace` — opt-in structured span trees
  (``repro.solve(..., trace=True)`` → ``result.trace``), exportable as
  JSONL or Chrome ``trace_event`` JSON;
- :func:`metrics` / :func:`snapshot` — an always-on process-local
  :class:`MetricsRegistry` of engine counters, gauges, and histograms;
- :mod:`~repro.obs.hooks` — opt-in ``on_round`` / ``on_kernel``
  callbacks, fired from the ledger chokepoint for every machine in the
  process.

Quickstart::

    import repro

    r = repro.solve("rowmin", a, trace=True)
    r.trace.totals()["rounds"] == r.snapshot["rounds"]   # bit-identical
    r.trace.to_chrome("trace.json")                      # chrome://tracing

    repro.obs.snapshot()["counters"]["engine.rounds"]
"""

from repro.obs.hooks import (
    add_kernel_hook,
    add_round_hook,
    clear_hooks,
    kernel_hook,
    remove_kernel_hook,
    remove_round_hook,
    round_hook,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
    snapshot,
)
from repro.obs.tracer import Span, SpanEvent, Trace, Tracer

__all__ = [
    "Tracer",
    "Trace",
    "Span",
    "SpanEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "metrics",
    "snapshot",
    "reset_metrics",
    "add_round_hook",
    "remove_round_hook",
    "add_kernel_hook",
    "remove_kernel_hook",
    "round_hook",
    "kernel_hook",
    "clear_hooks",
]
