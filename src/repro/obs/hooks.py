"""Opt-in round / kernel profiling hooks (DESIGN.md §10).

The hook lists physically live in :mod:`repro.pram.ledger` — the one
module every charge already flows through — so the disabled-path cost
is a single empty-list truth test per charge.  This module is the
public management API: register callbacks, remove them by handle, or
scope them with a context manager.

``round`` hooks fire on every committed :meth:`CostLedger.charge` with
``(ledger, rounds, processors, work)``; ``kernel`` hooks fire on every
kernel chokepoint (entry-evaluation rounds, grouped extrema, network
collectives, fused-sweep charge replay) with ``(ledger, name, size)``.
Hooks observe *every* ledger in the process, traced or not — the
differential test suite uses them as an execution oracle, and
``benchmarks/bench_obs_overhead.py`` pins the disabled-path cost.

Hooks must not charge ledgers or mutate machine state; they are
observers of the simulation, not participants in it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.pram import ledger as _ledger

__all__ = [
    "add_round_hook",
    "remove_round_hook",
    "add_kernel_hook",
    "remove_kernel_hook",
    "round_hook",
    "kernel_hook",
    "clear_hooks",
]


def add_round_hook(fn: Callable) -> Callable:
    """Register ``fn(ledger, rounds, processors, work)``; returns ``fn``
    (the removal handle)."""
    _ledger._ROUND_HOOKS.append(fn)
    return fn


def remove_round_hook(fn: Callable) -> None:
    """Remove a previously registered round hook (no-op if absent)."""
    try:
        _ledger._ROUND_HOOKS.remove(fn)
    except ValueError:
        pass


def add_kernel_hook(fn: Callable) -> Callable:
    """Register ``fn(ledger, name, size)``; returns ``fn``."""
    _ledger._KERNEL_HOOKS.append(fn)
    return fn


def remove_kernel_hook(fn: Callable) -> None:
    """Remove a previously registered kernel hook (no-op if absent)."""
    try:
        _ledger._KERNEL_HOOKS.remove(fn)
    except ValueError:
        pass


@contextmanager
def round_hook(fn: Callable) -> Iterator[Callable]:
    """Scope a round hook to a ``with`` block."""
    add_round_hook(fn)
    try:
        yield fn
    finally:
        remove_round_hook(fn)


@contextmanager
def kernel_hook(fn: Callable) -> Iterator[Callable]:
    """Scope a kernel hook to a ``with`` block."""
    add_kernel_hook(fn)
    try:
        yield fn
    finally:
        remove_kernel_hook(fn)


def clear_hooks() -> None:
    """Drop every registered hook (test teardown use)."""
    del _ledger._ROUND_HOOKS[:]
    del _ledger._KERNEL_HOOKS[:]
