"""Process-local metrics: counters, gauges, histograms (DESIGN.md §10).

A single :class:`MetricsRegistry` accumulates engine-level telemetry —
queries, simulated rounds/work, retry and degradation counts,
certification cost, entry-cache hits/misses, batch fusion, kernel-tier
selection (``kernel.tier.*`` counters and the blocked tier's
``kernel.tile_bytes`` residency histogram, DESIGN.md §13) — with
near-zero overhead (one dict lookup and an integer add per update).
The registry is *always on*: unlike tracing it never allocates per
query, so there is nothing to enable.

``repro.obs.snapshot()`` returns a plain-dict view (counters, gauges,
histogram summaries, plus derived rates like cache hit-rate and batch
fusion rate); the bench harnesses embed it in their JSON payloads so a
perf baseline records *what* ran, not just how fast.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "snapshot",
    "reset_metrics",
]


class Counter:
    """A monotonically increasing integer-or-float accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A last-value-wins instantaneous measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """A streaming summary: count / sum / min / max plus power-of-two
    bucket counts (bucket ``k`` holds observations in ``[2^k, 2^{k+1})``,
    with a dedicated bucket for zero)."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[str, int] = {}

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0:
            key = "0"
        else:
            key = f"2^{int(math.floor(math.log2(value)))}"
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the power-of-two buckets.

        Within the bucket holding the target rank the estimate
        interpolates linearly between the bucket bounds, clamped to the
        observed ``[min, max]`` — coarse (buckets are octaves) but
        monotone and cheap, which is what the serving latency gauges
        (``serve.latency_s`` p50/p99, DESIGN.md §15) need.  Exact
        quantiles belong to the bench harnesses, which keep raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * (self.count - 1)

        def bounds(key: str):
            if key == "0":
                return 0.0, 0.0
            k = int(key[2:])
            return float(2.0 ** k), float(2.0 ** (k + 1))

        seen = 0
        for key, n in sorted(self.buckets.items(), key=lambda kv: bounds(kv[0])[0]):
            if seen + n > rank:
                lo, hi = bounds(key)
                frac = (rank - seen) / n
                estimate = lo + frac * (hi - lo)
                return min(max(estimate, self.min), self.max)
            seen += n
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": dict(sorted(self.buckets.items())),
        }


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name))
        return h

    # ------------------------------------------------------------------ #
    def _derived(self) -> dict:
        """Rates computed from raw counters (absent denominators → omitted)."""
        c = {name: inst.value for name, inst in self._counters.items()}
        out = {}
        hits = c.get("cache.hits", 0)
        misses = c.get("cache.misses", 0)
        if hits + misses:
            out["cache_hit_rate"] = hits / (hits + misses)
        bq = c.get("engine.batch.queries", 0)
        if bq:
            out["batch_fusion_rate"] = c.get("engine.batch.fused_queries", 0) / bq
        q = c.get("engine.queries", 0)
        if q:
            out["rounds_per_query"] = c.get("engine.rounds", 0) / q
            out["retries_per_query"] = c.get("engine.retries", 0) / q
        st = c.get("shard.tasks", 0)
        if st:
            out["shard_retry_rate"] = c.get("shard.retries", 0) / st
            out["shard_hedge_rate"] = c.get("shard.hedges", 0) / st
            out["shard_timeout_rate"] = c.get("shard.timeouts", 0) / st
            out["shard_quarantine_rate"] = c.get("shard.partial_fallbacks", 0) / st
        sr = c.get("serve.requests", 0)
        if sr:
            out["serve_shed_rate"] = c.get("serve.shed", 0) / (
                sr + c.get("serve.shed", 0)
            )
            out["serve_expired_rate"] = c.get("serve.expired", 0) / sr
            out["serve_fusion_rate"] = c.get("serve.fused_requests", 0) / sr
        return out

    def snapshot(self) -> dict:
        """A plain-dict view of every instrument plus derived rates."""
        return {
            "counters": {k: v.value for k, v in sorted(self._counters.items())},
            "gauges": {k: v.value for k, v in sorted(self._gauges.items())},
            "histograms": {k: v.summary() for k, v in sorted(self._histograms.items())},
            "derived": self._derived(),
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry (what the engine and caches update).
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY


def snapshot() -> dict:
    """Snapshot of the process-wide registry (``repro.obs.snapshot()``)."""
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    """Clear the process-wide registry (tests and bench harness use)."""
    _REGISTRY.reset()
