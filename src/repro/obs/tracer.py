"""Structured tracing for the solver engine (DESIGN.md §10).

The paper's claims are *round-shaped* — Tables 1.1–1.3 bound rounds and
processors, not wall-clock — so the tracer observes exactly the layer
the :class:`~repro.pram.ledger.CostLedger` already accounts: every
committed ``charge`` becomes a *round event*, every ledger ``phase``
(and every observer-only ``machine.obs_phase``) becomes a *phase span*,
and every kernel chokepoint (entry evaluation, grouped extrema, network
collectives) emits a *kernel event*.  The engine adds the outer
structure: one ``solve`` span per query, one ``attempt`` span per
resilient retry (tagged with the faults that fired), one ``bucket`` /
``sweep`` span pair per fused ``solve_many`` group.

Attribution is **per ledger**, not per thread: the tracer keeps one open
span stack for each bound :class:`CostLedger`.  This is what makes fused
batched sweeps traceable — a :class:`~repro.kernels.chargefan.ChargeFan`
replays each owner query's serial charge sequence into that query's own
sub-account, and the events land on that query's span, even though the
replay interleaves owners arbitrarily.

The charge identity the test suite pins::

    Trace.totals()["rounds"|"work"|"peak_processors"]
        == the query ledger snapshot, bit for bit

holds by construction: the solve span's inclusive totals are summed
from the same committed charges the snapshot summarizes.  Discarded
attempts (a retried query resets its sub-account) are excluded from
totals the same way the ledger reset excludes them.
"""

from __future__ import annotations

import io
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["SpanEvent", "Span", "Trace", "Tracer"]


@dataclass
class SpanEvent:
    """One point event inside a span.

    ``kind`` is ``"round"`` (a committed :meth:`CostLedger.charge`),
    ``"retry"`` (a :meth:`CostLedger.charge_retry` — excluded from the
    paper-bound totals, exactly as the ledger excludes it), or
    ``"kernel"`` (a kernel invocation; ``size`` is its candidate count,
    it carries no charges of its own).
    """

    kind: str
    name: str = ""
    rounds: int = 0
    processors: int = 0
    work: int = 0
    size: int = 0
    t: float = 0.0

    def structure(self) -> dict:
        """Timestamp-free projection used by golden-trace comparisons."""
        return {
            "kind": self.kind,
            "name": self.name,
            "rounds": self.rounds,
            "processors": self.processors,
            "work": self.work,
            "size": self.size,
        }


@dataclass
class Span:
    """One node of the trace tree.

    ``rounds``/``work``/``peak_processors``/``charges`` accumulate the
    round events recorded *directly* on this span (exclusive of
    children); :meth:`totals` folds the subtree.  ``discarded`` marks
    spans whose charges the ledger later reset (failed resilient
    attempts) — they stay in the tree for inspection but are excluded
    from totals.
    """

    name: str
    kind: str
    span_id: int
    attrs: Dict = field(default_factory=dict)
    t0: float = 0.0
    t1: float = 0.0
    events: List[SpanEvent] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)
    parent: Optional["Span"] = None
    discarded: bool = False
    rounds: int = 0
    work: int = 0
    peak_processors: int = 0
    charges: int = 0
    retry_rounds: int = 0
    retry_work: int = 0
    retry_charges: int = 0

    # ------------------------------------------------------------------ #
    def record_charge(self, rounds: int, processors: int, work: int, t: float) -> None:
        self.events.append(SpanEvent(
            kind="round", rounds=rounds, processors=processors, work=work, t=t
        ))
        self.rounds += rounds
        self.work += work
        self.peak_processors = max(self.peak_processors, processors)
        self.charges += 1

    def record_retry(self, kind: str, rounds: int, processors: int, work: int, t: float) -> None:
        self.events.append(SpanEvent(
            kind="retry", name=kind, rounds=rounds, processors=processors, work=work, t=t
        ))
        self.retry_rounds += rounds
        self.retry_work += work
        self.retry_charges += 1

    def record_kernel(self, name: str, size: int, t: float) -> None:
        self.events.append(SpanEvent(kind="kernel", name=name, size=size, t=t))

    # ------------------------------------------------------------------ #
    def walk(self, skip_discarded: bool = False) -> Iterator["Span"]:
        """Depth-first iterator over the subtree."""
        if skip_discarded and self.discarded:
            return
        yield self
        for child in self.children:
            yield from child.walk(skip_discarded=skip_discarded)

    def totals(self) -> dict:
        """Inclusive charge totals of the non-discarded subtree.

        The ``rounds``/``work``/``peak_processors`` entries are, by
        construction, bit-identical to the query ledger snapshot the
        span was bound to (tests/test_obs_tracer.py pins this).
        """
        out = {
            "rounds": 0, "work": 0, "peak_processors": 0, "charges": 0,
            "retry_rounds": 0, "retry_work": 0, "retry_charges": 0,
        }
        for span in self.walk(skip_discarded=True):
            out["rounds"] += span.rounds
            out["work"] += span.work
            out["peak_processors"] = max(out["peak_processors"], span.peak_processors)
            out["charges"] += span.charges
            out["retry_rounds"] += span.retry_rounds
            out["retry_work"] += span.retry_work
            out["retry_charges"] += span.retry_charges
        return out

    def structure(self) -> dict:
        """Timestamp-free span tree: names, kinds, charge deltas, events.

        This is the projection golden-trace tests compare — stable
        across hosts, wall-clock jitter, and the fast-path switch (the
        fused-kernel invariant makes the charge *sequence* identical).
        """
        return {
            "name": self.name,
            "kind": self.kind,
            "discarded": self.discarded,
            "rounds": self.rounds,
            "work": self.work,
            "peak_processors": self.peak_processors,
            "charges": self.charges,
            "retry_rounds": self.retry_rounds,
            "events": [e.structure() for e in self.events],
            "children": [c.structure() for c in self.children],
        }

    @property
    def wall_s(self) -> float:
        return max(0.0, self.t1 - self.t0)


class Trace:
    """One query's (or batch's) finished span tree, with exporters."""

    def __init__(self, root: Span, epoch: float = 0.0) -> None:
        self.root = root
        self.epoch = epoch

    # ------------------------------------------------------------------ #
    def spans(self) -> List[Span]:
        return list(self.root.walk())

    def totals(self) -> dict:
        return self.root.totals()

    def structure(self) -> dict:
        return self.root.structure()

    # ------------------------------------------------------------------ #
    def to_jsonl(self, path_or_file) -> None:
        """Write one JSON object per span (flattened tree, parent ids)."""
        rows = []
        ids = {}
        for i, span in enumerate(self.root.walk()):
            ids[id(span)] = i
            rows.append({
                "id": i,
                "parent": ids.get(id(span.parent)) if span.parent is not None else None,
                "name": span.name,
                "kind": span.kind,
                "discarded": span.discarded,
                "t0_us": round((span.t0 - self.epoch) * 1e6, 1),
                "t1_us": round((span.t1 - self.epoch) * 1e6, 1),
                "attrs": _jsonable(span.attrs),
                "rounds": span.rounds,
                "work": span.work,
                "peak_processors": span.peak_processors,
                "charges": span.charges,
                "retry_rounds": span.retry_rounds,
                "events": [e.structure() for e in span.events],
            })
        if isinstance(path_or_file, (str, bytes)):
            with open(path_or_file, "w", encoding="utf-8") as fh:
                for row in rows:
                    fh.write(json.dumps(row) + "\n")
        else:
            for row in rows:
                path_or_file.write(json.dumps(row) + "\n")

    def to_jsonl_str(self) -> str:
        buf = io.StringIO()
        self.to_jsonl(buf)
        return buf.getvalue()

    def to_chrome(self, path_or_file) -> None:
        """Export in Chrome ``trace_event`` format (``chrome://tracing``,
        Perfetto).  Spans become complete (``"X"``) events; round /
        retry / kernel events become instants (``"i"``) carrying their
        charge payload in ``args``."""
        events = []
        for span in self.root.walk():
            ts = (span.t0 - self.epoch) * 1e6
            dur = max(0.1, (span.t1 - span.t0) * 1e6)
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round(ts, 1),
                "dur": round(dur, 1),
                "pid": 1,
                "tid": _tid(span),
                "args": {
                    **_jsonable(span.attrs),
                    "rounds": span.rounds,
                    "work": span.work,
                    "peak_processors": span.peak_processors,
                    "discarded": span.discarded,
                },
            })
            for ev in span.events:
                events.append({
                    "name": ev.name or ev.kind,
                    "cat": ev.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": round((ev.t - self.epoch) * 1e6, 1),
                    "pid": 1,
                    "tid": _tid(span),
                    "args": {k: v for k, v in ev.structure().items() if v},
                })
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        if isinstance(path_or_file, (str, bytes)):
            with open(path_or_file, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, path_or_file)


def _tid(span: Span) -> int:
    """Chrome lane: the root span's id, so fused bucket queries render
    as parallel tracks."""
    while span.parent is not None:
        span = span.parent
    return span.span_id + 1


def _jsonable(attrs: Dict) -> Dict:
    out = {}
    for k, v in attrs.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        elif isinstance(v, (tuple, list)):
            out[k] = [int(x) if hasattr(x, "__index__") else x for x in v]
        else:
            out[k] = repr(v)
    return out


# --------------------------------------------------------------------- #
class _LedgerStack:
    """Open-span stack for one bound ledger."""

    __slots__ = ("ledger", "stack")

    def __init__(self, ledger, root: Span) -> None:
        self.ledger = ledger
        self.stack = [root]


class Tracer:
    """Collects spans; implements the ledger observer protocol.

    A tracer is bound to ledgers (``bind``) by the engine; every
    committed charge / retry / phase / kernel notification on a bound
    ledger is recorded on that ledger's innermost open span.  Spans not
    tied to a ledger (bucket containers, sequential-backend solves) are
    plain tree nodes.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._stacks: Dict[int, _LedgerStack] = {}
        self._next_id = 0

    # -- span lifecycle -------------------------------------------------- #
    def begin(self, name: str, kind: str, parent: Optional[Span] = None, **attrs) -> Span:
        span = Span(
            name=name, kind=kind, span_id=self._next_id, attrs=attrs,
            t0=time.perf_counter(), parent=parent,
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def end(self, span: Span) -> Span:
        span.t1 = time.perf_counter()
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span", parent: Optional[Span] = None, **attrs):
        s = self.begin(name, kind, parent=parent, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    # -- ledger binding -------------------------------------------------- #
    def bind(self, ledger, span: Span) -> None:
        """Attribute this ledger's charges to ``span`` (and descendants)."""
        self._stacks[id(ledger)] = _LedgerStack(ledger, span)
        ledger.observer = self

    def rebind(self, ledger) -> None:
        """Reattach after a ledger reset (``CostLedger.__init__`` wipes
        the observer); the span stack is collapsed back to its root."""
        slot = self._stacks.get(id(ledger))
        if slot is not None:
            del slot.stack[1:]
            ledger.observer = self

    def unbind(self, ledger) -> None:
        slot = self._stacks.pop(id(ledger), None)
        if slot is not None:
            # close any phase spans a raising solver left open
            for span in slot.stack[1:]:
                self.end(span)
            if ledger.observer is self:
                ledger.observer = None

    def push(self, ledger, name: str, kind: str, **attrs) -> Span:
        """Open a child span on a bound ledger's stack (engine use:
        attempt spans)."""
        slot = self._stacks[id(ledger)]
        span = self.begin(name, kind, parent=slot.stack[-1], **attrs)
        slot.stack.append(span)
        return span

    def pop(self, ledger, span: Span) -> None:
        slot = self._stacks.get(id(ledger))
        if slot is not None and span in slot.stack:
            while slot.stack[-1] is not span:
                self.end(slot.stack.pop())
            slot.stack.pop()
        self.end(span)

    def _top(self, ledger) -> Optional[Span]:
        slot = self._stacks.get(id(ledger))
        return slot.stack[-1] if slot is not None else None

    # -- observer protocol (called from repro.pram.ledger) --------------- #
    def on_charge(self, ledger, rounds: int, processors: int, work: int) -> None:
        span = self._top(ledger)
        if span is not None:
            span.record_charge(rounds, processors, work, time.perf_counter())

    def on_retry_charge(
        self, ledger, rounds: int, processors: int, work: int, kind: str
    ) -> None:
        span = self._top(ledger)
        if span is not None:
            span.record_retry(kind, rounds, processors, work, time.perf_counter())

    def on_kernel(self, ledger, name: str, size: int) -> None:
        span = self._top(ledger)
        if span is not None:
            span.record_kernel(name, size, time.perf_counter())

    def on_phase(self, ledger, name: str, enter: bool) -> None:
        slot = self._stacks.get(id(ledger))
        if slot is None:
            return
        if enter:
            span = self.begin(name, "phase", parent=slot.stack[-1])
            slot.stack.append(span)
        else:
            # tolerate stacks collapsed by rebind/unbind mid-phase
            for i in range(len(slot.stack) - 1, 0, -1):
                if slot.stack[i].name == name and slot.stack[i].kind == "phase":
                    while len(slot.stack) > i:
                        self.end(slot.stack.pop())
                    break

    # ------------------------------------------------------------------ #
    def trace(self, root: Optional[Span] = None) -> Trace:
        """A :class:`Trace` over ``root`` (default: a synthetic wrapper
        of every root span recorded so far)."""
        if root is not None:
            return Trace(root, epoch=self.epoch)
        if len(self.roots) == 1:
            return Trace(self.roots[0], epoch=self.epoch)
        wrapper = Span(
            name="session", kind="session", span_id=-1,
            t0=self.epoch, t1=time.perf_counter(),
        )
        wrapper.children = list(self.roots)
        return Trace(wrapper, epoch=self.epoch)
