"""Brent-style processor rescheduling.

Brent's theorem [Bre74]: an algorithm running in ``t`` rounds with
total work ``w`` on unboundedly many processors can be run on ``p``
processors in ``t + (w - t)/p`` rounds — each original round of ``a``
activities becomes ``⌈a/p⌉`` rounds.

The paper's CREW bounds (``n/lg lg n`` processors at
``O(lg n lg lg n)`` time) are exactly Brent reschedules of the
``n``-processor algorithms.  :func:`brent_reschedule` converts a ledger
measured at the full processor count into the measured round count at a
smaller count, using the *per-charge* activity profile (which the
ledger preserves via phases) rather than a closed-form estimate.

:class:`BrentPram` goes further: it is a :class:`Pram` whose charges
are rewritten on the fly, so an algorithm literally executed against a
``p``-processor budget reports genuine rescheduled rounds.
"""

from __future__ import annotations

from repro._util.bits import ceil_div
from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram
from repro.pram.models import PramModel

__all__ = ["brent_rounds", "BrentPram"]


def brent_rounds(rounds: int, processors_used: int, p: int) -> int:
    """Rounds after rescheduling ``rounds`` steps of width
    ``processors_used`` onto ``p`` processors."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return rounds * ceil_div(max(1, processors_used), p)


class BrentPram(Pram):
    """A PRAM that executes with a virtual width but charges the ledger
    as if every round were time-sliced onto ``physical_processors``.

    This realizes Brent's theorem operationally: a primitive that runs
    ``r`` rounds of width ``a`` is charged ``r·⌈a/p⌉`` rounds of width
    ``min(a, p)``.  The CREW entries of Tables 1.1–1.2 are measured by
    running the CRCW/CREW algorithms on a ``BrentPram`` with
    ``p = n / lg lg n``.
    """

    def __init__(
        self,
        model: PramModel,
        virtual_processors: int,
        physical_processors: int,
        ledger: CostLedger | None = None,
        validate: bool = False,
        faults=None,
        retry_limit: int = 8,
    ) -> None:
        super().__init__(
            model,
            virtual_processors,
            ledger=ledger,
            validate=validate,
            faults=faults,
            retry_limit=retry_limit,
        )
        if physical_processors < 1:
            raise ValueError("physical_processors must be >= 1")
        self.physical_processors = int(physical_processors)

    def charge(self, rounds: int = 1, processors: int | None = None, work: int | None = None):
        a = self.processors if processors is None else int(processors)
        if a > self.processors:
            raise RuntimeError(
                f"primitive used {a} processors but machine has only {self.processors}"
            )
        p = self.physical_processors
        slices = ceil_div(max(1, a), p)
        eff_work = work if work is not None else rounds * a
        if self.faults is not None:
            # a drop loses the whole rescheduled batch: replay at the
            # rescheduled (charged) shape
            self._replay_dropped_rounds(rounds * slices, min(a, p), eff_work)
        self.ledger.charge(
            rounds=rounds * slices,
            processors=min(a, p),
            work=eff_work,
        )

    def sub(self, processors: int) -> "BrentPram":
        if processors < 1:
            processors = 1
        if processors > self.processors:
            raise ValueError(
                f"cannot create sub-machine with {processors} processors "
                f"from a machine with {self.processors}"
            )
        return BrentPram(
            self.model,
            processors,
            self.physical_processors,
            ledger=self.ledger,
            validate=self.validate,
            faults=self.faults,
            retry_limit=self.retry_limit,
        )
