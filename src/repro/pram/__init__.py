"""Synchronous PRAM simulator with genuine round accounting.

The paper's claims are *step/processor* complexities on abstract PRAM
models.  This package provides:

- :class:`~repro.pram.ledger.CostLedger` — records every synchronous
  round a primitive actually executes, the work performed, and the peak
  number of processors requested;
- :class:`~repro.pram.machine.Pram` — a machine handle binding a model
  (EREW / CREW / CRCW variants) to a processor budget and a ledger;
- vectorized primitives (scan, segmented scan, reduction, compaction,
  merging, grouped minima) in :mod:`repro.pram.primitives`;
- the doubly-logarithmic CRCW maximum of Valiant / Shiloach–Vishkin in
  :mod:`repro.pram.fast_max`;
- the All-Nearest-Smaller-Values routine of [BBG+89] in
  :mod:`repro.pram.ansv`;
- a per-instruction PRAM virtual machine (:mod:`repro.pram.vm`) used to
  demonstrate and test the concurrency semantics themselves.

Every primitive is implemented as a real loop of synchronous rounds
(each round a vectorized NumPy map over processor indices), so the
ledger's ``rounds`` is a measurement, not a formula.
"""

from repro.pram.ledger import CostLedger, PhaseStats
from repro.pram.machine import Pram
from repro.pram.models import (
    CRCW_ARBITRARY,
    CRCW_COMMON,
    CRCW_PRIORITY,
    CREW,
    EREW,
    PramModel,
    WritePolicy,
)

__all__ = [
    "CostLedger",
    "PhaseStats",
    "Pram",
    "PramModel",
    "WritePolicy",
    "EREW",
    "CREW",
    "CRCW_COMMON",
    "CRCW_ARBITRARY",
    "CRCW_PRIORITY",
]
