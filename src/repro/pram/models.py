"""PRAM model semantics: read/write concurrency rules.

The models differ only in which same-address accesses may share a
synchronous step:

========== ================= ==========================================
model      concurrent reads  concurrent writes
========== ================= ==========================================
EREW       forbidden         forbidden
CREW       allowed           forbidden
CRCW       allowed           allowed, resolved by a :class:`WritePolicy`
========== ================= ==========================================

Write policies for CRCW:

``COMMON``
    all writers to an address must agree on the value;
``ARBITRARY``
    any single writer's value may survive (the simulator picks the
    first, which is a legal arbitrary choice);
``PRIORITY``
    the lowest-indexed processor wins.

:func:`resolve_concurrent_writes` is the single chokepoint used both by
the instruction-level VM and by validating primitives, so semantics
cannot drift between the two.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WritePolicy",
    "PramModel",
    "EREW",
    "CREW",
    "CRCW_COMMON",
    "CRCW_ARBITRARY",
    "CRCW_PRIORITY",
    "ConcurrencyViolation",
    "resolve_concurrent_writes",
]


class ConcurrencyViolation(RuntimeError):
    """An access pattern illegal under the active PRAM model."""


class WritePolicy(enum.Enum):
    """Conflict resolution rule for concurrent writes."""

    EXCLUSIVE = "exclusive"
    COMMON = "common"
    ARBITRARY = "arbitrary"
    PRIORITY = "priority"


@dataclass(frozen=True)
class PramModel:
    """A PRAM variant: name + read/write concurrency rules."""

    name: str
    concurrent_read: bool
    write_policy: WritePolicy

    @property
    def concurrent_write(self) -> bool:
        return self.write_policy is not WritePolicy.EXCLUSIVE

    @property
    def is_crcw(self) -> bool:
        return self.concurrent_write

    def check_reads(self, addresses: np.ndarray, round_index: int | None = None) -> None:
        """Raise if the per-step read address multiset is illegal."""
        if self.concurrent_read:
            return
        flat = np.asarray(addresses).ravel()
        uniq, counts = np.unique(flat, return_counts=True)
        if flat.size != uniq.size:
            raise ConcurrencyViolation(
                f"{self.name}: concurrent reads are forbidden; colliding "
                f"addresses {_format_addresses(uniq[counts > 1])}"
                f"{_format_round(round_index)}"
            )

    def __str__(self) -> str:
        return self.name


EREW = PramModel("EREW", concurrent_read=False, write_policy=WritePolicy.EXCLUSIVE)
CREW = PramModel("CREW", concurrent_read=True, write_policy=WritePolicy.EXCLUSIVE)
CRCW_COMMON = PramModel("CRCW-common", concurrent_read=True, write_policy=WritePolicy.COMMON)
CRCW_ARBITRARY = PramModel(
    "CRCW-arbitrary", concurrent_read=True, write_policy=WritePolicy.ARBITRARY
)
CRCW_PRIORITY = PramModel("CRCW-priority", concurrent_read=True, write_policy=WritePolicy.PRIORITY)


def _format_addresses(collisions: np.ndarray, limit: int = 8) -> str:
    """Readable listing of colliding addresses, truncated past ``limit``."""
    shown = [repr(a.item() if hasattr(a, "item") else a) for a in collisions[:limit]]
    suffix = f", … ({collisions.size} total)" if collisions.size > limit else ""
    return "[" + ", ".join(shown) + suffix + "]"


def _format_round(round_index: int | None) -> str:
    return "" if round_index is None else f" in round {int(round_index)}"


def resolve_concurrent_writes(
    policy: WritePolicy,
    addresses: np.ndarray,
    values: np.ndarray,
    processor_ids: np.ndarray | None = None,
    model_name: str | None = None,
    round_index: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve one synchronous step's writes under ``policy``.

    Parameters
    ----------
    addresses, values:
        Parallel 1-D arrays: processor ``t`` writes ``values[t]`` to
        ``addresses[t]``.
    processor_ids:
        Priorities for ``PRIORITY`` (defaults to position order).
    model_name, round_index:
        Optional context reported in :class:`ConcurrencyViolation`
        messages (which model rejected the step, and when).

    Returns
    -------
    (unique_addresses, winning_values)

    Raises
    ------
    ConcurrencyViolation
        on EXCLUSIVE conflicts, or COMMON writers that disagree.
    """
    addresses = np.asarray(addresses)
    values = np.asarray(values)
    if addresses.shape != values.shape or addresses.ndim != 1:
        raise ValueError("addresses and values must be 1-D arrays of equal length")
    if addresses.size == 0:
        return addresses, values

    uniq, first_idx, inverse, counts = np.unique(
        addresses, return_index=True, return_inverse=True, return_counts=True
    )
    has_conflict = bool((counts > 1).any())

    if policy is WritePolicy.EXCLUSIVE:
        if has_conflict:
            label = model_name or "exclusive-write model"
            raise ConcurrencyViolation(
                f"{label}: {int(counts.max())} processors wrote the same address"
                f"{_format_round(round_index)}; colliding addresses "
                f"{_format_addresses(uniq[counts > 1])}"
            )
        return uniq, values[first_idx]

    if policy is WritePolicy.COMMON:
        # All writers of an address must agree with the first writer.
        rep = values[first_idx][inverse]
        if not np.array_equal(rep, values):
            label = model_name or "CRCW-common"
            bad = uniq[np.unique(inverse[rep != values])]
            raise ConcurrencyViolation(
                f"{label}: writers disagree on the written value"
                f"{_format_round(round_index)}; colliding addresses "
                f"{_format_addresses(bad)}"
            )
        return uniq, values[first_idx]

    if policy is WritePolicy.ARBITRARY:
        return uniq, values[first_idx]

    if policy is WritePolicy.PRIORITY:
        if processor_ids is None:
            processor_ids = np.arange(addresses.size)
        processor_ids = np.asarray(processor_ids)
        # Among writers of each address, the smallest processor id wins.
        order = np.lexsort((processor_ids, inverse))
        sorted_inverse = inverse[order]
        firsts = np.ones(order.size, dtype=bool)
        firsts[1:] = sorted_inverse[1:] != sorted_inverse[:-1]
        winners = order[firsts]
        return addresses[winners], values[winners]

    raise AssertionError(f"unhandled policy {policy}")
