"""Deprecation shim: the boolean fast-path switch, mapped onto kernel tiers.

The process-global boolean that used to live here grew into the kernel-
tier registry (:mod:`repro.kernels.registry`, DESIGN.md §13): named
tiers ``reference`` / ``fused`` / ``blocked`` (plus an optional
``numba`` stub), selected via ``ExecutionConfig.kernel_tier`` or
``REPRO_KERNEL_TIER``.  This module keeps the legacy surface alive and
coherent:

- :func:`fast_path_enabled` → true for every fused-class tier;
- :func:`set_fast_path` / :func:`fast_path` map ``True`` → the
  ``fused`` tier and ``False`` → ``reference``.  The context manager
  saves and restores the exact tier *name*, so e.g. an active
  ``blocked`` tier survives a ``fast_path(False)`` round-trip;
- the ``REPRO_FAST_PATH`` environment variable still works (``0`` /
  ``false`` / ``no`` → ``reference``, else ``fused``) but emits one
  ``DeprecationWarning`` per process, and conflicting with
  ``REPRO_KERNEL_TIER`` raises (see the registry module docstring for
  the precedence table);
- :class:`~repro.kernels.chargefan.ChargeFan` is re-exported from its
  new home in :mod:`repro.kernels`.

The fused-kernel invariant itself is unchanged: a primitive may compute
with any vectorized kernel **provided it charges the ledger the exact
sequence of charges the reference (round-by-round) execution would
have issued** — ledger snapshots are bit-identical across tiers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.kernels.chargefan import ChargeFan
from repro.kernels.registry import (
    current_tier,
    current_tier_name,
    set_kernel_tier,
)

__all__ = ["fast_path_enabled", "set_fast_path", "fast_path", "ChargeFan"]


def fast_path_enabled() -> bool:
    """True when primitives should use the fused wall-clock kernels.

    Deprecated spelling of
    :func:`repro.kernels.registry.fused_kernels_enabled`.
    """
    return current_tier().fused


def set_fast_path(enabled: bool) -> bool:
    """Set the global switch; returns the previous boolean value.

    ``True`` activates the ``fused`` tier unless a fused-class tier
    (``fused``/``blocked``/``numba``) is already active; ``False``
    activates ``reference``.  Prefer
    :func:`repro.kernels.registry.set_kernel_tier`, which can name any
    tier.
    """
    prev = current_tier().fused
    if enabled:
        if not prev:
            set_kernel_tier("fused")
    else:
        set_kernel_tier("reference")
    return prev


@contextmanager
def fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off.

    Restores the exact prior tier name on exit (not just the boolean),
    so nesting inside an active ``blocked``/``numba`` tier round-trips.
    """
    prev = current_tier_name()
    set_fast_path(enabled)
    try:
        yield
    finally:
        set_kernel_tier(prev)
