"""Wall-clock fast-path switch for the simulator hot paths.

The simulator's measured quantities — synchronous rounds, work, peak
processors — are *observations* of the algorithm being simulated, not
of the Python code that simulates it.  That separation is what makes a
wall-clock fast path legal: a primitive may compute its result with any
vectorized kernel it likes, **provided it charges the ledger the exact
sequence of charges the reference (round-by-round) execution would
have issued**.  We call this the *fused-kernel invariant*:

    ledger snapshots (rounds, work, peak processors, per-phase stats)
    are bit-identical with the fast path on or off.

``tests/test_fastpath_cache.py`` asserts the invariant end-to-end for
the Table 1.1–1.3 algorithms; ``benchmarks/bench_regress.py`` measures
the wall-clock gap the fast path buys.

The switch is process-global (the simulator has no per-call config
object threading through every primitive) and defaults to **on**; set
``REPRO_FAST_PATH=0`` in the environment or use
:func:`set_fast_path` / the :func:`fast_path` context manager to pin it
either way — the reference path is kept alive precisely so the
invariant stays testable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["fast_path_enabled", "set_fast_path", "fast_path"]

_ENABLED: bool = os.environ.get("REPRO_FAST_PATH", "1") not in ("0", "false", "no")


def fast_path_enabled() -> bool:
    """True when primitives should use the fused wall-clock kernels."""
    return _ENABLED


def set_fast_path(enabled: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(enabled)
    return prev


@contextmanager
def fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off."""
    prev = set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(prev)
