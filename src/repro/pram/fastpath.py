"""Wall-clock fast-path switch for the simulator hot paths.

The simulator's measured quantities — synchronous rounds, work, peak
processors — are *observations* of the algorithm being simulated, not
of the Python code that simulates it.  That separation is what makes a
wall-clock fast path legal: a primitive may compute its result with any
vectorized kernel it likes, **provided it charges the ledger the exact
sequence of charges the reference (round-by-round) execution would
have issued**.  We call this the *fused-kernel invariant*:

    ledger snapshots (rounds, work, peak processors, per-phase stats)
    are bit-identical with the fast path on or off.

``tests/test_fastpath_cache.py`` asserts the invariant end-to-end for
the Table 1.1–1.3 algorithms; ``benchmarks/bench_regress.py`` measures
the wall-clock gap the fast path buys.

The switch is process-global (the simulator has no per-call config
object threading through every primitive) and defaults to **on**; set
``REPRO_FAST_PATH=0`` in the environment or use
:func:`set_fast_path` / the :func:`fast_path` context manager to pin it
either way — the reference path is kept alive precisely so the
invariant stays testable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

__all__ = ["fast_path_enabled", "set_fast_path", "fast_path", "ChargeFan"]

_ENABLED: bool = os.environ.get("REPRO_FAST_PATH", "1") not in ("0", "false", "no")


def fast_path_enabled() -> bool:
    """True when primitives should use the fused wall-clock kernels."""
    return _ENABLED


def set_fast_path(enabled: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(enabled)
    return prev


@contextmanager
def fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off."""
    prev = set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(prev)


class ChargeFan:
    """Per-query ledger fan-out for one fused batched sweep.

    The fused-kernel invariant extends across queries: a batched kernel
    may stack ``B`` same-shape queries and compute all results in one
    global pass, provided each query's sub-account receives **the exact
    charge sequence its own serial run would have issued**.  The batched
    ``sqrt``-recursion makes this possible because its row structure
    (sample strides, block sizes, recursion depth) is data-independent
    for same-shape inputs, so the global charge at every site decomposes
    into per-owner unit counts; this class performs that decomposition.

    ``ledgers[q]`` is query ``q``'s :class:`~repro.pram.ledger.CostLedger`
    sub-account.  ``crcw``/``budget`` reproduce the machine context the
    per-owner grouped-minimum strategy resolution needs.
    """

    def __init__(self, ledgers: Sequence, *, crcw: bool, budget: int) -> None:
        self.ledgers = list(ledgers)
        self.crcw = bool(crcw)
        self.budget = int(budget)

    def counts(self, owner: np.ndarray, weights=None) -> np.ndarray:
        """Per-owner unit totals: ``sum(weights)`` (or multiplicity) by owner."""
        owner = np.asarray(owner, dtype=np.int64)
        if weights is None:
            c = np.bincount(owner, minlength=len(self.ledgers))
        else:
            c = np.bincount(
                owner,
                weights=np.asarray(weights, dtype=np.float64),
                minlength=len(self.ledgers),
            )
        return np.rint(c).astype(np.int64)

    def charge(self, counts: np.ndarray, rounds: int = 1) -> None:
        """Charge each owner with a positive count ``rounds`` rounds at
        ``counts[q]`` processors — owners absent from a site charge
        nothing, exactly as their serial run would skip the branch."""
        for q in np.nonzero(counts)[0]:
            self.ledgers[int(q)].charge(rounds=rounds, processors=int(counts[q]))

    def grouped_min(self, widths: np.ndarray, group_owner: np.ndarray) -> None:
        """Replay one serial ``grouped_min(strategy="auto")`` per owner
        over that owner's own groups (``group_owner`` is nondecreasing —
        the batch layout keeps owners contiguous)."""
        from repro.pram.primitives import replay_grouped_min_charges

        widths = np.asarray(widths, dtype=np.int64)
        owner = np.asarray(group_owner, dtype=np.int64)
        if owner.size == 0:
            return
        change = np.nonzero(np.diff(owner))[0] + 1
        bounds = np.concatenate([[0], change, [owner.size]])
        for k in range(bounds.size - 1):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            replay_grouped_min_charges(
                self.ledgers[int(owner[lo])],
                widths[lo:hi],
                crcw=self.crcw,
                budget=self.budget,
            )
