"""The :class:`Pram` machine handle.

A ``Pram`` binds together

- a :class:`~repro.pram.models.PramModel` (concurrency semantics),
- a processor budget,
- a :class:`~repro.pram.ledger.CostLedger`.

Primitives take a ``Pram`` as their first argument; they execute their
synchronous rounds as vectorized NumPy maps and charge the ledger for
each round actually run.  The machine also exposes *checked* gather /
scatter helpers so a primitive running in ``validate`` mode proves that
its per-round access pattern is legal under the bound model.

The machine is deliberately cheap to construct: applications create
sub-machines (``pram.sub(processors)``) for recursive calls so that
processor budgets of nested subproblems are enforced locally while all
costs flow into one shared ledger.

Fault tolerance: an optional :class:`~repro.resilience.faults.FaultPlan`
turns the machine into a faulty one.  A ``processor_drop`` fault strikes
a charged round before it commits; the simulation is deterministic, so
the machine replays the round — charging its cost to the ledger's
*retry* account (:meth:`~repro.pram.ledger.CostLedger.charge_retry`)
once per lost attempt — and the paper-bound totals stay untouched.  A
``write_conflict`` fault injects a ghost colliding write into a checked
scatter: exclusive/common models detect it (one retry charge, then a
clean replay), arbitrary/priority models resolve it legally with the
ghost losing.  With no plan (or a plan whose rates are zero) every code
path and every ledger byte is identical to the fault-free machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.pram.ledger import CostLedger, notify_kernel, observed_phase
from repro.pram.models import CREW, ConcurrencyViolation, PramModel, resolve_concurrent_writes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.resilience.faults import FaultPlan

__all__ = ["Pram"]


class Pram:
    """A simulated PRAM with ``processors`` processors of model ``model``.

    Parameters
    ----------
    model:
        One of :data:`EREW`, :data:`CREW`, :data:`CRCW_COMMON`,
        :data:`CRCW_ARBITRARY`, :data:`CRCW_PRIORITY`.
    processors:
        Processor budget.  Primitives asking for more in a single round
        raise through the ledger.
    ledger:
        Shared cost accumulator; a fresh one is created if omitted.
    validate:
        When True, checked gather/scatter verify concurrency legality
        each round (slower; meant for tests and small runs).
    faults:
        Optional :class:`~repro.resilience.faults.FaultPlan`; see the
        module docstring.  ``None`` (the default) means a perfect
        machine.
    retry_limit:
        How many consecutive replays of one round to attempt before
        raising ``FaultRetriesExhausted``.
    """

    def __init__(
        self,
        model: PramModel = CREW,
        processors: int = 1,
        ledger: Optional[CostLedger] = None,
        validate: bool = False,
        faults: "FaultPlan | None" = None,
        retry_limit: int = 8,
    ) -> None:
        if processors < 1:
            raise ValueError(f"processors must be >= 1, got {processors}")
        if retry_limit < 1:
            raise ValueError(f"retry_limit must be >= 1, got {retry_limit}")
        self.model = model
        self.processors = int(processors)
        self.ledger = ledger if ledger is not None else CostLedger(processor_limit=None)
        self.validate = bool(validate)
        self.faults = faults
        self.retry_limit = int(retry_limit)

    # ------------------------------------------------------------------ #
    def charge(self, rounds: int = 1, processors: int | None = None, work: int | None = None):
        """Charge ``rounds`` synchronous steps to the ledger.

        ``processors`` defaults to this machine's full budget; a round
        using more than the budget is a bug in the calling primitive.
        """
        p = self.processors if processors is None else int(processors)
        if p > self.processors:
            raise RuntimeError(
                f"primitive used {p} processors but machine has only {self.processors}"
            )
        if self.faults is not None:
            self._replay_dropped_rounds(rounds, p, work)
        self.ledger.charge(rounds=rounds, processors=p, work=work)

    def _replay_dropped_rounds(self, rounds: int, processors: int, work: int | None) -> None:
        """Consume ``processor_drop`` faults for one charge, paying each
        lost attempt into the ledger's retry account."""
        plan = self.faults
        site = f"{type(self).__name__}.charge"
        attempts = 0
        while plan.fires("processor_drop", site=site, round_index=self.ledger.rounds):
            self.ledger.charge_retry(
                rounds=rounds, processors=processors, work=work, kind="processor_drop"
            )
            attempts += 1
            if attempts >= self.retry_limit:
                plan.exhausted("processor_drop", site, attempts)

    def charge_eval(self, size: int) -> None:
        """Charge one entry-evaluation round for ``size`` candidates.

        On a PRAM every processor computes its entry in one step (§1.2's
        O(1)-computable model).  Network machines override this with the
        Lemma 3.1 candidate-distribution schedule.
        """
        notify_kernel(self.ledger, "eval", size)
        self.charge(rounds=1, processors=max(1, size))

    def sub(self, processors: int) -> "Pram":
        """A view of this machine restricted to ``processors`` processors.

        Costs still flow to the shared ledger; the returned machine just
        enforces the smaller budget for a nested subcomputation.  The
        fault plan (if any) is shared too — faults do not stop at
        recursion boundaries.
        """
        if processors < 1:
            processors = 1
        if processors > self.processors:
            raise ValueError(
                f"cannot create sub-machine with {processors} processors "
                f"from a machine with {self.processors}"
            )
        return Pram(
            self.model,
            processors,
            ledger=self.ledger,
            validate=self.validate,
            faults=self.faults,
            retry_limit=self.retry_limit,
        )

    def phase(self, name: str):
        """Shorthand for ``self.ledger.phase(name)``."""
        return self.ledger.phase(name)

    def obs_phase(self, name: str):
        """Observer-only stage marker (tracer span, *no* ledger phase).

        Algorithms use this to expose their strategy phases to an
        attached tracer without perturbing the charged ``phases``
        accounting that pinned snapshots depend on.  A shared no-op when
        nothing observes the ledger.
        """
        return observed_phase(self.ledger, name)

    # ------------------------------------------------------------------ #
    # Checked shared-memory access (one synchronous round each).
    # ------------------------------------------------------------------ #
    def gather(self, memory: np.ndarray, addresses: np.ndarray) -> np.ndarray:
        """One round in which processor ``t`` reads ``memory[addresses[t]]``.

        Under ``validate``, EREW read-exclusivity is enforced.
        """
        addresses = np.asarray(addresses)
        if self.validate:
            self.model.check_reads(addresses, round_index=self.ledger.rounds)
        self.charge(rounds=1, processors=max(1, addresses.size))
        return memory[addresses]

    def scatter(
        self,
        memory: np.ndarray,
        addresses: np.ndarray,
        values: np.ndarray,
        processor_ids: np.ndarray | None = None,
    ) -> None:
        """One round in which processor ``t`` writes ``values[t]`` to
        ``memory[addresses[t]]``, resolved per the machine's model."""
        addresses = np.asarray(addresses).ravel()
        values = np.asarray(values).ravel()
        if self.validate:
            uniq, winners = self._resolve_writes(addresses, values, processor_ids)
            memory[uniq] = winners
        else:
            if self.model.concurrent_write:
                # Arbitrary/common/priority all coincide when writers agree;
                # unvalidated mode trusts the primitive and lets the last
                # writer win (a legal ARBITRARY outcome).
                memory[addresses] = values
            else:
                memory[addresses] = values
        self.charge(rounds=1, processors=max(1, addresses.size))

    def _resolve_writes(self, addresses, values, processor_ids):
        """Model-checked write resolution, with optional fault injection.

        A fired ``write_conflict`` fault adds one *ghost* write that
        collides with the step's first real write.  Exclusive and
        common models reject the collision — the machine charges one
        retry and replays the step cleanly; arbitrary and priority
        models resolve it legally (the ghost is appended last and given
        the worst priority, so it always loses and the memory image is
        unchanged).
        """
        plan = self.faults
        if plan is not None and addresses.size and plan.fires(
            "write_conflict",
            site=f"{type(self).__name__}.scatter[{self.model.name}]",
            round_index=self.ledger.rounds,
            detail=f"ghost write at address {addresses[0]!r}",
        ):
            ghost_addr = np.concatenate([addresses, addresses[:1]])
            # a disagreeing value so COMMON detects it; EXCLUSIVE rejects
            # any duplicate regardless of value
            ghost_vals = np.concatenate([values, np.asarray([values[0] + 1])])
            pids = (
                np.asarray(processor_ids)
                if processor_ids is not None
                else np.arange(addresses.size)
            )
            ghost_pids = np.concatenate([pids, np.asarray([int(pids.max(initial=-1)) + 1])])
            if self.model.concurrent_write and self.model.name != "CRCW-common":
                # arbitrary/priority: the conflict is legal; resolve with
                # the ghost in place (it loses either resolution rule).
                return resolve_concurrent_writes(
                    self.model.write_policy,
                    ghost_addr,
                    ghost_vals,
                    ghost_pids,
                    model_name=self.model.name,
                    round_index=self.ledger.rounds,
                )
            try:
                resolve_concurrent_writes(
                    self.model.write_policy,
                    ghost_addr,
                    ghost_vals,
                    ghost_pids,
                    model_name=self.model.name,
                    round_index=self.ledger.rounds,
                )
            except ConcurrencyViolation:
                # detected: charge the lost attempt, then replay clean
                self.ledger.charge_retry(
                    rounds=1, processors=max(1, addresses.size), kind="write_conflict"
                )
        return resolve_concurrent_writes(
            self.model.write_policy,
            addresses,
            values,
            processor_ids,
            model_name=self.model.name,
            round_index=self.ledger.rounds,
        )

    # ------------------------------------------------------------------ #
    def require_crcw(self, what: str) -> None:
        """Raise unless the machine supports concurrent writes."""
        if not self.model.concurrent_write:
            raise ConcurrencyViolation(f"{what} requires a CRCW model, machine is {self.model}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pram(model={self.model}, processors={self.processors})"
