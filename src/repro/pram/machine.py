"""The :class:`Pram` machine handle.

A ``Pram`` binds together

- a :class:`~repro.pram.models.PramModel` (concurrency semantics),
- a processor budget,
- a :class:`~repro.pram.ledger.CostLedger`.

Primitives take a ``Pram`` as their first argument; they execute their
synchronous rounds as vectorized NumPy maps and charge the ledger for
each round actually run.  The machine also exposes *checked* gather /
scatter helpers so a primitive running in ``validate`` mode proves that
its per-round access pattern is legal under the bound model.

The machine is deliberately cheap to construct: applications create
sub-machines (``pram.sub(processors)``) for recursive calls so that
processor budgets of nested subproblems are enforced locally while all
costs flow into one shared ledger.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pram.ledger import CostLedger
from repro.pram.models import CREW, ConcurrencyViolation, PramModel, resolve_concurrent_writes

__all__ = ["Pram"]


class Pram:
    """A simulated PRAM with ``processors`` processors of model ``model``.

    Parameters
    ----------
    model:
        One of :data:`EREW`, :data:`CREW`, :data:`CRCW_COMMON`,
        :data:`CRCW_ARBITRARY`, :data:`CRCW_PRIORITY`.
    processors:
        Processor budget.  Primitives asking for more in a single round
        raise through the ledger.
    ledger:
        Shared cost accumulator; a fresh one is created if omitted.
    validate:
        When True, checked gather/scatter verify concurrency legality
        each round (slower; meant for tests and small runs).
    """

    def __init__(
        self,
        model: PramModel = CREW,
        processors: int = 1,
        ledger: Optional[CostLedger] = None,
        validate: bool = False,
    ) -> None:
        if processors < 1:
            raise ValueError(f"processors must be >= 1, got {processors}")
        self.model = model
        self.processors = int(processors)
        self.ledger = ledger if ledger is not None else CostLedger(processor_limit=None)
        self.validate = bool(validate)

    # ------------------------------------------------------------------ #
    def charge(self, rounds: int = 1, processors: int | None = None, work: int | None = None):
        """Charge ``rounds`` synchronous steps to the ledger.

        ``processors`` defaults to this machine's full budget; a round
        using more than the budget is a bug in the calling primitive.
        """
        p = self.processors if processors is None else int(processors)
        if p > self.processors:
            raise RuntimeError(
                f"primitive used {p} processors but machine has only {self.processors}"
            )
        self.ledger.charge(rounds=rounds, processors=p, work=work)

    def charge_eval(self, size: int) -> None:
        """Charge one entry-evaluation round for ``size`` candidates.

        On a PRAM every processor computes its entry in one step (§1.2's
        O(1)-computable model).  Network machines override this with the
        Lemma 3.1 candidate-distribution schedule.
        """
        self.charge(rounds=1, processors=max(1, size))

    def sub(self, processors: int) -> "Pram":
        """A view of this machine restricted to ``processors`` processors.

        Costs still flow to the shared ledger; the returned machine just
        enforces the smaller budget for a nested subcomputation.
        """
        if processors < 1:
            processors = 1
        if processors > self.processors:
            raise ValueError(
                f"cannot create sub-machine with {processors} processors "
                f"from a machine with {self.processors}"
            )
        return Pram(self.model, processors, ledger=self.ledger, validate=self.validate)

    def phase(self, name: str):
        """Shorthand for ``self.ledger.phase(name)``."""
        return self.ledger.phase(name)

    # ------------------------------------------------------------------ #
    # Checked shared-memory access (one synchronous round each).
    # ------------------------------------------------------------------ #
    def gather(self, memory: np.ndarray, addresses: np.ndarray) -> np.ndarray:
        """One round in which processor ``t`` reads ``memory[addresses[t]]``.

        Under ``validate``, EREW read-exclusivity is enforced.
        """
        addresses = np.asarray(addresses)
        if self.validate:
            self.model.check_reads(addresses)
        self.charge(rounds=1, processors=max(1, addresses.size))
        return memory[addresses]

    def scatter(
        self,
        memory: np.ndarray,
        addresses: np.ndarray,
        values: np.ndarray,
        processor_ids: np.ndarray | None = None,
    ) -> None:
        """One round in which processor ``t`` writes ``values[t]`` to
        ``memory[addresses[t]]``, resolved per the machine's model."""
        addresses = np.asarray(addresses).ravel()
        values = np.asarray(values).ravel()
        if self.validate:
            uniq, winners = resolve_concurrent_writes(
                self.model.write_policy, addresses, values, processor_ids
            )
            memory[uniq] = winners
        else:
            if self.model.concurrent_write:
                # Arbitrary/common/priority all coincide when writers agree;
                # unvalidated mode trusts the primitive and lets the last
                # writer win (a legal ARBITRARY outcome).
                memory[addresses] = values
            else:
                memory[addresses] = values
        self.charge(rounds=1, processors=max(1, addresses.size))

    # ------------------------------------------------------------------ #
    def require_crcw(self, what: str) -> None:
        """Raise unless the machine supports concurrent writes."""
        if not self.model.concurrent_write:
            raise ConcurrencyViolation(f"{what} requires a CRCW model, machine is {self.model}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pram(model={self.model}, processors={self.processors})"
