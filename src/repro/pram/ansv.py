"""All Nearest Smaller Values (ANSV) on the PRAM [BBG+89].

Given a vector ``x``, find for each position the nearest position to
its left (and to its right) holding a strictly smaller value.  Lemma
2.2 of the paper uses ANSV to compute the *bracketing* structure of the
sampled-row minima (minimum ``m1`` brackets ``m2`` when ``m1`` is
``m2``'s closest north-west neighbor), which drives processor
allocation for the feasible Monge regions of Figure 2.2.

Implementation: a sparse table of range minima (``⌈lg n⌉`` build
rounds) followed by a synchronized binary descent per element
(``⌈lg n⌉`` probe rounds).  All probes are concurrent reads — CREW-safe
— and every element's writes are exclusive.  Total ``O(lg n)`` rounds
with ``n`` processors, matching [BBG+89]'s time bound (their
work-optimal ``n/lg n``-processor refinement is not needed here: the
paper's Lemma 2.2 budget is ``m/lg m + n`` processors).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._util.bits import ceil_log2
from repro.pram.machine import Pram

__all__ = [
    "all_nearest_smaller_values",
    "nearest_smaller_left",
    "nearest_smaller_right",
    "nearest_smaller_left_threshold",
]


def _sparse_table(pram: Pram, x: np.ndarray) -> list[np.ndarray]:
    """``table[k][i] = min(x[i : i + 2**k])`` — one round per level."""
    n = x.size
    table = [x.astype(np.float64)]
    k = 1
    while (1 << k) <= n:
        prev = table[-1]
        half = 1 << (k - 1)
        cur = np.minimum(prev[: n - 2 * half + 1], prev[half : n - half + 1])
        table.append(cur)
        pram.charge(rounds=1, processors=max(1, cur.size))
        k += 1
    return table


def _range_min(table: list[np.ndarray], lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorized min over half-open windows ``[lo, hi)`` (hi > lo)."""
    length = hi - lo
    k = np.maximum(0, np.ceil(np.log2(np.maximum(length, 1))).astype(int))
    k = np.where((1 << k) > length, k - 1, k)  # largest 2**k <= length
    k = np.maximum(k, 0)
    out = np.full(lo.shape, np.inf)
    for kk in np.unique(k):
        sel = k == kk
        t = table[kk]
        a = lo[sel]
        b = hi[sel] - (1 << kk)
        out[sel] = np.minimum(t[a], t[b])
    return out


def nearest_smaller_left(pram: Pram, x: np.ndarray) -> np.ndarray:
    """Index of nearest strictly-smaller value to the left (-1 if none)."""
    x = np.asarray(x, dtype=np.float64)
    return nearest_smaller_left_threshold(pram, x, x, np.arange(x.size, dtype=np.int64))


def nearest_smaller_left_threshold(
    pram: Pram, x: np.ndarray, thresholds: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """For each query ``q``: largest ``j < positions[q]`` with
    ``x[j] < thresholds[q]`` (``-1`` if none).

    The classic ANSV is the special case ``thresholds = x``,
    ``positions = arange``.  The generalized form is what Lemma 2.2's
    *bracketing* needs: each feasible region looks left through the
    sampled minima for the nearest one strictly inside its column bound.

    ``O(lg n)`` rounds: a shared sparse table of range minima plus a
    per-query synchronized binary descent (concurrent reads — CREW-safe).
    """
    x = np.asarray(x, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.int64)
    if thresholds.shape != positions.shape:
        raise ValueError("thresholds and positions must have equal shape")
    if hasattr(pram, "network_nearest_smaller_left_threshold"):
        return pram.network_nearest_smaller_left_threshold(x, thresholds, positions)
    n = x.size
    nq = positions.size
    if n == 0 or nq == 0:
        return np.full(nq, -1, dtype=np.int64)
    if positions.min() < 0 or positions.max() > n:
        raise ValueError("query positions must lie in [0, len(x)]")
    table = _sparse_table(pram, x)
    K = ceil_log2(max(2, n))
    # Binary descent: maintain pos = candidate "rightmost index that may
    # still be the answer"; shrink by powers of two while the window
    # (pos-2^k, pos] contains no value < threshold.
    pos = positions - 1
    target = thresholds
    for k in range(K, -1, -1):
        step = 1 << k
        lo = pos - step + 1
        can = (pos >= 0) & (lo >= 0)
        wmin = np.full(nq, np.inf)
        if can.any():
            wmin[can] = _range_min(table, lo[can], pos[can] + 1)
        jump = can & (wmin >= target)
        pos = np.where(jump, pos - step, pos)
        pram.charge(rounds=1, processors=max(n, nq))
    # Handle prefixes whose whole window lacked a smaller value.
    ok = pos >= 0
    bad = ok & (x[np.maximum(pos, 0)] >= target)
    # One more sweep: any residual position still >= target means none exists.
    while bad.any():
        pos = np.where(bad, pos - 1, pos)
        ok = pos >= 0
        bad = ok & (x[np.maximum(pos, 0)] >= target)
        pram.charge(rounds=1, processors=int(bad.sum()) or 1)
    pram.charge(rounds=1, processors=max(1, nq))
    return np.where(pos >= 0, pos, -1).astype(np.int64)


def nearest_smaller_right(pram: Pram, x: np.ndarray) -> np.ndarray:
    """Index of nearest strictly-smaller value to the right (-1 if none)."""
    x = np.asarray(x, dtype=np.float64)
    rev = nearest_smaller_left(pram, x[::-1])
    n = x.size
    out = np.where(rev >= 0, n - 1 - rev, -1)
    return out[::-1].astype(np.int64)


def all_nearest_smaller_values(pram: Pram, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Both directions at once: ``(left, right)`` nearest-smaller indices."""
    return nearest_smaller_left(pram, x), nearest_smaller_right(pram, x)
