"""Doubly-logarithmic CRCW maximum/minimum (Valiant; Shiloach–Vishkin).

Finding the maximum of ``n`` values with ``n`` CRCW processors in
``O(lg lg n)`` rounds is the primitive behind Table 1.3's
``Θ(lg lg n)`` tube-maxima bound and the constant-round candidate
searches inside the row-minima recursions.

The construction: split the ``n`` values into ``⌈√n⌉`` blocks of
``⌈√n⌉``, solve each block recursively (in parallel), then compare all
pairs of block winners in a constant number of rounds — ``(√n)² = n``
comparisons, exactly the processor budget.  Depth ``O(lg lg n)``.

These wrappers delegate to the batched implementation in
:mod:`repro.pram.primitives` so the recursion is vectorized across any
number of independent instances.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.pram.machine import Pram
from repro.pram.primitives import _doubly_log_rowmin

__all__ = ["fast_min", "fast_max", "fast_argmin", "fast_argmax", "priority_find_first"]


def priority_find_first(pram: Pram, mask: np.ndarray) -> int:
    """Index of the first True in ``mask`` in O(1) rounds on CRCW-priority.

    The folklore constant-round "leftmost responder": every processor
    whose flag is set writes its index to one cell; the priority rule
    keeps the smallest.  Raises on non-priority machines (COMMON writers
    would disagree).  Returns ``-1`` when no flag is set.
    """
    from repro.pram.models import CRCW_PRIORITY, ConcurrencyViolation

    if pram.model is not CRCW_PRIORITY:
        raise ConcurrencyViolation(
            f"priority_find_first needs CRCW-priority, machine is {pram.model}"
        )
    mask = np.asarray(mask, dtype=bool)
    pram.charge(rounds=2, processors=max(1, mask.size))
    hits = np.nonzero(mask)[0]
    return int(hits[0]) if hits.size else -1


def fast_argmin(pram: Pram, values: np.ndarray) -> Tuple[float, int]:
    """Leftmost minimum of ``values`` in ``O(lg lg n)`` CRCW rounds.

    Returns ``(min_value, index)``; ``(inf, -1)`` for an empty input.
    """
    pram.require_crcw("fast_argmin")
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return np.inf, -1
    v, i = _doubly_log_rowmin(
        pram, x.reshape(1, -1), np.arange(x.size, dtype=np.int64).reshape(1, -1)
    )
    return float(v[0]), int(i[0])


def fast_argmax(pram: Pram, values: np.ndarray) -> Tuple[float, int]:
    """Leftmost maximum of ``values`` in ``O(lg lg n)`` CRCW rounds."""
    v, i = fast_argmin(pram, -np.asarray(values, dtype=np.float64))
    return (-v if i >= 0 else -np.inf), i


def fast_min(pram: Pram, values: np.ndarray) -> float:
    """Minimum value only (see :func:`fast_argmin`)."""
    return fast_argmin(pram, values)[0]


def fast_max(pram: Pram, values: np.ndarray) -> float:
    """Maximum value only (see :func:`fast_argmax`)."""
    return fast_argmax(pram, values)[0]
