"""Comparator-network sorting on the PRAM.

Batcher's bitonic sort: ``lg n (lg n + 1) / 2`` compare-exchange rounds
with ``n/2`` processors per round.  The paper's processor-allocation
steps cite an ``O(lg n)``-time ``n``-processor sort (AKS / Cole); we use
bitonic (``O(lg² n)`` rounds) wherever a generic sort is genuinely
required, and note that in the paper's algorithms the sequences being
"sorted" are almost always already monotone by the Monge property, so
an ``O(lg n)``-round *merge* (:func:`repro.pram.primitives.merge_ranks`)
suffices in the hot paths.  The ``lg²`` fallback is exercised only in
generic utilities, never inside the Theorem 2.3 / 3.2 recursions.
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import next_power_of_two
from repro.pram.machine import Pram

__all__ = ["bitonic_sort", "bitonic_argsort"]


def bitonic_argsort(pram: Pram, values: np.ndarray) -> np.ndarray:
    """Stable-enough argsort via bitonic network (ties by original index).

    Returns the permutation ``perm`` with ``values[perm]`` nondecreasing.
    Executes the genuine compare-exchange schedule, one charged round
    per (k, j) stage.
    """
    x = np.asarray(values, dtype=np.float64)
    n = x.size
    if n <= 1:
        pram.charge(rounds=1, processors=max(1, n))
        return np.arange(n, dtype=np.int64)
    m = next_power_of_two(n)
    keys = np.full(m, np.inf)
    keys[:n] = x
    idx = np.arange(m, dtype=np.int64)

    k = 2
    while k <= m:
        j = k >> 1
        while j >= 1:
            pos = np.arange(m)
            partner = pos ^ j
            upper = pos < partner  # each pair handled once, by its lower index
            ascending = (pos & k) == 0
            a, b = pos[upper], partner[upper]
            keep_dir = ascending[upper]
            ka, kb = keys[a], keys[b]
            ia, ib = idx[a], idx[b]
            # tie-break on original index keeps the sort deterministic
            swap = np.where(
                keep_dir,
                (ka > kb) | ((ka == kb) & (ia > ib)),
                (ka < kb) | ((ka == kb) & (ia < ib)),
            )
            sa = np.where(swap, kb, ka)
            sb = np.where(swap, ka, kb)
            keys[a], keys[b] = sa, sb
            ja = np.where(swap, ib, ia)
            jb = np.where(swap, ia, ib)
            idx[a], idx[b] = ja, jb
            pram.charge(rounds=1, processors=m // 2)
            j >>= 1
        k <<= 1
    return idx[idx < n][:n]


def bitonic_sort(pram: Pram, values: np.ndarray) -> np.ndarray:
    """Sorted copy of ``values`` (see :func:`bitonic_argsort`)."""
    x = np.asarray(values, dtype=np.float64)
    return x[bitonic_argsort(pram, x)]
