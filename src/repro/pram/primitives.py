"""Vectorized PRAM primitives with genuine round accounting.

Every function here executes its synchronous rounds as an explicit loop
(one NumPy map per round) and charges the machine's ledger for each
round actually run.  The ``rounds`` a caller observes are therefore a
*measurement* of the simulated algorithm, never a closed-form formula.

Conventions
-----------
- Groups of a *grouped* operation are described by an ``offsets`` array
  of length ``G+1``: group ``g`` occupies ``values[offsets[g]:offsets[g+1]]``.
  Empty groups are allowed and yield ``inf`` / index ``-1``.
- All argmin/argmax results break ties toward the *smallest index*,
  matching the paper's leftmost-minimum convention (§1.2).
- Scans are inclusive unless stated otherwise.

Fast path
---------
When the active kernel tier is fused-class
(:func:`repro.kernels.registry.fused_kernels_enabled`, the default),
the grouped-extremum strategies and
:func:`replicate_by_counts` compute their results with fused NumPy
reductions (:func:`_grouped_min_fused`, ``np.repeat``) and *replay* the
reference execution's ledger charges arithmetically.  Results and
ledger snapshots are bit-identical either way — only wall-clock
changes.  The round-by-round reference path is kept for verification
(``REPRO_KERNEL_TIER=reference``) and for machines that execute
genuinely on a network (they bypass these strategies entirely).  The
``blocked`` tier's streaming chokepoint
(:func:`repro.kernels.api.eval_grouped_min`) reuses
:func:`_grouped_min_fused` per tile and :func:`replay_grouped_min_charges`
for the ledger, so its charges are the same sequence again.
"""

from __future__ import annotations

from typing import Callable, Literal, Tuple

import numpy as np

from repro._util.bits import ceil_div, ceil_log2, ceil_sqrt
from repro.kernels.registry import fused_kernels_enabled
from repro.pram.ledger import notify_kernel
from repro.pram.machine import Pram

__all__ = [
    "prefix_scan",
    "exclusive_prefix_sum",
    "segmented_scan",
    "reduce",
    "broadcast",
    "pack_indices",
    "merge_ranks",
    "grouped_min",
    "grouped_max",
    "replicate_by_counts",
]

Op = Literal["add", "min", "max"]

_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "min": np.minimum,
    "max": np.maximum,
}

_IDENTITY = {"add": 0.0, "min": np.inf, "max": -np.inf}


def _shift_right(x: np.ndarray, d: int, fill) -> np.ndarray:
    """``y[i] = x[i-d]`` with ``fill`` for the first ``d`` slots."""
    y = np.empty_like(x)
    y[:d] = fill
    y[d:] = x[:-d]
    return y


# --------------------------------------------------------------------- #
# Scans
# --------------------------------------------------------------------- #
def prefix_scan(pram: Pram, values: np.ndarray, op: Op = "add") -> np.ndarray:
    """Inclusive prefix scan by Hillis–Steele doubling.

    Executes ``ceil(lg n)`` synchronous rounds with ``n`` processors.
    Requires concurrent reads for n>1 only in the trivial sense that two
    processors never read the same cell in a round, so this is EREW-safe.
    """
    if hasattr(pram, "network_prefix_scan"):
        return pram.network_prefix_scan(np.asarray(values, dtype=np.float64), op)
    x = np.array(values, dtype=np.float64, copy=True)
    n = x.size
    if n <= 1:
        pram.charge(rounds=1, processors=max(1, n))
        return x
    f = _OPS[op]
    fill = _IDENTITY[op]
    d = 1
    while d < n:
        x = f(x, _shift_right(x, d, fill))
        pram.charge(rounds=1, processors=n)
        d <<= 1
    return x


def exclusive_prefix_sum(pram: Pram, counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of nonnegative integer ``counts``.

    The canonical processor-allocation step: converts per-group counts
    into starting offsets.  ``ceil(lg n) + 1`` rounds.
    """
    counts = np.asarray(counts)
    inclusive = prefix_scan(pram, counts.astype(np.float64), op="add")
    out = np.empty(counts.size + 1, dtype=np.int64)
    out[0] = 0
    out[1:] = np.rint(inclusive).astype(np.int64)
    pram.charge(rounds=1, processors=max(1, counts.size))
    return out


def segmented_scan(
    pram: Pram,
    values: np.ndarray,
    heads: np.ndarray,
    op: Op = "add",
    max_segment_length: int | None = None,
) -> np.ndarray:
    """Inclusive scan restarting at every True in ``heads``.

    ``max_segment_length`` is the crucial knob for the paper's
    geometric-sum arguments: when all segments are known to have length
    ``<= L``, only ``ceil(lg L)`` doubling rounds are needed (elements
    farther apart than ``L`` never interact), so recursive subproblems
    of side ``sqrt(n)`` pay ``lg n / 2`` rounds, not ``lg n``.
    """
    x = np.array(values, dtype=np.float64, copy=True)
    n = x.size
    if n == 0:
        return x
    flags = np.array(heads, dtype=bool, copy=True)
    if flags.shape != (n,):
        raise ValueError("heads must be a boolean vector matching values")
    flags[0] = True
    limit = n if max_segment_length is None else min(n, max(1, int(max_segment_length)))
    f = _OPS[op]
    fill = _IDENTITY[op]
    d = 1
    if limit <= 1:
        pram.charge(rounds=1, processors=n)
        return x
    while d < limit:
        xs = _shift_right(x, d, fill)
        fs = _shift_right(flags, d, True)
        x = np.where(flags, x, f(x, xs))
        flags = flags | fs
        pram.charge(rounds=1, processors=n)
        d <<= 1
    return x


def reduce(pram: Pram, values: np.ndarray, op: Op = "add") -> float:
    """Tree reduction: ``ceil(lg n)`` rounds, halving active processors."""
    x = np.asarray(values, dtype=np.float64)
    n = x.size
    if n == 0:
        return _IDENTITY[op]
    f = _OPS[op]
    while x.size > 1:
        m = x.size
        half = m // 2
        merged = f(x[:half], x[half : 2 * half])
        if m % 2:
            merged = np.concatenate([merged, x[-1:]])
        x = merged
        pram.charge(rounds=1, processors=max(1, half))
    return float(x[0])


def broadcast(pram: Pram, value: float, n: int) -> np.ndarray:
    """Distribute one value to ``n`` processors.

    CREW/CRCW: one concurrent-read round.  EREW: ``ceil(lg n)`` doubling
    rounds (each processor that has the value copies it to one more).
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    if n == 0:
        out = np.empty(0, dtype=np.float64)
    else:
        out = np.full(n, value, dtype=np.float64)
    if pram.model.concurrent_read:
        pram.charge(rounds=1, processors=max(1, n))
    else:
        pram.charge(rounds=max(1, ceil_log2(max(1, n))), processors=max(1, n))
    return out


# --------------------------------------------------------------------- #
# Compaction / merging / routing
# --------------------------------------------------------------------- #
def pack_indices(pram: Pram, mask: np.ndarray) -> np.ndarray:
    """Stable compaction: indices ``i`` with ``mask[i]`` True, in order.

    Prefix sum for destination slots (+1 scatter round).
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return np.empty(0, dtype=np.int64)
    slots = prefix_scan(pram, mask.astype(np.float64), op="add")
    total = int(slots[-1])
    out = np.empty(total, dtype=np.int64)
    idx = np.nonzero(mask)[0]
    out[np.rint(slots[idx]).astype(np.int64) - 1] = idx
    pram.charge(rounds=1, processors=max(1, mask.size))
    return out


def merge_ranks(pram: Pram, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Cross-ranks of two sorted vectors (for O(lg)-round merging).

    Processor ``i`` of ``a`` binary-searches ``b`` (and vice versa), all
    in lockstep: ``ceil(lg(|b|+1)) + ceil(lg(|a|+1))`` rounds, CREW
    (concurrent reads of the probed arrays).

    Returns ``(rank_a_in_b, rank_b_in_a)`` where ``rank_a_in_b[i]`` is
    the number of elements of ``b`` strictly less than ``a[i]`` (ties
    resolved to keep the merge stable with ``a`` first).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    rank_a = np.searchsorted(b, a, side="left")
    pram.charge(rounds=max(1, ceil_log2(b.size + 1)), processors=max(1, a.size))
    rank_b = np.searchsorted(a, b, side="right")
    pram.charge(rounds=max(1, ceil_log2(a.size + 1)), processors=max(1, b.size))
    return rank_a.astype(np.int64), rank_b.astype(np.int64)


def replicate_by_counts(pram: Pram, values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Repeat ``values[g]`` ``counts[g]`` times, contiguously.

    The PRAM realization is an offsets scan, an exclusive scatter of
    group heads, and a segmented ``max`` copy-scan — ``O(lg total)``
    rounds.  Used to hand each allocated processor its group's metadata.
    """
    counts = np.asarray(counts, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if counts.shape != values.shape:
        raise ValueError("values and counts must have equal length")
    if fused_kernels_enabled() and not hasattr(pram, "network_prefix_scan"):
        # Fast path: one np.repeat instead of scatter + copy-scan, with
        # the reference execution's charges replayed verbatim.
        total = int(counts.sum())
        _replay_prefix_scan_charges(pram, counts.size)
        pram.charge(rounds=1, processors=max(1, counts.size))
        if total == 0:
            return np.empty(0, dtype=np.float64)
        pram.charge(rounds=1, processors=max(1, int((counts > 0).sum())))
        _replay_segmented_scan_charges(pram, total, total)
        return np.repeat(values, counts)
    offsets = exclusive_prefix_sum(pram, counts)
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.float64)
    heads = np.zeros(total, dtype=bool)
    seed = np.full(total, -np.inf)
    nonempty = counts > 0
    heads[offsets[:-1][nonempty]] = True
    seed[offsets[:-1][nonempty]] = values[nonempty]
    pram.charge(rounds=1, processors=max(1, int(nonempty.sum())))
    return segmented_scan(pram, seed, heads, op="max")


# --------------------------------------------------------------------- #
# Charge replay
#
# Fast-path kernels compute results with fused NumPy reductions but must
# leave the ledger exactly as the reference round-by-round execution
# would: same totals, same peak, and the same *sequence of charge calls*
# (phases count charges).  These helpers replay a primitive's charge
# pattern without its per-round array work.
# --------------------------------------------------------------------- #
def _replay_prefix_scan_charges(pram: Pram, n: int) -> None:
    """The charges :func:`prefix_scan` issues on an ``n``-vector."""
    if n <= 1:
        pram.charge(rounds=1, processors=max(1, n))
        return
    d = 1
    while d < n:
        pram.charge(rounds=1, processors=n)
        d <<= 1


def _replay_segmented_scan_charges(pram: Pram, n: int, max_segment_length: int | None) -> None:
    """The charges :func:`segmented_scan` issues on an ``n``-vector."""
    if n == 0:
        return
    limit = n if max_segment_length is None else min(n, max(1, int(max_segment_length)))
    if limit <= 1:
        pram.charge(rounds=1, processors=n)
        return
    d = 1
    while d < limit:
        pram.charge(rounds=1, processors=n)
        d <<= 1


# --------------------------------------------------------------------- #
# Grouped minima / maxima
# --------------------------------------------------------------------- #
def grouped_min(
    pram: Pram,
    values: np.ndarray,
    offsets: np.ndarray,
    strategy: Literal["auto", "binary", "allpairs", "doubly_log"] = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost minimum of each group: ``(min_values, arg_indices)``.

    ``arg_indices`` are positions in the flat ``values`` array (``-1``
    for empty groups, value ``inf``).

    Strategies
    ----------
    ``binary``
        Segmented scan over the flat array — ``ceil(lg max_width)``
        rounds, EREW/CREW-safe.  This is the strategy whose round count
        shrinks geometrically in the paper's ``sqrt``-recursions.
    ``allpairs``
        The CRCW constant-round trick: every pair inside a group is
        compared at once, losers mark themselves, the unique winner
        writes its index.  3 rounds, but needs ``sum(w_g^2)`` processors.
    ``doubly_log``
        Valiant / Shiloach–Vishkin recursive sqrt-splitting —
        ``O(lg lg max_width)`` rounds with linear processors (CRCW).
    ``auto``
        ``allpairs`` when CRCW and the pair budget fits, else
        ``doubly_log`` on CRCW, else ``binary``.
    """
    return _grouped_extremum(pram, values, offsets, "min", strategy)


def grouped_max(
    pram: Pram,
    values: np.ndarray,
    offsets: np.ndarray,
    strategy: Literal["auto", "binary", "allpairs", "doubly_log"] = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Leftmost maximum of each group (see :func:`grouped_min`)."""
    neg, idx = _grouped_extremum(pram, -np.asarray(values, dtype=np.float64), offsets, "min", strategy)
    return -neg, idx


def _grouped_extremum(
    pram: Pram,
    values: np.ndarray,
    offsets: np.ndarray,
    op: Literal["min"],
    strategy: str,
) -> Tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a nonempty 1-D array")
    widths = np.diff(offsets)
    if offsets[0] != 0 or offsets[-1] != values.size or (widths < 0).any():
        raise ValueError("offsets must start at 0, end at len(values), and be nondecreasing")
    n_groups = widths.size
    if n_groups == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    max_w = int(widths.max(initial=0))
    if max_w == 0:
        return np.full(n_groups, np.inf), np.full(n_groups, -1, dtype=np.int64)

    if hasattr(pram, "network_grouped_min"):
        # NetworkMachine: execute genuinely on the interconnection network.
        return pram.network_grouped_min(values, offsets)

    if strategy == "auto":
        if pram.model.is_crcw:
            pair_budget = int((widths.astype(np.int64) ** 2).sum())
            # Brent machines time-slice, so strategy choice must respect
            # the *physical* width or all-pairs degenerates to O(n) slices.
            budget = getattr(pram, "physical_processors", pram.processors)
            strategy = "allpairs" if pair_budget <= budget else "doubly_log"
        else:
            strategy = "binary"
    if strategy in ("allpairs", "doubly_log"):
        pram.require_crcw(f"grouped_min(strategy={strategy!r})")

    notify_kernel(pram.ledger, f"grouped-min:{strategy}", values.size)
    if strategy == "binary":
        return _grouped_min_binary(pram, values, offsets, widths, max_w)
    if strategy == "allpairs":
        return _grouped_min_allpairs(pram, values, offsets, widths)
    if strategy == "doubly_log":
        return _grouped_min_doubly_log(pram, values, offsets, widths)
    raise ValueError(f"unknown strategy {strategy!r}")


def _grouped_min_fused(values, offsets, widths):
    """Leftmost minimum of every group in two ``reduceat`` passes.

    The wall-clock workhorse of the fast path: one fused reduction for
    the group minima and one for the leftmost witness, independent of
    group widths (no per-width-class Python loop, no padded matrices).
    Semantics match the reference strategies exactly: empty and all-∞
    groups report ``(inf, -1)``; ties break to the smallest flat index.
    """
    n_groups = widths.size
    out_v = np.full(n_groups, np.inf)
    out_i = np.full(n_groups, -1, dtype=np.int64)
    ne = np.nonzero(widths > 0)[0]
    if ne.size == 0:
        return out_v, out_i
    # Consecutive nonempty groups are contiguous in the flat array
    # (empty groups occupy zero width), so their starts segment it.
    starts = offsets[:-1][ne]
    gmin = np.minimum.reduceat(values, starts)
    cand = np.where(values == np.repeat(gmin, widths[ne]),
                    np.arange(values.size, dtype=np.int64), values.size)
    argm = np.minimum.reduceat(cand, starts)
    out_v[ne] = gmin
    out_i[ne] = np.where(gmin < np.inf, argm, -1)
    return out_v, out_i


def _grouped_min_binary(pram, values, offsets, widths, max_w):
    """Segmented (value, index) min-scan; leftmost ties via index order."""
    n = values.size
    if fused_kernels_enabled():
        out_v, out_i = _grouped_min_fused(values, offsets, widths)
        if max_w > 1:
            d = 1
            while d < max_w:
                pram.charge(rounds=1, processors=n)
                d <<= 1
        else:
            pram.charge(rounds=1, processors=max(1, n))
        pram.charge(rounds=1, processors=max(1, int((widths > 0).sum())))
        return out_v, out_i
    heads = np.zeros(n, dtype=bool)
    nonempty = widths > 0
    heads[offsets[:-1][nonempty]] = True
    # Scan values; a second scan of "position of current min" rides along.
    # Combine rule (v1,i1)+(v2,i2) -> min with leftmost index; implemented
    # by scanning keys that order by (value, index) lexicographically.
    x = values.copy()
    arg = np.arange(n, dtype=np.int64)
    flags = heads.copy()
    flags[0] = True
    d = 1
    if max_w > 1:
        while d < max_w:
            xs = _shift_right(x, d, np.inf)
            args = _shift_right(arg, d, np.int64(-1))
            fs = _shift_right(flags, d, True)
            # prior element (xs) is to the LEFT: on ties it wins.
            take_prev = (~flags) & ((xs < x) | ((xs == x) & (args < arg) & (args >= 0)))
            x = np.where(take_prev, xs, x)
            arg = np.where(take_prev, args, arg)
            flags = flags | fs
            pram.charge(rounds=1, processors=n)
            d <<= 1
    else:
        pram.charge(rounds=1, processors=max(1, n))
    tails = offsets[1:] - 1
    out_v = np.full(widths.size, np.inf)
    out_i = np.full(widths.size, -1, dtype=np.int64)
    out_v[nonempty] = x[tails[nonempty]]
    # +inf minima report -1 (all-∞ group), matching the other strategies
    out_i[nonempty] = np.where(out_v[nonempty] < np.inf, arg[tails[nonempty]], -1)
    pram.charge(rounds=1, processors=max(1, int(nonempty.sum())))
    return out_v, out_i


def _width_classes(widths: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Bucket nonempty groups by power-of-two width class.

    Returns ``(padded_width, group_indices)`` pairs; padding a group to
    at most twice its width keeps the processor overcount ≤ 4x.
    """
    out = []
    nonempty = np.nonzero(widths > 0)[0]
    if nonempty.size == 0:
        return out
    classes = np.maximum(0, np.ceil(np.log2(np.maximum(widths[nonempty], 1))).astype(int))
    classes[widths[nonempty] == 1] = 0
    for c in np.unique(classes):
        out.append((1 << int(c), nonempty[classes == c]))
    return out


def _width_class_counts(widths: np.ndarray) -> list[tuple[int, int]]:
    """``(padded_width, group_count)`` pairs, ascending by width.

    Count-only companion of :func:`_width_classes` for charge replay:
    the fast paths charge per class but never gather the members, so a
    ``bincount`` over class labels replaces the ``unique`` sort.
    """
    w = widths[widths > 0]
    if w.size == 0:
        return []
    classes = np.maximum(0, np.ceil(np.log2(np.maximum(w, 1))).astype(int))
    classes[w == 1] = 0
    counts = np.bincount(classes)
    return [(1 << int(c), int(counts[c])) for c in np.nonzero(counts)[0]]


def _padded_matrix(values, offsets, widths, group_ids, width):
    """Gather groups ``group_ids`` into a (G, width) matrix padded with inf."""
    starts = offsets[:-1][group_ids]
    cols = np.arange(width)
    idx = starts[:, None] + cols[None, :]
    mask = cols[None, :] < widths[group_ids][:, None]
    safe = np.where(mask, idx, 0)
    mat = np.where(mask, values[safe], np.inf)
    return mat, starts


def _grouped_min_allpairs(pram, values, offsets, widths):
    """CRCW constant-round grouped minimum.

    For each width class: 1 comparison round (all pairs at once),
    1 CRCW-common round (losers raise a flag), 1 exclusive round (the
    unique winner writes its index).  Classes occupy disjoint processor
    blocks, so they share the same 3 rounds; processors charged are the
    total number of pairwise comparisons across classes.
    """
    n_groups = widths.size
    out_v = np.full(n_groups, np.inf)
    out_i = np.full(n_groups, -1, dtype=np.int64)
    if fused_kernels_enabled():
        out_v, out_i = _grouped_min_fused(values, offsets, widths)
        total_pairs = sum(cnt * width * width for width, cnt in _width_class_counts(widths))
        if total_pairs:
            pram.charge(rounds=3, processors=total_pairs, work=3 * total_pairs)
        return out_v, out_i
    total_pairs = 0
    for width, gids in _width_classes(widths):
        mat, starts = _padded_matrix(values, offsets, widths, gids, width)
        total_pairs += mat.shape[0] * width * width
        # loser[g, j] = exists i with (v_i < v_j) or (v_i == v_j and i < j)
        less = mat[:, :, None] < mat[:, None, :]
        eq = mat[:, :, None] == mat[:, None, :]
        ii = np.arange(width)
        earlier = ii[:, None] < ii[None, :]
        loser = (less | (eq & earlier[None, :, :])).any(axis=1)
        loser |= np.isposinf(mat)  # padding never wins (all-∞ group -> no winner)
        winner_col = np.argmin(loser, axis=1)
        has_winner = ~loser[np.arange(gids.size), winner_col]
        out_v[gids[has_winner]] = mat[np.arange(gids.size), winner_col][has_winner]
        out_i[gids[has_winner]] = (starts + winner_col)[has_winner]
    if total_pairs:
        pram.charge(rounds=3, processors=total_pairs, work=3 * total_pairs)
    return out_v, out_i


def _grouped_min_doubly_log(pram, values, offsets, widths):
    """Recursive sqrt-splitting: ``O(lg lg w)`` levels of 3-round all-pairs."""
    n_groups = widths.size
    out_v = np.full(n_groups, np.inf)
    out_i = np.full(n_groups, -1, dtype=np.int64)
    if fused_kernels_enabled() and not np.isneginf(values).any():
        # Reference semantics here disqualify +inf entries (idx -1
        # before the recursion), so all-∞ groups report (inf, -1); a
        # -inf entry additionally eliminates candidates in a way that
        # depends on the recursion's block structure, so such (degenerate)
        # inputs take the reference path instead of being fused.
        out_v, out_i = _grouped_min_fused(values, offsets, widths)
        for width, cnt in _width_class_counts(widths):
            _replay_doubly_log_charges(pram, cnt, width)
        return out_v, out_i
    for width, gids in _width_classes(widths):
        mat, starts = _padded_matrix(values, offsets, widths, gids, width)
        idx = starts[:, None] + np.arange(width)[None, :]
        idx = np.where(np.isinf(mat), np.int64(-1), idx)
        v, a = _doubly_log_rowmin(pram, mat, idx)
        ok = a >= 0
        out_v[gids[ok]] = v[ok]
        out_i[gids[ok]] = a[ok]
    return out_v, out_i


def _replay_doubly_log_charges(pram: Pram, B: int, w: int) -> None:
    """The charges :func:`_doubly_log_rowmin` issues on a ``(B, w)``
    padded matrix — the recursion on *dimensions only*."""
    if w <= 4:
        _replay_allpairs_rows_charge(pram, B, w)
        return
    s = ceil_sqrt(w)
    g = ceil_div(w, s)
    _replay_doubly_log_charges(pram, B * g, s)
    _replay_allpairs_rows_charge(pram, B, g)


def _replay_allpairs_rows_charge(pram: Pram, B: int, w: int) -> None:
    """The charge :func:`_allpairs_rows` issues on ``(B, w)`` candidates."""
    if w == 1:
        pram.charge(rounds=1, processors=max(1, B))
    else:
        pram.charge(rounds=3, processors=B * w * w, work=3 * B * w * w)


def resolve_grouped_strategy(crcw: bool, budget: int, widths: np.ndarray) -> str:
    """The concrete strategy ``grouped_min(strategy="auto")`` resolves to
    for groups of the given ``widths`` on a machine with ``budget``
    processors (the *physical* budget on Brent machines)."""
    if not crcw:
        return "binary"
    pair_budget = int((np.asarray(widths, dtype=np.int64) ** 2).sum())
    return "allpairs" if pair_budget <= budget else "doubly_log"


def replay_grouped_min_charges(
    target, widths: np.ndarray, *, crcw: bool, budget: int, strategy: str = "auto"
) -> None:
    """Replay the ledger charges one :func:`grouped_min` call over groups
    of the given ``widths`` would issue, without computing anything.

    ``target`` is any object with a ``charge(rounds=, processors=,
    work=)`` method — a machine, or a bare per-query
    :class:`~repro.pram.ledger.CostLedger` during a fused batched sweep.
    This is the fused-kernel invariant extended to multi-query batches:
    the batched kernels compute every owner's results in one global
    pass, then replay each owner's serial charge sequence into its own
    sub-account.  Strategy resolution happens *per owner* (a global
    ``auto`` could cross the all-pairs budget differently than each
    query alone would).
    """
    widths = np.asarray(widths, dtype=np.int64)
    if widths.size == 0:
        return
    max_w = int(widths.max(initial=0))
    if max_w == 0:
        return
    if strategy == "auto":
        strategy = resolve_grouped_strategy(crcw, budget, widths)
    # mirror the serial kernel event so fused per-query traces line up
    notify_kernel(getattr(target, "ledger", target), f"grouped-min:{strategy}", int(widths.sum()))
    if strategy == "binary":
        n = int(widths.sum())
        if max_w > 1:
            d = 1
            while d < max_w:
                target.charge(rounds=1, processors=n)
                d <<= 1
        else:
            target.charge(rounds=1, processors=max(1, n))
        target.charge(rounds=1, processors=max(1, int((widths > 0).sum())))
        return
    if strategy == "allpairs":
        # charge per padded width class — exactly what the serial
        # all-pairs kernel bills, not the tighter Σw² bound
        total_pairs = sum(cnt * w * w for w, cnt in _width_class_counts(widths))
        if total_pairs:
            target.charge(rounds=3, processors=total_pairs, work=3 * total_pairs)
        return
    if strategy == "doubly_log":
        for w, cnt in _width_class_counts(widths):
            _replay_doubly_log_charges(target, cnt, w)
        return
    raise ValueError(f"unknown strategy {strategy!r}")


def _doubly_log_rowmin(pram: Pram, mat: np.ndarray, idx: np.ndarray):
    """Row minima of a padded (B, w) matrix by recursive sqrt splitting.

    Each level: split rows into ceil(sqrt) blocks, recurse on blocks,
    then one 3-round all-pairs among the block winners.  Depth is
    ``O(lg lg w)``; every level's all-pairs uses O(B·w) comparisons.
    """
    B, w = mat.shape
    if w <= 4:
        return _allpairs_rows(pram, mat, idx)
    s = ceil_sqrt(w)
    g = ceil_div(w, s)
    padded = g * s
    if padded != w:
        pad_v = np.full((B, padded - w), np.inf)
        pad_i = np.full((B, padded - w), -1, dtype=np.int64)
        mat = np.concatenate([mat, pad_v], axis=1)
        idx = np.concatenate([idx, pad_i], axis=1)
    sub_v, sub_i = _doubly_log_rowmin(
        pram, mat.reshape(B * g, s), idx.reshape(B * g, s)
    )
    return _allpairs_rows(pram, sub_v.reshape(B, g), sub_i.reshape(B, g))


def _allpairs_rows(pram: Pram, mat: np.ndarray, idx: np.ndarray):
    """3-round CRCW all-pairs leftmost row minimum of (B, w) candidates."""
    B, w = mat.shape
    if w == 1:
        pram.charge(rounds=1, processors=max(1, B))
        return mat[:, 0].copy(), idx[:, 0].copy()
    less = mat[:, :, None] < mat[:, None, :]
    eq = mat[:, :, None] == mat[:, None, :]
    ii = np.arange(w)
    # leftmost tie-break uses original flat indices carried in ``idx``
    earlier = (idx[:, :, None] < idx[:, None, :]) & (idx[:, :, None] >= 0)
    loser = (less | (eq & earlier)).any(axis=1)
    loser |= idx < 0
    loser |= np.isposinf(mat)  # +inf never wins: all-inf groups report -1
    col = np.argmin(loser, axis=1)
    rowsel = np.arange(B)
    has = ~loser[rowsel, col]
    out_v = np.where(has, mat[rowsel, col], np.inf)
    out_i = np.where(has, idx[rowsel, col], -1)
    pram.charge(rounds=3, processors=B * w * w, work=3 * B * w * w)
    return out_v, out_i
