"""Cost accounting for simulated parallel machines.

A :class:`CostLedger` is shared by a machine and all primitives running
on it.  Primitives call :meth:`CostLedger.charge` once per *executed*
synchronous round (or once per batch of identical rounds), reporting how
many processors were active.  The ledger tracks:

``rounds``
    total synchronous time steps — the quantity Tables 1.1–1.3 bound;
``work``
    total processor-rounds (sum over rounds of active processors);
``peak_processors``
    the largest number of processors any single round requested — the
    quantity the tables' "Processors" column bounds.

Phases let an algorithm attribute costs to named stages (e.g.
``"sampled-rows"`` vs ``"interpolation"``); nested phases accumulate
into every open phase.

Fault-tolerance charges live in a *separate* retry account
(:meth:`CostLedger.charge_retry`): replayed rounds never touch
``rounds``/``work``/``phases``, so the paper-bound measurements are
unchanged by fault injection, and :meth:`CostLedger.snapshot` is
bit-identical to the fault-free snapshot whenever no retry fired.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List

__all__ = ["CostLedger", "PhaseStats", "notify_kernel", "observed_phase"]

#: Process-global profiling hooks (managed by :mod:`repro.obs.hooks`).
#: They live here — not in ``repro.obs`` — so the one chokepoint every
#: charge flows through pays a single empty-list test when disabled.
_ROUND_HOOKS: List = []
_KERNEL_HOOKS: List = []


def notify_kernel(ledger: "CostLedger | None", name: str, size: int) -> None:
    """Report one kernel invocation (entry evaluation, grouped extremum,
    network collective) to the ledger's observer and any global kernel
    hooks.  Purely observational: no charges, no machine state."""
    if ledger is None:
        return
    obs = ledger.observer
    if obs is not None:
        obs.on_kernel(ledger, name, int(size))
    if _KERNEL_HOOKS:
        for hook in tuple(_KERNEL_HOOKS):
            hook(ledger, name, int(size))


class _ObservedPhase:
    """Observer-only phase span: marks algorithm stages for the tracer
    without touching the ledger's charged ``phases`` accounting (so
    pinned snapshots stay byte-identical)."""

    __slots__ = ("ledger", "name")

    def __init__(self, ledger: "CostLedger", name: str) -> None:
        self.ledger = ledger
        self.name = name

    def __enter__(self) -> None:
        obs = self.ledger.observer
        if obs is not None:
            obs.on_phase(self.ledger, self.name, True)

    def __exit__(self, exc_type, exc, tb) -> None:
        obs = self.ledger.observer
        if obs is not None:
            obs.on_phase(self.ledger, self.name, False)


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_PHASE = _NullPhase()


def observed_phase(ledger: "CostLedger | None", name: str):
    """A context manager marking an observer-only span (see
    :class:`_ObservedPhase`); a shared no-op when nothing is attached."""
    if ledger is None or ledger.observer is None:
        return _NULL_PHASE
    return _ObservedPhase(ledger, name)


@dataclass
class PhaseStats:
    """Aggregated costs attributed to one named phase."""

    rounds: int = 0
    work: int = 0
    peak_processors: int = 0
    charges: int = 0

    def add(self, rounds: int, processors: int, work: int) -> None:
        self.rounds += rounds
        self.work += work
        self.peak_processors = max(self.peak_processors, processors)
        self.charges += 1


class CostLedger:
    """Mutable accumulator of simulated parallel cost.

    Parameters
    ----------
    processor_limit:
        Optional hard budget.  When set, any round requesting more
        processors raises :class:`ProcessorBudgetExceeded` — this is how
        tests assert the paper's processor bounds are respected.
    """

    def __init__(self, processor_limit: int | None = None) -> None:
        if processor_limit is not None and processor_limit < 1:
            raise ValueError(f"processor_limit must be >= 1, got {processor_limit}")
        self.processor_limit = processor_limit
        self.rounds = 0
        self.work = 0
        self.peak_processors = 0
        self.phases: Dict[str, PhaseStats] = {}
        self._open_phases: List[str] = []
        self.retry_rounds = 0
        self.retry_work = 0
        self.retry_peak_processors = 0
        self.retry_charges = 0
        self.retry_by_kind: Dict[str, PhaseStats] = {}
        #: Optional per-ledger observer (a bound :class:`repro.obs.Tracer`).
        #: Deliberately reset by ``__init__`` — a retried query wipes its
        #: sub-account and the engine rebinds the tracer with it.
        self.observer = None

    # ------------------------------------------------------------------ #
    def charge(self, rounds: int = 1, processors: int = 1, work: int | None = None) -> None:
        """Record ``rounds`` synchronous steps using ``processors`` each.

        ``work`` defaults to ``rounds * processors``; pass it explicitly
        when activity varies across the batched rounds.
        """
        if rounds < 0 or processors < 0:
            raise ValueError("rounds and processors must be nonnegative")
        if rounds == 0:
            return
        if processors == 0:
            processors = 1
        if self.processor_limit is not None and processors > self.processor_limit:
            raise ProcessorBudgetExceeded(
                f"a round requested {processors} processors, "
                f"but the budget is {self.processor_limit}"
            )
        if work is None:
            work = rounds * processors
        self.rounds += rounds
        self.work += work
        self.peak_processors = max(self.peak_processors, processors)
        for name in self._open_phases:
            self.phases[name].add(rounds, processors, work)
        obs = self.observer
        if obs is not None:
            obs.on_charge(self, rounds, processors, work)
        if _ROUND_HOOKS:
            for hook in tuple(_ROUND_HOOKS):
                hook(self, rounds, processors, work)

    def charge_retry(
        self, rounds: int = 1, processors: int = 1, work: int | None = None, kind: str = "fault"
    ) -> None:
        """Record a replayed (faulted) round in the retry account.

        Retry charges are kept apart from the paper-bound totals:
        ``rounds``/``work``/``peak_processors``/``phases`` never see
        them.  The processor budget is not re-checked — the replayed
        round already passed it when it first ran.
        """
        if rounds < 0 or processors < 0:
            raise ValueError("rounds and processors must be nonnegative")
        if rounds == 0:
            return
        if processors == 0:
            processors = 1
        if work is None:
            work = rounds * processors
        self.retry_rounds += rounds
        self.retry_work += work
        self.retry_peak_processors = max(self.retry_peak_processors, processors)
        self.retry_charges += 1
        self.retry_by_kind.setdefault(kind, PhaseStats()).add(rounds, processors, work)
        obs = self.observer
        if obs is not None:
            obs.on_retry_charge(self, rounds, processors, work, kind)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Attribute charges inside the ``with`` block to ``name``."""
        stats = self.phases.setdefault(name, PhaseStats())
        self._open_phases.append(name)
        obs = self.observer
        if obs is not None:
            obs.on_phase(self, name, True)
        try:
            yield stats
        finally:
            popped = self._open_phases.pop()
            assert popped == name, "phase stack corrupted"
            obs = self.observer
            if obs is not None:
                obs.on_phase(self, name, False)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Immutable summary, convenient for benches and reports.

        The ``"retry"`` key appears only when at least one retry was
        charged, keeping fault-free snapshots bit-identical to those of
        a machine with no fault plan at all.
        """
        snap = {
            "rounds": self.rounds,
            "work": self.work,
            "peak_processors": self.peak_processors,
            "phases": {k: vars(v).copy() for k, v in self.phases.items()},
        }
        if self.retry_charges:
            snap["retry"] = {
                "rounds": self.retry_rounds,
                "work": self.retry_work,
                "peak_processors": self.retry_peak_processors,
                "charges": self.retry_charges,
                "by_kind": {k: vars(v).copy() for k, v in self.retry_by_kind.items()},
            }
        return snap

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's totals into this one (sequential join)."""
        self.rounds += other.rounds
        self.work += other.work
        self.peak_processors = max(self.peak_processors, other.peak_processors)
        for name, stats in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStats())
            mine.rounds += stats.rounds
            mine.work += stats.work
            mine.peak_processors = max(mine.peak_processors, stats.peak_processors)
            mine.charges += stats.charges
        self.retry_rounds += other.retry_rounds
        self.retry_work += other.retry_work
        self.retry_peak_processors = max(self.retry_peak_processors, other.retry_peak_processors)
        self.retry_charges += other.retry_charges
        for name, stats in other.retry_by_kind.items():
            mine = self.retry_by_kind.setdefault(name, PhaseStats())
            mine.rounds += stats.rounds
            mine.work += stats.work
            mine.peak_processors = max(mine.peak_processors, stats.peak_processors)
            mine.charges += stats.charges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CostLedger(rounds={self.rounds}, work={self.work}, "
            f"peak_processors={self.peak_processors})"
        )


class ProcessorBudgetExceeded(RuntimeError):
    """A simulated round asked for more processors than the budget allows."""
