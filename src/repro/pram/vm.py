"""An instruction-level PRAM virtual machine.

While :mod:`repro.pram.primitives` simulates algorithms at the level of
whole vectorized rounds, this module executes *programs*: every
processor runs the same straight-line instruction sequence (SIMD style,
with per-processor predication), and every instruction is one
synchronous step whose shared-memory accesses are checked against the
machine model — concurrent reads rejected on EREW, concurrent writes
rejected on CREW, disagreeing writers rejected on CRCW-common, priority
resolution on CRCW-priority.

The VM exists to pin down the semantics the coarse simulator assumes:
the test-suite runs classic textbook programs (parallel max via
concurrent writes, pointer jumping, prefix sums) and asserts both the
results and the *violations* (e.g. the O(1) CRCW max program must fault
on a CREW machine).

Example
-------
>>> vm = PramVM(CRCW_COMMON, processors=4, memory_size=8)
>>> vm.memory[0:4] = [3.0, 9.0, 4.0, 1.0]
>>> prog = [ProcId("i"), Load("x", "i"), Const("z", 0.0), ...]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.pram.ledger import CostLedger
from repro.pram.models import (
    ConcurrencyViolation,
    PramModel,
    WritePolicy,
    resolve_concurrent_writes,
)

__all__ = [
    "PramVM",
    "Instruction",
    "Const",
    "ProcId",
    "Load",
    "Store",
    "BinOp",
    "UnaryOp",
    "SetActive",
    "AllActive",
]


class Instruction:
    """Base class; one synchronous PRAM step."""


@dataclass(frozen=True)
class Const(Instruction):
    """``R[dst] = value`` on every active processor."""

    dst: str
    value: float


@dataclass(frozen=True)
class ProcId(Instruction):
    """``R[dst] = processor index``."""

    dst: str


@dataclass(frozen=True)
class Load(Instruction):
    """``R[dst] = M[int(R[addr])]`` — checked read."""

    dst: str
    addr: str


@dataclass(frozen=True)
class Store(Instruction):
    """``M[int(R[addr])] = R[src]`` — checked, conflict-resolved write."""

    src: str
    addr: str


@dataclass(frozen=True)
class BinOp(Instruction):
    """``R[dst] = op(R[a], R[b])``; op ∈ {add, sub, mul, min, max, lt, le, eq, and, or}."""

    dst: str
    op: str
    a: str
    b: str


@dataclass(frozen=True)
class UnaryOp(Instruction):
    """``R[dst] = op(R[a])``; op ∈ {neg, not, floor}."""

    dst: str
    op: str
    a: str


@dataclass(frozen=True)
class SetActive(Instruction):
    """Predicate the following instructions on ``R[pred] != 0``.

    Deactivated processors idle (they still count as present but issue
    no memory traffic)."""

    pred: str


@dataclass(frozen=True)
class AllActive(Instruction):
    """Reactivate every processor."""


_BINOPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "lt": lambda a, b: (a < b).astype(np.float64),
    "le": lambda a, b: (a <= b).astype(np.float64),
    "eq": lambda a, b: (a == b).astype(np.float64),
    "and": lambda a, b: ((a != 0) & (b != 0)).astype(np.float64),
    "or": lambda a, b: ((a != 0) | (b != 0)).astype(np.float64),
}

_UNOPS = {
    "neg": np.negative,
    "not": lambda a: (a == 0).astype(np.float64),
    "floor": np.floor,
}


class PramVM:
    """A SIMD PRAM executing checked straight-line programs.

    Parameters
    ----------
    model:
        Concurrency semantics to enforce.
    processors:
        Number of processors (all run the same program).
    memory_size:
        Cells of shared memory, initialized to zero.
    """

    def __init__(
        self,
        model: PramModel,
        processors: int,
        memory_size: int,
        ledger: CostLedger | None = None,
    ) -> None:
        if processors < 1:
            raise ValueError("processors must be >= 1")
        if memory_size < 1:
            raise ValueError("memory_size must be >= 1")
        self.model = model
        self.processors = processors
        self.memory = np.zeros(memory_size, dtype=np.float64)
        self.registers: Dict[str, np.ndarray] = {}
        self.active = np.ones(processors, dtype=bool)
        self.ledger = ledger if ledger is not None else CostLedger()

    # ------------------------------------------------------------------ #
    def reg(self, name: str) -> np.ndarray:
        """Register file column ``name`` (created zeroed on first use)."""
        if name not in self.registers:
            self.registers[name] = np.zeros(self.processors, dtype=np.float64)
        return self.registers[name]

    def _addresses(self, reg: np.ndarray) -> np.ndarray:
        addr = reg[self.active].astype(np.int64)
        if addr.size and (addr.min() < 0 or addr.max() >= self.memory.size):
            raise IndexError(
                f"address out of range [0, {self.memory.size}): "
                f"{int(addr.min())}..{int(addr.max())}"
            )
        return addr

    # ------------------------------------------------------------------ #
    def execute(self, program: Sequence[Instruction]) -> None:
        """Run ``program``; each instruction costs one charged round."""
        for instr in program:
            self._step(instr)

    def _step(self, instr: Instruction) -> None:
        act = self.active
        n_act = int(act.sum())
        if isinstance(instr, Const):
            self.reg(instr.dst)[act] = instr.value
        elif isinstance(instr, ProcId):
            self.reg(instr.dst)[act] = np.nonzero(act)[0].astype(np.float64)
        elif isinstance(instr, Load):
            addr = self._addresses(self.reg(instr.addr))
            self.model.check_reads(addr, round_index=self.ledger.rounds)
            self.reg(instr.dst)[act] = self.memory[addr]
        elif isinstance(instr, Store):
            addr = self._addresses(self.reg(instr.addr))
            vals = self.reg(instr.src)[act]
            pids = np.nonzero(act)[0]
            uniq, winners = resolve_concurrent_writes(
                self.model.write_policy,
                addr,
                vals,
                processor_ids=pids,
                model_name=self.model.name,
                round_index=self.ledger.rounds,
            )
            self.memory[uniq] = winners
        elif isinstance(instr, BinOp):
            fn = _BINOPS.get(instr.op)
            if fn is None:
                raise ValueError(f"unknown binary op {instr.op!r}")
            self.reg(instr.dst)[act] = fn(self.reg(instr.a), self.reg(instr.b))[act]
        elif isinstance(instr, UnaryOp):
            fn = _UNOPS.get(instr.op)
            if fn is None:
                raise ValueError(f"unknown unary op {instr.op!r}")
            self.reg(instr.dst)[act] = fn(self.reg(instr.a))[act]
        elif isinstance(instr, SetActive):
            self.active = self.reg(instr.pred) != 0
        elif isinstance(instr, AllActive):
            self.active = np.ones(self.processors, dtype=bool)
        else:
            raise TypeError(f"not an Instruction: {instr!r}")
        self.ledger.charge(rounds=1, processors=max(1, n_act))
