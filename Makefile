# Developer entry points.  Everything assumes the in-repo layout
# (PYTHONPATH=src); no installation step is required.

PY ?= python
PYTHONPATH := src

.PHONY: test test-fast lint bench-smoke bench bench-batch-smoke

## test: full tier-1 suite (slow scaling/property tests included)
test:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q

## test-fast: developer loop — everything except tests marked `slow`
test-fast:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q -m "not slow"

## lint: mirrors the CI ruff step (requires ruff on PATH)
lint:
	ruff check src tests benchmarks

## bench-smoke: perf-regression smoke (small sizes, verifies the
## fused-kernel invariant; does not overwrite BENCH_hotpath.json)
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_regress.py --smoke --out /tmp/BENCH_hotpath_smoke.json

## bench: full pinned workload matrix -> BENCH_hotpath.json
bench:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_regress.py

## bench-batch-smoke: batched-vs-serial equivalence smoke; refuses to
## pass if solve_many diverges from the serial path bit-for-bit
bench-batch-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_batch.py --smoke --out /tmp/BENCH_batch_smoke.json
