# Developer entry points.  Everything assumes the in-repo layout
# (PYTHONPATH=src); no installation step is required.

PY ?= python
PYTHONPATH := src

.PHONY: test test-fast lint cov bench-smoke bench bench-batch-smoke bench-shard-smoke bench-obs bench-obs-smoke chaos-shard-smoke bench-tier bench-tier-smoke bench-index bench-index-smoke serve-smoke bench-serve bench-serve-smoke

## test: full tier-1 suite (slow scaling/property tests included)
test:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q

## test-fast: developer loop — everything except tests marked `slow`
test-fast:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q -m "not slow"

## lint: mirrors the CI ruff step (requires ruff on PATH)
lint:
	ruff check src tests benchmarks

## cov: coverage-gated suite (requires pytest-cov: pip install ".[cov]").
## The floor ratchets up as the suite grows; CI enforces it.
cov:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q -m "not slow" \
		--cov=repro --cov-report=term-missing --cov-report=xml --cov-fail-under=80

## bench-smoke: perf-regression smoke (small sizes, verifies the
## fused-kernel invariant; does not overwrite BENCH_hotpath.json)
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_regress.py --smoke --out /tmp/BENCH_hotpath_smoke.json

## bench: full pinned workload matrix -> BENCH_hotpath.json
bench:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_regress.py

## bench-batch-smoke: batched-vs-serial equivalence smoke; refuses to
## pass if solve_many diverges from the serial path bit-for-bit
bench-batch-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_batch.py --smoke --out /tmp/BENCH_batch_smoke.json

## bench-shard-smoke: sharded-vs-fused equivalence smoke (2 workers);
## refuses to pass unless values/witnesses/ledgers are bit-identical
bench-shard-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_shard.py --smoke --out /tmp/BENCH_shard_smoke.json

## chaos-shard-smoke: supervised-recovery smoke — the seeded
## worker-kill / delay / shm-corruption matrix plus the chaos benchmark
## in smoke mode; refuses to pass unless every recovered run is
## bit-identical to serial
chaos-shard-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q tests/test_shard_supervise.py
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_shard_chaos.py --smoke --out /tmp/BENCH_shard_chaos_smoke.json

## bench-tier-smoke: fused-vs-blocked kernel-tier sweep at smoke sizes;
## refuses to pass unless every blocked run is bit-identical to fused
## and the peak resident tile stays within each budget
bench-tier-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_tier.py --smoke --out /tmp/BENCH_tier_smoke.json

## bench-tier: full kernel-tier throughput sweep -> BENCH_tier.json
bench-tier:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_tier.py

## bench-index-smoke: build-once index amortization smoke; refuses to
## pass unless index, one-shot solve, and brute force agree on every
## query rectangle (values AND witnesses)
bench-index-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_index.py --smoke --out /tmp/BENCH_index_smoke.json

## bench-index: full amortization matrix (covers the n>=512, Q>=100
## acceptance point) -> BENCH_index.json
bench-index:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_index.py

## serve-smoke: the serving suites (virtual-clock state machine,
## real-asyncio concurrency + chaos) plus the served-vs-direct
## equivalence smoke of the query-service benchmark
serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) -m pytest -x -q tests/test_serve_service.py tests/test_serve_concurrency.py
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_serve.py --smoke --out /tmp/BENCH_serve_smoke.json

## bench-serve: full closed/open-loop serving matrix (covers the n=512
## fused-vs-unbatched acceptance point) -> BENCH_serve.json
bench-serve:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_serve.py

## bench-serve-smoke: just the benchmark's smoke matrix
bench-serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_serve.py --smoke --out /tmp/BENCH_serve_smoke.json

## bench-obs: observability overhead budget -> BENCH_obs.json
## (fails if disabled-tracer overhead >= 5%)
bench-obs:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_obs_overhead.py

## bench-obs-smoke: fast overhead check + a smoke Chrome trace artifact
bench-obs-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PY) benchmarks/bench_obs_overhead.py --smoke \
		--out /tmp/BENCH_obs_smoke.json --trace-out /tmp/trace_smoke.json
