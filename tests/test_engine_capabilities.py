"""Capability errors and the banded/windowed registry family.

Every unsupported ``(problem, backend)`` pair must fail with a
:class:`CapabilityError` that names the *nearest supported alternative*
— a concrete pair the caller could switch to — and the window-family
variants (``banded_min``, ``banded_max``, ``windowed_min``) must be
reachable through :func:`repro.solve` wherever they are registered,
matching their sequential references exactly.
"""

import re

import numpy as np
import pytest

from repro.core.banded import banded_row_maxima, banded_row_minima
from repro.core.windowed import windowed_monge_row_minima
from repro.engine import CapabilityError, solve
from repro.engine.registry import BACKENDS, registry
from repro.monge.generators import random_inverse_monge, random_monge
from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram
from repro.pram.models import CRCW_COMMON

UNSUPPORTED = [
    (p, b)
    for p in registry.problems()
    for b in BACKENDS
    if not registry.supports(p, b)
]


def random_band(m, n, rng, width=4):
    lo = np.sort(rng.integers(0, n + 1, size=m))
    hi = np.minimum(n, np.maximum.accumulate(np.minimum(lo + width, n)))
    hi = np.sort(hi)
    return lo.astype(np.int64), hi.astype(np.int64)


# --------------------------------------------------------------------- #
# nearest-alternative capability errors
# --------------------------------------------------------------------- #
def test_some_pairs_are_unsupported():
    # the window family keeps the matrix sparse, so the error path below
    # is genuinely exercised
    assert UNSUPPORTED


@pytest.mark.parametrize("problem,backend", UNSUPPORTED)
def test_unsupported_pair_names_nearest_alternative(problem, backend):
    with pytest.raises(CapabilityError) as excinfo:
        registry.lookup(problem, backend)
    msg = str(excinfo.value)
    assert "nearest supported alternative" in msg
    found = re.search(
        r"nearest supported alternative: \('([^']+)', '([^']+)'\)", msg
    )
    assert found, msg
    assert found.group(1) == problem
    # the suggestion is real: that pair actually resolves
    assert registry.supports(problem, found.group(2))
    assert registry.lookup(problem, found.group(2)) is not None


def test_unknown_problem_and_backend_keep_their_messages():
    with pytest.raises(CapabilityError, match="unknown problem"):
        registry.lookup("no_such_problem", "pram-crcw")
    with pytest.raises(CapabilityError, match="unknown backend"):
        registry.lookup("rowmin", "no_such_backend")


# --------------------------------------------------------------------- #
# banded variants via the engine front door
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "backend", [b for b in BACKENDS if registry.supports("banded_min", b)]
)
def test_banded_min_via_solve_matches_reference(backend):
    rng = np.random.default_rng(3)
    a = random_monge(10, 12, rng, integer=True)
    lo, hi = random_band(10, 12, rng)
    res = solve("banded_min", (a, lo, hi), backend=backend)
    want_v, want_c = banded_row_minima(a, lo, hi)
    np.testing.assert_array_equal(res.values, want_v)
    np.testing.assert_array_equal(res.witnesses, want_c)
    assert res.problem == "banded_min"


@pytest.mark.parametrize(
    "backend", [b for b in BACKENDS if registry.supports("banded_max", b)]
)
def test_banded_max_via_solve_matches_reference(backend):
    rng = np.random.default_rng(4)
    a = random_inverse_monge(9, 11, rng, integer=True)
    lo, hi = random_band(9, 11, rng)
    res = solve("banded_max", (a, lo, hi), backend=backend)
    want_v, want_c = banded_row_maxima(a, lo, hi)
    np.testing.assert_array_equal(res.values, want_v)
    np.testing.assert_array_equal(res.witnesses, want_c)


def test_banded_backends_cover_prams_networks_and_sequential():
    for problem in ("banded_min", "banded_max"):
        for backend in BACKENDS:
            assert registry.supports(problem, backend), (problem, backend)


def test_banded_requires_window_triple():
    a = random_monge(6, 6, np.random.default_rng(0))
    with pytest.raises(TypeError, match="triple"):
        solve("banded_min", a, backend="pram-crcw")


# --------------------------------------------------------------------- #
# windowed variant: PRAM-only, strict-only
# --------------------------------------------------------------------- #
def test_windowed_min_via_solve_matches_reference():
    rng = np.random.default_rng(5)
    m, n = 12, 10
    a = random_monge(m, n, rng, integer=True)
    base = np.cumsum(rng.integers(-2, 3, size=m))
    lo = np.clip(base, 0, n)
    hi = np.clip(base + rng.integers(0, 6, size=m), 0, n)
    res = solve("windowed_min", (a, lo, hi), backend="pram-crcw")
    machine = Pram(CRCW_COMMON, 1 << 40, ledger=CostLedger())
    want_v, want_c = windowed_monge_row_minima(machine, a, lo, hi)
    np.testing.assert_array_equal(res.values, want_v)
    np.testing.assert_array_equal(res.witnesses, want_c)


def test_windowed_min_unsupported_backends_point_to_pram():
    rng = np.random.default_rng(6)
    a = random_monge(5, 5, rng)
    lo = np.zeros(5, dtype=np.int64)
    hi = np.full(5, 5, dtype=np.int64)
    for backend in ("sequential", "hypercube"):
        if registry.supports("windowed_min", backend):
            continue
        with pytest.raises(CapabilityError, match="nearest supported alternative"):
            solve("windowed_min", (a, lo, hi), backend=backend)


def test_window_family_declares_no_degradation_path():
    rng = np.random.default_rng(8)
    a = random_monge(6, 7, rng)
    lo, hi = random_band(6, 7, rng)
    with pytest.raises(CapabilityError, match="degradation"):
        solve("banded_min", (a, lo, hi), backend="pram-crcw", strict=False)
