"""Network primitives across all three topologies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import CubeConnectedCycles, Hypercube, ShuffleExchange
from repro.networks.primitives import (
    RoutingCollision,
    net_bitonic_sort,
    net_broadcast,
    net_monotone_route,
    net_prefix_scan,
    net_reduce,
    net_segmented_argmin_scan,
    net_segmented_scan,
)
from repro.pram.ledger import CostLedger

TOPOLOGIES = [Hypercube, CubeConnectedCycles, ShuffleExchange]


def fresh(cls, dim=6):
    return cls(dim, ledger=CostLedger())


@pytest.mark.parametrize("cls", TOPOLOGIES)
def test_prefix_scan_matches_cumsum(cls, rng):
    net = fresh(cls)
    x = rng.normal(size=64)
    np.testing.assert_allclose(net_prefix_scan(net, x, "add"), np.cumsum(x), rtol=1e-12)


def test_prefix_scan_min_max(rng):
    net = fresh(Hypercube)
    x = rng.normal(size=64)
    np.testing.assert_array_equal(net_prefix_scan(net, x, "min"), np.minimum.accumulate(x))
    np.testing.assert_array_equal(net_prefix_scan(net, x, "max"), np.maximum.accumulate(x))


def test_prefix_scan_validates_shape():
    with pytest.raises(ValueError):
        net_prefix_scan(fresh(Hypercube), np.ones(10), "add")


def test_hypercube_prefix_rounds_is_dim():
    net = fresh(Hypercube, 8)
    net_prefix_scan(net, np.ones(256), "add")
    assert net.ledger.rounds == 8


@pytest.mark.parametrize("cls", TOPOLOGIES)
def test_segmented_scan(cls, rng):
    net = fresh(cls)
    x = rng.normal(size=64)
    heads = rng.random(64) < 0.25
    heads[0] = True
    got = net_segmented_scan(net, x, heads, "add")
    ref = np.empty(64)
    acc = 0.0
    for i in range(64):
        acc = x[i] if heads[i] else acc + x[i]
        ref[i] = acc
    np.testing.assert_allclose(got, ref, rtol=1e-9)


@pytest.mark.parametrize("cls", TOPOLOGIES)
def test_segmented_argmin_scan_leftmost(cls):
    net = fresh(cls)
    x = np.zeros(64)  # every value ties: leftmost index must win
    heads = np.zeros(64, dtype=bool)
    heads[[0, 10, 40]] = True
    v, idx = net_segmented_argmin_scan(net, x, np.arange(64), heads)
    assert idx[9] == 0 and idx[39] == 10 and idx[63] == 40


def test_segmented_argmin_random_reference(rng):
    net = fresh(Hypercube)
    x = rng.integers(0, 5, size=64).astype(float)
    heads = rng.random(64) < 0.2
    heads[0] = True
    v, idx = net_segmented_argmin_scan(net, x, np.arange(64), heads)
    rv, ri = np.empty(64), np.empty(64, dtype=int)
    for i in range(64):
        if heads[i] or i == 0:
            rv[i], ri[i] = x[i], i
        elif x[i] < rv[i - 1]:
            rv[i], ri[i] = x[i], i
        else:
            rv[i], ri[i] = rv[i - 1], ri[i - 1]
    np.testing.assert_array_equal(v, rv)
    np.testing.assert_array_equal(idx, ri)


@pytest.mark.parametrize("cls", TOPOLOGIES)
def test_reduce_and_broadcast(cls, rng):
    net = fresh(cls)
    x = rng.normal(size=64)
    assert np.isclose(net_reduce(net, x, "add"), x.sum())
    assert net_reduce(net, x, "min") == x.min()
    np.testing.assert_array_equal(net_broadcast(net, 9.5), np.full(64, 9.5))


@pytest.mark.parametrize("cls", TOPOLOGIES)
def test_bitonic_sort(cls, rng):
    net = fresh(cls)
    x = rng.normal(size=64)
    k, p = net_bitonic_sort(net, x, np.arange(64))
    np.testing.assert_array_equal(k, np.sort(x))
    np.testing.assert_array_equal(x[p.astype(int)], np.sort(x))


def test_bitonic_sort_without_payload(rng):
    net = fresh(Hypercube)
    x = rng.integers(0, 4, size=64).astype(float)  # duplicates
    k, p = net_bitonic_sort(net, x)
    assert p is None
    np.testing.assert_array_equal(k, np.sort(x))


@pytest.mark.parametrize("cls", TOPOLOGIES)
def test_monotone_route_delivers(cls, rng):
    net = fresh(cls)
    src = np.sort(rng.choice(64, size=20, replace=False))
    dst = np.sort(rng.choice(64, size=20, replace=False))
    act = np.zeros(64)
    act[src] = 1
    pay = np.zeros(64)
    pay[src] = 100.0 + np.arange(20)
    d = np.zeros(64)
    d[src] = dst
    out = net_monotone_route(net, pay, d, act, fill=-1.0)
    np.testing.assert_array_equal(out[dst], 100.0 + np.arange(20))
    mask = np.ones(64, dtype=bool)
    mask[dst] = False
    assert (out[mask] == -1).all()


def test_monotone_route_rejects_nonmonotone():
    net = fresh(Hypercube)
    act = np.zeros(64)
    act[[2, 3]] = 1
    d = np.zeros(64)
    d[2], d[3] = 10, 5  # decreasing: not monotone
    with pytest.raises(ValueError):
        net_monotone_route(net, np.zeros(64), d, act)


def test_monotone_route_rejects_out_of_range():
    net = fresh(Hypercube)
    act = np.zeros(64)
    act[1] = 1
    d = np.zeros(64)
    d[1] = 64
    with pytest.raises(ValueError):
        net_monotone_route(net, np.zeros(64), d, act)


def test_monotone_route_empty_is_noop():
    net = fresh(Hypercube)
    out = net_monotone_route(net, np.zeros(64), np.zeros(64), np.zeros(64), fill=7.0)
    assert (out == 7.0).all()


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_property_route_concentrate_and_spread(seed):
    rng = np.random.default_rng(seed)
    net = fresh(Hypercube, 5)
    k = int(rng.integers(1, 32))
    src = np.sort(rng.choice(32, size=k, replace=False))
    dst = np.sort(rng.choice(32, size=k, replace=False))
    act = np.zeros(32)
    act[src] = 1
    pay = np.zeros(32)
    pay[src] = src.astype(float)
    d = np.zeros(32)
    d[src] = dst
    out = net_monotone_route(net, pay, d, act, fill=np.nan)
    np.testing.assert_array_equal(out[dst], src.astype(float))
