"""Bit/validation utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.bits import (
    ceil_div,
    ceil_log2,
    ceil_sqrt,
    floor_log2,
    is_power_of_two,
    iterated_log2,
    next_power_of_two,
)
from repro._util.validation import as_float_matrix, check_axis_lengths, require


def test_ceil_div():
    assert ceil_div(10, 3) == 4
    assert ceil_div(9, 3) == 3
    assert ceil_div(0, 5) == 0
    with pytest.raises(ValueError):
        ceil_div(1, 0)


def test_ceil_log2():
    assert [ceil_log2(n) for n in (1, 2, 3, 4, 5, 8, 9)] == [0, 1, 2, 2, 3, 3, 4]
    with pytest.raises(ValueError):
        ceil_log2(0)


def test_floor_log2():
    assert [floor_log2(n) for n in (1, 2, 3, 4, 7, 8)] == [0, 1, 1, 2, 2, 3]
    with pytest.raises(ValueError):
        floor_log2(0)


def test_ceil_sqrt():
    assert [ceil_sqrt(n) for n in (0, 1, 2, 4, 5, 16, 17)] == [0, 1, 2, 2, 3, 4, 5]
    with pytest.raises(ValueError):
        ceil_sqrt(-1)


def test_power_of_two_helpers():
    assert is_power_of_two(1) and is_power_of_two(64)
    assert not is_power_of_two(0) and not is_power_of_two(12)
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    with pytest.raises(ValueError):
        next_power_of_two(0)


def test_iterated_log2():
    assert iterated_log2(1) == 0
    assert iterated_log2(2) == 1
    assert iterated_log2(16) == 3
    assert iterated_log2(65536) == 4


@given(st.integers(1, 10**9))
def test_ceil_log2_is_tight(n):
    k = ceil_log2(n)
    assert 2**k >= n
    assert k == 0 or 2 ** (k - 1) < n


@given(st.integers(0, 10**12))
def test_ceil_sqrt_is_tight(n):
    s = ceil_sqrt(n)
    assert s * s >= n
    assert s == 0 or (s - 1) * (s - 1) < n


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


def test_as_float_matrix():
    m = as_float_matrix([[1, 2], [3, 4]])
    assert m.dtype == np.float64 and m.flags.c_contiguous
    with pytest.raises(ValueError):
        as_float_matrix([1, 2, 3])
    with pytest.raises(ValueError):
        as_float_matrix([[np.nan, 1.0]])
    # inf is allowed (staircase arrays)
    as_float_matrix([[np.inf, 1.0]])


def test_check_axis_lengths():
    check_axis_lengths((3, 3, "rows"))
    with pytest.raises(ValueError, match="rows"):
        check_axis_lengths((2, 3, "rows"))
