"""Deterministic virtual-clock tests for :mod:`repro.serve` (DESIGN.md §15).

Every test drives the service through a :class:`VirtualClock` (time
moves only via ``await clock.advance(dt)``) and an
:class:`InlineExecutor` (buckets execute synchronously on the loop
thread) — **no wall-clock sleeps anywhere**, so window, deadline,
admission, and drain behavior replays identically on every run.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import Session
from repro.monge.generators import random_monge, random_staircase_monge
from repro.obs import metrics, reset_metrics
from repro.serve import (
    InlineExecutor,
    QueryService,
    RequestExpiredError,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
    VirtualClock,
    WindowController,
)


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coro)


def arrays(count, n, base_seed=0):
    return [random_monge(n, n, np.random.default_rng(base_seed + k))
            for k in range(count)]


def make_service(clock, **policy_kw):
    policy = ServiceConfig(**policy_kw)
    return QueryService("pram-crcw", policy=policy, clock=clock,
                        executor=InlineExecutor())


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield


def serve_counter(name):
    return metrics().counter(name).value


# --------------------------------------------------------------------- #
# fusion window: timeout flush, size-cap flush, adaptation
# --------------------------------------------------------------------- #
class TestFusionWindow:
    def test_single_request_timeout_flush(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.001, max_window=0.010)
            async with svc:
                task = asyncio.create_task(svc.solve("rowmin", arrays(1, 6)[0]))
                # half the (cold-start = max) window: still held
                await clock.advance(0.005)
                assert not task.done()
                # window elapses: the lone request flushes by timeout
                await clock.advance(0.006)
                assert task.done()
                result = await task
                assert result.problem == "rowmin"
            assert serve_counter("serve.buckets") == 1

        run(body())

    def test_size_cap_flushes_without_time_passing(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=1.0,
                               max_batch=4)
            async with svc:
                tasks = [asyncio.create_task(svc.solve("rowmin", a))
                         for a in arrays(4, 6)]
                await clock.advance(0.0)  # drain the loop; no time passes
                assert all(t.done() for t in tasks)
                await asyncio.gather(*tasks)
                assert clock.now() == 0.0
            hist = metrics().histogram("serve.fusion_width")
            assert hist.max == 4

        run(body())

    def test_overgrown_bucket_splits_at_max_batch(self):
        """Requests can pile past ``max_batch`` before the batcher runs;
        the cap bounds *execution* width, so the bucket must split into
        max_batch-wide chunks rather than execute oversized."""
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=1.0,
                               max_batch=2)
            async with svc:
                tasks = [asyncio.create_task(svc.solve("rowmin", a))
                         for a in arrays(5, 6)]
                await clock.advance(0.0)
                await asyncio.gather(*tasks)
            assert serve_counter("serve.buckets") == 3  # 2 + 2 + 1
            assert metrics().histogram("serve.fusion_width").max == 2

        run(body())

    def test_unfusable_requests_flush_immediately(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=1.0)
            stair = random_staircase_monge(6, 6, np.random.default_rng(3))
            async with svc:
                task = asyncio.create_task(svc.solve("staircase_min", stair))
                await clock.advance(0.0)
                assert task.done()  # no window hold for serial plans
                await task

        run(body())

    def test_window_narrows_under_fast_arrivals(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.0005, max_window=0.050,
                               target_width=4, max_batch=1000)
            async with svc:
                assert svc.current_window() == 0.050  # cold start: max
                data = arrays(30, 6)
                tasks = []
                for a in data[:10]:  # 1 ms apart -> EWMA gap ~1 ms
                    tasks.append(asyncio.create_task(svc.solve("rowmin", a)))
                    await clock.advance(0.001)
                narrowed = svc.current_window()
                assert narrowed < 0.050
                assert narrowed == pytest.approx(3 * 0.001, rel=0.5)
                # slow arrivals (30 ms apart) widen it back toward max
                for a in data[10:14]:
                    tasks.append(asyncio.create_task(svc.solve("rowmin", a)))
                    await clock.advance(0.030)
                assert svc.current_window() > narrowed
                await clock.advance(0.2)
                await asyncio.gather(*tasks)

        run(body())

    def test_bucket_window_fixed_at_open(self):
        """A bucket's flush deadline is set when it opens; later arrivals
        join it without extending the hold (bounded latency)."""
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=0.010,
                               max_batch=100)
            async with svc:
                first = asyncio.create_task(svc.solve("rowmin", arrays(1, 6)[0]))
                await clock.advance(0.008)
                second = asyncio.create_task(
                    svc.solve("rowmin", arrays(1, 6, base_seed=9)[0]))
                # 2 ms later the *bucket* (opened at t=0) flushes both
                await clock.advance(0.002)
                assert first.done() and second.done()
                await asyncio.gather(first, second)
            assert serve_counter("serve.buckets") == 1

        run(body())


class TestWindowController:
    def test_cold_start_returns_max(self):
        c = WindowController(0.001, 0.05)
        assert c.window() == 0.05
        c.observe_arrival(0.0)
        assert c.window() == 0.05  # still no gap estimate

    def test_narrows_then_widens(self):
        c = WindowController(0.0001, 1.0, target_width=5, alpha=0.5)
        for t in (0.0, 0.01, 0.02, 0.03):
            c.observe_arrival(t)
        fast = c.window()
        assert fast == pytest.approx(4 * 0.01, rel=0.2)
        for t in (1.0, 2.0):
            c.observe_arrival(t)
        assert c.window() > fast  # slower traffic -> wider window

    def test_clamps_to_bounds(self):
        c = WindowController(0.005, 0.02, target_width=16, alpha=1.0)
        c.observe_arrival(0.0)
        c.observe_arrival(1e-7)  # burst: raw target far below min
        assert c.window() == 0.005
        c.observe_arrival(10.0)  # trickle: raw target far above max
        assert c.window() == 0.02

    @pytest.mark.parametrize("kw", [
        dict(min_window=-1, max_window=1),
        dict(min_window=0.5, max_window=0.1),
        dict(min_window=0, max_window=1, target_width=1),
        dict(min_window=0, max_window=1, alpha=0.0),
        dict(min_window=0, max_window=1, alpha=1.5),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            WindowController(**kw)


# --------------------------------------------------------------------- #
# admission control: shedding and backpressure
# --------------------------------------------------------------------- #
class TestAdmission:
    def test_queue_full_sheds_immediately(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=1.0,
                               max_pending=2, admission_wait=0.0)
            async with svc:
                data = arrays(3, 6)
                t1 = asyncio.create_task(svc.solve("rowmin", data[0]))
                t2 = asyncio.create_task(svc.solve("rowmin", data[1]))
                await clock.advance(0.0)
                assert svc.pending == 2
                with pytest.raises(ServiceOverloadedError, match="queue full"):
                    await svc.solve("rowmin", data[2])
                assert serve_counter("serve.shed") == 1
                await clock.advance(2.0)
                await asyncio.gather(t1, t2)
            snap = metrics().snapshot()
            assert snap["derived"]["serve_shed_rate"] == pytest.approx(1 / 3)
            assert snap["gauges"]["serve.queue_depth"] == 0

        run(body())

    def test_backpressure_admits_when_slot_frees(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=0.010,
                               max_pending=2, admission_wait=0.100)
            async with svc:
                data = arrays(3, 6)
                t1 = asyncio.create_task(svc.solve("rowmin", data[0]))
                t2 = asyncio.create_task(svc.solve("rowmin", data[1]))
                await clock.advance(0.0)
                t3 = asyncio.create_task(svc.solve("rowmin", data[2]))
                await clock.advance(0.0)
                assert not t3.done()  # waiting for admission, not shed
                # the first bucket flushes at 10 ms, freeing both slots
                await clock.advance(0.012)
                await asyncio.gather(t1, t2)
                # t3 was admitted and joins a fresh bucket; let it flush
                await clock.advance(0.050)
                await t3
                assert serve_counter("serve.shed") == 0
                assert serve_counter("serve.completed") == 3

        run(body())

    def test_backpressure_sheds_after_admission_wait(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=1.0, max_window=1.0,
                               max_pending=1, admission_wait=0.005)
            async with svc:
                data = arrays(2, 6)
                t1 = asyncio.create_task(svc.solve("rowmin", data[0]))
                await clock.advance(0.0)
                t2 = asyncio.create_task(svc.solve("rowmin", data[1]))
                await clock.advance(0.0)
                assert not t2.done()
                await clock.advance(0.006)  # admission wait expires
                with pytest.raises(ServiceOverloadedError):
                    await t2
                assert serve_counter("serve.shed") == 1
                await clock.advance(1.1)
                await t1

        run(body())


# --------------------------------------------------------------------- #
# deadlines: expiry before and during execution
# --------------------------------------------------------------------- #
class _GateExecutor(InlineExecutor):
    """An executor the test can hold shut: calls wait at an asyncio gate
    before running inline (used to pin the expiry-during-execution path
    without wall-clock time)."""

    def __init__(self):
        self.gate = asyncio.Event()

    async def call(self, fn):
        await self.gate.wait()
        return fn()


class TestDeadlines:
    def test_expires_before_execution(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=0.010)
            async with svc:
                task = asyncio.create_task(
                    svc.solve("rowmin", arrays(1, 6)[0], deadline=0.005))
                # at flush time (10 ms) the deadline (5 ms) has passed
                await clock.advance(0.010)
                with pytest.raises(RequestExpiredError, match="deadline"):
                    await task
                assert serve_counter("serve.expired") == 1
                assert serve_counter("serve.completed") == 0
                assert svc.pending == 0  # the slot was released

        run(body())

    def test_expires_while_earlier_bucket_executes(self):
        async def body():
            clock = VirtualClock()
            gate = _GateExecutor()
            svc = QueryService(
                "pram-crcw", clock=clock, executor=gate,
                policy=ServiceConfig(min_window=0.001, max_window=0.001),
            )
            async with svc:
                a = arrays(1, 6)[0]
                b = arrays(1, 7, base_seed=5)[0]  # different shape: own bucket
                first = asyncio.create_task(svc.solve("rowmin", a))
                await clock.advance(0.001)  # bucket A flushed, held at gate
                second = asyncio.create_task(
                    svc.solve("rowmin", b, deadline=0.004))
                await clock.advance(0.001)  # bucket B flushed, queued on lock
                assert not first.done() and not second.done()
                await clock.advance(0.010)  # B's deadline passes in the queue
                gate.gate.set()  # release the executor
                await clock.advance(0.0)
                assert np.array_equal(
                    (await first).values, Session("pram-crcw").solve("rowmin", a).values
                )
                with pytest.raises(RequestExpiredError):
                    await second
                assert serve_counter("serve.expired") == 1
                assert serve_counter("serve.completed") == 1

        run(body())

    def test_default_deadline_from_policy(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.020, max_window=0.020,
                               default_deadline=0.005)
            async with svc:
                task = asyncio.create_task(svc.solve("rowmin", arrays(1, 6)[0]))
                await clock.advance(0.020)
                with pytest.raises(RequestExpiredError):
                    await task

        run(body())

    def test_invalid_deadline_rejected(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock)
            async with svc:
                with pytest.raises(ValueError, match="deadline"):
                    await svc.solve("rowmin", arrays(1, 6)[0], deadline=0.0)
                assert svc.pending == 0  # the admission slot was returned

        run(body())

    def test_cancelled_client_releases_slot(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.010, max_window=0.010,
                               max_pending=1)
            async with svc:
                task = asyncio.create_task(svc.solve("rowmin", arrays(1, 6)[0]))
                await clock.advance(0.0)
                task.cancel()
                await clock.advance(0.010)  # flush reaps the abandonment
                assert svc.pending == 0
                assert serve_counter("serve.cancelled") == 1

        run(body())


# --------------------------------------------------------------------- #
# drain semantics
# --------------------------------------------------------------------- #
class TestDrain:
    def test_drain_flushes_open_buckets_immediately(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=1.0, max_window=1.0)
            svc.start()
            tasks = [asyncio.create_task(svc.solve("rowmin", a))
                     for a in arrays(3, 6)]
            await clock.advance(0.0)
            assert not any(t.done() for t in tasks)  # held by the window
            await svc.drain()  # no clock advance: drain must not wait
            results = await asyncio.gather(*tasks)
            assert len(results) == 3
            assert clock.now() == 0.0
            assert serve_counter("serve.completed") == 3

        run(body())

    def test_submit_after_drain_is_refused(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock)
            svc.start()
            await svc.drain()
            with pytest.raises(ServiceClosedError):
                await svc.solve("rowmin", arrays(1, 6)[0])
            with pytest.raises(ServiceClosedError):
                await svc.prepare(arrays(1, 6)[0])
            with pytest.raises(ServiceClosedError):
                svc.start()

        run(body())

    def test_drain_is_idempotent(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock)
            async with svc:
                pass
            await svc.drain()
            await svc.close()

        run(body())

    def test_drain_wakes_admission_waiters(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=1.0, max_window=1.0,
                               max_pending=1, admission_wait=10.0)
            svc.start()
            t1 = asyncio.create_task(svc.solve("rowmin", arrays(1, 6)[0]))
            await clock.advance(0.0)
            t2 = asyncio.create_task(
                svc.solve("rowmin", arrays(1, 6, base_seed=4)[0]))
            await clock.advance(0.0)
            drain = asyncio.create_task(svc.drain())
            await clock.advance(0.0)
            await t1  # the held request is served at drain
            with pytest.raises(ServiceClosedError):
                await t2  # the waiter is refused, not stranded
            await drain

        run(body())


# --------------------------------------------------------------------- #
# served results are bit-identical to direct Session.solve
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_fused_buckets_match_serial_twins(self):
        B = 6
        data = arrays(B, 8) + arrays(2, 5, base_seed=50)
        stair = random_staircase_monge(7, 7, np.random.default_rng(8))

        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.005, max_window=0.005,
                               max_batch=64)
            async with svc:
                tasks = [asyncio.create_task(svc.solve("rowmin", a))
                         for a in data]
                tasks.append(asyncio.create_task(
                    svc.solve("staircase_min", stair)))
                await clock.advance(0.010)
                return await asyncio.gather(*tasks)

        results = run(body())
        ref = Session("pram-crcw")
        for a, got in zip(data, results[:-1]):
            want = ref.solve("rowmin", a)
            assert np.array_equal(want.values, got.values)
            assert np.array_equal(want.witnesses, got.witnesses)
            assert want.snapshot == got.snapshot  # ledger bit-identity
        want = ref.solve("staircase_min", stair)
        got = results[-1]
        assert np.array_equal(want.values, got.values)
        assert np.array_equal(want.witnesses, got.witnesses)
        assert want.snapshot == got.snapshot
        # the two shape classes each fused; the staircase ran serially
        assert serve_counter("serve.fused_requests") == 8
        assert metrics().histogram("serve.fusion_width").max == 6

    def test_solve_many_convenience_preserves_input_order(self):
        data = arrays(4, 6, base_seed=70)

        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.002, max_window=0.002)
            async with svc:
                gathered = asyncio.create_task(
                    svc.solve_many([("rowmin", a) for a in data]))
                await clock.advance(0.010)
                return await gathered

        results = run(body())
        ref = Session("pram-crcw")
        for a, got in zip(data, results):
            want = ref.solve("rowmin", a)
            assert np.array_equal(want.values, got.values)
            assert np.array_equal(want.witnesses, got.witnesses)

    def test_session_query_log_records_served_requests(self):
        data = arrays(3, 6, base_seed=90)

        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.002, max_window=0.002)
            async with svc:
                tasks = [asyncio.create_task(svc.solve("rowmin", a))
                         for a in data]
                await clock.advance(0.010)
                await asyncio.gather(*tasks)
                return svc.session

        session = run(body())
        assert len(session.queries) == 3
        assert all(q.problem == "rowmin" for q in session.queries)
        assert session.ledger.rounds > 0  # sub-accounts merged back


# --------------------------------------------------------------------- #
# the bucketing contract is asserted at flush
# --------------------------------------------------------------------- #
class TestStableKeyGuard:
    def test_drifted_key_fails_the_bucket_loudly(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.005, max_window=0.005)
            async with svc:
                tasks = [asyncio.create_task(svc.solve("rowmin", a))
                         for a in arrays(2, 6)]
                await clock.advance(0.0)
                # sabotage one admitted plan: simulate a planner whose
                # fused key is not stable across lowerings
                (bucket,) = svc._buckets.values()
                bucket.requests[1].plan.fused_key = ("drifted",)
                await clock.advance(0.005)
                with pytest.raises(AssertionError, match="fused key"):
                    await asyncio.gather(*tasks)

        run(body())

    def test_prepare_and_query_through_the_service(self):
        a = random_monge(8, 8, np.random.default_rng(21))

        async def body():
            clock = VirtualClock()
            svc = make_service(clock)
            async with svc:
                handle = await svc.prepare(a)
                return await svc.query(handle, (1, 7), (2, 8))

        got = run(body())
        want = Session("pram-crcw").prepare(a).query((1, 7), (2, 8))
        assert got.values == want.values
        assert np.array_equal(got.witnesses, want.witnesses)
        assert serve_counter("serve.prepares") == 1
        assert serve_counter("serve.index_queries") == 1


# --------------------------------------------------------------------- #
# service configuration validation
# --------------------------------------------------------------------- #
class TestServiceConfig:
    @pytest.mark.parametrize("kw", [
        dict(max_batch=0),
        dict(max_pending=0),
        dict(admission_wait=-1.0),
        dict(default_deadline=0.0),
        dict(min_window=0.2, max_window=0.1),
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            ServiceConfig(**kw)

    def test_window_disabled_mode_flushes_immediately(self):
        async def body():
            clock = VirtualClock()
            svc = make_service(clock, min_window=0.0, max_window=0.0)
            async with svc:
                task = asyncio.create_task(svc.solve("rowmin", arrays(1, 6)[0]))
                await clock.advance(0.0)
                assert task.done()  # serial-per-request: no hold at all
                await task
            assert metrics().histogram("serve.fusion_width").max == 1

        run(body())


# --------------------------------------------------------------------- #
# the virtual clock itself
# --------------------------------------------------------------------- #
class TestVirtualClock:
    def test_sleepers_fire_in_deadline_order(self):
        async def body():
            clock = VirtualClock()
            order = []

            async def sleeper(tag, delay):
                await clock.sleep(delay)
                order.append((tag, clock.now()))

            tasks = [asyncio.create_task(sleeper("b", 0.02)),
                     asyncio.create_task(sleeper("a", 0.01)),
                     asyncio.create_task(sleeper("c", 0.03))]
            await clock.advance(0.05)
            await asyncio.gather(*tasks)
            assert order == [("a", 0.01), ("b", 0.02), ("c", 0.03)]
            assert clock.now() == 0.05

        run(body())

    def test_nested_sleep_fires_within_one_advance(self):
        async def body():
            clock = VirtualClock()
            hits = []

            async def chain():
                await clock.sleep(0.01)
                hits.append(clock.now())
                await clock.sleep(0.01)  # scheduled *during* the advance
                hits.append(clock.now())

            task = asyncio.create_task(chain())
            await clock.advance(0.05)
            await task
            assert hits == [0.01, pytest.approx(0.02)]

        run(body())

    def test_zero_or_negative_sleep_just_yields(self):
        async def body():
            clock = VirtualClock()
            await clock.sleep(0)
            await clock.sleep(-1)
            assert clock.now() == 0.0
            with pytest.raises(ValueError):
                await clock.advance(-0.1)

        run(body())

    def test_cancelled_sleeper_is_discarded(self):
        async def body():
            clock = VirtualClock()
            task = asyncio.create_task(clock.sleep(1.0))
            await asyncio.sleep(0)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            assert clock.pending_sleepers == 0
            await clock.advance(2.0)  # must not trip on the corpse

        run(body())
