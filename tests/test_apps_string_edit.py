"""§1.3 app 4: string editing via grid-DAG tube products."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.string_edit import (
    EditCosts,
    _big_for,
    edit_distance_dag_parallel,
    edit_distance_wagner_fischer,
    strip_dist_matrix,
)
from repro.core.network_machine import NetworkMachine
from repro.core.rowmin_network import make_network
from repro.monge.properties import is_monge
from repro.pram import CRCW_COMMON, CostLedger, Pram
from repro.pram.ledger import CostLedger as CL


def random_costs(rng):
    dmap = {c: float(rng.integers(1, 4)) for c in "abcd"}
    imap = {c: float(rng.integers(1, 4)) for c in "abcd"}
    smap = {
        (a, b): 0.0 if a == b else float(rng.integers(1, 5))
        for a in "abcd"
        for b in "abcd"
    }
    return EditCosts(
        delete=lambda a: dmap[a],
        insert=lambda b: imap[b],
        substitute=lambda a, b: smap[(a, b)],
    )


def rand_string(rng, max_len=12):
    k = int(rng.integers(0, max_len))
    return "".join(rng.choice(list("abcd"), size=k))


def test_wagner_fischer_classic_examples():
    assert edit_distance_wagner_fischer("kitten", "sitting")[0] == 3
    assert edit_distance_wagner_fischer("", "abc")[0] == 3
    assert edit_distance_wagner_fischer("abc", "")[0] == 3
    assert edit_distance_wagner_fischer("same", "same")[0] == 0


def test_wagner_fischer_script_is_minimal_and_valid():
    cost, script = edit_distance_wagner_fischer("kitten", "sitting")
    assert len(script) == 3
    kinds = [op[0] for op in script]
    assert kinds.count("substitute") == 2 and kinds.count("insert") == 1


def test_negative_costs_rejected():
    bad = EditCosts(delete=lambda a: -1.0)
    with pytest.raises(ValueError):
        edit_distance_wagner_fischer("a", "b", bad)


@pytest.mark.parametrize("seed", range(12))
def test_dag_matches_wagner_fischer(seed):
    rng = np.random.default_rng(seed)
    x, y = rand_string(rng), rand_string(rng)
    costs = random_costs(rng) if seed % 2 else EditCosts()
    ref = edit_distance_wagner_fischer(x, y, costs)[0]
    got = edit_distance_dag_parallel(x, y, costs)
    assert np.isclose(ref, got), (x, y)


def test_strip_dist_is_monge(rng):
    y = "abcabd"
    costs = random_costs(rng)
    big = _big_for("c", y, costs)
    D = strip_dist_matrix("c", y, costs, big)
    assert is_monge(D)


def test_strip_dist_matches_dp(rng):
    """Single-row strip DIST equals a direct DP for every entry pair."""
    y = "abca"
    costs = random_costs(rng)
    big = _big_for("b", y, costs)
    D = strip_dist_matrix("b", y, costs, big)
    t = len(y)
    for p in range(t + 1):
        ref = edit_distance_wagner_fischer("b", y[p:], costs)[0]
        # DIST[p][t] = cost of consuming "b" against y[p:]
        assert np.isclose(D[p, t], ref), p


def test_dist_matrix_full_equals_all_suffix_distances(rng):
    x, y = "abc", "abcd"
    costs = EditCosts()
    val, dist = edit_distance_dag_parallel(x, y, costs, return_dist=True)
    t = len(y)
    for p in range(t + 1):
        ref = edit_distance_wagner_fischer(x, y[p:], costs)[0]
        assert np.isclose(dist[p, t], ref), p


def test_parallel_rounds_grow_polylog():
    import math

    rounds = {}
    for s in (8, 32):
        rng = np.random.default_rng(s)
        x = "".join(rng.choice(list("ab"), size=s))
        y = "".join(rng.choice(list("ab"), size=s))
        pram = Pram(CRCW_COMMON, 1 << 44, ledger=CostLedger())
        got = edit_distance_dag_parallel(x, y, pram=pram)
        assert np.isclose(got, edit_distance_wagner_fischer(x, y)[0])
        rounds[s] = pram.ledger.rounds
    # lg 32 / lg 8 = 5/3; allow constants but rule out linear growth
    assert rounds[32] <= 4 * rounds[8]


def test_on_network_machine():
    x, y = "abca", "bcab"
    net = make_network("hypercube", 64, ledger=CL())
    machine = NetworkMachine(net)
    got = edit_distance_dag_parallel(x, y, pram=machine)
    assert np.isclose(got, edit_distance_wagner_fischer(x, y)[0])
    assert machine.ledger.rounds > 0


def test_empty_strings():
    assert edit_distance_dag_parallel("", "") == 0.0
    costs = EditCosts()
    assert np.isclose(
        edit_distance_dag_parallel("", "xyz"),
        edit_distance_wagner_fischer("", "xyz")[0],
    )
    assert np.isclose(
        edit_distance_dag_parallel("xy", ""),
        edit_distance_wagner_fischer("xy", "")[0],
    )


@given(st.integers(0, 50_000))
@settings(max_examples=25, deadline=None)
def test_property_dag_vs_dp(seed):
    rng = np.random.default_rng(seed)
    x, y = rand_string(rng, 10), rand_string(rng, 10)
    costs = random_costs(rng)
    ref = edit_distance_wagner_fischer(x, y, costs)[0]
    got = edit_distance_dag_parallel(x, y, costs)
    assert np.isclose(ref, got)
