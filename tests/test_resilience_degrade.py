"""Graceful degradation: ``strict=False`` on structure-violating inputs."""

import warnings

import numpy as np
import pytest

from repro.core import (
    inverse_monge_row_maxima_pram,
    monge_row_maxima_pram,
    monge_row_minima_pram,
    monge_row_minima_network,
    staircase_row_minima_network,
    staircase_row_minima_pram,
    tube_minima_pram,
)
from repro.monge.arrays import MongeComposite
from repro.monge.generators import random_monge, random_staircase_monge
from repro.pram import CRCW_COMMON, CostLedger, Pram
from repro.resilience import DegradedResultWarning


def _machine(n=1 << 32):
    return Pram(CRCW_COMMON, n, ledger=CostLedger())


def _non_monge(n=8):
    a = np.zeros((n, n))
    a[0, 0] = a[1, 1] = 1.0  # a[0,0]+a[1,1] > a[0,1]+a[1,0]
    return a


# --------------------------------------------------------------------- #
def test_rowmin_degrades_with_structured_warning():
    a = _non_monge()
    with pytest.warns(DegradedResultWarning) as rec:
        vals, cols = monge_row_minima_pram(_machine(), a, strict=False)
    np.testing.assert_array_equal(vals, a.min(axis=1))
    np.testing.assert_array_equal(cols, a.argmin(axis=1))
    w = rec[0].message
    assert w.problem == "monge_row_minima_pram"
    assert "Monge" in w.reason
    assert w.fallback
    assert w.problem in str(w) and w.reason in str(w)


def test_rowmin_strict_false_is_silent_on_genuine_monge_input():
    a = random_monge(12, 12, np.random.default_rng(0))
    ref_m = _machine()
    v_ref, c_ref = monge_row_minima_pram(ref_m, a)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        m = _machine()
        v, c = monge_row_minima_pram(m, a, strict=False)
    np.testing.assert_array_equal(v, v_ref)
    np.testing.assert_array_equal(c, c_ref)
    assert m.ledger.snapshot() == ref_m.ledger.snapshot()


def test_rowmax_and_inverse_degrade():
    a = _non_monge()
    with pytest.warns(DegradedResultWarning):
        vals, cols = monge_row_maxima_pram(_machine(), a, strict=False)
    np.testing.assert_array_equal(vals, a.max(axis=1))
    np.testing.assert_array_equal(cols, a.argmax(axis=1))
    # _non_monge is not inverse-Monge either (negate the quadruple)
    with pytest.warns(DegradedResultWarning):
        vals, cols = inverse_monge_row_maxima_pram(_machine(), -a, strict=False)
    np.testing.assert_array_equal(vals, (-a).max(axis=1))


def test_staircase_degrades_on_bad_infinity_pattern():
    a = np.zeros((4, 4))
    a[0, 0] = np.inf  # infinite entry with finite entries to its right
    m = _machine()
    with pytest.warns(DegradedResultWarning) as rec:
        vals, cols = staircase_row_minima_pram(m, a, strict=False)
    assert "staircase" in rec[0].message.reason
    expect_cols = np.array([1, 0, 0, 0])
    np.testing.assert_array_equal(cols, expect_cols)
    np.testing.assert_array_equal(vals, np.zeros(4))
    # the fallback's rounds are charged under a dedicated phase
    assert "degraded-fallback" in m.ledger.snapshot()["phases"]


def test_staircase_degrades_on_non_monge_finite_part():
    f = np.array([8, 8, 6, 4, 2, 1, 1, 1])
    base = _non_monge(8)
    dense = base.copy()
    for i, fi in enumerate(f):
        dense[i, fi:] = np.inf
    with pytest.warns(DegradedResultWarning) as rec:
        vals, cols = staircase_row_minima_pram(_machine(), dense, strict=False)
    assert "Monge" in rec[0].message.reason
    masked = np.where(np.isfinite(dense), dense, np.inf)
    np.testing.assert_array_equal(vals, masked.min(axis=1))
    np.testing.assert_array_equal(cols, masked.argmin(axis=1))


def test_staircase_strict_raises_unchanged():
    a = np.zeros((4, 4))
    a[0, 0] = np.inf
    with pytest.raises(ValueError):
        staircase_row_minima_pram(_machine(), a)


def test_tube_degrades_on_non_monge_factor():
    d = _non_monge(6)
    e = np.zeros((6, 5))
    c = MongeComposite(d, e)
    with pytest.warns(DegradedResultWarning) as rec:
        vals, jargs = tube_minima_pram(_machine(), c, strict=False)
    assert rec[0].message.problem == "tube_minima_pram"
    cube = d[:, :, None] + e[None, :, :]
    np.testing.assert_array_equal(vals, cube.min(axis=1))
    np.testing.assert_array_equal(jargs, cube.argmin(axis=1))


def test_degraded_fallback_respects_processor_budget():
    # 64 processors on a 32x32 dense scan: the Brent-sliced fallback must
    # charge rounds without tripping the machine's processor check
    a = _non_monge(32)
    m = Pram(CRCW_COMMON, 64, ledger=CostLedger(processor_limit=64))
    with pytest.warns(DegradedResultWarning):
        vals, cols = monge_row_minima_pram(m, a, strict=False)
    np.testing.assert_array_equal(vals, a.min(axis=1))
    snap = m.ledger.snapshot()
    assert snap["peak_processors"] <= 64
    assert snap["rounds"] >= (32 * 32) // 64


def test_network_entry_points_degrade():
    a = _non_monge(8)
    with pytest.warns(DegradedResultWarning):
        vals, cols, ledger = monge_row_minima_network(a, strict=False)
    np.testing.assert_array_equal(vals, a.min(axis=1))
    np.testing.assert_array_equal(cols, a.argmin(axis=1))
    assert "degraded-fallback" in ledger.snapshot()["phases"]

    bad_stairs = np.zeros((4, 4))
    bad_stairs[0, 0] = np.inf
    with pytest.warns(DegradedResultWarning):
        vals, cols, _ = staircase_row_minima_network(bad_stairs, strict=False)
    np.testing.assert_array_equal(cols, np.array([1, 0, 0, 0]))


def test_degraded_handles_all_infinite_rows():
    dense = np.full((3, 4), np.inf)
    dense[0, 2] = 5.0
    with pytest.warns(DegradedResultWarning):
        vals, cols = staircase_row_minima_pram(_machine(), dense, strict=False)
    np.testing.assert_array_equal(vals, np.array([5.0, np.inf, np.inf]))
    np.testing.assert_array_equal(cols, np.array([2, -1, -1]))


def test_strict_true_never_warns_or_degrades():
    a = random_staircase_monge(10, 10, np.random.default_rng(1))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        staircase_row_minima_pram(_machine(), a)
