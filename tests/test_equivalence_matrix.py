"""Cross-backend equivalence: one instance, every backend, one answer.

For each problem class, the same input is solved on every backend the
registry supports, and all backends must report identical values and
identical leftmost-tie witnesses — the simulated machine must never
change the answer.  With ``trace=True`` the span-tree round totals must
equal the ledger snapshot, and the snapshot must respect the spec's
declared Table-1.x round bound (``SolverSpec.within_bound``).
"""

import numpy as np
import pytest

import repro
from repro.engine import BACKENDS, registry
from repro.monge.generators import (
    random_composite,
    random_inverse_monge,
    random_monge,
    random_staircase_monge,
)

_RNG = np.random.default_rng(42)

#: problem -> (data, shape) — integer-valued so ties genuinely exercise
#: the leftmost-witness convention across machines.
INSTANCES = {
    "rowmin": random_monge(17, 13, _RNG, integer=True),
    "rowmax": random_monge(13, 17, _RNG, integer=True),
    "rowmax_inverse": random_inverse_monge(14, 14, _RNG, integer=True),
    "staircase_min": random_staircase_monge(15, 15, _RNG, integer=True),
    "staircase_max": random_staircase_monge(16, 12, _RNG, integer=True),
    "tube_min": random_composite(5, 6, 4, _RNG, integer=True),
    "tube_max": random_composite(4, 5, 6, _RNG, integer=True),
}

_BANDED_ARR = random_monge(12, 14, _RNG, integer=True)
_BANDED_LO = np.sort(_RNG.integers(0, 15, size=12)).astype(np.int64)
_BANDED_HI = np.maximum(np.sort(_RNG.integers(0, 15, size=12)), _BANDED_LO).astype(np.int64)
INSTANCES["banded_min"] = (_BANDED_ARR, _BANDED_LO, _BANDED_HI)
INSTANCES["banded_max"] = (_BANDED_ARR.negate(), _BANDED_LO, _BANDED_HI)


def _backends_for(problem):
    return [b for b in BACKENDS if registry.supports(problem, b)]


def _shape_of(problem, data):
    return data[0].shape if isinstance(data, tuple) else data.shape


@pytest.mark.parametrize("problem", sorted(INSTANCES))
def test_all_backends_agree(problem):
    data = INSTANCES[problem]
    backends = _backends_for(problem)
    assert len(backends) >= 2
    results = {b: repro.solve(problem, data, backend=b) for b in backends}
    ref = results[backends[0]]
    for backend, r in results.items():
        np.testing.assert_array_equal(
            np.asarray(r.values), np.asarray(ref.values),
            err_msg=f"{problem}: {backend} values diverge from {backends[0]}",
        )
        np.testing.assert_array_equal(
            np.asarray(r.witnesses), np.asarray(ref.witnesses),
            err_msg=f"{problem}: {backend} witnesses diverge from {backends[0]}",
        )


@pytest.mark.parametrize("problem", sorted(INSTANCES))
def test_traced_rounds_satisfy_declared_bounds(problem):
    data = INSTANCES[problem]
    shape = _shape_of(problem, data)
    for backend in _backends_for(problem):
        r = repro.solve(problem, data, backend=backend, trace=True)
        spec = registry.lookup(problem, backend)
        # the trace is an audit of the snapshot, not a second opinion
        if r.snapshot is None:  # sequential: no simulated machine
            assert r.trace.totals()["rounds"] == 0
        else:
            assert r.trace.totals()["rounds"] == r.snapshot["rounds"]
        assert spec.within_bound(r.snapshot, shape), (
            f"{problem}/{backend}: {r.snapshot['rounds']} rounds exceeds "
            f"the declared bound for shape {shape} ({spec.bound_hint})"
        )


def test_pram_strategies_agree_with_each_other():
    a = INSTANCES["rowmin"]
    spec = registry.lookup("rowmin", "pram-crcw")
    outs = {
        s: repro.solve("rowmin", a, backend="pram-crcw", strategy=s)
        for s in spec.strategies
    }
    vals = [np.asarray(o.values) for o in outs.values()]
    wits = [np.asarray(o.witnesses) for o in outs.values()]
    for v, w in zip(vals[1:], wits[1:]):
        np.testing.assert_array_equal(v, vals[0])
        np.testing.assert_array_equal(w, wits[0])


def test_crcw_beats_crew_on_rounds():
    """Table 1.1: the CRCW algorithms may not be slower than CREW on the
    same instance (the doubly-log vs log recursion depth)."""
    a = random_monge(64, 64, np.random.default_rng(7))
    crcw = repro.solve("rowmin", a, backend="pram-crcw")
    crew = repro.solve("rowmin", a, backend="pram-crew")
    assert crcw.snapshot["rounds"] <= crew.snapshot["rounds"]
