"""The deprecated ``repro.core.accounting`` shim: warn once, re-export all."""

import sys
import warnings

import repro.engine.machines as machines


def _fresh_import():
    sys.modules.pop("repro.core.accounting", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.core.accounting as shim  # noqa: F401
    return shim, [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_warns_exactly_once_per_process():
    machines._accounting_shim_warned = False
    shim, first = _fresh_import()
    assert len(first) == 1
    assert "repro.engine.machines" in str(first[0].message)

    # Re-importing (even after a sys.modules pop) must stay silent.
    shim, second = _fresh_import()
    assert second == []
    assert machines._accounting_shim_warned is True


def test_reexports_are_the_engine_objects():
    machines._accounting_shim_warned = True  # silence, order-independent
    shim, _ = _fresh_import()
    assert shim.fresh_clone is machines.fresh_clone
    assert shim.charge_parallel is machines.charge_parallel
    assert set(shim.__all__) == {"fresh_clone", "charge_parallel"}
