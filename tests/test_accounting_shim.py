"""The deprecated ``repro.core.accounting`` shim: warn once per symbol."""

import sys
import warnings

import repro.engine.machines as machines


def _fresh_import():
    sys.modules.pop("repro.core.accounting", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.core.accounting as shim  # noqa: F401
    return shim, [w for w in caught if issubclass(w.category, DeprecationWarning)]


def _touch(shim, *names):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for name in names:
            getattr(shim, name)
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_import_is_silent_and_access_warns_once_per_symbol():
    machines._accounting_shim_warned = set()
    shim, on_import = _fresh_import()
    # the shim is lazy: importing it alone fires nothing
    assert on_import == []

    first = _touch(shim, "fresh_clone")
    assert len(first) == 1
    # the warning names the concrete replacement symbol
    assert "repro.engine.machines.fresh_clone" in str(first[0].message)

    # same symbol again: silent; the other symbol: its own warning
    assert _touch(shim, "fresh_clone") == []
    second = _touch(shim, "charge_parallel")
    assert len(second) == 1
    assert "repro.engine.machines.charge_parallel" in str(second[0].message)
    assert _touch(shim, "charge_parallel") == []


def test_warn_once_survives_reimport_and_lifecycle_reload():
    """The warn-once record lives on the stable target module, so neither
    a shim re-import nor reloading the engine lifecycle stack resets it."""
    machines._accounting_shim_warned = set()
    shim, _ = _fresh_import()
    assert len(_touch(shim, "fresh_clone", "charge_parallel")) == 2

    # re-import (sys.modules pop) must stay silent
    shim2, on_import = _fresh_import()
    assert on_import == []
    assert _touch(shim2, "fresh_clone", "charge_parallel") == []

    # a fresh import of the lifecycle modules must not reset the latch
    for mod in ("repro.engine.lifecycle", "repro.engine.prepared"):
        sys.modules.pop(mod, None)
    import repro.engine.lifecycle  # noqa: F401
    import repro.engine.prepared  # noqa: F401

    shim3, on_import = _fresh_import()
    assert on_import == []
    assert _touch(shim3, "fresh_clone", "charge_parallel") == []
    assert machines._accounting_shim_warned == {"fresh_clone", "charge_parallel"}


def test_legacy_boolean_latch_is_honored():
    # pre-per-symbol processes latched a bool on the machines module;
    # True must keep meaning "everything already warned"
    machines._accounting_shim_warned = True
    shim, _ = _fresh_import()
    assert _touch(shim, "fresh_clone", "charge_parallel") == []
    machines._accounting_shim_warned = False
    shim, _ = _fresh_import()
    assert len(_touch(shim, "fresh_clone")) == 1


def test_reexports_are_the_engine_objects():
    machines._accounting_shim_warned = {"fresh_clone", "charge_parallel"}
    shim, _ = _fresh_import()
    assert shim.fresh_clone is machines.fresh_clone
    assert shim.charge_parallel is machines.charge_parallel
    assert set(shim.__all__) == {"fresh_clone", "charge_parallel"}
    assert "fresh_clone" in dir(shim) and "charge_parallel" in dir(shim)
