"""Doubly-logarithmic CRCW extrema."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import CRCW_COMMON, CREW, CostLedger, Pram
from repro.pram.fast_max import fast_argmax, fast_argmin, fast_max, fast_min
from repro.pram.models import ConcurrencyViolation


def make(p=1 << 22):
    return Pram(CRCW_COMMON, p, ledger=CostLedger())


def test_fast_argmin_basic(rng):
    x = rng.normal(size=1000)
    v, i = fast_argmin(make(), x)
    assert v == x.min()
    assert i == int(np.argmin(x))


def test_fast_argmax_basic(rng):
    x = rng.normal(size=777)
    v, i = fast_argmax(make(), x)
    assert v == x.max()
    assert i == int(np.argmax(x))


def test_leftmost_tie_break():
    x = np.array([2.0, 1.0, 1.0, 2.0])
    v, i = fast_argmin(make(), x)
    assert (v, i) == (1.0, 1)
    v, i = fast_argmax(make(), x)
    assert (v, i) == (2.0, 0)


def test_empty_input():
    v, i = fast_argmin(make(), np.array([]))
    assert v == np.inf and i == -1


def test_single_element():
    v, i = fast_argmin(make(), np.array([42.0]))
    assert (v, i) == (42.0, 0)


def test_requires_crcw():
    with pytest.raises(ConcurrencyViolation):
        fast_argmin(Pram(CREW, 100), np.ones(4))


def test_value_only_wrappers(rng):
    x = rng.normal(size=64)
    assert fast_min(make(), x) == x.min()
    assert fast_max(make(), x) == x.max()


def test_round_growth_is_doubly_logarithmic():
    """Rounds at n=2**16 should exceed n=16 by only ~2 levels (3 rounds each)."""

    def rounds(n):
        pram = make()
        fast_argmin(pram, np.arange(float(n)))
        return pram.ledger.rounds

    r16, r256, r64k = rounds(16), rounds(256), rounds(1 << 16)
    assert r256 - r16 <= 4
    assert r64k - r256 <= 7
    # and far below the binary-tree lg n = 16 gap:
    assert r64k <= r16 + 12


def test_processor_usage_linear_in_n():
    n = 4096
    pram = make()
    fast_argmin(pram, np.arange(float(n)))
    # peak processors per level is O(n) (all-pairs of sqrt-blocks)
    assert pram.ledger.peak_processors <= 4 * n


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_fast_argmin_matches_numpy(xs):
    x = np.array(xs, dtype=float)
    v, i = fast_argmin(make(), x)
    assert v == x.min()
    assert i == int(np.argmin(x))
