"""Primitives: correctness against NumPy references + round accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.bits import ceil_log2
from repro.pram import CRCW_COMMON, CREW, EREW, CostLedger, Pram
from repro.pram.primitives import (
    broadcast,
    exclusive_prefix_sum,
    grouped_max,
    grouped_min,
    merge_ranks,
    pack_indices,
    prefix_scan,
    reduce,
    replicate_by_counts,
    segmented_scan,
)


def make(model=CREW, p=1 << 20):
    return Pram(model, p, ledger=CostLedger())


# --------------------------------------------------------------------- #
# scans
# --------------------------------------------------------------------- #
def test_prefix_scan_add_matches_cumsum(rng):
    x = rng.normal(size=100)
    pram = make()
    np.testing.assert_allclose(prefix_scan(pram, x, "add"), np.cumsum(x), rtol=1e-12)


def test_prefix_scan_min_max(rng):
    x = rng.normal(size=63)
    pram = make()
    np.testing.assert_array_equal(prefix_scan(pram, x, "min"), np.minimum.accumulate(x))
    np.testing.assert_array_equal(prefix_scan(pram, x, "max"), np.maximum.accumulate(x))


def test_prefix_scan_round_count_is_ceil_log2():
    for n in (2, 3, 7, 8, 9, 1000):
        pram = make()
        prefix_scan(pram, np.ones(n), "add")
        assert pram.ledger.rounds == ceil_log2(n)


def test_prefix_scan_trivial_sizes():
    pram = make()
    assert prefix_scan(pram, np.array([5.0]), "add")[0] == 5.0
    assert prefix_scan(pram, np.array([]), "add").size == 0


def test_exclusive_prefix_sum_offsets():
    pram = make()
    out = exclusive_prefix_sum(pram, np.array([2, 0, 3, 1]))
    assert out.tolist() == [0, 2, 2, 5, 6]


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=60),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_segmented_scan_matches_reference(xs, data):
    x = np.array(xs)
    heads = np.array(
        data.draw(st.lists(st.booleans(), min_size=len(xs), max_size=len(xs)))
    )
    heads[0] = True
    pram = make()
    got = segmented_scan(pram, x, heads, "add")
    # reference: cumulative sum restarting at heads
    ref = np.empty_like(x)
    acc = 0.0
    for i in range(len(xs)):
        acc = x[i] if heads[i] else acc + x[i]
        ref[i] = acc
    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)


def test_segmented_scan_max_segment_length_rounds():
    # 1024 elements in segments of <= 4: only 2 rounds needed, not 10.
    n = 1024
    heads = np.zeros(n, dtype=bool)
    heads[::4] = True
    pram = make()
    out = segmented_scan(pram, np.ones(n), heads, "add", max_segment_length=4)
    assert pram.ledger.rounds == 2
    np.testing.assert_array_equal(out[:8], [1, 2, 3, 4, 1, 2, 3, 4])


def test_segmented_scan_min_op():
    x = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
    heads = np.array([True, False, False, True, False])
    pram = make()
    got = segmented_scan(pram, x, heads, "min")
    np.testing.assert_array_equal(got, [3, 1, 1, 5, 4])


def test_reduce_matches_numpy(rng):
    x = rng.normal(size=37)
    pram = make()
    assert np.isclose(reduce(pram, x, "add"), x.sum())
    assert reduce(pram, x, "min") == x.min()
    assert reduce(pram, x, "max") == x.max()
    assert pytest.approx(reduce(make(), np.array([]), "add")) == 0.0


def test_reduce_rounds_logarithmic():
    pram = make()
    reduce(pram, np.ones(1024), "add")
    assert pram.ledger.rounds == 10


# --------------------------------------------------------------------- #
# broadcast / pack / merge / replicate
# --------------------------------------------------------------------- #
def test_broadcast_crew_one_round():
    pram = make(CREW)
    out = broadcast(pram, 7.5, 100)
    assert out.shape == (100,) and (out == 7.5).all()
    assert pram.ledger.rounds == 1


def test_broadcast_erew_log_rounds():
    pram = make(EREW)
    broadcast(pram, 1.0, 100)
    assert pram.ledger.rounds == ceil_log2(100)


def test_pack_indices_stable(rng):
    mask = rng.random(200) < 0.3
    pram = make()
    got = pack_indices(pram, mask)
    np.testing.assert_array_equal(got, np.nonzero(mask)[0])


def test_pack_indices_empty_cases():
    pram = make()
    assert pack_indices(pram, np.zeros(10, dtype=bool)).size == 0
    assert pack_indices(pram, np.array([], dtype=bool)).size == 0


def test_merge_ranks_produces_sorted_merge(rng):
    a = np.sort(rng.normal(size=40))
    b = np.sort(rng.normal(size=25))
    pram = make()
    ra, rb = merge_ranks(pram, a, b)
    merged = np.empty(65)
    merged[np.arange(40) + ra] = a
    merged[np.arange(25) + rb] = b
    np.testing.assert_array_equal(merged, np.sort(np.concatenate([a, b])))


def test_replicate_by_counts():
    pram = make()
    out = replicate_by_counts(pram, np.array([5.0, 7.0, 9.0]), np.array([2, 0, 3]))
    np.testing.assert_array_equal(out, [5, 5, 9, 9, 9])


# --------------------------------------------------------------------- #
# grouped extrema
# --------------------------------------------------------------------- #
def _brute_grouped_min(values, offsets):
    mins, args = [], []
    for g in range(len(offsets) - 1):
        seg = values[offsets[g] : offsets[g + 1]]
        if seg.size == 0:
            mins.append(np.inf)
            args.append(-1)
        else:
            k = int(np.argmin(seg))  # argmin returns first occurrence
            mins.append(seg[k])
            args.append(offsets[g] + k)
    return np.array(mins), np.array(args)


@pytest.mark.parametrize("strategy", ["binary", "allpairs", "doubly_log"])
def test_grouped_min_matches_bruteforce(rng, strategy):
    values = rng.integers(0, 10, size=300).astype(float)  # many ties
    cuts = np.sort(rng.choice(np.arange(1, 300), size=17, replace=False))
    offsets = np.concatenate([[0], cuts, [300]])
    model = CREW if strategy == "binary" else CRCW_COMMON
    pram = make(model)
    got_v, got_i = grouped_min(pram, values, offsets, strategy=strategy)
    ref_v, ref_i = _brute_grouped_min(values, offsets)
    np.testing.assert_array_equal(got_v, ref_v)
    np.testing.assert_array_equal(got_i, ref_i)


@pytest.mark.parametrize("strategy", ["binary", "allpairs", "doubly_log"])
def test_grouped_min_empty_groups(strategy):
    values = np.array([4.0, 2.0])
    offsets = np.array([0, 0, 2, 2])
    model = CREW if strategy == "binary" else CRCW_COMMON
    got_v, got_i = grouped_min(make(model), values, offsets, strategy=strategy)
    assert got_v.tolist() == [np.inf, 2.0, np.inf]
    assert got_i.tolist() == [-1, 1, -1]


def test_grouped_min_single_group_leftmost_tie(rng):
    values = np.array([3.0, 1.0, 1.0, 5.0])
    offsets = np.array([0, 4])
    for strategy, model in (
        ("binary", CREW),
        ("allpairs", CRCW_COMMON),
        ("doubly_log", CRCW_COMMON),
    ):
        v, i = grouped_min(make(model), values, offsets, strategy=strategy)
        assert v[0] == 1.0 and i[0] == 1, strategy


def test_grouped_max_negates_correctly(rng):
    values = rng.normal(size=50)
    offsets = np.array([0, 20, 50])
    v, i = grouped_max(make(CREW), values, offsets, strategy="binary")
    assert v[0] == values[:20].max()
    assert i[0] == int(np.argmax(values[:20]))
    assert v[1] == values[20:].max()


def test_grouped_min_allpairs_requires_crcw():
    from repro.pram.models import ConcurrencyViolation

    with pytest.raises(ConcurrencyViolation):
        grouped_min(make(CREW), np.ones(4), np.array([0, 4]), strategy="allpairs")


def test_grouped_min_auto_selects_on_budget():
    values = np.arange(64.0)
    offsets = np.arange(0, 65, 8)
    # medium machine: all-pairs (8 groups * 64 pairs = 512) won't fit in
    # 256 processors, so auto must fall back to doubly_log (fits: O(n))
    pram = Pram(CRCW_COMMON, 256, ledger=CostLedger())
    v, i = grouped_min(pram, values, offsets, strategy="auto")
    np.testing.assert_array_equal(v, values[::8])
    assert pram.ledger.rounds > 3  # not the constant-round all-pairs path
    # large machine: all-pairs fits and takes exactly 3 rounds
    pram2 = Pram(CRCW_COMMON, 1024, ledger=CostLedger())
    grouped_min(pram2, values, offsets, strategy="auto")
    assert pram2.ledger.rounds == 3


def test_grouped_min_doubly_log_round_growth():
    # rounds grow like lg lg w: going from w=16 to w=256 adds one level
    def rounds_for(w):
        pram = make(CRCW_COMMON)
        grouped_min(pram, np.random.default_rng(1).normal(size=w), np.array([0, w]),
                    strategy="doubly_log")
        return pram.ledger.rounds

    assert rounds_for(256) <= rounds_for(16) + 6
    assert rounds_for(65536) <= rounds_for(16) + 12


def test_grouped_min_validates_offsets():
    with pytest.raises(ValueError):
        grouped_min(make(), np.ones(3), np.array([0, 5]))
    with pytest.raises(ValueError):
        grouped_min(make(), np.ones(3), np.array([1, 3]))
    with pytest.raises(ValueError):
        grouped_min(make(), np.ones(3), np.array([0, 2, 1, 3]))


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_grouped_min_property_random_partitions(data):
    n = data.draw(st.integers(1, 80))
    values = np.array(
        data.draw(
            st.lists(
                st.integers(-5, 5).map(float), min_size=n, max_size=n
            )
        )
    )
    k = data.draw(st.integers(0, min(10, n)))
    cuts = sorted(data.draw(st.lists(st.integers(0, n), min_size=k, max_size=k)))
    offsets = np.array([0] + cuts + [n], dtype=np.int64)
    ref_v, ref_i = _brute_grouped_min(values, offsets)
    for strategy, model in (("binary", CREW), ("doubly_log", CRCW_COMMON)):
        v, i = grouped_min(make(model), values, offsets, strategy=strategy)
        np.testing.assert_array_equal(v, ref_v, err_msg=strategy)
        np.testing.assert_array_equal(i, ref_i, err_msg=strategy)
