"""Seeded differential fuzzing: every (problem, backend) pair vs brute force.

Each problem class gets >= 200 seeded random instances (sizes 1..12,
half integer-valued so ties are common), split across the CRCW / CREW /
sequential backends, plus small spot-checks on all three network
topologies.  For every case the engine's values AND leftmost-tie
witnesses must match a dense brute-force oracle exactly, and — where a
certifier is registered — ``certify=True`` must return a passing
certificate.  Zero divergences tolerated.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.engine import registry
from repro.monge.composite import product_argmax_brute, product_argmin_brute
from repro.monge.generators import (
    random_composite,
    random_inverse_monge,
    random_monge,
    random_staircase_monge,
)

NETWORKS = ("hypercube", "ccc", "shuffle-exchange")
CERTIFIED = ("rowmin", "staircase_min", "tube_min")

#: problem -> stable id mixed into each case's seed stream
_PID = {
    "rowmin": 1, "rowmax": 2, "rowmax_inverse": 3,
    "staircase_min": 4, "staircase_max": 5,
    "tube_min": 6, "tube_max": 7,
    "banded_min": 8, "banded_max": 9, "windowed_min": 10,
    "submatrix_max": 11,
}

#: Problems that run on the PRAMs and sequentially but on no network.
_NO_NETWORK = ("submatrix_max",)

#: (problem, backend) -> seed range.  Every problem class totals >= 200
#: seeded cases across its backends (asserted below), with a handful of
#: extra tiny cases per network topology where the problem runs there.
MATRIX = []
for _problem in _PID:
    if _problem == "windowed_min":  # PRAM-only (DESIGN.md §7)
        MATRIX += [(_problem, "pram-crcw", range(0, 110)),
                   (_problem, "pram-crew", range(110, 200))]
        continue
    MATRIX += [(_problem, "pram-crcw", range(0, 80)),
               (_problem, "pram-crew", range(80, 140)),
               (_problem, "sequential", range(140, 200))]
    if _problem in _NO_NETWORK:
        continue
    if not _problem.startswith("tube"):
        MATRIX += [(_problem, net, range(200 + 4 * k, 204 + 4 * k))
                   for k, net in enumerate(NETWORKS)]
    else:  # tube networks are slower: one spot-check each
        MATRIX += [(_problem, net, range(200 + k, 201 + k))
                   for k, net in enumerate(NETWORKS)]


# --------------------------------------------------------------------- #
# oracles — leftmost ties throughout
# --------------------------------------------------------------------- #
def _leftmost(dense, mode):
    m = dense.shape[0]
    cols = (dense.argmin(axis=1) if mode == "min" else dense.argmax(axis=1))
    cols = cols.astype(np.int64)
    return dense[np.arange(m), cols], cols


def _stair_min(dense):
    vals, cols = _leftmost(dense, "min")
    return vals, np.where(np.isinf(vals), np.int64(-1), cols)


def _stair_max(dense):
    masked = np.where(np.isinf(dense), -np.inf, dense)
    vals, cols = _leftmost(masked, "max")
    return vals, np.where(np.isneginf(vals), np.int64(-1), cols)


def _band_brute(dense, lo, hi, mode):
    m = dense.shape[0]
    fill = np.inf if mode == "min" else -np.inf
    vals = np.full(m, fill)
    cols = np.full(m, -1, dtype=np.int64)
    for i in range(m):
        if lo[i] < hi[i]:
            seg = dense[i, lo[i]:hi[i]]
            k = int(seg.argmin() if mode == "min" else seg.argmax())
            vals[i], cols[i] = seg[k], lo[i] + k
    return vals, cols


def _random_band(m, n, rng):
    lo = np.sort(rng.integers(0, n + 1, size=m))
    width = rng.integers(0, n + 1, size=m)
    hi = np.sort(np.minimum(n, lo + width))
    hi = np.maximum(hi, lo)
    return lo.astype(np.int64), hi.astype(np.int64)


def _rect_brute(dense, r0, r1, c0, c1):
    """Rectangle maximum with the column-major first maximizer: max
    value, then leftmost column, then topmost row."""
    sub = dense[r0:r1, c0:c1]
    k = int(np.argmax(sub.T))
    col, row = divmod(k, sub.shape[0])
    return np.float64(sub[row, col]), np.array(
        [r0 + row, c0 + col], dtype=np.int64
    )


def _random_rectangle(m, n, rng):
    r0 = int(rng.integers(0, m))
    r1 = int(rng.integers(r0 + 1, m + 1))
    c0 = int(rng.integers(0, n))
    c1 = int(rng.integers(c0 + 1, n + 1))
    return (r0, r1), (c0, c1)


def _random_windows(m, n, rng):
    base = np.cumsum(rng.integers(-2, 3, size=m))
    lo = np.clip(base, 0, n).astype(np.int64)
    hi = np.clip(base + rng.integers(0, 6, size=m), 0, n).astype(np.int64)
    return lo, np.maximum(hi, lo)


# --------------------------------------------------------------------- #
# case generator
# --------------------------------------------------------------------- #
def _case(problem, seed, small=False):
    """One seeded instance: ``(data, (want_values, want_witnesses))``."""
    rng = np.random.default_rng([seed, _PID[problem]])
    integer = bool(seed % 2)  # half the cases integer-valued -> real ties
    top = 7 if small else 13
    m, n = int(rng.integers(1, top)), int(rng.integers(1, top))

    if problem in ("rowmin", "rowmax"):
        a = random_monge(m, n, rng, integer=integer)
        return a, _leftmost(a.materialize(), problem[3:])
    if problem == "rowmax_inverse":
        a = random_inverse_monge(m, n, rng, integer=integer)
        return a, _leftmost(a.materialize(), "max")
    if problem in ("staircase_min", "staircase_max"):
        a = random_staircase_monge(m, n, rng, integer=integer)
        oracle = _stair_min if problem.endswith("min") else _stair_max
        return a, oracle(a.materialize())
    if problem in ("tube_min", "tube_max"):
        top3 = 5 if small else 7
        p, q, r = (int(rng.integers(1, top3)) for _ in range(3))
        c = random_composite(p, q, r, rng, integer=integer)
        oracle = product_argmin_brute if problem.endswith("min") else product_argmax_brute
        return c, oracle(c)
    if problem in ("banded_min", "banded_max"):
        mode = problem[7:]
        gen = random_monge if mode == "min" else random_inverse_monge
        a = gen(m, n, rng, integer=integer)
        lo, hi = _random_band(m, n, rng)
        return (a, lo, hi), _band_brute(a.materialize(), lo, hi, mode)
    if problem == "submatrix_max":
        a = random_monge(m, n, rng, integer=integer)
        rows, cols = _random_rectangle(m, n, rng)
        want = _rect_brute(a.materialize(), rows[0], rows[1], cols[0], cols[1])
        return (a, rows, cols), want
    assert problem == "windowed_min"
    a = random_monge(m, n, rng, integer=integer)
    lo, hi = _random_windows(m, n, rng)
    return (a, lo, hi), _band_brute(a.materialize(), lo, hi, "min")


def _check(problem, backend, seed, small=False):
    data, (want_v, want_w) = _case(problem, seed, small=small)
    certify = problem in CERTIFIED and seed % 5 == 0
    r = repro.solve(problem, data, backend=backend, certify=certify)
    label = f"{problem}/{backend}/seed={seed}"
    np.testing.assert_array_equal(np.asarray(r.values), want_v, err_msg=label)
    np.testing.assert_array_equal(np.asarray(r.witnesses), want_w, err_msg=label)
    if certify:
        assert r.certified, label


# --------------------------------------------------------------------- #
# the matrix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "problem,backend,seeds", MATRIX,
    ids=[f"{p}-{b}" for p, b, _ in MATRIX],
)
def test_differential_fuzz(problem, backend, seeds):
    for seed in seeds:
        _check(problem, backend, seed, small=backend in NETWORKS)


def test_case_budget_is_at_least_200_per_problem():
    for problem in _PID:
        total = sum(len(s) for p, _, s in MATRIX if p == problem)
        assert total >= 200, (problem, total)


def test_matrix_only_names_supported_pairs():
    for problem, backend, _ in MATRIX:
        assert registry.supports(problem, backend), (problem, backend)


# --------------------------------------------------------------------- #
# served mode: the same oracle through repro.serve (DESIGN.md §15)
# --------------------------------------------------------------------- #
def test_served_fuzz_class_matches_brute_oracle():
    """One fuzz class routed through :class:`QueryService` instead of
    ``repro.solve``: 40 seeded rowmin instances submitted concurrently
    (mixed shapes, so buckets form and flush independently) must match
    the brute oracle on values AND leftmost-tie witnesses exactly —
    micro-batching is not allowed to perturb a single bit."""
    import asyncio

    from repro.serve import QueryService, ServiceConfig

    seeds = range(0, 40)
    cases = [_case("rowmin", seed) for seed in seeds]

    async def body():
        policy = ServiceConfig(min_window=0.001, max_window=0.020, max_batch=64)
        async with QueryService("pram-crcw", policy=policy) as svc:
            return await asyncio.gather(
                *(svc.solve("rowmin", data) for data, _ in cases)
            )

    results = asyncio.run(body())
    for seed, (_, (want_v, want_w)), r in zip(seeds, cases, results):
        label = f"rowmin/served/seed={seed}"
        np.testing.assert_array_equal(np.asarray(r.values), want_v, err_msg=label)
        np.testing.assert_array_equal(np.asarray(r.witnesses), want_w, err_msg=label)


# --------------------------------------------------------------------- #
# hypothesis: unseeded shrinkable properties on the flagship problems
# --------------------------------------------------------------------- #
_common = dict(
    m=st.integers(1, 10), n=st.integers(1, 10),
    seed=st.integers(0, 2**31 - 1), integer=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(**_common)
def test_property_rowmin_backends_match_brute(m, n, seed, integer):
    a = random_monge(m, n, np.random.default_rng(seed), integer=integer)
    want_v, want_w = _leftmost(a.materialize(), "min")
    for backend in ("pram-crcw", "sequential"):
        r = repro.solve("rowmin", a, backend=backend)
        np.testing.assert_array_equal(np.asarray(r.values), want_v)
        np.testing.assert_array_equal(np.asarray(r.witnesses), want_w)


@settings(max_examples=30, deadline=None)
@given(**_common)
def test_property_staircase_min_matches_brute(m, n, seed, integer):
    a = random_staircase_monge(m, n, np.random.default_rng(seed), integer=integer)
    want_v, want_w = _stair_min(a.materialize())
    r = repro.solve("staircase_min", a)
    np.testing.assert_array_equal(np.asarray(r.values), want_v)
    np.testing.assert_array_equal(np.asarray(r.witnesses), want_w)


@settings(max_examples=30, deadline=None)
@given(**_common)
def test_property_submatrix_max_paths_agree(m, n, seed, integer):
    """One-shot ``solve`` and the prepared index answer every random
    rectangle identically to the brute oracle (leftmost-tie included)."""
    rng = np.random.default_rng(seed)
    a = random_monge(m, n, rng, integer=integer)
    handle = repro.prepare(a)
    dense = a.materialize()
    for _ in range(4):
        rows, cols = _random_rectangle(m, n, rng)
        want_v, want_w = _rect_brute(dense, rows[0], rows[1], cols[0], cols[1])
        one = repro.solve("submatrix_max", (a, rows, cols))
        via_index = handle.query(rows, cols)
        for r in (one, via_index):
            assert float(r.values) == float(want_v)
            np.testing.assert_array_equal(np.asarray(r.witnesses), want_w)


@settings(max_examples=25, deadline=None)
@given(p=st.integers(1, 6), q=st.integers(1, 6), r=st.integers(1, 6),
       seed=st.integers(0, 2**31 - 1), integer=st.booleans())
def test_property_tube_min_matches_brute(p, q, r, seed, integer):
    c = random_composite(p, q, r, np.random.default_rng(seed), integer=integer)
    want_v, want_w = product_argmin_brute(c)
    res = repro.solve("tube_min", c)
    np.testing.assert_array_equal(np.asarray(res.values), want_v)
    np.testing.assert_array_equal(np.asarray(res.witnesses), want_w)
