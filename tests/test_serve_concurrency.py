"""Real-asyncio serving smoke: concurrency, ordering, and seeded chaos.

The virtual-clock suite (``test_serve_service.py``) pins the window /
admission / deadline state machine; this one runs the *production*
wiring — :class:`MonotonicClock` + :class:`ThreadExecutor` — under real
concurrent clients and seeded fault regimes.  Windows are kept to tens
of milliseconds so the suite stays fast, and every check is against a
deterministic reference (direct :class:`Session` answers, seeded
:class:`FaultPlan` schedules), never against wall-clock timing.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import ExecutionConfig, Session
from repro.monge.generators import random_monge, random_staircase_monge
from repro.obs import metrics, reset_metrics
from repro.resilience.faults import FaultPlan
from repro.serve import QueryService, ServiceConfig, serve_solve
from repro.shard.config import set_default_start_method

WINDOW = ServiceConfig(min_window=0.001, max_window=0.030, max_batch=64)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield


def _assert_same(want, got):
    np.testing.assert_array_equal(want.values, got.values)
    np.testing.assert_array_equal(want.witnesses, got.witnesses)
    assert want.snapshot == got.snapshot


# --------------------------------------------------------------------- #
# many concurrent clients, mixed problems
# --------------------------------------------------------------------- #
def test_concurrent_clients_get_their_own_answers():
    """N clients race mixed problems/shapes through one service; each
    must get the answer for *its* input (no cross-wiring inside fused
    buckets), bit-identical to a direct Session solve."""
    specs = []
    for k in range(6):
        specs.append(("rowmin", random_monge(10, 8, np.random.default_rng(k))))
    for k in range(4):
        specs.append(("rowmax", random_monge(7, 7, np.random.default_rng(40 + k))))
    for k in range(2):
        specs.append(
            ("staircase_min",
             random_staircase_monge(9, 9, np.random.default_rng(80 + k)))
        )

    async def body():
        async with QueryService("pram-crcw", policy=WINDOW) as svc:
            return await asyncio.gather(
                *(svc.solve(problem, data) for problem, data in specs)
            )

    results = asyncio.run(body())
    ref = Session("pram-crcw")
    for (problem, data), got in zip(specs, results):
        assert got.problem == problem
        _assert_same(ref.solve(problem, data), got)
    counters = metrics().snapshot()["counters"]
    assert counters["serve.completed"] == len(specs)
    # the six same-shape rowmins and four rowmaxes each fused
    assert counters["serve.fused_requests"] == 10


def test_burst_fuses_into_one_bucket():
    """A same-key burst submitted inside one cold-start window executes
    as a single fused bucket (the service's whole reason to exist)."""
    data = [random_monge(12, 12, np.random.default_rng(200 + k)) for k in range(8)]

    async def body():
        async with QueryService("pram-crcw", policy=WINDOW) as svc:
            return await asyncio.gather(*(svc.solve("rowmin", a) for a in data))

    results = asyncio.run(body())
    assert len(results) == 8
    counters = metrics().snapshot()["counters"]
    assert counters["serve.buckets"] == 1
    assert metrics().histogram("serve.fusion_width").max == 8
    hist = metrics().histogram("serve.latency_s")
    assert hist.count == 8 and hist.quantile(0.99) is not None


def test_solve_many_preserves_input_order_across_interleaved_shapes():
    """Interleaved shapes land in different buckets that may finish in
    any order; the client list must still come back in input order."""
    rng = np.random.default_rng(7)
    queries = []
    for k in range(10):
        n = 6 + (k % 3)  # 6,7,8,6,7,8,... -> three interleaved buckets
        queries.append(("rowmin", random_monge(n, n, rng)))

    async def body():
        async with QueryService("pram-crcw", policy=WINDOW) as svc:
            return await svc.solve_many(queries)

    results = asyncio.run(body())
    ref = Session("pram-crcw")
    for (problem, data), got in zip(queries, results):
        assert got.values.shape == (data.shape[0],)
        _assert_same(ref.solve(problem, data), got)


def test_serve_solve_one_shot():
    a = random_monge(9, 9, np.random.default_rng(31))
    got = asyncio.run(serve_solve("rowmin", a, "pram-crcw"))
    _assert_same(Session("pram-crcw").solve("rowmin", a), got)


# --------------------------------------------------------------------- #
# seeded chaos under the service
# --------------------------------------------------------------------- #
def test_faulty_request_retries_accounted_to_that_request_only():
    """One client opts into a deterministic machine-fault regime
    (``processor_drop=1.0`` + ``retries=2``): its retries must land on
    *its* sub-account while clean concurrent requests stay at zero and
    every answer stays correct."""
    clean = [random_monge(8, 8, np.random.default_rng(300 + k)) for k in range(4)]
    faulty = random_monge(8, 8, np.random.default_rng(399))
    plan = FaultPlan(seed=0, processor_drop=1.0)

    async def body():
        async with QueryService("pram-crcw", policy=WINDOW) as svc:
            chaotic = svc.solve("rowmin", faulty, faults=plan, retries=2)
            calm = [svc.solve("rowmin", a) for a in clean]
            return await asyncio.gather(chaotic, *calm)

    got_faulty, *got_clean = asyncio.run(body())
    ref = Session("pram-crcw")
    # run_resilient disarms the final attempt, so rate 1.0 still converges
    assert got_faulty.retries == 2
    np.testing.assert_array_equal(
        ref.solve("rowmin", faulty).values, got_faulty.values
    )
    for a, got in zip(clean, got_clean):
        assert got.retries == 0
        _assert_same(ref.solve("rowmin", a), got)
    counters = metrics().snapshot()["counters"]
    # machine faults disqualify fusion: the chaotic request ran serially
    assert counters["serve.fused_requests"] == 4


def test_faulty_shard_under_the_service_recovers_bit_identical():
    """Shard-only chaos (every worker attempt killed) below a fused
    bucket: supervision retries/quarantines inside the shard layer and
    each client still gets the bit-identical answer, with recovery
    visible on the ``shard.*`` counters."""
    data = [random_monge(12, 9, np.random.default_rng(500 + k)) for k in range(4)]
    refs = [
        Session("pram-crcw").solve("rowmin", a, config=ExecutionConfig(shards=1))
        for a in data
    ]
    reset_metrics()
    plan = FaultPlan(seed=29, worker_kill=1.0)
    assert plan.shard_only  # keeps the bucket fusable (DESIGN.md §12)

    async def body():
        svc = QueryService(
            "pram-crcw",
            policy=WINDOW,
            config=ExecutionConfig(shards=2, faults=plan),
        )
        async with svc:
            return await asyncio.gather(*(svc.solve("rowmin", a) for a in data))

    prev = set_default_start_method("thread")
    try:
        results = asyncio.run(body())
    finally:
        set_default_start_method(prev)

    for want, got in zip(refs, results):
        np.testing.assert_array_equal(want.values, got.values)
        np.testing.assert_array_equal(want.witnesses, got.witnesses)
        assert want.snapshot == got.snapshot
    counters = metrics().snapshot()["counters"]
    assert counters["serve.fused_requests"] == 4
    # recovery really happened under the service
    assert counters["shard.retries"] > 0
    assert counters["shard.partial_fallbacks"] == 2
    assert plan.counts()["worker_kill"] > 0


def test_concurrent_prepare_and_solve_share_the_executor_safely():
    a = random_monge(10, 10, np.random.default_rng(600))
    others = [random_monge(8, 8, np.random.default_rng(610 + k)) for k in range(3)]

    async def body():
        async with QueryService("pram-crcw", policy=WINDOW) as svc:
            handle_t = asyncio.create_task(svc.prepare(a))
            solves = [asyncio.create_task(svc.solve("rowmin", b)) for b in others]
            handle = await handle_t
            sub = await svc.query(handle, (2, 9), (1, 10))
            return sub, await asyncio.gather(*solves)

    sub, results = asyncio.run(body())
    want = Session("pram-crcw").prepare(a).query((2, 9), (1, 10))
    assert sub.values == want.values
    ref = Session("pram-crcw")
    for b, got in zip(others, results):
        _assert_same(ref.solve("rowmin", b), got)
