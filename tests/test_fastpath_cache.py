"""Fused fast path + entry-evaluation cache: the bit-identity contract.

The wall-clock engine (fused grouped-extremum kernels, charge replay,
``CachedArray``) is only admissible because it is *invisible* to the
measured experiment: results AND ledger snapshots (rounds, work, peak
processors, per-phase stats) must be bit-identical with the fast path
or the cache on or off.  These tests pin that contract:

- hypothesis property: ``CachedArray`` returns bit-identical values to
  its base array under arbitrary batched access patterns, and its
  raw-evaluation accounting never exceeds the distinct-entry count;
- the grouped-minimum strategies agree fused vs. reference on fuzzed
  ragged inputs including ``±inf`` entries, ledger included;
- end-to-end: the Table 1.1–1.3 algorithms produce identical answers
  and identical ledger snapshots across all four (fast, cache)
  configurations — the acceptance invariant of BENCH_hotpath.json.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    monge_row_minima_pram,
    staircase_row_minima_pram,
    tube_minima_pram,
)
from repro.monge.arrays import CachedArray, ExplicitArray
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.pram.fastpath import fast_path, fast_path_enabled, set_fast_path
from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram
from repro.pram.models import CRCW_COMMON, CREW
from repro.pram.primitives import broadcast, grouped_min, replicate_by_counts
from repro.pram.scheduling import BrentPram


def _crcw(n: int) -> BrentPram:
    return BrentPram(CRCW_COMMON, 1 << 44, 8 * n, ledger=CostLedger())


def _crew(n: int) -> BrentPram:
    phys = max(1, int(n / math.log2(max(2.0, math.log2(max(2, n))))))
    return BrentPram(CREW, 1 << 44, phys, ledger=CostLedger())


# --------------------------------------------------------------------- #
# fast-path switch
# --------------------------------------------------------------------- #
def test_fast_path_switch_scopes():
    initial = fast_path_enabled()
    try:
        with fast_path(False):
            assert not fast_path_enabled()
            with fast_path(True):
                assert fast_path_enabled()
            assert not fast_path_enabled()
        assert fast_path_enabled() == initial
        set_fast_path(False)
        assert not fast_path_enabled()
    finally:
        set_fast_path(initial)


# --------------------------------------------------------------------- #
# CachedArray: bit-identical values, eval accounting
# --------------------------------------------------------------------- #
@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_cached_array_bit_identical(data):
    m = data.draw(st.integers(1, 10), label="m")
    n = data.draw(st.integers(1, 10), label="n")
    cells = data.draw(
        st.lists(
            st.one_of(
                st.integers(-3, 3).map(float),
                st.sampled_from([np.inf, -np.inf, 0.5, -0.25]),
            ),
            min_size=m * n,
            max_size=m * n,
        ),
        label="cells",
    )
    dense = np.array(cells, dtype=np.float64).reshape(m, n)
    plain = ExplicitArray(dense)
    cached = CachedArray(ExplicitArray(dense))

    n_batches = data.draw(st.integers(1, 5), label="n_batches")
    requested = 0
    distinct = set()
    for b in range(n_batches):
        size = data.draw(st.integers(0, 12), label=f"size{b}")
        rows = np.array(
            data.draw(st.lists(st.integers(0, m - 1), min_size=size, max_size=size),
                      label=f"rows{b}"),
            dtype=np.int64,
        )
        cols = np.array(
            data.draw(st.lists(st.integers(0, n - 1), min_size=size, max_size=size),
                      label=f"cols{b}"),
            dtype=np.int64,
        )
        expect = plain.eval(rows, cols)
        got = cached.eval(rows, cols)
        assert np.array_equal(expect, got), "cached values differ from base"
        requested += size
        distinct.update(zip(rows.tolist(), cols.tolist()))

    assert cached.eval_count == requested
    assert cached.raw_eval_count == len(distinct)  # each entry computed once
    assert cached.hits + cached.misses == requested


def test_cached_array_repeat_batch_hits():
    dense = np.arange(12, dtype=np.float64).reshape(3, 4)
    c = CachedArray(ExplicitArray(dense))
    rows = np.array([0, 1, 2, 0, 1]); cols = np.array([0, 1, 3, 0, 1])
    first = c.eval(rows, cols)
    assert c.raw_eval_count == 3  # (0,0) and (1,1) repeat within the batch
    second = c.eval(rows, cols)
    assert np.array_equal(first, second)
    assert c.raw_eval_count == 3  # nothing recomputed
    # hit/miss counters are per *request* vs. the pre-batch cache state:
    # all 5 first-batch requests missed (dedup only affects raw evals)
    assert c.misses == 5 and c.hits == 5
    c.clear()
    c.eval(rows, cols)
    assert c.raw_eval_count == 6  # recomputed after clear


# --------------------------------------------------------------------- #
# eval bounds checking (satellite: single fused check + fast path)
# --------------------------------------------------------------------- #
def test_eval_bounds_checked_and_unchecked():
    a = ExplicitArray(np.arange(6, dtype=np.float64).reshape(2, 3))
    for rows, cols in [([-1], [0]), ([2], [0]), ([0], [-1]), ([0], [3])]:
        with pytest.raises(IndexError):
            a.eval(np.array(rows), np.array(cols))
    rows = np.array([0, 1, 1]); cols = np.array([2, 0, 2])
    assert np.array_equal(a.eval(rows, cols), a.eval(rows, cols, checked=False))
    # empty requests never trip the check
    assert a.eval(np.empty(0, np.int64), np.empty(0, np.int64)).size == 0


# --------------------------------------------------------------------- #
# grouped-min strategies: fused == reference, ledger included
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", ["binary", "allpairs", "doubly_log"])
def test_grouped_min_fused_matches_reference(strategy):
    rng = np.random.default_rng(0xFA57)
    for trial in range(120):
        ng = int(rng.integers(1, 16))
        widths = rng.integers(0, 13, size=ng)
        offsets = np.zeros(ng + 1, dtype=np.int64)
        np.cumsum(widths, out=offsets[1:])
        vals = rng.integers(-4, 5, size=int(offsets[-1])).astype(np.float64)
        if vals.size and trial % 3 == 0:
            k = max(1, vals.size // 4)
            vals[rng.integers(0, vals.size, size=k)] = np.inf
        if vals.size and trial % 5 == 0:
            vals[rng.integers(0, vals.size)] = -np.inf
        out = {}
        for enabled in (True, False):
            m = Pram(CRCW_COMMON, 1 << 40, ledger=CostLedger())
            with fast_path(enabled):
                v, i = grouped_min(m, vals.copy(), offsets, strategy=strategy)
            out[enabled] = (v, i, m.ledger.snapshot())
        assert np.array_equal(out[True][0], out[False][0]), (trial, strategy)
        assert np.array_equal(out[True][1], out[False][1]), (trial, strategy)
        assert out[True][2] == out[False][2], (trial, strategy, "ledger")


def test_scan_primitives_fused_match_reference():
    rng = np.random.default_rng(0xB0A7)
    for trial in range(60):
        k = int(rng.integers(0, 12))
        counts = rng.integers(0, 6, size=k)
        values = rng.normal(size=k)
        bsize = int(rng.integers(0, 9))
        out = {}
        for enabled in (True, False):
            m = Pram(CRCW_COMMON, 1 << 40, ledger=CostLedger())
            with fast_path(enabled):
                r = replicate_by_counts(m, values.copy(), counts.copy())
                b = broadcast(m, 3.5, bsize)
            out[enabled] = (r, b, m.ledger.snapshot())
        assert np.array_equal(out[True][0], out[False][0]), trial
        assert np.array_equal(out[True][1], out[False][1]), trial
        assert out[True][2] == out[False][2], (trial, "ledger")


# --------------------------------------------------------------------- #
# end-to-end acceptance: results + ledger identical across all configs
# --------------------------------------------------------------------- #
def _configs():
    # (fast_path, cache); reference first
    return [(False, False), (True, False), (False, True), (True, True)]


def _assert_invariant(run):
    """``run(machine, cache)`` -> result arrays; compare all configs."""
    baseline = None
    for fp, cache in _configs():
        with fast_path(fp):
            machine, result = run(cache)
        snap = machine.ledger.snapshot()
        if baseline is None:
            baseline = (result, snap)
            continue
        for got, want in zip(result, baseline[0]):
            assert np.array_equal(got, want), (fp, cache)
        assert snap == baseline[1], ("ledger differs", fp, cache)


def test_rowmin_crcw_invariant():
    a = random_monge(96, 96, np.random.default_rng(1))

    def run(cache):
        m = _crcw(96)
        return m, monge_row_minima_pram(m, a, cache=cache)

    _assert_invariant(run)


def test_rowmin_crew_invariant():
    a = random_monge(80, 80, np.random.default_rng(2))

    def run(cache):
        m = _crew(80)
        return m, monge_row_minima_pram(m, a, cache=cache)

    _assert_invariant(run)


def test_staircase_invariant():
    a = random_staircase_monge(64, 64, np.random.default_rng(3))

    def run(cache):
        m = _crcw(64)
        return m, staircase_row_minima_pram(m, a, cache=cache)

    _assert_invariant(run)


def test_tube_invariant():
    c = random_composite(20, 20, 20, np.random.default_rng(4))

    def run(cache):
        m = _crcw(400)
        return m, tube_minima_pram(m, c, cache=cache)

    _assert_invariant(run)
