"""ExecutionConfig validation/auto-resolution and SearchResult back-compat."""

import numpy as np
import pytest

from repro.engine import ExecutionConfig, SearchResult, solve
from repro.monge.generators import random_monge

# --------------------------------------------------------------------- #
# ExecutionConfig
# --------------------------------------------------------------------- #
def test_defaults():
    cfg = ExecutionConfig()
    assert cfg.strategy == "auto"
    assert cfg.cache is False and cfg.strict is True and cfg.checked is False
    assert cfg.faults is None and cfg.retries == 0 and cfg.certify is False
    assert cfg.shards is None and cfg.shard_timeout is None
    assert cfg.kernel_tier is None and cfg.tile_bytes is None


@pytest.mark.parametrize("bad", [0, -0.5, float("inf"), float("nan"), "30"])
def test_bad_shard_timeout_rejected(bad):
    with pytest.raises(ValueError, match="shard_timeout"):
        ExecutionConfig(shard_timeout=bad)


def test_shard_timeout_accepted_and_fingerprinted():
    cfg = ExecutionConfig(shard_timeout=2.5)
    assert cfg.shard_timeout == 2.5
    assert cfg.fingerprint() != ExecutionConfig().fingerprint()
    assert cfg.with_overrides(shard_timeout=None).shard_timeout is None


# --------------------------------------------------------------------- #
# kernel tier / tile budget (DESIGN.md §13)
# --------------------------------------------------------------------- #
def test_kernel_tier_validated_at_construction():
    assert ExecutionConfig(kernel_tier="blocked").kernel_tier == "blocked"
    with pytest.raises(ValueError, match="unknown kernel tier"):
        ExecutionConfig(kernel_tier="warp")
    # the tier joins the fusion fingerprint: mixed-tier queries never fuse
    assert (
        ExecutionConfig(kernel_tier="blocked").fingerprint()
        != ExecutionConfig(kernel_tier="fused").fingerprint()
    )
    assert ExecutionConfig(kernel_tier="blocked").fingerprint() != (
        ExecutionConfig().fingerprint()
    )


@pytest.mark.parametrize("bad", [0, -4096, 2.5, "64MB", True])
def test_bad_tile_bytes_rejected(bad):
    with pytest.raises(ValueError, match="tile_bytes"):
        ExecutionConfig(tile_bytes=bad)


def test_tile_bytes_accepted_and_fingerprinted():
    cfg = ExecutionConfig(tile_bytes=4096)
    assert cfg.tile_bytes == 4096
    assert cfg.fingerprint() != ExecutionConfig().fingerprint()
    assert cfg.with_overrides(tile_bytes=None).tile_bytes is None


def test_env_tier_and_tile_validated_parent_side(monkeypatch):
    """Malformed env values fail with a ValueError naming the variable
    before any worker is spawned, exactly like REPRO_SHARDS."""
    from repro.kernels.registry import (
        _reload_env_defaults,
        resolve_kernel_tier,
        resolve_tile_bytes,
    )

    monkeypatch.setenv("REPRO_KERNEL_TIER", "bogus")
    _reload_env_defaults()
    with pytest.raises(ValueError, match="REPRO_KERNEL_TIER"):
        resolve_kernel_tier(None)
    monkeypatch.delenv("REPRO_KERNEL_TIER")
    monkeypatch.setenv("REPRO_TILE_BYTES", "lots")
    _reload_env_defaults()
    with pytest.raises(ValueError, match="REPRO_TILE_BYTES"):
        resolve_tile_bytes(None)
    monkeypatch.delenv("REPRO_TILE_BYTES")
    _reload_env_defaults()


def test_unknown_strategy_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown strategy"):
        ExecutionConfig(strategy="bogus")


@pytest.mark.parametrize("bad", [-1, 1.5, "2", True])
def test_bad_retries_rejected(bad):
    with pytest.raises(ValueError, match="retries"):
        ExecutionConfig(retries=bad)


def test_with_overrides_revalidates_and_preserves():
    cfg = ExecutionConfig(strategy="halving", cache=True)
    out = cfg.with_overrides(certify=True)
    assert out.strategy == "halving" and out.cache and out.certify
    assert not cfg.certify  # frozen original untouched
    with pytest.raises(ValueError):
        cfg.with_overrides(strategy="nope")


@pytest.mark.parametrize(
    "problem,crcw,expected",
    [
        ("rowmin", True, "sqrt"),
        ("rowmax", False, "sqrt"),
        ("tube_min", True, "crcw"),
        ("tube_min", False, "crew"),
        ("tube_max", False, "crew"),
        ("staircase_min", True, "auto"),
    ],
)
def test_auto_strategy_resolution(problem, crcw, expected):
    assert ExecutionConfig().resolve_strategy(problem, crcw) == expected


def test_explicit_strategy_passes_through_unresolved():
    cfg = ExecutionConfig(strategy="halving")
    assert cfg.resolve_strategy("tube_min", True) == "halving"


# --------------------------------------------------------------------- #
# SearchResult tuple back-compat
# --------------------------------------------------------------------- #
def test_searchresult_unpacks_like_the_legacy_pair():
    a = random_monge(6, 6, np.random.default_rng(0))
    result = solve("rowmin", a)
    values, cols = result  # the pre-engine calling convention
    assert values is result.values and cols is result.witnesses
    assert len(result) == 2
    assert result[0] is result.values and result[1] is result.witnesses
    np.testing.assert_array_equal(tuple(result)[1], cols)


def test_searchresult_metadata_fields():
    a = random_monge(6, 6, np.random.default_rng(1))
    r = solve("rowmin", a, certify=True)
    assert r.problem == "rowmin" and r.backend == "pram-crcw"
    assert r.strategy == "sqrt"  # auto resolved
    assert r.certified and r.certificate.ok
    assert not r.degraded and r.retries == 0
    assert r.snapshot["rounds"] == r.rounds > 0


def test_searchresult_plain_construction():
    r = SearchResult(values=np.arange(3.0), witnesses=np.arange(3))
    v, w = r
    assert v.shape == (3,) and w.shape == (3,)
    assert not r.certified and not r.degraded and r.rounds is None
