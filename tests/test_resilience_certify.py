"""Result certifiers: accept reference outputs, reject corrupted ones."""

import numpy as np
import pytest

from repro.monge.composite import product_argmin_brute
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.resilience import (
    Certificate,
    CertificationError,
    certify_row_minima,
    certify_staircase_row_minima,
    certify_tube_minima,
)


def _brute_rows(dense):
    finite = np.isfinite(dense)
    masked = np.where(finite, dense, np.inf)
    cols = masked.argmin(axis=1).astype(np.int64)
    vals = masked[np.arange(dense.shape[0]), cols]
    empty = ~finite.any(axis=1)
    cols[empty] = -1
    vals[empty] = np.inf
    return vals, cols


# --------------------------------------------------------------------- #
# Full Monge arrays
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(6))
def test_accepts_reference_row_minima(seed):
    rng = np.random.default_rng(seed)
    m, n = int(rng.integers(1, 50)), int(rng.integers(1, 50))
    a = random_monge(m, n, rng, integer=bool(seed % 2))  # integer -> tie-heavy
    vals, cols = _brute_rows(a.data)
    cert = certify_row_minima(a, vals, cols)
    assert cert.ok and bool(cert)
    assert cert.require() is cert
    assert cert.evals <= 3 * (m + n) + 8  # near-linear certificate cost


def test_rejects_corrupted_value():
    a = random_monge(20, 20, np.random.default_rng(0))
    vals, cols = _brute_rows(a.data)
    vals = vals.copy()
    vals[7] -= 1.0
    cert = certify_row_minima(a, vals, cols)
    assert not cert.ok
    assert any("row 7" in msg for msg in cert.failures)
    with pytest.raises(CertificationError):
        cert.require()


def test_rejects_shifted_witness():
    a = random_monge(20, 20, np.random.default_rng(1))
    vals, cols = _brute_rows(a.data)
    cols = cols.copy()
    i = int(np.argmax(cols < 19))
    cols[i] += 1  # consistent pair would need the matching value too
    assert not certify_row_minima(a, vals, cols).ok


def test_rejects_non_leftmost_tie():
    a = np.zeros((6, 6))  # Monge, every column ties at 0
    vals = np.zeros(6)
    cols = np.zeros(6, dtype=np.int64)
    assert certify_row_minima(a, vals, cols).ok
    cols[3] = 2  # value still correct, but not the leftmost witness
    cert = certify_row_minima(a, vals, cols)
    assert not cert.ok
    assert any("leftmost" in msg or "monotonicity" in msg for msg in cert.failures)


def test_rejects_true_minimum_outside_window():
    # consistent witnesses + monotone columns, but row 2's true minimum
    # is elsewhere: the window check must catch it
    a = random_monge(12, 12, np.random.default_rng(2))
    vals, cols = _brute_rows(a.data)
    vals, cols = vals.copy(), cols.copy()
    wrong = (cols[2] + 1) % 12
    cols[2] = wrong
    vals[2] = a.data[2, wrong]
    assert not certify_row_minima(a, vals, cols).ok


def test_rejects_shape_mismatch():
    a = random_monge(5, 5, np.random.default_rng(3))
    vals, cols = _brute_rows(a.data)
    assert not certify_row_minima(a, vals[:-1], cols[:-1]).ok


# --------------------------------------------------------------------- #
# Staircase-Monge arrays
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(6))
def test_accepts_reference_staircase_minima(seed):
    rng = np.random.default_rng(100 + seed)
    m, n = int(rng.integers(1, 40)), int(rng.integers(1, 40))
    a = random_staircase_monge(m, n, rng, integer=bool(seed % 2))
    vals, cols = _brute_rows(a.materialize())
    assert certify_staircase_row_minima(a, vals, cols).ok


def test_staircase_rejects_witness_in_infinite_region():
    rng = np.random.default_rng(7)
    a = random_staircase_monge(10, 10, rng)
    dense = a.materialize()
    vals, cols = _brute_rows(dense)
    # find a row whose finite prefix is a strict prefix
    f = np.isfinite(dense).sum(axis=1)
    candidates = np.nonzero((f > 0) & (f < 10))[0]
    if candidates.size == 0:
        pytest.skip("degenerate staircase draw")
    i = int(candidates[0])
    cols = cols.copy()
    cols[i] = int(f[i])  # first infinite column
    assert not certify_staircase_row_minima(a, vals, cols).ok


def test_staircase_rejects_empty_row_misreport():
    base = random_monge(4, 6, np.random.default_rng(8))
    boundary = np.array([6, 4, 0, 0])
    from repro.monge.arrays import StaircaseArray

    a = StaircaseArray(base, boundary)
    vals, cols = _brute_rows(a.materialize())
    bad_vals = vals.copy()
    bad_vals[2] = 0.0  # empty row must report inf
    cert = certify_staircase_row_minima(a, bad_vals, cols)
    assert not cert.ok
    assert any("(inf, -1)" in msg for msg in cert.failures)


def test_staircase_non_staircase_input_fails_soft():
    dense = np.zeros((3, 3))
    dense[0, 0] = np.inf  # infinite entry in the top-left: not a staircase
    cert = certify_staircase_row_minima(dense, np.zeros(3), np.zeros(3, dtype=np.int64))
    assert not cert.ok
    assert any("not staircase-shaped" in msg for msg in cert.failures)


def test_explicit_boundary_validation():
    a = random_monge(4, 4, np.random.default_rng(9))
    vals, cols = _brute_rows(a.data)
    assert not certify_row_minima(a, vals, cols, boundary=np.array([2, 3, 4, 4])).ok
    assert not certify_row_minima(a, vals, cols, boundary=np.array([4, 4, 4, 9])).ok


# --------------------------------------------------------------------- #
# Tube (Monge-composite) outputs
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(4))
def test_accepts_reference_tube_minima(seed):
    rng = np.random.default_rng(200 + seed)
    p, q, r = (int(rng.integers(1, 14)) for _ in range(3))
    c = random_composite(p, q, r, rng, integer=bool(seed % 2))
    V, J = product_argmin_brute(c)
    cert = certify_tube_minima(c, V, J)
    assert cert.ok
    assert cert.evals <= 4 * p * (q + r) + 16


def test_tube_rejects_corrupted_cell():
    c = random_composite(6, 7, 8, np.random.default_rng(10))
    V, J = product_argmin_brute(c)
    V = V.copy()
    V[3, 4] -= 0.5
    assert not certify_tube_minima(c, V, J).ok


def test_tube_rejects_non_minimal_witness():
    c = random_composite(6, 7, 8, np.random.default_rng(11))
    V, J = product_argmin_brute(c)
    V, J = V.copy(), J.copy()
    j_wrong = (J[2, 2] + 1) % 7
    J[2, 2] = j_wrong
    V[2, 2] = c.D.data[2, j_wrong] + c.E.data[j_wrong, 2]  # consistent but wrong
    assert not certify_tube_minima(c, V, J).ok


def test_tube_rejects_out_of_range_witness():
    c = random_composite(3, 4, 5, np.random.default_rng(12))
    V, J = product_argmin_brute(c)
    J = J.copy()
    J[0, 0] = 4
    assert not certify_tube_minima(c, V, J).ok


def test_certificate_failure_cap():
    cert = Certificate(True, "t")
    for k in range(100):
        cert.fail(f"failure {k}")
    assert not cert.ok
    assert len(cert.failures) == 32
