"""Banded row extrema (monotone windows)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.banded import (
    banded_row_maxima,
    banded_row_maxima_pram,
    banded_row_minima,
    banded_row_minima_pram,
)
from repro.monge.generators import random_inverse_monge, random_monge
from repro.pram import CRCW_COMMON, CREW, CostLedger, Pram


def make(model=CRCW_COMMON):
    return Pram(model, 1 << 26, ledger=CostLedger())


def random_band(m, n, rng):
    lo = np.sort(rng.integers(0, n + 1, size=m))
    width = rng.integers(0, n + 1, size=m)
    hi = np.minimum(n, np.maximum.accumulate(np.minimum(lo + width, n)))
    hi = np.maximum(hi, lo - 0)  # hi may be < lo (empty rows allowed)
    hi = np.sort(hi)
    return lo.astype(np.int64), hi.astype(np.int64)


def brute_min(dense, lo, hi):
    m = dense.shape[0]
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    for i in range(m):
        if lo[i] < hi[i]:
            seg = dense[i, lo[i] : hi[i]]
            k = int(np.argmin(seg))
            vals[i], cols[i] = seg[k], lo[i] + k
    return vals, cols


@pytest.mark.parametrize("seed", range(12))
def test_sequential_banded_minima(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 40))
    n = int(rng.integers(1, 40))
    a = random_monge(m, n, rng, integer=bool(seed % 2))
    lo, hi = random_band(m, n, rng)
    bv, bc = brute_min(a.data, lo, hi)
    gv, gc = banded_row_minima(a, lo, hi)
    np.testing.assert_array_equal(gc, bc)
    finite = np.isfinite(bv)
    np.testing.assert_allclose(gv[finite], bv[finite])


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("model", [CRCW_COMMON, CREW])
def test_parallel_banded_minima(seed, model):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 40))
    n = int(rng.integers(1, 40))
    a = random_monge(m, n, rng, integer=True)
    lo, hi = random_band(m, n, rng)
    bv, bc = brute_min(a.data, lo, hi)
    gv, gc = banded_row_minima_pram(make(model), a, lo, hi)
    np.testing.assert_array_equal(gc, bc)


@pytest.mark.parametrize("seed", range(6))
def test_banded_maxima(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 30))
    n = int(rng.integers(1, 30))
    a = random_inverse_monge(m, n, rng, integer=True)
    lo, hi = random_band(m, n, rng)
    bv, bc = brute_min(-a.data, lo, hi)
    gv, gc = banded_row_maxima(a, lo, hi)
    np.testing.assert_array_equal(gc, bc)
    gv2, gc2 = banded_row_maxima_pram(make(), a, lo, hi)
    np.testing.assert_array_equal(gc2, bc)


def test_full_band_equals_unrestricted(rng):
    a = random_monge(20, 17, rng)
    lo = np.zeros(20, dtype=np.int64)
    hi = np.full(20, 17, dtype=np.int64)
    gv, gc = banded_row_minima(a, lo, hi)
    np.testing.assert_array_equal(gc, a.data.argmin(axis=1))


def test_all_empty_band(rng):
    a = random_monge(5, 5, rng)
    lo = np.full(5, 3, dtype=np.int64)
    hi = np.full(5, 3, dtype=np.int64)
    gv, gc = banded_row_minima(a, lo, hi)
    assert (gc == -1).all() and np.isinf(gv).all()
    gv, gc = banded_row_minima_pram(make(), a, lo, hi)
    assert (gc == -1).all()


def test_band_validation(rng):
    a = random_monge(4, 4, rng)
    with pytest.raises(ValueError, match="nondecreasing"):
        banded_row_minima(a, np.array([2, 1, 1, 1]), np.array([4, 4, 4, 4]))
    with pytest.raises(ValueError, match="within"):
        banded_row_minima(a, np.array([0, 0, 0, 0]), np.array([4, 4, 4, 5]))
    with pytest.raises(ValueError, match="shape"):
        banded_row_minima(a, np.array([0, 0]), np.array([4, 4]))


def test_zero_size_inputs(rng):
    gv, gc = banded_row_minima_pram(
        make(), np.empty((0, 4)), np.empty(0, dtype=int), np.empty(0, dtype=int)
    )
    assert gv.size == 0


@given(st.integers(0, 50_000))
@settings(max_examples=40, deadline=None)
def test_property_banded(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 25))
    n = int(rng.integers(1, 25))
    a = random_monge(m, n, rng, integer=True)
    lo, hi = random_band(m, n, rng)
    bv, bc = brute_min(a.data, lo, hi)
    gv, gc = banded_row_minima(a, lo, hi)
    np.testing.assert_array_equal(gc, bc)
    gv, gc = banded_row_minima_pram(make(), a, lo, hi)
    np.testing.assert_array_equal(gc, bc)
