"""Cross-module integration: every machine realization agrees on every
array class, and failure modes surface loudly."""

import numpy as np
import pytest

from repro.core import (
    monge_row_minima_pram,
    monge_row_minima_network,
    staircase_row_minima_network,
    staircase_row_minima_pram,
    tube_minima_network,
    tube_minima_pram,
)
from repro.monge import (
    monge_decomposition,
    product_argmin,
    reconstruct,
    row_minima,
)
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.pram import CRCW_COMMON, CRCW_PRIORITY, CREW, CostLedger, Pram
from repro.pram.fast_max import priority_find_first
from repro.pram.ledger import ProcessorBudgetExceeded
from repro.pram.models import ConcurrencyViolation
from repro.pram.scheduling import BrentPram


def all_machines(n):
    yield "CRCW", Pram(CRCW_COMMON, 1 << 30, ledger=CostLedger())
    yield "CREW", Pram(CREW, 1 << 30, ledger=CostLedger())
    yield "Brent-CRCW", BrentPram(CRCW_COMMON, 1 << 30, 8 * n, ledger=CostLedger())


# --------------------------------------------------------------------- #
def test_every_machine_agrees_on_monge(rng):
    n = 100
    a = random_monge(n, n, rng, integer=True)
    ref_v, ref_c = row_minima(a)
    for name, machine in all_machines(n):
        v, c = monge_row_minima_pram(machine, a)
        np.testing.assert_array_equal(c, ref_c, err_msg=name)
        np.testing.assert_allclose(v, ref_v, err_msg=name)
    for topo in ("hypercube", "ccc", "shuffle-exchange"):
        v, c, _ = monge_row_minima_network(a, topo)
        np.testing.assert_array_equal(c, ref_c, err_msg=topo)


def test_every_machine_agrees_on_staircase(rng):
    n = 60
    a = random_staircase_monge(n, n, rng, integer=True)
    dense = a.materialize()
    ref_c = dense.argmin(axis=1)
    ref_c = np.where(np.isinf(dense[np.arange(n), ref_c]), -1, ref_c)
    for name, machine in all_machines(n):
        v, c = staircase_row_minima_pram(machine, a)
        np.testing.assert_array_equal(c, ref_c, err_msg=name)
    v, c, _ = staircase_row_minima_network(a, "hypercube")
    np.testing.assert_array_equal(c, ref_c)


def test_every_machine_agrees_on_tubes(rng):
    comp = random_composite(9, 11, 10, rng, integer=True)
    ref_v, ref_j = product_argmin(comp)
    for name, machine in all_machines(11 * 11):
        v, j = tube_minima_pram(machine, comp)
        np.testing.assert_array_equal(j, ref_j, err_msg=name)
    v, j, _ = tube_minima_network(comp, "hypercube")
    np.testing.assert_array_equal(j, ref_j)


def test_decomposition_roundtrips_through_search(rng):
    """Generator -> decomposition -> reconstruction -> identical search."""
    a = random_monge(25, 30, rng)
    u, v, g = monge_decomposition(a.data)
    rebuilt = reconstruct(u, v, g)
    _, c1 = row_minima(a)
    _, c2 = row_minima(rebuilt)
    np.testing.assert_array_equal(c1, c2)


# --------------------------------------------------------------------- #
# failure injection
# --------------------------------------------------------------------- #
def test_non_monge_input_is_searchable_but_unverified(rng):
    """The searchers trust their precondition; verifiers are the gate."""
    from repro.monge.properties import is_monge

    bad = rng.normal(size=(12, 12))  # almost surely not Monge
    assert not is_monge(bad)
    # the parallel search still runs (garbage-in contract), but a
    # brute-force check shows the answers can differ:
    machine = Pram(CRCW_COMMON, 1 << 26, ledger=CostLedger())
    v, c = monge_row_minima_pram(machine, bad)
    assert c.shape == (12,)


def test_processor_budget_violation_is_loud():
    led = CostLedger(processor_limit=4)
    pram = Pram(CRCW_COMMON, 4, ledger=led)
    with pytest.raises((ProcessorBudgetExceeded, RuntimeError)):
        monge_row_minima_pram(pram, np.zeros((64, 64)))


def test_priority_find_first():
    pram = Pram(CRCW_PRIORITY, 1 << 10, ledger=CostLedger())
    mask = np.zeros(100, dtype=bool)
    mask[[40, 17, 80]] = True
    assert priority_find_first(pram, mask) == 17
    assert pram.ledger.rounds == 2  # constant rounds
    assert priority_find_first(pram, np.zeros(5, dtype=bool)) == -1
    with pytest.raises(ConcurrencyViolation):
        priority_find_first(Pram(CRCW_COMMON, 4), mask)


def test_ledger_phases_capture_algorithm_structure(rng):
    """Phase tagging works through a full algorithm run."""
    machine = Pram(CRCW_COMMON, 1 << 26, ledger=CostLedger())
    with machine.phase("search"):
        monge_row_minima_pram(machine, random_monge(64, 64, rng))
    assert machine.ledger.phases["search"].rounds == machine.ledger.rounds


def test_network_machine_rejects_oversized_register():
    from repro.networks import Hypercube

    net = Hypercube(3)
    with pytest.raises(ValueError):
        net.exchange(np.zeros(9), 0)


def test_sequential_parallel_work_relationship(rng):
    """Parallel total work stays within polylog of sequential evals."""
    n = 256
    a = random_monge(n, n, rng)
    a.eval_count = 0
    row_minima(a)
    seq = a.eval_count
    machine = BrentPram(CRCW_COMMON, 1 << 30, 8 * n, ledger=CostLedger())
    b = random_monge(n, n, np.random.default_rng(1))
    monge_row_minima_pram(machine, b)
    assert machine.ledger.work <= 100 * seq
