"""Semantics of the PRAM model definitions and write resolution."""

import numpy as np
import pytest

from repro.pram.models import (
    CRCW_ARBITRARY,
    CRCW_COMMON,
    CRCW_PRIORITY,
    CREW,
    EREW,
    ConcurrencyViolation,
    WritePolicy,
    resolve_concurrent_writes,
)


def test_model_flags():
    assert not EREW.concurrent_read and not EREW.concurrent_write
    assert CREW.concurrent_read and not CREW.concurrent_write
    for m in (CRCW_COMMON, CRCW_ARBITRARY, CRCW_PRIORITY):
        assert m.concurrent_read and m.concurrent_write and m.is_crcw


def test_erew_rejects_concurrent_reads():
    with pytest.raises(ConcurrencyViolation):
        EREW.check_reads(np.array([1, 2, 1]))
    EREW.check_reads(np.array([1, 2, 3]))  # distinct is fine


def test_crew_allows_concurrent_reads():
    CREW.check_reads(np.array([7, 7, 7]))


def test_exclusive_write_conflict_raises():
    with pytest.raises(ConcurrencyViolation):
        resolve_concurrent_writes(
            WritePolicy.EXCLUSIVE, np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0])
        )


def test_exclusive_write_no_conflict_passes_through():
    addr, vals = resolve_concurrent_writes(
        WritePolicy.EXCLUSIVE, np.array([2, 0, 1]), np.array([5.0, 6.0, 7.0])
    )
    mem = np.zeros(3)
    mem[addr] = vals
    assert list(mem) == [6.0, 7.0, 5.0]


def test_common_write_agreeing_ok():
    addr, vals = resolve_concurrent_writes(
        WritePolicy.COMMON, np.array([3, 3, 1]), np.array([9.0, 9.0, 2.0])
    )
    assert dict(zip(addr.tolist(), vals.tolist())) == {3: 9.0, 1: 2.0}


def test_common_write_disagreement_raises():
    with pytest.raises(ConcurrencyViolation):
        resolve_concurrent_writes(
            WritePolicy.COMMON, np.array([3, 3]), np.array([9.0, 8.0])
        )


def test_arbitrary_write_picks_some_writer():
    addr, vals = resolve_concurrent_writes(
        WritePolicy.ARBITRARY, np.array([5, 5, 5]), np.array([1.0, 2.0, 3.0])
    )
    assert addr.tolist() == [5]
    assert vals[0] in (1.0, 2.0, 3.0)


def test_priority_write_lowest_processor_wins():
    addr, vals = resolve_concurrent_writes(
        WritePolicy.PRIORITY,
        np.array([4, 4, 2, 4]),
        np.array([10.0, 20.0, 30.0, 40.0]),
        processor_ids=np.array([7, 3, 5, 9]),
    )
    got = dict(zip(addr.tolist(), vals.tolist()))
    assert got == {4: 20.0, 2: 30.0}  # pid 3 wins address 4


def test_priority_default_ids_are_positions():
    addr, vals = resolve_concurrent_writes(
        WritePolicy.PRIORITY, np.array([0, 0]), np.array([111.0, 222.0])
    )
    assert dict(zip(addr.tolist(), vals.tolist())) == {0: 111.0}


def test_empty_write_batch():
    addr, vals = resolve_concurrent_writes(
        WritePolicy.COMMON, np.array([], dtype=int), np.array([])
    )
    assert addr.size == 0 and vals.size == 0


def test_mismatched_shapes_rejected():
    with pytest.raises(ValueError):
        resolve_concurrent_writes(WritePolicy.COMMON, np.array([1, 2]), np.array([1.0]))
