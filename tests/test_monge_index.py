"""The precompute-once submatrix index (DESIGN.md §14).

Covers :class:`repro.monge.index.MongeIndex` directly (build / query
correctness against a brute-force oracle, rectangle validation,
charging), the one-shot ``submatrix_max`` solvers, and the
``Session.prepare → handle.query`` engine path (LRU, metrics, ledger
sub-accounts, capability errors).
"""

import numpy as np
import pytest

import repro
from repro.engine import CapabilityError, Session
from repro.engine.prepared import prepare
from repro.monge.generators import random_monge
from repro.monge.index import MongeIndex, check_rectangle
from repro.obs import reset_metrics, snapshot


def _brute(dense, r0, r1, c0, c1):
    """Column-major first maximizer: max value, leftmost col, topmost row."""
    sub = dense[r0:r1, c0:c1]
    k = int(np.argmax(sub.T))
    col, row = divmod(k, sub.shape[0])
    return np.float64(sub[row, col]), np.array([r0 + row, c0 + col], dtype=np.int64)


def _rects(m, n, rng, count=40):
    for _ in range(count):
        r0 = int(rng.integers(0, m))
        r1 = int(rng.integers(r0 + 1, m + 1))
        c0 = int(rng.integers(0, n))
        c1 = int(rng.integers(c0 + 1, n + 1))
        yield r0, r1, c0, c1


# --------------------------------------------------------------------- #
# rectangle validation
# --------------------------------------------------------------------- #
class TestCheckRectangle:
    def test_valid(self):
        assert check_rectangle((4, 6), (0, 4), (2, 5)) == (0, 4, 2, 5)
        assert check_rectangle((4, 6), (3, 4), (5, 6)) == (3, 4, 5, 6)

    @pytest.mark.parametrize("rows,cols", [
        (3, (0, 1)),          # not a range at all
        ((0, 1, 2), (0, 1)),  # too many endpoints
        ((0,), (0, 1)),       # too few
        ((0, 1), None),
    ])
    def test_malformed_is_type_error(self, rows, cols):
        with pytest.raises(TypeError, match="half-open"):
            check_rectangle((4, 6), rows, cols)

    @pytest.mark.parametrize("rows,cols", [
        ((2, 2), (0, 3)),     # empty row range
        ((0, 5), (0, 3)),     # past the last row
        ((-1, 2), (0, 3)),    # negative start
        ((0, 2), (3, 3)),     # empty column range
        ((0, 2), (0, 7)),     # past the last column
    ])
    def test_empty_or_out_of_range_is_value_error(self, rows, cols):
        with pytest.raises(ValueError, match="half-open"):
            check_rectangle((4, 6), rows, cols)


# --------------------------------------------------------------------- #
# build + query correctness
# --------------------------------------------------------------------- #
class TestMongeIndex:
    @pytest.mark.parametrize("m,n", [
        (1, 1), (1, 7), (7, 1), (2, 2), (4, 4), (8, 5),   # powers of two
        (3, 3), (5, 9), (6, 11), (13, 4), (12, 12),       # non-powers
    ])
    def test_matches_brute_force(self, m, n):
        rng = np.random.default_rng(100 * m + n)
        a = random_monge(m, n, rng, integer=True)  # integers -> real ties
        dense = a.materialize()
        index = MongeIndex.build(None, a)
        for r0, r1, c0, c1 in _rects(m, n, rng):
            want_v, want_w = _brute(dense, r0, r1, c0, c1)
            got_v, got_w = index.query((r0, r1), (c0, c1))
            label = (m, n, r0, r1, c0, c1)
            assert float(got_v) == float(want_v), label
            np.testing.assert_array_equal(got_w, want_w, err_msg=str(label))

    def test_charged_build_matches_uncharged(self):
        rng = np.random.default_rng(5)
        a = random_monge(9, 6, rng, integer=True)
        s = Session("pram-crcw")
        machine = s.machine(64)
        charged = MongeIndex.build(machine, a)
        plain = MongeIndex.build(None, a)
        np.testing.assert_array_equal(charged._env_val, plain._env_val)
        np.testing.assert_array_equal(charged._env_row, plain._env_row)

    def test_build_cost_accounting(self):
        m, n = 9, 6
        a = random_monge(m, n, np.random.default_rng(6))
        s = Session("pram-crcw")
        machine = s.machine(64)
        before = machine.ledger.work
        index = MongeIndex.build(machine, a)
        # leaves: m*n evals; merges: 2*K*n candidates per level over the
        # non-padded parents — all charged through the ledger
        assert index.build_evals >= m * n
        assert index.build_evals <= 4 * m * n
        assert machine.ledger.work > before

    def test_query_on_charges(self):
        a = random_monge(10, 8, np.random.default_rng(7))
        s = Session("pram-crcw")
        machine = s.machine(64)
        index = MongeIndex.build(None, a)
        r0 = machine.ledger.rounds
        _, _, info = index.query_on(machine, (1, 9), (2, 7))
        assert info["nodes"] >= 1
        assert info["scanned"] == info["nodes"] * 5
        assert machine.ledger.rounds > r0

    def test_counts_and_nbytes(self):
        a = random_monge(5, 4, np.random.default_rng(8))
        index = MongeIndex.build(None, a)
        assert index.queries_answered == 0
        index.query((0, 5), (0, 4))
        index.query((1, 2), (1, 2))
        assert index.queries_answered == 2
        # P = 8 leaves -> 16 nodes of 4 columns, float64 val + int64 row
        assert index.nbytes == 2 * 16 * 4 * 8

    def test_empty_array_rejected(self):
        from repro.monge.arrays import ExplicitArray

        with pytest.raises(ValueError, match="empty"):
            MongeIndex.build(None, ExplicitArray(np.zeros((0, 4))))

    def test_rejects_bad_rectangles(self):
        a = random_monge(4, 4, np.random.default_rng(9))
        index = MongeIndex.build(None, a)
        with pytest.raises(ValueError):
            index.query((0, 0), (0, 4))
        with pytest.raises(TypeError):
            index.query(1, (0, 4))


# --------------------------------------------------------------------- #
# the one-shot solvers
# --------------------------------------------------------------------- #
class TestSubmatrixSolve:
    @pytest.mark.parametrize("backend", ["pram-crcw", "pram-crew", "sequential"])
    def test_matches_brute(self, backend):
        rng = np.random.default_rng(11)
        for m, n in [(1, 1), (4, 7), (9, 5), (12, 12)]:
            a = random_monge(m, n, rng, integer=True)
            dense = a.materialize()
            for r0, r1, c0, c1 in _rects(m, n, rng, count=10):
                want_v, want_w = _brute(dense, r0, r1, c0, c1)
                r = repro.solve("submatrix_max", (a, (r0, r1), (c0, c1)),
                                backend=backend)
                assert float(r.values) == float(want_v)
                np.testing.assert_array_equal(np.asarray(r.witnesses), want_w)

    def test_charges_the_ledger(self):
        a = random_monge(8, 8, np.random.default_rng(12))
        s = Session("pram-crcw")
        r = s.solve("submatrix_max", (a, (0, 8), (0, 8)))
        assert r.snapshot["rounds"] > 0
        assert s.ledger.rounds > 0

    def test_lenient_mode_is_a_declared_capability_error(self):
        a = random_monge(4, 4, np.random.default_rng(13))
        with pytest.raises(CapabilityError, match="degradation"):
            repro.solve("submatrix_max", (a, (0, 4), (0, 4)), strict=False)

    def test_malformed_data_is_a_type_error(self):
        a = random_monge(4, 4, np.random.default_rng(14))
        with pytest.raises(TypeError, match="triple"):
            repro.solve("submatrix_max", (a, (0, 4)))


# --------------------------------------------------------------------- #
# prepare -> query through the engine
# --------------------------------------------------------------------- #
class TestPrepare:
    def test_query_matches_solve(self):
        rng = np.random.default_rng(21)
        a = random_monge(11, 9, rng, integer=True)
        s = Session("pram-crcw")
        handle = s.prepare(a)
        assert handle.shape == (11, 9)
        for r0, r1, c0, c1 in _rects(11, 9, rng, count=25):
            one_shot = s.solve("submatrix_max", (a, (r0, r1), (c0, c1)))
            got = handle.query((r0, r1), (c0, c1))
            assert float(got.values) == float(one_shot.values)
            np.testing.assert_array_equal(
                np.asarray(got.witnesses), np.asarray(one_shot.witnesses)
            )
            assert got.strategy == "index"

    def test_builds_and_queries_charge_the_session_ledger(self):
        a = random_monge(8, 8, np.random.default_rng(22))
        s = Session("pram-crcw")
        assert s.ledger.rounds == 0
        handle = s.prepare(a)
        after_build = s.ledger.rounds
        assert after_build > 0
        assert handle.build_snapshot["rounds"] == after_build
        r = handle.query((0, 8), (0, 8))
        assert r.snapshot["rounds"] > 0
        assert s.ledger.rounds == after_build + r.snapshot["rounds"]

    def test_prepared_work_stays_out_of_the_query_log(self):
        a = random_monge(6, 6, np.random.default_rng(23))
        s = Session("pram-crcw")
        handle = s.prepare(a)
        handle.query((0, 6), (0, 6))
        assert len(s.queries) == 0
        s.solve("rowmin", a)
        assert len(s.queries) == 1

    def test_lru_hit_returns_the_same_handle(self):
        reset_metrics()
        a = random_monge(6, 6, np.random.default_rng(24))
        s = Session("pram-crcw")
        h1 = s.prepare(a)
        h2 = s.prepare(a)
        assert h1 is h2
        c = snapshot()["counters"]
        assert c.get("index.lru.hits") == 1
        assert c.get("index.lru.misses") == 1
        assert c.get("index.builds") == 1

    def test_lru_evicts_oldest(self):
        reset_metrics()
        s = Session("pram-crcw", index_cache=2)
        arrays = [random_monge(5, 5, np.random.default_rng(30 + i))
                  for i in range(3)]
        handles = [s.prepare(a) for a in arrays]
        c = snapshot()["counters"]
        assert c.get("index.lru.evictions") == 1
        assert len(s._prepared) == 2
        # the evicted (oldest) array rebuilds; the newest two do not
        assert s.prepare(arrays[1]) is handles[1]
        assert s.prepare(arrays[0]) is not handles[0]

    def test_distinct_configs_build_distinct_indexes(self):
        a = random_monge(6, 6, np.random.default_rng(25))
        s = Session("pram-crcw")
        h1 = s.prepare(a)
        h2 = s.prepare(a, cache=True)
        assert h1 is not h2

    def test_explicit_problem_form(self):
        a = random_monge(5, 5, np.random.default_rng(26))
        s = Session("pram-crcw")
        handle = s.prepare("submatrix_max", a)
        assert handle.problem == "submatrix_max"
        with pytest.raises(TypeError, match="data"):
            s.prepare("submatrix_max")

    def test_non_preparable_problem_is_a_capability_error(self):
        a = random_monge(5, 5, np.random.default_rng(27))
        s = Session("pram-crcw")
        with pytest.raises(CapabilityError, match="prepare"):
            s.prepare("rowmin", a)

    def test_sequential_prepare(self):
        rng = np.random.default_rng(28)
        a = random_monge(7, 7, rng, integer=True)
        s = Session("sequential")
        handle = s.prepare(a)
        assert handle.build_snapshot is None
        dense = a.materialize()
        for r0, r1, c0, c1 in _rects(7, 7, rng, count=10):
            want_v, want_w = _brute(dense, r0, r1, c0, c1)
            got = handle.query((r0, r1), (c0, c1))
            assert float(got.values) == float(want_v)
            np.testing.assert_array_equal(np.asarray(got.witnesses), want_w)

    def test_module_front_door(self):
        a = random_monge(6, 6, np.random.default_rng(29))
        handle = prepare(a)
        assert handle is not None
        assert repro.prepare is prepare
        r = handle.query((0, 6), (0, 6))
        want_v, want_w = _brute(a.materialize(), 0, 6, 0, 6)
        assert float(r.values) == float(want_v)

    def test_query_trace_spans(self):
        a = random_monge(6, 6, np.random.default_rng(31))
        s = Session("pram-crcw", config=repro.ExecutionConfig(trace=True))
        handle = s.prepare(a)
        assert handle.build_trace is not None
        assert handle.build_trace.root.name == "index-build"
        r = handle.query((1, 5), (0, 6))
        assert r.trace is not None
        assert r.trace.root.name == "index-query"
