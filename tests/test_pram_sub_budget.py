"""``Pram.sub()`` budget enforcement under nested recursion (and Brent)."""

import numpy as np
import pytest

from repro.pram import CREW, CostLedger, Pram
from repro.pram.ledger import ProcessorBudgetExceeded
from repro.pram.scheduling import BrentPram


def test_sub_enforces_parent_budget():
    m = Pram(CREW, 16, ledger=CostLedger())
    with pytest.raises(ValueError, match="16"):
        m.sub(17)
    sub = m.sub(16)  # the full budget is fine
    assert sub.processors == 16


def test_nested_sub_chain_narrows_monotonically():
    m = Pram(CREW, 64, ledger=CostLedger())
    s1 = m.sub(32)
    s2 = s1.sub(8)
    s3 = s2.sub(1)
    assert (s1.processors, s2.processors, s3.processors) == (32, 8, 1)
    with pytest.raises(ValueError):
        s2.sub(9)  # may not re-widen past the nearest ancestor
    with pytest.raises(ValueError):
        s3.sub(2)
    # degenerate requests clamp to one processor rather than failing
    assert s3.sub(0).processors == 1
    assert m.sub(-5).processors == 1


def test_sub_shares_ledger_with_parent():
    m = Pram(CREW, 32, ledger=CostLedger())
    sub = m.sub(4)
    sub.charge(rounds=3, processors=4)
    assert m.ledger.rounds == 3
    assert m.ledger.peak_processors == 4


def test_charge_over_sub_budget_rejected():
    m = Pram(CREW, 32, ledger=CostLedger())
    sub = m.sub(4)
    with pytest.raises(RuntimeError, match="4"):
        sub.charge(rounds=1, processors=5)
    # the failed charge must not have leaked into the ledger
    assert m.ledger.rounds == 0 and m.ledger.work == 0


def test_exhausted_budget_path_charges_nothing():
    ledger = CostLedger(processor_limit=8)
    m = Pram(CREW, 8, ledger=ledger)
    m.charge(rounds=2, processors=8)
    before = ledger.snapshot()
    with pytest.raises(ProcessorBudgetExceeded):
        ledger.charge(rounds=1, processors=9)
    assert ledger.snapshot() == before


def test_recursive_subdivision_exhausts_then_recovers():
    # a sqrt-style recursion: each level grabs sub(sqrt(p)) until the
    # budget bottoms out at 1, where further narrowing must still work
    m = Pram(CREW, 256, ledger=CostLedger())
    machine = m
    widths = []
    while machine.processors > 1:
        machine = machine.sub(int(np.sqrt(machine.processors)))
        widths.append(machine.processors)
        machine.charge(rounds=1, processors=machine.processors)
    assert widths == [16, 4, 2, 1][: len(widths)]
    assert machine.sub(1).processors == 1
    with pytest.raises(ValueError):
        machine.sub(2)
    assert m.ledger.rounds == len(widths)


def test_brent_sub_keeps_physical_width():
    m = BrentPram(CREW, 1 << 20, 8, ledger=CostLedger())
    sub = m.sub(1 << 10)
    assert isinstance(sub, BrentPram)
    assert sub.physical_processors == 8
    sub.charge(rounds=1, processors=1 << 10)  # 1024 virtual -> 128 slices
    assert m.ledger.rounds == 128
    assert m.ledger.peak_processors == 8
    with pytest.raises(ValueError):
        sub.sub(1 << 11)
    with pytest.raises(RuntimeError):
        sub.charge(rounds=1, processors=(1 << 10) + 1)


def test_brent_physical_budget_validation():
    with pytest.raises(ValueError):
        BrentPram(CREW, 16, 0, ledger=CostLedger())
    with pytest.raises(ValueError):
        Pram(CREW, 0, ledger=CostLedger())
    with pytest.raises(ValueError):
        Pram(CREW, 4, ledger=CostLedger(), retry_limit=0)
