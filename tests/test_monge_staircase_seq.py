"""Sequential staircase-Monge searching baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monge.arrays import ExplicitArray, StaircaseArray
from repro.monge.generators import random_monge, random_staircase_monge
from repro.monge.staircase_seq import (
    effective_boundary,
    row_maxima_staircase,
    row_minima_staircase_blocks,
    row_minima_staircase_brute,
)


def brute_min(dense):
    m = dense.shape[0]
    cols = dense.argmin(axis=1)
    vals = dense[np.arange(m), cols]
    cols = np.where(np.isinf(vals), -1, cols)
    return vals, cols


def brute_max_finite(dense):
    masked = np.where(np.isinf(dense), -np.inf, dense)
    m = dense.shape[0]
    cols = masked.argmax(axis=1)
    vals = masked[np.arange(m), cols]
    cols = np.where(np.isinf(vals), -1, cols)
    return vals, cols


@pytest.mark.parametrize("seed", range(10))
def test_blocks_matches_brute(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 25))
    n = int(rng.integers(1, 25))
    a = random_staircase_monge(m, n, rng, integer=bool(seed % 2))
    dense = a.materialize()
    bv, bc = brute_min(dense)
    gv, gc = row_minima_staircase_blocks(a)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)
    gv2, gc2 = row_minima_staircase_brute(a)
    np.testing.assert_allclose(gv2, bv)
    np.testing.assert_array_equal(gc2, bc)


def test_blocks_all_infinite_rows():
    base = ExplicitArray(np.zeros((3, 3)))
    a = StaircaseArray(base, np.array([2, 0, 0]))
    v, c = row_minima_staircase_blocks(a)
    assert c.tolist() == [0, -1, -1]
    assert v[0] == 0.0 and np.isinf(v[1:]).all()


def test_blocks_accepts_dense_staircase_matrix(rng):
    a = random_staircase_monge(8, 8, rng)
    dense = a.materialize()
    gv, gc = row_minima_staircase_blocks(dense)
    bv, bc = brute_min(dense)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)


def test_effective_boundary_rejects_non_staircase():
    with pytest.raises(ValueError):
        effective_boundary(np.array([[np.inf, 1.0]]))


def test_plain_monge_counts_as_staircase(rng):
    a = random_monge(6, 6, rng)
    arr, f = effective_boundary(a.data)
    assert (f == 6).all()


@pytest.mark.parametrize("seed", range(10))
def test_row_maxima_staircase_matches_brute(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 25))
    n = int(rng.integers(1, 25))
    a = random_staircase_monge(m, n, rng, integer=bool(seed % 2))
    dense = a.materialize()
    bv, bc = brute_max_finite(dense)
    gv, gc = row_maxima_staircase(a)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)


def test_row_maxima_near_linear_evals():
    n = 256
    a = random_staircase_monge(n, n, np.random.default_rng(0))
    a.base.eval_count = 0
    row_maxima_staircase(a)
    import math

    assert a.base.eval_count <= 8 * 2 * n * (1 + math.log2(n))


@given(st.integers(0, 50_000))
@settings(max_examples=40, deadline=None)
def test_property_staircase_minmax(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 16))
    n = int(rng.integers(1, 16))
    a = random_staircase_monge(m, n, rng, integer=True)
    dense = a.materialize()
    gv, gc = row_minima_staircase_blocks(a)
    bv, bc = brute_min(dense)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)
    gv, gc = row_maxima_staircase(a)
    bv, bc = brute_max_finite(dense)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)
