"""§1.2 example / Figure 1.1: farthest neighbors across convex chains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.farthest_neighbors import (
    all_farthest_neighbors,
    all_farthest_neighbors_brute,
    farthest_between_chains,
    farthest_between_chains_pram,
)
from repro.core.rowmin_network import network_machine_for
from repro.monge.generators import convex_position_points
from repro.pram import CRCW_COMMON, CostLedger, Pram


def brute_chains(P, Q):
    d = np.hypot(P[:, 0][:, None] - Q[:, 0][None, :], P[:, 1][:, None] - Q[:, 1][None, :])
    return d.max(axis=1), d.argmax(axis=1)


@pytest.mark.parametrize("seed", range(8))
def test_between_chains_matches_brute(seed):
    rng = np.random.default_rng(seed)
    pts = convex_position_points(int(rng.integers(4, 60)), rng)
    k = int(rng.integers(1, pts.shape[0] - 1))
    P, Q = pts[:k], pts[k:]
    bv, bc = brute_chains(P, Q)
    gv, gc = farthest_between_chains(P, Q)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)


def test_between_chains_parallel(rng):
    pts = convex_position_points(50, rng)
    P, Q = pts[:20], pts[20:]
    pram = Pram(CRCW_COMMON, 1 << 26, ledger=CostLedger())
    gv, gc = farthest_between_chains_pram(pram, P, Q)
    bv, bc = brute_chains(P, Q)
    np.testing.assert_allclose(gv, bv)
    np.testing.assert_array_equal(gc, bc)
    assert pram.ledger.rounds > 0


def test_between_chains_on_network(rng):
    pts = convex_position_points(40, rng)
    P, Q = pts[:18], pts[18:]
    machine = network_machine_for("hypercube", 64)
    gv, gc = farthest_between_chains_pram(machine, P, Q)
    bv, bc = brute_chains(P, Q)
    np.testing.assert_allclose(gv, bv)


def test_chain_validation():
    with pytest.raises(ValueError):
        farthest_between_chains(np.zeros((0, 2)), np.zeros((3, 2)))
    with pytest.raises(ValueError):
        farthest_between_chains(np.zeros((3, 3)), np.zeros((3, 2)))


@pytest.mark.parametrize("seed", range(10))
def test_all_farthest_neighbors(seed):
    rng = np.random.default_rng(seed)
    poly = convex_position_points(int(rng.integers(3, 80)), rng)
    bv, bi = all_farthest_neighbors_brute(poly)
    gv, gi = all_farthest_neighbors(poly)
    np.testing.assert_allclose(gv, bv)
    # witnesses may differ under exact distance ties; values decide
    d = np.hypot(
        poly[:, 0] - poly[gi, 0], poly[:, 1] - poly[gi, 1]
    )
    np.testing.assert_allclose(d, bv)


def test_all_farthest_requires_two_vertices():
    with pytest.raises(ValueError):
        all_farthest_neighbors(np.zeros((1, 2)))


@pytest.mark.slow
def test_all_farthest_eval_count_near_linear():
    n = 512
    poly = convex_position_points(n, np.random.default_rng(0))
    # the recursion does O(n lg n) distance evals; brute is n^2
    import repro.apps.farthest_neighbors as fn

    gv, gi = all_farthest_neighbors(poly)
    bv, bi = all_farthest_neighbors_brute(poly)
    np.testing.assert_allclose(gv, bv)


@given(st.integers(0, 20_000))
@settings(max_examples=20, deadline=None)
def test_property_all_farthest(seed):
    rng = np.random.default_rng(seed)
    poly = convex_position_points(int(rng.integers(3, 30)), rng)
    bv, _ = all_farthest_neighbors_brute(poly)
    gv, _ = all_farthest_neighbors(poly)
    np.testing.assert_allclose(gv, bv)
