"""Economic lot-sizing / least-weight subsequence ([AP90] citation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lot_size import (
    least_weight_subsequence,
    least_weight_subsequence_brute,
    lot_size_weight,
    wagner_whitin,
)
from repro.monge.properties import is_monge


def random_monge_weight(n, rng):
    """w(i,j) from a random Monge array over indices 0..n."""
    from repro.monge.generators import random_monge

    a = random_monge(n + 1, n + 1, rng, integer=True).data

    def w(i, j):
        return float(a[i, j])

    return w, a


@pytest.mark.parametrize("seed", range(10))
def test_lws_matches_brute_on_monge_weights(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 60))
    w, a = random_monge_weight(n, rng)
    Eb, pb = least_weight_subsequence_brute(n, w)
    Ef, pf = least_weight_subsequence(n, w)
    np.testing.assert_allclose(Ef, Eb)
    np.testing.assert_array_equal(pf, pb)


def test_lws_trivial_sizes():
    E, p = least_weight_subsequence(0, lambda i, j: 1.0)
    assert E[0] == 0.0
    E, p = least_weight_subsequence(1, lambda i, j: 5.0)
    assert E[1] == 5.0 and p[1] == 0
    with pytest.raises(ValueError):
        least_weight_subsequence(-1, lambda i, j: 0.0)


def test_lot_size_weight_is_monge(rng):
    d = rng.integers(0, 10, size=12).astype(float)
    w = lot_size_weight(d, setup_cost=5.0, holding_cost=0.7)
    n = 12
    a = np.array([[w(i, j) if j > i else 0.0 for j in range(n + 1)] for i in range(n + 1)])
    # check Monge on the strict upper-triangular region via quadruples
    for i in range(n):
        for k in range(i + 1, n):
            for j in range(k + 1, n):
                for l in range(j + 1, n + 1):
                    assert a[i, j] + a[k, l] <= a[i, l] + a[k, j] + 1e-9


def test_wagner_whitin_known_instance():
    # demands with an obvious structure: one big gap forces two runs
    demands = [10, 10, 0, 0, 0, 10, 10]
    cost, runs = wagner_whitin(demands, setup_cost=3.0, holding_cost=1.0)
    # producing everything in period 0 would hold 10 units for 5+6 periods
    assert runs[0] == 0
    assert len(runs) >= 2
    # exact optimum vs brute
    w = lot_size_weight(demands, 3.0, 1.0)
    Eb, _ = least_weight_subsequence_brute(len(demands), w)
    assert np.isclose(cost, Eb[-1])


def test_wagner_whitin_single_run_when_holding_free():
    cost, runs = wagner_whitin([5, 5, 5, 5], setup_cost=10.0, holding_cost=0.0)
    assert runs == [0]
    assert np.isclose(cost, 10.0)


def test_wagner_whitin_run_per_period_when_setup_free():
    cost, runs = wagner_whitin([1, 2, 3], setup_cost=0.0, holding_cost=5.0)
    assert np.isclose(cost, 0.0)


def test_wagner_whitin_empty():
    assert wagner_whitin([], 1.0, 1.0) == (0.0, [])


def test_input_validation():
    with pytest.raises(ValueError):
        lot_size_weight([-1.0], 1.0, 1.0)
    with pytest.raises(ValueError):
        lot_size_weight([1.0], -1.0, 1.0)


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_property_lws_and_lot_size(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    w, _ = random_monge_weight(n, rng)
    Eb, pb = least_weight_subsequence_brute(n, w)
    Ef, pf = least_weight_subsequence(n, w)
    np.testing.assert_allclose(Ef, Eb)
    np.testing.assert_array_equal(pf, pb)
    # lot-size agreement
    d = rng.integers(0, 8, size=int(rng.integers(1, 15))).astype(float)
    s = float(rng.integers(0, 10))
    h = float(rng.integers(0, 4))
    cost, runs = wagner_whitin(d, s, h)
    ww = lot_size_weight(d, s, h)
    Eb2, _ = least_weight_subsequence_brute(len(d), ww)
    assert np.isclose(cost, Eb2[-1])
