"""Property verifiers + generators produce what they promise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monge.generators import (
    chain_distance_array,
    convex_position_points,
    random_composite,
    random_inverse_monge,
    random_monge,
    random_staircase_boundary,
    random_staircase_inverse_monge,
    random_staircase_monge,
    transportation_cost_array,
)
from repro.monge.properties import (
    is_inverse_monge,
    is_monge,
    is_staircase_inverse_monge,
    is_staircase_monge,
    is_totally_monotone_minima,
    monge_defect,
    staircase_boundary,
)


def test_known_monge_example():
    a = [[0.0, 1.0], [1.0, 0.0]]
    assert is_monge(a)
    assert not is_inverse_monge(a)
    b = [[1.0, 0.0], [0.0, 1.0]]
    assert is_inverse_monge(b)
    assert not is_monge(b)


def test_monge_defect_values():
    assert monge_defect([[0.0, 0.0], [0.0, -1.0]]) == -1.0
    assert monge_defect([[0.0, 0.0], [0.0, 1.0]]) == 1.0
    assert monge_defect([[1.0, 2.0]]) == -np.inf  # too small to violate


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("shape", [(1, 1), (1, 7), (7, 1), (5, 5), (8, 3), (3, 8)])
def test_random_monge_is_monge(seed, shape):
    rng = np.random.default_rng(seed)
    a = random_monge(*shape, rng)
    assert is_monge(a)
    assert is_totally_monotone_minima(a)


@pytest.mark.parametrize("seed", range(3))
def test_random_monge_integer_mode(seed):
    rng = np.random.default_rng(seed)
    a = random_monge(6, 6, rng, integer=True)
    assert is_monge(a)
    assert np.allclose(a.data, np.rint(a.data))


@pytest.mark.parametrize("seed", range(3))
def test_random_inverse_monge(seed):
    rng = np.random.default_rng(seed)
    assert is_inverse_monge(random_inverse_monge(6, 9, rng))


def test_generators_require_generator_object():
    with pytest.raises(TypeError):
        random_monge(3, 3, 42)  # seed int not allowed


def test_random_staircase_boundary_shape():
    rng = np.random.default_rng(1)
    f = random_staircase_boundary(10, 6, rng)
    assert f.shape == (10,)
    assert (np.diff(f) <= 0).all()
    assert f.max() <= 6 and f.min() >= 0 and f[0] >= 1


@pytest.mark.parametrize("seed", range(5))
def test_random_staircase_monge_verifies(seed):
    rng = np.random.default_rng(seed)
    a = random_staircase_monge(7, 7, rng)
    assert is_staircase_monge(a)
    assert not is_monge(a) or (a.boundary == 7).all()


@pytest.mark.parametrize("seed", range(3))
def test_random_staircase_inverse_monge_verifies(seed):
    rng = np.random.default_rng(seed)
    a = random_staircase_inverse_monge(6, 8, rng)
    assert is_staircase_inverse_monge(a)


def test_staircase_boundary_extraction():
    d = np.array([[1.0, 2.0, np.inf], [1.0, np.inf, np.inf]])
    np.testing.assert_array_equal(staircase_boundary(d), [2, 1])
    # non-staircase: finite after an inf in a row
    bad = np.array([[np.inf, 1.0]])
    assert staircase_boundary(bad) is None
    # increasing boundary violates downward closure
    bad2 = np.array([[1.0, np.inf], [1.0, 1.0]])
    assert staircase_boundary(bad2) is None


def test_is_staircase_monge_rejects_bad_finite_part():
    d = np.array([[0.0, 0.0, np.inf], [0.0, 5.0, np.inf]])  # cross diff +5
    assert not is_staircase_monge(d)


def test_plain_monge_is_staircase_monge():
    rng = np.random.default_rng(7)
    assert is_staircase_monge(random_monge(5, 5, rng))


def test_transportation_cost_is_monge():
    rng = np.random.default_rng(2)
    a = transportation_cost_array(rng.normal(size=8), rng.normal(size=11))
    assert is_monge(a)
    sq = transportation_cost_array(
        rng.normal(size=6), rng.normal(size=6), cost=lambda t: t * t
    )
    assert is_monge(sq)


def test_convex_position_points_are_convex():
    rng = np.random.default_rng(3)
    pts = convex_position_points(20, rng)
    # every consecutive triple turns left (ccw)
    p = np.vstack([pts, pts[:2]])
    u = p[1:-1] - p[:-2]
    v = p[2:] - p[1:-1]
    cross = u[:, 0] * v[:, 1] - u[:, 1] * v[:, 0]
    assert (cross > 0).all()
    with pytest.raises(ValueError):
        convex_position_points(2, rng)


def test_chain_distance_array_is_inverse_monge():
    rng = np.random.default_rng(4)
    pts = convex_position_points(17, rng)
    P, Q = pts[:8], pts[8:]
    a = chain_distance_array(P, Q)
    assert is_inverse_monge(a)


def test_chain_distance_validates_shape():
    with pytest.raises(ValueError):
        chain_distance_array(np.zeros((3, 3)), np.zeros((3, 2)))


@pytest.mark.parametrize("seed", range(3))
def test_random_composite_factors_are_monge(seed):
    rng = np.random.default_rng(seed)
    c = random_composite(4, 5, 6, rng)
    assert is_monge(c.D) and is_monge(c.E)
    assert c.shape == (4, 5, 6)


def test_total_monotonicity_weaker_than_monge():
    # totally monotone but NOT Monge
    a = np.array([[0.0, 10.0], [0.0, 100.0]])
    assert is_totally_monotone_minima(a)
    assert monge_defect(a) > 0 or is_monge(a)  # indeed not Monge
    assert not is_monge(a)


def test_total_monotonicity_detects_violation():
    # right column wins at row 0 but loses at row 1
    a = np.array([[5.0, 1.0], [1.0, 5.0]])
    assert not is_totally_monotone_minima(a)


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_property_random_monge_always_monge(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 12))
    n = int(rng.integers(1, 12))
    assert is_monge(random_monge(m, n, rng))


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_property_random_staircase_always_staircase(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 12))
    n = int(rng.integers(1, 12))
    assert is_staircase_monge(random_staircase_monge(m, n, rng, integer=True))
