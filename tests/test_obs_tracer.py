"""Tracing, metrics, and profiling hooks (DESIGN.md §10).

The central invariant: a traced query's span-tree totals are
bit-identical to its ledger snapshot — the spans are built from the very
same committed charges the snapshot summarizes, across the serial path,
fused batches, resilient retries, and network backends.
"""

import json

import numpy as np
import pytest

import repro
from repro.obs import (
    Span,
    Tracer,
    clear_hooks,
    kernel_hook,
    metrics,
    reset_metrics,
    round_hook,
)
from repro.pram import CostLedger
from repro.resilience.faults import FaultPlan


@pytest.fixture(autouse=True)
def _clean_obs():
    reset_metrics()
    clear_hooks()
    yield
    reset_metrics()
    clear_hooks()


def _monge(m, n, seed=0):
    return repro.generators.random_monge(m, n, np.random.default_rng(seed))


def _assert_totals_match(result):
    tt = result.trace.totals()
    snap = result.snapshot
    assert tt["rounds"] == snap["rounds"]
    assert tt["work"] == snap["work"]
    assert tt["peak_processors"] == snap["peak_processors"]
    retry = snap.get("retry")
    if retry is not None:
        assert tt["retry_rounds"] == retry["rounds"]
        assert tt["retry_work"] == retry["work"]
        assert tt["retry_charges"] == retry["charges"]
    else:
        assert tt["retry_charges"] == 0


# --------------------------------------------------------------------- #
# Charge identity: trace totals == ledger snapshot, bit for bit
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["pram-crcw", "pram-crew", "hypercube"])
def test_solve_trace_totals_match_snapshot(backend):
    r = repro.solve("rowmin", _monge(40, 33), backend=backend, trace=True)
    assert r.trace is not None
    _assert_totals_match(r)


@pytest.mark.parametrize(
    "problem,data_fn",
    [
        ("rowmin", lambda rng: repro.generators.random_monge(24, 17, rng)),
        ("rowmax", lambda rng: repro.generators.random_monge(19, 23, rng)),
        ("staircase_min", lambda rng: repro.generators.random_staircase_monge(21, 21, rng)),
        ("tube_min", lambda rng: repro.generators.random_composite(6, 7, 5, rng)),
    ],
)
def test_trace_totals_across_problem_families(problem, data_fn):
    r = repro.solve(problem, data_fn(np.random.default_rng(3)), trace=True)
    _assert_totals_match(r)


def test_batch_fused_traces_match_per_query_snapshots():
    arrs = [_monge(16, 16, seed=s) for s in range(4)]
    br = repro.solve_many("rowmin", arrs, trace=True)
    assert any(g["fused"] for g in br.groups)
    for r in br:
        assert r.trace is not None
        _assert_totals_match(r)
        # fused query spans carry the fusion marker
        assert r.trace.root.attrs.get("fused") is True


def test_fused_trace_equals_serial_trace_structure():
    """A fused query's replayed charge sequence matches its serial run."""
    arrs = [_monge(20, 20, seed=s) for s in range(3)]
    serial = [repro.solve("rowmin", a, trace=True) for a in arrs]
    batch = repro.solve_many("rowmin", arrs, trace=True)
    assert any(g["fused"] for g in batch.groups)
    for s, b in zip(serial, batch):
        assert s.snapshot == b.snapshot
        st, bt = s.trace.totals(), b.trace.totals()
        for key in ("rounds", "work", "peak_processors", "charges"):
            assert st[key] == bt[key]


def test_retry_trace_totals_and_attempt_spans():
    plan = FaultPlan(seed=5, processor_drop=0.03)
    r = repro.solve("rowmin", _monge(28, 28), trace=True, retries=2, faults=plan)
    _assert_totals_match(r)
    attempts = [s for s in r.trace.spans() if s.kind == "attempt"]
    assert attempts, "resilient path must create attempt spans"
    assert "faults_fired" in attempts[-1].attrs


def test_discarded_attempts_excluded_from_totals():
    """Force genuine multi-attempt runs: a retry_limit of 1 makes the
    first processor_drop raise FaultRetriesExhausted, run_resilient
    replays, and the wiped attempt's span must be marked discarded."""
    plan = FaultPlan(seed=11, processor_drop=0.2)
    session = repro.Session("pram-crcw", retry_limit=1)
    r = session.solve("rowmin", _monge(30, 30), trace=True, retries=6, faults=plan)
    assert r.retries > 0
    attempts = [s for s in r.trace.spans() if s.kind == "attempt"]
    assert len(attempts) == r.retries + 1
    assert all(s.discarded for s in attempts[:-1])
    assert not attempts[-1].discarded
    _assert_totals_match(r)


def test_degraded_fallback_is_traced():
    not_monge = np.array([[0.0, 0.0], [0.0, 1.0]])
    with pytest.warns(Warning):
        r = repro.solve("rowmin", not_monge, trace=True, strict=False)
    assert r.degraded
    assert r.trace.root.attrs["degraded"] is True
    _assert_totals_match(r)
    names = {s.name for s in r.trace.spans()}
    assert "degraded-fallback" in names


def test_trace_disabled_by_default():
    a = _monge(10, 10)
    r = repro.solve("rowmin", a)
    assert r.trace is None
    assert r.ledger.observer is None


def test_tracer_unbound_after_solve():
    r = repro.solve("rowmin", _monge(12, 12), trace=True)
    assert r.ledger.observer is None  # no dangling observer on the sub-account


# --------------------------------------------------------------------- #
# Span tree shape and exports
# --------------------------------------------------------------------- #
def test_span_tree_well_formed():
    r = repro.solve("rowmin", _monge(40, 40), trace=True)
    root = r.trace.root
    assert root.kind == "solve"
    assert root.attrs["problem"] == "rowmin"
    assert root.attrs["backend"] == "pram-crcw"
    assert root.attrs["shape"] == (40, 40)
    for span in r.trace.spans():
        assert span.t1 >= span.t0
        for child in span.children:
            assert child.parent is span
    phases = {s.name for s in r.trace.spans() if s.kind == "phase"}
    assert {"sampled-rows", "interior-blocks"} <= phases
    kernels = {e.name for s in r.trace.spans() for e in s.events if e.kind == "kernel"}
    assert "eval" in kernels
    assert any(k.startswith("grouped-min:") for k in kernels)


def test_network_trace_kernels():
    r = repro.solve("rowmin", _monge(12, 12), backend="hypercube", trace=True)
    kernels = {e.name for s in r.trace.spans() for e in s.events if e.kind == "kernel"}
    assert {"net-eval", "net-grouped-min"} <= kernels


def test_jsonl_export_roundtrips(tmp_path):
    r = repro.solve("rowmin", _monge(20, 20), trace=True)
    path = tmp_path / "trace.jsonl"
    r.trace.to_jsonl(str(path))
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(rows) == len(r.trace.spans())
    assert rows[0]["parent"] is None
    ids = {row["id"] for row in rows}
    for row in rows[1:]:
        assert row["parent"] in ids
    assert sum(row["rounds"] for row in rows if not row["discarded"]) == r.snapshot["rounds"]


def test_chrome_export_shape(tmp_path):
    r = repro.solve("rowmin", _monge(20, 20), trace=True)
    path = tmp_path / "trace.json"
    r.trace.to_chrome(str(path))
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    span_events = [e for e in events if e["ph"] == "X"]
    instant_events = [e for e in events if e["ph"] == "i"]
    assert len(span_events) == len(r.trace.spans())
    assert instant_events, "round/kernel events must export as instants"
    for e in events:
        assert e["ts"] >= 0
        assert {"name", "cat", "pid", "tid"} <= set(e)


def test_tracer_direct_api():
    tracer = Tracer()
    ledger = CostLedger()
    with tracer.span("solve", "solve") as root:
        tracer.bind(ledger, root)
        ledger.charge(rounds=3, processors=5)
        with ledger.phase("inner"):
            ledger.charge(rounds=2, processors=7)
        ledger.charge_retry(rounds=1, processors=2, kind="test")
        tracer.unbind(ledger)
    assert ledger.observer is None
    t = tracer.trace(root)
    assert t.totals()["rounds"] == ledger.rounds == 5
    assert t.totals()["peak_processors"] == 7
    assert t.totals()["retry_charges"] == 1
    inner = [s for s in t.spans() if s.name == "inner"]
    assert len(inner) == 1 and inner[0].kind == "phase"
    assert inner[0].rounds == 2


def test_observed_phase_does_not_touch_ledger_phases():
    from repro.pram.ledger import observed_phase

    tracer = Tracer()
    ledger = CostLedger()
    root = tracer.begin("solve", "solve")
    tracer.bind(ledger, root)
    with observed_phase(ledger, "marker"):
        ledger.charge(rounds=1, processors=1)
    tracer.unbind(ledger)
    assert ledger.phases == {}  # pinned snapshots see no new phase
    assert [s.name for s in root.children] == ["marker"]


def test_span_totals_skip_discarded_subtrees():
    a = Span(name="root", kind="solve", span_id=0)
    a.record_charge(4, 2, 8, 0.0)
    bad = Span(name="attempt", kind="attempt", span_id=1, parent=a, discarded=True)
    bad.record_charge(100, 100, 10000, 0.0)
    a.children.append(bad)
    assert a.totals()["rounds"] == 4
    assert len(list(a.walk())) == 2
    assert len(list(a.walk(skip_discarded=True))) == 1


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
def test_metrics_counters_after_solves():
    repro.solve("rowmin", _monge(16, 16))
    repro.solve("rowmin", _monge(16, 16, seed=1))
    snap = repro.obs.snapshot()
    assert snap["counters"]["engine.queries"] == 2
    assert snap["counters"]["engine.rounds"] > 0
    assert snap["histograms"]["engine.rounds_per_query"]["count"] == 2
    assert snap["derived"]["rounds_per_query"] == snap["counters"]["engine.rounds"] / 2


def test_metrics_batch_fusion_rate():
    arrs = [_monge(16, 16, seed=s) for s in range(3)]
    repro.solve_many("rowmin", arrs)
    snap = repro.obs.snapshot()
    assert snap["counters"]["engine.batch.calls"] == 1
    assert snap["counters"]["engine.batch.queries"] == 3
    assert snap["counters"]["engine.batch.fused_queries"] == 3
    assert snap["derived"]["batch_fusion_rate"] == 1.0


def test_metrics_cache_hit_rate():
    repro.solve("rowmin", _monge(24, 24), cache=True)
    snap = repro.obs.snapshot()
    hits = snap["counters"].get("cache.hits", 0)
    misses = snap["counters"]["cache.misses"]
    assert misses > 0
    rate = snap["derived"]["cache_hit_rate"]
    assert rate == hits / (hits + misses)


def test_metrics_retry_and_certify_counters():
    plan = FaultPlan(seed=11, processor_drop=0.2)
    session = repro.Session("pram-crcw", retry_limit=1)
    r = session.solve("rowmin", _monge(30, 30), retries=6, faults=plan, certify=True)
    snap = repro.obs.snapshot()
    assert snap["counters"]["engine.retries"] == r.retries > 0
    assert snap["counters"]["engine.certified"] == 1
    assert snap["counters"]["engine.certify_evals"] == r.certificate.evals > 0


def test_metrics_reset_and_instrument_semantics():
    m = metrics()
    m.counter("x").inc(3)
    with pytest.raises(ValueError):
        m.counter("x").inc(-1)
    m.gauge("g").set(2.5)
    h = m.histogram("h")
    for v in (0, 1, 5, 9):
        h.observe(v)
    snap = m.snapshot()
    assert snap["counters"]["x"] == 3
    assert snap["gauges"]["g"] == 2.5
    assert snap["histograms"]["h"]["count"] == 4
    assert snap["histograms"]["h"]["buckets"]["0"] == 1
    assert snap["histograms"]["h"]["buckets"]["2^0"] == 1
    assert snap["histograms"]["h"]["buckets"]["2^2"] == 1
    assert snap["histograms"]["h"]["buckets"]["2^3"] == 1
    reset_metrics()
    assert metrics().snapshot()["counters"] == {}


# --------------------------------------------------------------------- #
# Profiling hooks
# --------------------------------------------------------------------- #
def test_round_hook_is_a_charge_oracle():
    seen = {"rounds": 0, "work": 0, "calls": 0}

    def on_round(ledger, rounds, processors, work):
        seen["rounds"] += rounds
        seen["work"] += work
        seen["calls"] += 1

    with round_hook(on_round):
        r = repro.solve("rowmin", _monge(32, 32))
    assert seen["rounds"] == r.snapshot["rounds"]
    assert seen["work"] == r.snapshot["work"]
    assert seen["calls"] > 0
    before = seen["calls"]
    repro.solve("rowmin", _monge(8, 8))  # hook removed: no further counts
    assert seen["calls"] == before


def test_kernel_hook_sees_eval_and_grouped_min():
    names = []

    def on_kernel(ledger, name, size):
        names.append((name, size))

    with kernel_hook(on_kernel):
        repro.solve("rowmin", _monge(24, 24))
    kinds = {n for n, _ in names}
    assert "eval" in kinds
    assert any(k.startswith("grouped-min:") for k in kinds)
    assert all(size >= 0 for _, size in names)


def test_hooks_fire_for_untraced_and_traced_alike():
    counts = []

    def on_round(ledger, rounds, processors, work):
        counts.append(rounds)

    with round_hook(on_round):
        repro.solve("rowmin", _monge(12, 12))
        plain = sum(counts)
        counts.clear()
        repro.solve("rowmin", _monge(12, 12), trace=True)
        traced = sum(counts)
    assert plain == traced > 0


def test_clear_hooks_removes_everything():
    calls = []
    from repro.obs import add_kernel_hook, add_round_hook

    add_round_hook(lambda *a: calls.append("r"))
    add_kernel_hook(lambda *a: calls.append("k"))
    clear_hooks()
    repro.solve("rowmin", _monge(8, 8))
    assert calls == []
