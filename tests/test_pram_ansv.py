"""All-nearest-smaller-values [BBG+89]."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.bits import ceil_log2
from repro.pram import CREW, CostLedger, Pram
from repro.pram.ansv import (
    all_nearest_smaller_values,
    nearest_smaller_left,
    nearest_smaller_right,
)


def make():
    return Pram(CREW, 1 << 20, ledger=CostLedger())


def brute_left(x):
    out = []
    for i in range(len(x)):
        j = i - 1
        while j >= 0 and x[j] >= x[i]:
            j -= 1
        out.append(j)
    return np.array(out)


def brute_right(x):
    n = len(x)
    out = []
    for i in range(n):
        j = i + 1
        while j < n and x[j] >= x[i]:
            j += 1
        out.append(j if j < n else -1)
    return np.array(out)


def test_known_example():
    x = np.array([3.0, 1.0, 4.0, 1.5, 5.0, 0.5])
    np.testing.assert_array_equal(nearest_smaller_left(make(), x), [-1, -1, 1, 1, 3, -1])
    np.testing.assert_array_equal(nearest_smaller_right(make(), x), [1, 5, 3, 5, 5, -1])


def test_sorted_ascending():
    x = np.arange(10.0)
    np.testing.assert_array_equal(nearest_smaller_left(make(), x), np.arange(10) - 1)


def test_sorted_descending():
    x = np.arange(10.0)[::-1].copy()
    np.testing.assert_array_equal(nearest_smaller_left(make(), x), np.full(10, -1))
    expected_right = np.concatenate([np.arange(1, 10), [-1]])
    np.testing.assert_array_equal(nearest_smaller_right(make(), x), expected_right)


def test_all_equal_strict():
    x = np.ones(8)
    np.testing.assert_array_equal(nearest_smaller_left(make(), x), np.full(8, -1))
    np.testing.assert_array_equal(nearest_smaller_right(make(), x), np.full(8, -1))


def test_empty_and_singleton():
    assert nearest_smaller_left(make(), np.array([])).size == 0
    np.testing.assert_array_equal(nearest_smaller_left(make(), np.array([5.0])), [-1])


def test_both_directions_wrapper(rng):
    x = rng.normal(size=64)
    left, right = all_nearest_smaller_values(make(), x)
    np.testing.assert_array_equal(left, brute_left(x))
    np.testing.assert_array_equal(right, brute_right(x))


def test_round_count_logarithmic():
    n = 4096
    pram = make()
    nearest_smaller_left(pram, np.random.default_rng(3).normal(size=n))
    # sparse table (lg n) + descent (lg n + 1) + epilogue
    assert pram.ledger.rounds <= 3 * ceil_log2(n) + 5


@given(st.lists(st.integers(0, 8), min_size=1, max_size=120))
@settings(max_examples=80, deadline=None)
def test_matches_bruteforce(xs):
    x = np.array(xs, dtype=float)
    np.testing.assert_array_equal(nearest_smaller_left(make(), x), brute_left(x))
    np.testing.assert_array_equal(nearest_smaller_right(make(), x), brute_right(x))
