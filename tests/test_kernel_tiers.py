"""Kernel-tier registry, selection precedence, and blocked-tier identity.

The tentpole contract (DESIGN.md §13): tiers change wall-clock and
memory residency only.  Values, witnesses, per-query ledger snapshots,
trace totals, and certificates are bit-identical across ``reference``,
``fused``, and ``blocked`` for serial, fused-batch, sharded, and
fault-injected sharded execution; the blocked tier additionally keeps
the peak resident tile within its byte budget.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.engine import CapabilityError, ExecutionConfig, Session, registry
from repro.kernels import (
    DEFAULT_TILE_BYTES,
    ChargeFan,  # noqa: F401 - re-export is part of the package surface
    KernelTier,
    all_tiers,
    available_tiers,
    eval_grouped_min,
    get_tier,
    kernel_tier,
    register_tier,
    resolve_kernel_tier,
    resolve_tile_bytes,
    set_kernel_tier,
    set_tile_bytes,
    tier_context,
    tile_bytes_override,
)
from repro.kernels.registry import _reload_env_defaults, _TIERS
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.obs.metrics import metrics
from repro.pram.fastpath import fast_path, fast_path_enabled, set_fast_path
from repro.pram.machine import Pram
from repro.pram.models import CRCW_COMMON
from repro.resilience.faults import FaultPlan

ARRAYS = [random_monge(33, 24, np.random.default_rng(400 + k)) for k in range(4)]
STAIRCASE = random_staircase_monge(11, 13, np.random.default_rng(41))
COMPOSITE = random_composite(5, 4, 5, np.random.default_rng(42))

TIERS = ("reference", "fused", "blocked")
#: Small enough that every ARRAYS sweep spans many tiles (33*24*8 = 6336 B).
TINY_TILE = 512


@pytest.fixture(autouse=True)
def _pristine_tier_state():
    """Every test starts and ends on the env-resolved default state."""
    _reload_env_defaults()
    set_tile_bytes(None)
    yield
    _reload_env_defaults()
    set_tile_bytes(None)


def _assert_identical(ref, got):
    np.testing.assert_array_equal(ref.values, got.values)
    np.testing.assert_array_equal(ref.witnesses, got.witnesses)
    assert got.snapshot == ref.snapshot


# --------------------------------------------------------------------- #
# registry surface
# --------------------------------------------------------------------- #
def test_builtin_tiers_registered():
    names = [t.name for t in all_tiers()]
    assert names[:4] == ["reference", "fused", "blocked", "numba"]
    assert not get_tier("reference").fused
    assert get_tier("fused").fused and not get_tier("fused").out_of_core
    assert get_tier("blocked").fused and get_tier("blocked").out_of_core
    assert get_tier("numba").requires == "numba"
    for name in ("reference", "fused", "blocked"):
        assert name in available_tiers()  # numpy-only tiers always work


def test_get_tier_unknown_lists_known_names():
    with pytest.raises(ValueError, match="unknown kernel tier 'warp'"):
        get_tier("warp")
    with pytest.raises(ValueError, match="reference"):
        get_tier("warp")


def test_register_tier_roundtrip():
    tier = KernelTier(name="_test", description="test-only", fused=True)
    try:
        assert register_tier(tier) is tier
        assert get_tier("_test") is tier
        assert "_test" in available_tiers()
    finally:
        _TIERS.pop("_test", None)


def test_set_kernel_tier_and_context():
    prev = set_kernel_tier("blocked")
    try:
        assert resolve_kernel_tier(None) == "blocked"
        with kernel_tier("reference"):
            assert resolve_kernel_tier(None) == "reference"
        assert resolve_kernel_tier(None) == "blocked"
        # explicit request wins over the active tier, and is validated
        assert resolve_kernel_tier("fused") == "fused"
        with pytest.raises(ValueError, match="unknown kernel tier"):
            resolve_kernel_tier("warp")
    finally:
        set_kernel_tier(prev)


def test_tier_context_yields_effective_name_and_restores():
    before = resolve_kernel_tier(None)
    with tier_context(None, None) as name:
        assert name == before  # None fields: pure no-op
    with tier_context("blocked", 4096) as name:
        assert name == "blocked"
        assert resolve_tile_bytes(None) == 4096
    assert resolve_kernel_tier(None) == before
    assert resolve_tile_bytes(None) == DEFAULT_TILE_BYTES


# --------------------------------------------------------------------- #
# environment precedence (REPRO_KERNEL_TIER > REPRO_FAST_PATH > fused)
# --------------------------------------------------------------------- #
def test_env_tier_selects_and_validates(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "blocked")
    _reload_env_defaults()
    assert resolve_kernel_tier(None) == "blocked"
    monkeypatch.setenv("REPRO_KERNEL_TIER", "warp9")
    _reload_env_defaults()
    with pytest.raises(ValueError, match="REPRO_KERNEL_TIER"):
        resolve_kernel_tier(None)


def test_legacy_fast_path_env_maps_and_warns_once(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    _reload_env_defaults()
    with pytest.warns(DeprecationWarning, match="REPRO_FAST_PATH is deprecated"):
        assert resolve_kernel_tier(None) == "reference"
    assert not fast_path_enabled()
    # warn-once: a second resolution after resetting only the active
    # tier (not the latch) stays silent
    from repro.kernels import registry as _reg

    _reg._ACTIVE = _reg._UNSET
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_kernel_tier(None) == "reference"

    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    _reload_env_defaults()
    with pytest.warns(DeprecationWarning):
        assert resolve_kernel_tier(None) == "fused"


def test_both_env_vars_coherent_tier_wins_silently(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    monkeypatch.setenv("REPRO_KERNEL_TIER", "blocked")
    _reload_env_defaults()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # coherent pair: no deprecation noise
        assert resolve_kernel_tier(None) == "blocked"
    monkeypatch.setenv("REPRO_FAST_PATH", "no")
    monkeypatch.setenv("REPRO_KERNEL_TIER", "reference")
    _reload_env_defaults()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_kernel_tier(None) == "reference"


def test_conflicting_env_vars_raise(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    monkeypatch.setenv("REPRO_KERNEL_TIER", "fused")
    _reload_env_defaults()
    with pytest.raises(ValueError, match="conflicting kernel selection"):
        resolve_kernel_tier(None)
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    monkeypatch.setenv("REPRO_KERNEL_TIER", "reference")
    _reload_env_defaults()
    with pytest.raises(ValueError, match="conflicting kernel selection"):
        resolve_kernel_tier(None)


# --------------------------------------------------------------------- #
# the deprecation shim keeps the boolean surface coherent
# --------------------------------------------------------------------- #
def test_set_fast_path_maps_booleans():
    prev = set_fast_path(False)
    assert isinstance(prev, bool)
    assert resolve_kernel_tier(None) == "reference" and not fast_path_enabled()
    set_fast_path(True)
    assert resolve_kernel_tier(None) == "fused" and fast_path_enabled()


def test_set_fast_path_true_keeps_active_fused_class_tier():
    set_kernel_tier("blocked")
    assert set_fast_path(True) is True  # already fused-class: no demotion
    assert resolve_kernel_tier(None) == "blocked"


def test_fast_path_context_restores_exact_tier_name():
    set_kernel_tier("blocked")
    with fast_path(False):
        assert resolve_kernel_tier(None) == "reference"
    assert resolve_kernel_tier(None) == "blocked"  # name, not just the bool
    with fast_path(True):
        assert resolve_kernel_tier(None) == "blocked"
    assert resolve_kernel_tier(None) == "blocked"


# --------------------------------------------------------------------- #
# tile byte budget precedence and validation
# --------------------------------------------------------------------- #
def test_tile_bytes_precedence(monkeypatch):
    assert resolve_tile_bytes(None) == DEFAULT_TILE_BYTES
    monkeypatch.setenv("REPRO_TILE_BYTES", "8192")
    _reload_env_defaults()
    assert resolve_tile_bytes(None) == 8192
    with tile_bytes_override(2048):
        assert resolve_tile_bytes(None) == 2048  # override beats env
        assert resolve_tile_bytes(1024) == 1024  # explicit beats override
    assert resolve_tile_bytes(None) == 8192


@pytest.mark.parametrize("bad", ["64MB", "1.5", "-3", "0"])
def test_tile_bytes_env_validation_names_variable(monkeypatch, bad):
    monkeypatch.setenv("REPRO_TILE_BYTES", bad)
    _reload_env_defaults()
    with pytest.raises(ValueError, match="REPRO_TILE_BYTES"):
        resolve_tile_bytes(None)


def test_set_tile_bytes_rejects_nonpositive():
    with pytest.raises(ValueError, match="tile_bytes"):
        set_tile_bytes(0)
    with pytest.raises(ValueError, match="tile_bytes"):
        resolve_tile_bytes(-8)


# --------------------------------------------------------------------- #
# unavailable tiers are capability errors naming an alternative
# --------------------------------------------------------------------- #
def test_unavailable_numba_tier_is_capability_error():
    if get_tier("numba").available:
        pytest.skip("numba importable here; stub tier is selectable")
    with pytest.raises(CapabilityError, match="nearest .* 'fused'"):
        set_kernel_tier("numba")
    with pytest.raises(CapabilityError, match="numba"):
        repro.solve("rowmin", ARRAYS[0], kernel_tier="numba")


def test_backends_declare_their_tiers():
    assert "blocked" in registry.lookup("rowmin", "pram-crcw").kernel_tiers
    seq = registry.lookup("rowmin", "sequential")
    assert seq.kernel_tiers == ("reference",)
    seq.check_kernel_tier(None)  # unset: defers to the process default
    seq.check_kernel_tier("reference")
    with pytest.raises(CapabilityError, match="sequential"):
        seq.check_kernel_tier("fused")
    with pytest.raises(CapabilityError):
        repro.solve("rowmin", ARRAYS[0], backend="sequential", kernel_tier="blocked")


# --------------------------------------------------------------------- #
# tier bit-identity gate: serial, fused batch, sharded, chaos
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize(
    "problem,data",
    [("rowmin", ARRAYS[0]), ("staircase_min", STAIRCASE), ("tube_min", COMPOSITE)],
)
def test_serial_bit_identity_across_tiers(problem, data, tier):
    ref = repro.solve(problem, data, trace=True, kernel_tier="reference")
    got = repro.solve(
        problem, data, trace=True, kernel_tier=tier, tile_bytes=TINY_TILE
    )
    _assert_identical(ref, got)
    assert got.trace.totals() == ref.trace.totals()


@pytest.mark.parametrize("tier", TIERS)
def test_fused_batch_bit_identity_across_tiers(tier):
    refs = [repro.solve("rowmin", a, kernel_tier="reference") for a in ARRAYS]
    batch = Session("pram-crcw").solve_many(
        "rowmin", ARRAYS, kernel_tier=tier, tile_bytes=TINY_TILE
    )
    for ref, got in zip(refs, batch):
        _assert_identical(ref, got)


@pytest.mark.parametrize("tier", TIERS)
def test_sharded_bit_identity_across_tiers(tier):
    refs = [repro.solve("rowmin", a, kernel_tier="reference") for a in ARRAYS]
    batch = Session("pram-crcw").solve_many(
        "rowmin", ARRAYS, shards=2, kernel_tier=tier, tile_bytes=TINY_TILE
    )
    # sharding rides on the fused batch path; the reference tier keeps
    # the per-query serial pipeline (still bit-identical, just unsharded)
    expected = 2 if get_tier(tier).fused else 1
    assert batch.groups[0]["shards"] == expected
    for ref, got in zip(refs, batch):
        _assert_identical(ref, got)


def test_certified_blocked_tier_bit_identical():
    ref = repro.solve("rowmin", ARRAYS[0], certify=True)
    got = repro.solve(
        "rowmin", ARRAYS[0], certify=True, kernel_tier="blocked",
        tile_bytes=TINY_TILE,
    )
    assert ref.certified and got.certified and got.certificate.ok
    _assert_identical(ref, got)


@pytest.mark.parametrize(
    "plan_kw",
    [dict(worker_kill=1.0), dict(task_delay=1.0, delay_s=0.4)],
    ids=["kill", "straggler"],
)
def test_chaos_composes_with_blocked_tier(plan_kw):
    """Supervision recovery and the blocked tier are orthogonal layers:
    a re-run shard replays the identical tier-scoped charge sequence."""
    refs = [repro.solve("rowmin", a, kernel_tier="reference") for a in ARRAYS]
    metrics().reset()
    plan = FaultPlan(seed=13, **plan_kw)
    kw = dict(shards=2, faults=plan, kernel_tier="blocked", tile_bytes=TINY_TILE)
    if "task_delay" in plan_kw:
        kw["shard_timeout"] = 0.1
    batch = Session("pram-crcw").solve_many(
        [("rowmin", a) for a in ARRAYS], config=ExecutionConfig(**kw)
    )
    for ref, got in zip(refs, batch):
        _assert_identical(ref, got)
    c = metrics().snapshot()["counters"]
    assert c["shard.retries"] > 0 or c.get("shard.timeouts", 0) > 0


# --------------------------------------------------------------------- #
# blocked-tier tiling edges
# --------------------------------------------------------------------- #
def _dense_vs_streamed(values, offsets, tile_bytes, procs=None):
    """Run the chokepoint dense and streamed on twin machines; return
    both (gv, gi, snapshot) triples.  ``procs`` pins the grouped-minimum
    strategy budget (as a Brent-scheduled machine would)."""
    values = np.asarray(values, dtype=np.float64)
    out = []
    for tier, budget in (("fused", None), ("blocked", tile_bytes)):
        pram = Pram(CRCW_COMMON, 1 << 40)
        if procs is not None:
            pram.physical_processors = procs
        with tier_context(tier, budget):
            gv, gi = eval_grouped_min(
                pram, lambda lo, hi: values[lo:hi].copy(), values.size, offsets
            )
        out.append((gv, gi, pram.ledger.snapshot()))
    return out


@pytest.mark.parametrize(
    "widths,tile_bytes",
    [
        ([24, 24, 24], 64),        # tile (8 elems) smaller than one group
        ([7, 0, 13, 5, 0, 8], 80), # empty groups + non-divisible total
        ([1] * 29, 56),            # many tiny groups, ragged last tile
        ([40], 96),                # one group spanning every tile
    ],
)
def test_blocked_tiling_edges_match_dense(widths, tile_bytes):
    rng = np.random.default_rng(sum(widths) + tile_bytes)
    offsets = np.concatenate([[0], np.cumsum(widths)])
    values = rng.normal(size=int(offsets[-1]))
    # duplicate the minimum inside one group: leftmost-tie contract
    if widths[0] >= 2:
        values[0] = values[1] = values[: widths[0]].min() - 1.0
    (dv, di, dsnap), (sv, si, ssnap) = _dense_vs_streamed(
        values, offsets, tile_bytes
    )
    np.testing.assert_array_equal(dv, sv)
    np.testing.assert_array_equal(di, si)
    assert dsnap == ssnap  # identical charge replay, tile count invisible


def test_blocked_neginf_doubly_log_falls_back_dense():
    """-inf under the doubly-log strategy is block-structure-dependent in
    the reference, so the stream re-runs dense — same result, same
    charges (the replay is dimension-only)."""
    widths = [12] * 10  # sum(w^2) = 1440 > the 64-processor budget -> doubly_log
    offsets = np.concatenate([[0], np.cumsum(widths)])
    values = np.random.default_rng(7).normal(size=120)
    values[[3, 50, 119]] = -np.inf
    (dv, di, dsnap), (sv, si, ssnap) = _dense_vs_streamed(
        values, offsets, 128, procs=64
    )
    np.testing.assert_array_equal(dv, sv)
    np.testing.assert_array_equal(di, si)
    assert dsnap == ssnap


def test_blocked_tier_single_tile_is_dense_passthrough():
    """total <= tile budget: the blocked tier takes the dense branch —
    one evaluate(0, total) call, no per-tile slicing."""
    calls = []
    pram = Pram(CRCW_COMMON, 64)  # 16 candidates: within the round budget
    values = np.arange(16.0)

    def evaluate(lo, hi):
        calls.append((lo, hi))
        return values[lo:hi]

    with tier_context("blocked", 16 * 8):
        gv, gi = eval_grouped_min(pram, evaluate, 16, np.array([0, 8, 16]))
    assert calls == [(0, 16)]
    np.testing.assert_array_equal(gv, [0.0, 8.0])
    np.testing.assert_array_equal(gi, [0, 8])


def test_peak_resident_tile_within_budget():
    """A sweep whose stacked tensor exceeds the budget streams: the
    ``kernel.tile_bytes`` histogram max stays within the budget and the
    tile count shows the tensor never materialized whole."""
    a = ARRAYS[0]  # 33x24 float64: 6336 B of candidates per dense pass
    budget = 1024
    ref = repro.solve("rowmin", a)
    metrics().reset()
    got = repro.solve("rowmin", a, kernel_tier="blocked", tile_bytes=budget)
    _assert_identical(ref, got)
    hist = metrics().snapshot()["histograms"]["kernel.tile_bytes"]
    assert hist["count"] > 1
    assert hist["max"] <= budget


def test_blocked_tier_records_metrics():
    metrics().reset()
    repro.solve("rowmin", ARRAYS[0], kernel_tier="blocked", tile_bytes=TINY_TILE)
    repro.solve("rowmin", ARRAYS[1], kernel_tier="fused")
    c = metrics().snapshot()["counters"]
    assert c["kernel.tier.blocked"] == 1
    assert c["kernel.tier.fused"] == 1
