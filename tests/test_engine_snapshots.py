"""Ledger bit-identity across the engine refactor.

``tests/data/pre_refactor_snapshots.json`` pins the no-fault ledger
snapshots of every legacy core entry point (rowmin / rowmax / staircase /
tube on CRCW and CREW), captured on the pre-engine implementations.  The
legacy wrappers now route through :func:`repro.engine.dispatch_on`; this
test replays the exact capture recipe and demands byte-for-byte equal
snapshots — the engine adds zero charges on the legacy path.
"""

import json
import os

import numpy as np
import pytest

from repro.core import (
    inverse_monge_row_maxima_pram,
    monge_row_maxima_pram,
    monge_row_minima_pram,
    staircase_row_maxima_pram,
    staircase_row_minima_pram,
    tube_maxima_pram,
    tube_minima_pram,
)
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.pram.ledger import CostLedger
from repro.pram.machine import Pram
from repro.pram.models import CRCW_COMMON, CREW

DATA = os.path.join(os.path.dirname(__file__), "data", "pre_refactor_snapshots.json")

MONGE = random_monge(64, 64, np.random.default_rng(7))
STAIRCASE = random_staircase_monge(48, 48, np.random.default_rng(7))
COMPOSITE = random_composite(12, 12, 12, np.random.default_rng(7))

#: name -> callable(machine); mirrors the capture script exactly.
CASES = {
    "rowmin_sqrt": lambda m: monge_row_minima_pram(m, MONGE, strategy="sqrt"),
    "rowmin_halving": lambda m: monge_row_minima_pram(m, MONGE, strategy="halving"),
    "rowmax_sqrt": lambda m: monge_row_maxima_pram(m, MONGE, strategy="sqrt"),
    "inverse_rowmax_sqrt": lambda m: inverse_monge_row_maxima_pram(
        m, MONGE.negate(), strategy="sqrt"
    ),
    "staircase_min": lambda m: staircase_row_minima_pram(m, STAIRCASE),
    "staircase_max": lambda m: staircase_row_maxima_pram(m, STAIRCASE),
    "tube_min_auto": lambda m: tube_minima_pram(m, COMPOSITE),
    "tube_max_auto": lambda m: tube_maxima_pram(m, COMPOSITE),
    "tube_min_crew": lambda m: tube_minima_pram(m, COMPOSITE, scheme="crew"),
}

MODELS = {"crcw": CRCW_COMMON, "crew": CREW}


def _pinned():
    with open(DATA, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_snapshot_file_covers_the_full_matrix():
    pinned = _pinned()
    assert sorted(pinned) == sorted(f"{c}_{t}" for c in CASES for t in MODELS)


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("tag", sorted(MODELS))
def test_ledger_snapshot_bit_identical_to_pre_refactor(case, tag):
    machine = Pram(MODELS[tag], 1 << 20, ledger=CostLedger())
    CASES[case](machine)
    assert machine.ledger.snapshot() == _pinned()[f"{case}_{tag}"]
