"""Unit tests for the cost ledger."""

import pytest

from repro.pram.ledger import CostLedger, ProcessorBudgetExceeded


def test_charge_accumulates_rounds_and_work():
    led = CostLedger()
    led.charge(rounds=3, processors=10)
    led.charge(rounds=1, processors=4)
    assert led.rounds == 4
    assert led.work == 34
    assert led.peak_processors == 10


def test_explicit_work_overrides_product():
    led = CostLedger()
    led.charge(rounds=2, processors=8, work=5)
    assert led.work == 5


def test_zero_rounds_is_noop():
    led = CostLedger()
    led.charge(rounds=0, processors=100)
    assert led.rounds == 0
    assert led.peak_processors == 0


def test_negative_charges_rejected():
    led = CostLedger()
    with pytest.raises(ValueError):
        led.charge(rounds=-1)
    with pytest.raises(ValueError):
        led.charge(processors=-2)


def test_processor_budget_enforced():
    led = CostLedger(processor_limit=16)
    led.charge(rounds=1, processors=16)
    with pytest.raises(ProcessorBudgetExceeded):
        led.charge(rounds=1, processors=17)


def test_phases_accumulate_nested():
    led = CostLedger()
    with led.phase("outer"):
        led.charge(rounds=1, processors=2)
        with led.phase("inner"):
            led.charge(rounds=2, processors=3)
    assert led.phases["outer"].rounds == 3
    assert led.phases["inner"].rounds == 2
    assert led.phases["outer"].peak_processors == 3
    assert led.rounds == 3


def test_phase_reentry_accumulates():
    led = CostLedger()
    for _ in range(2):
        with led.phase("p"):
            led.charge(rounds=1, processors=1)
    assert led.phases["p"].rounds == 2
    assert led.phases["p"].charges == 2


def test_merge_combines_totals_and_phases():
    a, b = CostLedger(), CostLedger()
    with a.phase("x"):
        a.charge(rounds=1, processors=4)
    with b.phase("x"):
        b.charge(rounds=2, processors=8)
    with b.phase("y"):
        b.charge(rounds=1, processors=1)
    a.merge(b)
    assert a.rounds == 4
    assert a.peak_processors == 8
    assert a.phases["x"].rounds == 3
    assert a.phases["y"].rounds == 1


def test_snapshot_is_detached():
    led = CostLedger()
    led.charge(rounds=1, processors=1)
    snap = led.snapshot()
    led.charge(rounds=5, processors=5)
    assert snap["rounds"] == 1


def test_invalid_limit_rejected():
    with pytest.raises(ValueError):
        CostLedger(processor_limit=0)
