"""Public API-surface snapshot (CI gate).

``tests/data/api_surface.json`` pins the declared public names of the
three user-facing namespaces.  An accidental export (or a dropped one)
fails here before it ships; deliberate API changes update the JSON in
the same commit that changes ``__all__``.
"""

import importlib
import json
import os

import pytest

DATA = os.path.join(os.path.dirname(__file__), "data", "api_surface.json")
NAMESPACES = ("repro", "repro.core", "repro.engine")


def _pinned():
    with open(DATA, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_snapshot_covers_all_namespaces():
    assert sorted(_pinned()) == sorted(NAMESPACES)


@pytest.mark.parametrize("namespace", NAMESPACES)
def test_public_surface_matches_snapshot(namespace):
    module = importlib.import_module(namespace)
    assert sorted(module.__all__) == _pinned()[namespace]


@pytest.mark.parametrize("namespace", NAMESPACES)
def test_declared_names_resolve(namespace):
    """Everything in ``__all__`` actually exists on the module."""
    module = importlib.import_module(namespace)
    missing = [name for name in module.__all__ if not hasattr(module, name)]
    assert not missing
