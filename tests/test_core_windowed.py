"""Generic windowed Monge minima dispatcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windowed import _split_runs, windowed_monge_row_minima
from repro.monge.generators import random_monge
from repro.pram import CRCW_COMMON, CREW, CostLedger, Pram


def machine(model=CRCW_COMMON):
    return Pram(model, 1 << 40, ledger=CostLedger())


def brute(dense, lo, hi):
    m = dense.shape[0]
    vals = np.full(m, np.inf)
    cols = np.full(m, -1, dtype=np.int64)
    for i in range(m):
        if lo[i] < hi[i]:
            seg = dense[i, lo[i] : hi[i]]
            k = int(np.argmin(seg))
            vals[i], cols[i] = seg[k], lo[i] + k
    return vals, cols


def test_split_runs_classification():
    lo = np.array([0, 1, 2, 2, 1, 0])
    hi = np.array([3, 4, 5, 4, 3, 2])
    runs = _split_runs(lo, hi)
    kinds = [k for _, _, k in runs]
    assert kinds[0] == "banded"
    assert "staircase" in kinds
    covered = sorted((r0, r1) for r0, r1, _ in runs)
    assert covered[0][0] == 0 and covered[-1][1] == 6


@pytest.mark.parametrize("pattern", ["nondecreasing", "nonincreasing", "vee", "wedge"])
@pytest.mark.parametrize("seed", range(4))
def test_windowed_matches_brute(seed, pattern):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 40))
    n = int(rng.integers(2, 40))
    a = random_monge(m, n, rng, integer=True)
    w = rng.integers(1, n + 1)
    base = np.linspace(0, n - 1, m).astype(np.int64)
    if pattern == "nonincreasing":
        base = base[::-1].copy()
    elif pattern == "vee":
        base = np.abs(base - base.max() // 2)
    elif pattern == "wedge":
        base = base.max() // 2 - np.abs(base - base.max() // 2)
    lo = np.clip(base, 0, n)
    hi = np.clip(base + w, 0, n)
    bv, bc = brute(a.data, lo, hi)
    gv, gc = windowed_monge_row_minima(machine(), a, lo, hi)
    np.testing.assert_array_equal(gc, bc)


def test_windowed_crew_machine(rng):
    a = random_monge(20, 20, rng, integer=True)
    lo = np.arange(20) // 2
    hi = lo + 8
    bv, bc = brute(a.data, lo, np.clip(hi, 0, 20))
    gv, gc = windowed_monge_row_minima(machine(CREW), a, lo, hi)
    np.testing.assert_array_equal(gc, bc)


def test_windowed_empty_and_full(rng):
    a = random_monge(6, 6, rng)
    gv, gc = windowed_monge_row_minima(machine(), a, np.full(6, 3), np.full(6, 3))
    assert (gc == -1).all()
    gv, gc = windowed_monge_row_minima(machine(), a, np.zeros(6, int), np.full(6, 6))
    np.testing.assert_array_equal(gc, a.data.argmin(axis=1))


def test_windowed_validates_shapes(rng):
    a = random_monge(4, 4, rng)
    with pytest.raises(ValueError):
        windowed_monge_row_minima(machine(), a, np.zeros(3, int), np.full(4, 4))


def test_windowed_zero_size():
    gv, gc = windowed_monge_row_minima(
        machine(), np.empty((0, 4)), np.empty(0, int), np.empty(0, int)
    )
    assert gv.size == 0


@given(st.integers(0, 60_000))
@settings(max_examples=40, deadline=None)
def test_windowed_property(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 25))
    n = int(rng.integers(1, 25))
    a = random_monge(m, n, rng, integer=True)
    # arbitrary windows, but piecewise monotone-ish via random walk
    lo = np.clip(np.cumsum(rng.integers(-2, 3, size=m)) + n // 2, 0, n)
    hi = np.clip(lo + rng.integers(0, n + 1), 0, n)
    bv, bc = brute(a.data, lo, hi)
    gv, gc = windowed_monge_row_minima(machine(), a, lo, hi)
    np.testing.assert_array_equal(gc, bc)
