"""Registry completeness and declared-capability contracts.

Every canonical ``(problem, backend)`` pair must either solve a small
instance correctly (values matching the sequential baseline) or refuse
with a :class:`~repro.engine.CapabilityError` — never fail with an
unrelated exception.  Capability *violations* (certifying a maxima
problem, injecting faults into the sequential baseline, undeclared
strategies) must raise the declared error type.
"""

import numpy as np
import pytest

from repro.engine import (
    BACKENDS,
    NETWORK_BACKENDS,
    PROBLEMS,
    CapabilityError,
    ExecutionConfig,
    Session,
    registry,
    solve,
)
from repro.monge.generators import (
    random_composite,
    random_monge,
    random_staircase_monge,
)
from repro.resilience.faults import FaultPlan

RNG = np.random.default_rng(11)
MONGE = random_monge(8, 9, RNG)
STAIRCASE = random_staircase_monge(8, 8, RNG)
COMPOSITE = random_composite(4, 4, 4, RNG)

#: problem key -> instance data (rowmax_inverse wants inverse-Monge).
DATA = {
    "rowmin": MONGE,
    "rowmax": MONGE,
    "rowmax_inverse": MONGE.negate(),
    "staircase_min": STAIRCASE,
    "staircase_max": STAIRCASE,
    "tube_min": COMPOSITE,
    "tube_max": COMPOSITE,
}


def test_registry_covers_full_matrix():
    """All 6 canonical problems (plus the inverse-rowmax extra) exist on
    all 6 backends."""
    for problem in PROBLEMS + ("rowmax_inverse",):
        for backend in BACKENDS:
            assert registry.supports(problem, backend), (problem, backend)


def test_registry_lookup_error_messages():
    with pytest.raises(CapabilityError, match="unknown problem"):
        registry.lookup("colmin", "pram-crcw")
    with pytest.raises(CapabilityError, match="unknown backend"):
        registry.lookup("rowmin", "mesh")
    # CapabilityError is a LookupError: callers can catch either
    assert issubclass(CapabilityError, LookupError)


@pytest.mark.parametrize("problem", sorted(DATA))
@pytest.mark.parametrize("backend", BACKENDS)
def test_every_pair_solves_and_matches_sequential(problem, backend):
    """Registry completeness: each pair produces the sequential answer."""
    data = DATA[problem]
    ref_values, _ = solve(problem, data, backend="sequential")
    result = solve(problem, data, backend=backend)
    np.testing.assert_array_equal(result.values, ref_values)
    assert result.backend == backend
    # parallel backends carry a per-query snapshot; sequential has none
    if backend == "sequential":
        assert result.snapshot is None and result.rounds is None
    else:
        assert result.rounds > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_within_bound_on_measured_runs(backend):
    """Measured ledgers respect the Table-1.x-shaped declared bounds."""
    s = Session(backend)
    s.solve("rowmin", MONGE)
    s.solve("tube_min", COMPOSITE)
    assert all(q.within_bound for q in s.queries)


def test_certify_on_maxima_is_a_capability_error():
    for problem in ("rowmax", "rowmax_inverse", "staircase_max", "tube_max"):
        with pytest.raises(CapabilityError, match="certifier"):
            solve(problem, DATA[problem], certify=True)


def test_sequential_capability_refusals():
    with pytest.raises(CapabilityError, match="strict"):
        solve("rowmin", MONGE, backend="sequential", strict=False)
    with pytest.raises(CapabilityError, match="faults"):
        solve(
            "rowmin",
            MONGE,
            backend="sequential",
            config=ExecutionConfig(faults=FaultPlan(seed=0, processor_drop=0.5)),
        )
    with pytest.raises(CapabilityError, match="retry"):
        solve("rowmin", MONGE, backend="sequential", retries=2)


def test_undeclared_strategy_is_a_capability_error():
    # "sqrt" is a known strategy name, but the tube family never
    # declared it — the registry (not the config validator) refuses
    with pytest.raises(CapabilityError, match="does not support"):
        solve("tube_min", COMPOSITE, strategy="sqrt")
    with pytest.raises(CapabilityError, match="does not support"):
        solve("rowmin", MONGE, strategy="crew")


@pytest.mark.parametrize("backend", NETWORK_BACKENDS)
def test_networks_do_not_declare_crcw_tube_scheme(backend):
    spec = registry.lookup("tube_min", backend)
    assert "crcw" not in spec.strategies
    with pytest.raises(CapabilityError, match="does not support"):
        solve("tube_min", COMPOSITE, backend=backend, strategy="crcw")


def test_certifiable_specs_are_exactly_the_minima_family():
    certifiable = {p for (p, b) in registry.keys() if registry.lookup(p, b).certifiable}
    assert certifiable == {"rowmin", "staircase_min", "tube_min"}
