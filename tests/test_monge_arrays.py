"""Array wrappers: evaluation, views, staircase semantics."""

import numpy as np
import pytest

from repro.monge.arrays import (
    ExplicitArray,
    ImplicitArray,
    MongeComposite,
    StaircaseArray,
    as_search_array,
)


def test_explicit_eval_and_getitem():
    a = ExplicitArray([[1.0, 2.0], [3.0, 4.0]])
    assert a.shape == (2, 2)
    assert a[1, 0] == 3.0
    np.testing.assert_array_equal(a.row(1), [3.0, 4.0])
    np.testing.assert_array_equal(a.materialize(), [[1, 2], [3, 4]])


def test_eval_counts_evaluations():
    a = ExplicitArray(np.ones((4, 4)))
    a.eval(np.arange(4), np.arange(4))
    assert a.eval_count == 4
    a.materialize()
    assert a.eval_count == 20


def test_eval_broadcasts():
    a = ExplicitArray(np.arange(12.0).reshape(3, 4))
    got = a.eval(np.arange(3)[:, None], np.arange(4)[None, :])
    np.testing.assert_array_equal(got, a.data)


def test_eval_bounds_checked():
    a = ExplicitArray(np.ones((2, 2)))
    with pytest.raises(IndexError):
        a.eval([2], [0])
    with pytest.raises(IndexError):
        a.eval([0], [-1])


def test_nan_rejected_inf_allowed():
    with pytest.raises(ValueError):
        ExplicitArray([[np.nan]])
    ExplicitArray([[np.inf]])


def test_implicit_array():
    f = ImplicitArray(lambda r, c: (r * 10 + c).astype(float), (3, 5))
    assert f[2, 4] == 24.0
    assert f.shape == (3, 5)


def test_views_transpose_negate_flip():
    a = ExplicitArray(np.arange(6.0).reshape(2, 3))
    np.testing.assert_array_equal(a.transpose().materialize(), a.data.T)
    np.testing.assert_array_equal(a.negate().materialize(), -a.data)
    np.testing.assert_array_equal(a.flip_cols().materialize(), a.data[:, ::-1])


def test_submatrix_view():
    a = ExplicitArray(np.arange(20.0).reshape(4, 5))
    sub = a.submatrix(np.array([1, 3]), np.array([0, 2, 4]))
    np.testing.assert_array_equal(sub.materialize(), a.data[np.ix_([1, 3], [0, 2, 4])])
    with pytest.raises(IndexError):
        a.submatrix(np.array([4]), np.array([0]))


def test_staircase_masks_entries():
    base = ExplicitArray(np.zeros((3, 4)))
    st = StaircaseArray(base, np.array([4, 2, 0]))
    d = st.materialize()
    assert np.isfinite(d[0]).all()
    assert np.isfinite(d[1, :2]).all() and np.isinf(d[1, 2:]).all()
    assert np.isinf(d[2]).all()


def test_staircase_boundary_validation():
    base = ExplicitArray(np.zeros((3, 4)))
    with pytest.raises(ValueError, match="nonincreasing"):
        StaircaseArray(base, np.array([2, 3, 1]))
    with pytest.raises(ValueError):
        StaircaseArray(base, np.array([5, 2, 1]))  # > n
    with pytest.raises(ValueError):
        StaircaseArray(base, np.array([2, 1]))  # wrong length


def test_staircase_accepts_plain_matrix_base():
    st = StaircaseArray(np.zeros((2, 2)), np.array([2, 1]))
    assert st[1, 0] == 0.0 and np.isinf(st[1, 1])


def test_composite_shapes_and_eval():
    D = ExplicitArray(np.arange(6.0).reshape(2, 3))
    E = ExplicitArray(np.arange(12.0).reshape(3, 4))
    c = MongeComposite(D, E)
    assert c.shape == (2, 3, 4)
    assert c.eval(1, 2, 3) == D.data[1, 2] + E.data[2, 3]
    with pytest.raises(ValueError):
        MongeComposite(D, ExplicitArray(np.ones((4, 4))))


def test_composite_slab_is_d_plus_e():
    rng = np.random.default_rng(5)
    D = ExplicitArray(rng.normal(size=(3, 4)))
    E = ExplicitArray(rng.normal(size=(4, 5)))
    c = MongeComposite(D, E)
    slab = c.slab(2, None)
    expect = D.data[2][None, :] + E.data.T  # (r, q)
    np.testing.assert_allclose(slab.materialize(), expect)


def test_as_search_array_passthrough():
    a = ExplicitArray(np.ones((2, 2)))
    assert as_search_array(a) is a
    b = as_search_array([[1, 2]])
    assert isinstance(b, ExplicitArray)
