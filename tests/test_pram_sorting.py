"""Bitonic sorting network on the PRAM."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.bits import ceil_log2
from repro.pram import CREW, CostLedger, Pram
from repro.pram.sorting import bitonic_argsort, bitonic_sort


def make():
    return Pram(CREW, 1 << 20, ledger=CostLedger())


def test_sorts_random(rng):
    x = rng.normal(size=100)
    np.testing.assert_array_equal(bitonic_sort(make(), x), np.sort(x))


def test_argsort_is_permutation(rng):
    x = rng.normal(size=37)
    perm = bitonic_argsort(make(), x)
    assert sorted(perm.tolist()) == list(range(37))
    np.testing.assert_array_equal(x[perm], np.sort(x))


def test_handles_duplicates_deterministically():
    x = np.array([2.0, 1.0, 2.0, 1.0])
    perm = bitonic_argsort(make(), x)
    assert perm.tolist() == [1, 3, 0, 2]  # stable on ties by index


def test_handles_inf_values():
    x = np.array([np.inf, 1.0, np.inf, 0.0])
    np.testing.assert_array_equal(bitonic_sort(make(), x), np.sort(x))


def test_trivial_sizes():
    assert bitonic_sort(make(), np.array([])).size == 0
    np.testing.assert_array_equal(bitonic_sort(make(), np.array([3.0])), [3.0])


def test_round_count_is_lg_squared():
    n = 256
    pram = make()
    bitonic_sort(pram, np.random.default_rng(0).normal(size=n))
    k = ceil_log2(n)
    assert pram.ledger.rounds == k * (k + 1) // 2


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=70))
@settings(max_examples=60, deadline=None)
def test_matches_numpy_sort(xs):
    x = np.array(xs)
    np.testing.assert_array_equal(bitonic_sort(make(), x), np.sort(x))
