"""SMAWK: correctness, tie-breaking, and linear evaluation counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monge.arrays import ExplicitArray, ImplicitArray
from repro.monge.generators import (
    chain_distance_array,
    convex_position_points,
    random_inverse_monge,
    random_monge,
)
from repro.monge.smawk import row_maxima, row_minima, smawk


def brute_leftmost_minima(dense):
    cols = dense.argmin(axis=1)
    return dense[np.arange(dense.shape[0]), cols], cols


def brute_leftmost_maxima(dense):
    cols = dense.argmax(axis=1)
    return dense[np.arange(dense.shape[0]), cols], cols


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("shape", [(1, 1), (1, 9), (9, 1), (7, 7), (16, 5), (5, 16), (33, 40)])
def test_smawk_matches_bruteforce(seed, shape):
    rng = np.random.default_rng(seed)
    a = random_monge(*shape, rng)
    v, c = smawk(a)
    bv, bc = brute_leftmost_minima(a.data)
    np.testing.assert_allclose(v, bv)
    np.testing.assert_array_equal(c, bc)


@pytest.mark.parametrize("seed", range(8))
def test_smawk_leftmost_on_ties(seed):
    rng = np.random.default_rng(seed)
    a = random_monge(12, 12, rng, integer=True)  # many duplicate values
    v, c = smawk(a)
    bv, bc = brute_leftmost_minima(a.data)
    np.testing.assert_array_equal(c, bc)


def test_smawk_constant_array_all_leftmost():
    a = ExplicitArray(np.zeros((5, 7)))
    v, c = smawk(a)
    assert (v == 0).all() and (c == 0).all()


def test_smawk_minima_positions_monotone(rng):
    a = random_monge(30, 30, rng)
    _, c = smawk(a)
    assert (np.diff(c) >= 0).all()


def test_smawk_rejects_zero_columns():
    with pytest.raises(ValueError):
        smawk(ExplicitArray(np.empty((3, 0))))


def test_smawk_empty_rows():
    v, c = smawk(ExplicitArray(np.empty((0, 3))))
    assert v.size == 0 and c.size == 0


def test_smawk_linear_eval_count():
    """O(m+n) evaluations on square instances (constant < 6)."""
    for n in (64, 256, 1024):
        a = random_monge(n, n, np.random.default_rng(n))
        a.eval_count = 0
        smawk(a)
        assert a.eval_count <= 6 * (2 * n), f"n={n}: {a.eval_count} evals"


def test_row_maxima_inverse_monge(rng):
    a = random_inverse_monge(20, 14, rng)
    v, c = row_maxima(a)
    bv, bc = brute_leftmost_maxima(a.data)
    np.testing.assert_allclose(v, bv)
    np.testing.assert_array_equal(c, bc)


def test_row_maxima_on_polygon_chains(rng):
    """The Figure 1.1 workload: farthest vertex of Q for each vertex of P."""
    pts = convex_position_points(40, rng)
    P, Q = pts[:18], pts[18:]
    a = chain_distance_array(P, Q)
    v, c = row_maxima(a)
    dense = a.materialize()
    np.testing.assert_allclose(v, dense.max(axis=1))
    np.testing.assert_array_equal(c, dense.argmax(axis=1))


def test_row_minima_alias(rng):
    a = random_monge(6, 6, rng)
    v1, c1 = row_minima(a)
    v2, c2 = smawk(a)
    np.testing.assert_array_equal(c1, c2)


def test_smawk_on_implicit_array(rng):
    x = np.sort(rng.normal(size=15))
    y = np.sort(rng.normal(size=22))
    a = ImplicitArray(lambda r, c: np.abs(x[r] - y[c]), (15, 22))
    v, c = smawk(a)
    dense = np.abs(x[:, None] - y[None, :])
    np.testing.assert_allclose(v, dense.min(axis=1))
    np.testing.assert_array_equal(c, dense.argmin(axis=1))


@given(st.integers(0, 100_000))
@settings(max_examples=60, deadline=None)
def test_smawk_property_random_instances(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 20))
    n = int(rng.integers(1, 20))
    a = random_monge(m, n, rng, integer=bool(rng.integers(0, 2)))
    v, c = smawk(a)
    bv, bc = brute_leftmost_minima(a.data)
    np.testing.assert_allclose(v, bv)
    np.testing.assert_array_equal(c, bc)
