"""Parallel Monge row minima/maxima (Table 1.1 algorithms)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rowmin_pram import (
    inverse_monge_row_maxima_pram,
    monge_row_maxima_pram,
    monge_row_minima_pram,
)
from repro.monge.generators import (
    chain_distance_array,
    convex_position_points,
    random_inverse_monge,
    random_monge,
)
from repro.pram import CRCW_COMMON, CREW, CostLedger, Pram
from repro.pram.scheduling import BrentPram


def make(model=CRCW_COMMON, p=1 << 26):
    return Pram(model, p, ledger=CostLedger())


@pytest.mark.parametrize("strategy", ["sqrt", "halving"])
@pytest.mark.parametrize("model", [CRCW_COMMON, CREW])
@pytest.mark.parametrize("seed", range(4))
def test_minima_match_bruteforce(seed, model, strategy):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 50))
    n = int(rng.integers(1, 50))
    a = random_monge(m, n, rng, integer=bool(seed % 2))
    v, c = monge_row_minima_pram(make(model), a, strategy=strategy)
    ref_c = a.data.argmin(axis=1)
    np.testing.assert_array_equal(c, ref_c)
    np.testing.assert_allclose(v, a.data[np.arange(m), ref_c])


def test_rectangular_lemma_2_1_shapes(rng):
    """Lemma 2.1 / Corollary 2.4 cases: m >> n and m << n."""
    for m, n in [(200, 9), (9, 200), (128, 1), (1, 128)]:
        a = random_monge(m, n, rng)
        v, c = monge_row_minima_pram(make(), a)
        np.testing.assert_array_equal(c, a.data.argmin(axis=1))


def test_leftmost_ties():
    a = np.zeros((7, 9))
    v, c = monge_row_minima_pram(make(), a)
    assert (c == 0).all() and (v == 0).all()


def test_single_cell():
    v, c = monge_row_minima_pram(make(), np.array([[3.5]]))
    assert v[0] == 3.5 and c[0] == 0


def test_zero_columns_rejected():
    with pytest.raises(ValueError):
        monge_row_minima_pram(make(), np.empty((3, 0)))


def test_empty_rows_ok():
    v, c = monge_row_minima_pram(make(), np.empty((0, 3)))
    assert v.size == 0 and c.size == 0


def test_unknown_strategy_rejected(rng):
    with pytest.raises(ValueError):
        monge_row_minima_pram(make(), random_monge(4, 4, rng), strategy="bogus")


def test_row_maxima_of_monge(rng):
    a = random_monge(25, 31, rng, integer=True)
    v, c = monge_row_maxima_pram(make(), a)
    ref_c = a.data.argmax(axis=1)
    np.testing.assert_array_equal(c, ref_c)
    np.testing.assert_allclose(v, a.data.max(axis=1))


def test_row_maxima_of_inverse_monge_polygon(rng):
    pts = convex_position_points(36, rng)
    a = chain_distance_array(pts[:16], pts[16:])
    v, c = inverse_monge_row_maxima_pram(make(), a)
    dense = a.materialize()
    np.testing.assert_array_equal(c, dense.argmax(axis=1))
    np.testing.assert_allclose(v, dense.max(axis=1))


def test_inverse_monge_maxima_random(rng):
    a = random_inverse_monge(30, 22, rng, integer=True)
    v, c = inverse_monge_row_maxima_pram(make(), a)
    np.testing.assert_array_equal(c, a.data.argmax(axis=1))


@pytest.mark.slow
def test_crcw_round_growth_logarithmic():
    """Measured rounds grow ~ lg n on a CRCW machine with 8n procs."""
    rounds = {}
    for n in (64, 1024):
        a = random_monge(n, n, np.random.default_rng(n))
        pram = BrentPram(CRCW_COMMON, 1 << 40, 8 * n, ledger=CostLedger())
        monge_row_minima_pram(pram, a)
        rounds[n] = pram.ledger.rounds
    # lg(1024)/lg(64) = 1.67; allow up to 4x for constant jitter
    assert rounds[1024] <= 4 * rounds[64]
    # and far from linear growth (16x)
    assert rounds[1024] < rounds[64] * 8


def test_crew_round_growth():
    rounds = {}
    for n in (64, 1024):
        a = random_monge(n, n, np.random.default_rng(n))
        phys = max(1, int(n / math.log2(math.log2(n))))
        pram = BrentPram(CREW, 1 << 40, phys, ledger=CostLedger())
        v, c = monge_row_minima_pram(pram, a)
        np.testing.assert_array_equal(c, a.data.argmin(axis=1))
        rounds[n] = pram.ledger.rounds
    assert rounds[1024] <= 5 * rounds[64]


def test_processor_budget_respected_by_brent():
    n = 256
    a = random_monge(n, n, np.random.default_rng(1))
    pram = BrentPram(CRCW_COMMON, 1 << 40, n, ledger=CostLedger())
    monge_row_minima_pram(pram, a)
    assert pram.ledger.peak_processors <= n


def test_work_is_near_linear():
    """Total work stays within O(n lg n)-ish of the sequential O(n).

    Measured on a Brent machine with 8n physical processors (an
    unbounded machine lets the all-pairs primitive trade quadratic work
    for constant rounds, which is legal but pollutes this metric).
    """
    n = 1024
    a = random_monge(n, n, np.random.default_rng(2))
    pram = BrentPram(CRCW_COMMON, 1 << 40, 8 * n, ledger=CostLedger())
    monge_row_minima_pram(pram, a)
    assert pram.ledger.work <= 100 * n * math.log2(n)


@given(st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_property_random_instances(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 40))
    n = int(rng.integers(1, 40))
    a = random_monge(m, n, rng, integer=True)
    for strategy in ("sqrt", "halving"):
        v, c = monge_row_minima_pram(make(), a, strategy=strategy)
        np.testing.assert_array_equal(c, a.data.argmin(axis=1), err_msg=strategy)


def test_erew_machine_supported(rng):
    """The binary grouped-minimum path is exclusive-read/write safe, so
    the searches run on a plain EREW machine too."""
    from repro.pram.models import EREW

    a = random_monge(30, 30, rng, integer=True)
    pram = Pram(EREW, 1 << 26, ledger=CostLedger())
    v, c = monge_row_minima_pram(pram, a)
    np.testing.assert_array_equal(c, a.data.argmin(axis=1))
    # EREW pays lg-rounds for broadcasts but stays polylog overall
    assert pram.ledger.rounds < 1000
